#include "lamsdlc/obs/capture.hpp"

#include <cstring>

namespace lamsdlc::obs {
namespace {

// --- LEB128 varints -------------------------------------------------------

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::ostream& os, std::int64_t v) {
  put_varint(os, zigzag(v));
}

void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u16le(std::ostream& os, std::uint16_t v) {
  os.put(static_cast<char>(v & 0xFF));
  os.put(static_cast<char>(v >> 8));
}

void put_u64le(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    os.put(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

std::uint64_t double_bits(double d) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Stateful decoder: any read past EOF or malformed varint sets `err`.
struct Decoder {
  std::istream& is;
  std::string err;

  [[nodiscard]] bool ok() const noexcept { return err.empty(); }

  /// Returns -1 at EOF *before* any byte of the current record (clean end).
  int peek_byte() { return is.peek(); }

  std::uint8_t u8(const char* what) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof()) {
      if (err.empty()) err = std::string{"truncated record: "} + what;
      return 0;
    }
    return static_cast<std::uint8_t>(c);
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const int c = is.get();
      if (c == std::istream::traits_type::eof()) {
        if (err.empty()) err = std::string{"truncated varint: "} + what;
        return 0;
      }
      const auto byte = static_cast<std::uint8_t>(c);
      if (shift >= 63 && (byte & 0x7F) > 1) {
        if (err.empty()) err = std::string{"varint overflow: "} + what;
        return 0;
      }
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t svarint(const char* what) { return unzigzag(varint(what)); }

  std::uint16_t u16le(const char* what) {
    const std::uint16_t lo = u8(what);
    const std::uint16_t hi = u8(what);
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint64_t u64le(const char* what) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8(what)) << (8 * i);
    }
    return v;
  }
};

void encode_payload(std::ostream& os, const Event& e) {
  switch (e.kind) {
    case EventKind::kFrameSent:
    case EventKind::kFrameReceived:
    case EventKind::kFrameReleased:
    case EventKind::kRetransmitQueued:
    case EventKind::kPacketAdmitted:
    case EventKind::kPacketDelivered: {
      const auto& f = e.p.frame;
      put_varint(os, f.ctr);
      put_varint(os, f.packet_id);
      put_varint(os, f.attempt);
      put_u8(os, f.control);
      put_svarint(os, f.holding_ps);
      break;
    }
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed: {
      const auto& d = e.p.drop;
      put_u8(os, static_cast<std::uint8_t>(d.cause));
      put_u8(os, d.control);
      put_varint(os, d.ctr);
      break;
    }
    case EventKind::kCheckpointEmitted:
    case EventKind::kCheckpointProcessed: {
      const auto& cp = e.p.checkpoint;
      put_varint(os, cp.cp_seq);
      put_varint(os, cp.highest_seen);
      put_varint(os, cp.missed);
      put_varint(os, cp.nak_count);
      put_u8(os, cp.flags);
      for (std::size_t i = 0; i < cp.inline_naks(); ++i) {
        put_varint(os, cp.naks[i]);
      }
      break;
    }
    case EventKind::kNakGenerated:
      put_varint(os, e.p.nak.ctr);
      break;
    case EventKind::kBufferOccupancy:
      put_u8(os, static_cast<std::uint8_t>(e.p.buffer.which));
      put_varint(os, e.p.buffer.depth);
      break;
    case EventKind::kTimerArmed:
    case EventKind::kTimerFired:
      put_u8(os, static_cast<std::uint8_t>(e.p.timer.timer));
      put_svarint(os, e.p.timer.deadline_ps);
      break;
    case EventKind::kRecoveryTransition:
      put_u8(os, static_cast<std::uint8_t>(e.p.recovery.from));
      put_u8(os, static_cast<std::uint8_t>(e.p.recovery.to));
      put_u8(os, static_cast<std::uint8_t>(e.p.recovery.reason));
      break;
    case EventKind::kRetransmitMapped:
      put_varint(os, e.p.map.old_ctr);
      put_varint(os, e.p.map.new_ctr);
      put_varint(os, e.p.map.packet_id);
      put_varint(os, e.p.map.attempt);
      break;
    case EventKind::kMetricSample: {
      const auto name = e.p.sample.name_view();
      put_u8(os, static_cast<std::uint8_t>(name.size()));
      os.write(name.data(), static_cast<std::streamsize>(name.size()));
      put_u64le(os, double_bits(e.p.sample.value));
      put_u8(os, e.p.sample.is_counter);
      break;
    }
    case EventKind::kSelfAuditFailed:
      put_u8(os, static_cast<std::uint8_t>(e.p.audit.check));
      put_varint(os, e.p.audit.a);
      put_varint(os, e.p.audit.b);
      break;
    case EventKind::kStateCorrupted:
      put_u8(os, e.p.corruption.cls);
      put_u8(os, e.p.corruption.target);
      put_varint(os, e.p.corruption.a);
      put_varint(os, e.p.corruption.b);
      break;
    case EventKind::kResyncInitiated:
    case EventKind::kResyncCompleted:
      put_varint(os, e.p.resync.token);
      put_varint(os, e.p.resync.epoch);
      put_varint(os, e.p.resync.attempt);
      put_u8(os, static_cast<std::uint8_t>(e.p.resync.reason));
      break;
  }
}

bool decode_payload(Decoder& d, Event& e) {
  switch (e.kind) {
    case EventKind::kFrameSent:
    case EventKind::kFrameReceived:
    case EventKind::kFrameReleased:
    case EventKind::kRetransmitQueued:
    case EventKind::kPacketAdmitted:
    case EventKind::kPacketDelivered: {
      auto& f = e.p.frame;
      f.ctr = d.varint("frame.ctr");
      f.packet_id = d.varint("frame.packet_id");
      f.attempt = static_cast<std::uint32_t>(d.varint("frame.attempt"));
      f.control = d.u8("frame.control");
      f.holding_ps = d.svarint("frame.holding_ps");
      break;
    }
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed: {
      auto& dr = e.p.drop;
      const std::uint8_t cause = d.u8("drop.cause");
      if (cause >= kDropCauseCount) {
        if (d.err.empty()) d.err = "bad drop cause";
        return false;
      }
      dr.cause = static_cast<DropCause>(cause);
      dr.control = d.u8("drop.control");
      dr.ctr = d.varint("drop.ctr");
      break;
    }
    case EventKind::kCheckpointEmitted:
    case EventKind::kCheckpointProcessed: {
      auto& cp = e.p.checkpoint;
      cp.cp_seq = static_cast<std::uint32_t>(d.varint("cp.seq"));
      cp.highest_seen = static_cast<std::uint32_t>(d.varint("cp.highest"));
      cp.missed = static_cast<std::uint32_t>(d.varint("cp.missed"));
      cp.nak_count = static_cast<std::uint16_t>(d.varint("cp.nak_count"));
      cp.flags = d.u8("cp.flags");
      for (std::size_t i = 0; i < cp.inline_naks(); ++i) {
        cp.naks[i] = static_cast<std::uint32_t>(d.varint("cp.nak"));
      }
      break;
    }
    case EventKind::kNakGenerated:
      e.p.nak.ctr = d.varint("nak.ctr");
      break;
    case EventKind::kBufferOccupancy: {
      const std::uint8_t which = d.u8("buffer.which");
      if (which >= kBufferIdCount) {
        if (d.err.empty()) d.err = "bad buffer id";
        return false;
      }
      e.p.buffer.which = static_cast<BufferId>(which);
      e.p.buffer.depth = static_cast<std::uint32_t>(d.varint("buffer.depth"));
      break;
    }
    case EventKind::kTimerArmed:
    case EventKind::kTimerFired: {
      const std::uint8_t timer = d.u8("timer.id");
      if (timer >= kTimerIdCount) {
        if (d.err.empty()) d.err = "bad timer id";
        return false;
      }
      e.p.timer.timer = static_cast<TimerId>(timer);
      e.p.timer.deadline_ps = d.svarint("timer.deadline");
      break;
    }
    case EventKind::kRecoveryTransition: {
      const std::uint8_t from = d.u8("recovery.from");
      const std::uint8_t to = d.u8("recovery.to");
      const std::uint8_t reason = d.u8("recovery.reason");
      if (from >= kSenderModeCount || to >= kSenderModeCount ||
          reason >= kRecoveryReasonCount) {
        if (d.err.empty()) d.err = "bad recovery payload";
        return false;
      }
      e.p.recovery.from = static_cast<SenderMode>(from);
      e.p.recovery.to = static_cast<SenderMode>(to);
      e.p.recovery.reason = static_cast<RecoveryReason>(reason);
      break;
    }
    case EventKind::kRetransmitMapped:
      e.p.map.old_ctr = d.varint("map.old_ctr");
      e.p.map.new_ctr = d.varint("map.new_ctr");
      e.p.map.packet_id = d.varint("map.packet_id");
      e.p.map.attempt = static_cast<std::uint32_t>(d.varint("map.attempt"));
      break;
    case EventKind::kMetricSample: {
      const std::uint8_t len = d.u8("sample.name_len");
      if (len >= kMetricNameCap) {
        if (d.err.empty()) d.err = "bad metric name length";
        return false;
      }
      char buf[kMetricNameCap] = {};
      for (std::uint8_t i = 0; i < len; ++i) {
        buf[i] = static_cast<char>(d.u8("sample.name"));
      }
      e.p.sample.set_name(std::string_view{buf, len});
      e.p.sample.value = bits_double(d.u64le("sample.value"));
      e.p.sample.is_counter = d.u8("sample.is_counter");
      break;
    }
    case EventKind::kSelfAuditFailed: {
      const std::uint8_t check = d.u8("audit.check");
      if (check >= kAuditCheckCount) {
        if (d.err.empty()) d.err = "bad audit check";
        return false;
      }
      e.p.audit.check = static_cast<AuditCheck>(check);
      e.p.audit.a = d.varint("audit.a");
      e.p.audit.b = d.varint("audit.b");
      break;
    }
    case EventKind::kStateCorrupted:
      e.p.corruption.cls = d.u8("corruption.class");
      e.p.corruption.target = d.u8("corruption.target");
      e.p.corruption.a = d.varint("corruption.a");
      e.p.corruption.b = d.varint("corruption.b");
      break;
    case EventKind::kResyncInitiated:
    case EventKind::kResyncCompleted: {
      e.p.resync.token = static_cast<std::uint32_t>(d.varint("resync.token"));
      e.p.resync.epoch = static_cast<std::uint32_t>(d.varint("resync.epoch"));
      e.p.resync.attempt =
          static_cast<std::uint32_t>(d.varint("resync.attempt"));
      const std::uint8_t reason = d.u8("resync.reason");
      if (reason >= kRecoveryReasonCount) {
        if (d.err.empty()) d.err = "bad resync reason";
        return false;
      }
      e.p.resync.reason = static_cast<RecoveryReason>(reason);
      break;
    }
  }
  return d.ok();
}

}  // namespace

CaptureWriter::CaptureWriter(std::ostream& os) : os_{os} {
  os_.write(reinterpret_cast<const char*>(kCaptureMagic),
            sizeof(kCaptureMagic));
  put_u16le(os_, kCaptureVersion);
  put_u16le(os_, 0);  // reserved
}

void CaptureWriter::write(const Event& e) {
  put_svarint(os_, e.at.ps() - last_ps_);
  last_ps_ = e.at.ps();
  put_u8(os_, static_cast<std::uint8_t>(e.source));
  put_u8(os_, static_cast<std::uint8_t>(e.kind));
  encode_payload(os_, e);
  ++written_;
}

CaptureReader::CaptureReader(std::istream& is) : is_{is} {
  std::uint8_t magic[sizeof(kCaptureMagic)] = {};
  is_.read(reinterpret_cast<char*>(magic), sizeof(magic));
  if (is_.gcount() != sizeof(magic) ||
      std::memcmp(magic, kCaptureMagic, sizeof(magic)) != 0) {
    error_ = "not a .ldlcap file (bad magic)";
    return;
  }
  Decoder d{is_, {}};
  version_ = d.u16le("header.version");
  d.u16le("header.reserved");
  if (!d.ok()) {
    error_ = d.err;
    return;
  }
  if (version_ < kCaptureOldestReadable || version_ > kCaptureVersion) {
    error_ = "unsupported capture version " + std::to_string(version_);
  }
}

std::optional<Event> CaptureReader::next() {
  if (!ok()) return std::nullopt;
  Decoder d{is_, {}};
  if (d.peek_byte() == std::istream::traits_type::eof()) {
    return std::nullopt;  // clean end of stream
  }
  Event e;
  e.at = Time::picoseconds(last_ps_ + d.svarint("record.delta"));
  const std::uint8_t source = d.u8("record.source");
  const std::uint8_t kind = d.u8("record.kind");
  if (!d.ok()) {
    error_ = d.err;
    return std::nullopt;
  }
  if (source >= kSourceCount) {
    error_ = "bad source tag " + std::to_string(source);
    return std::nullopt;
  }
  // A file may only contain kinds its header version knew about; v1 ended at
  // kRecoveryTransition (14), v2 at kMetricSample (18).
  const std::uint8_t kind_limit = version_ == 1   ? 15
                                  : version_ == 2 ? 19
                                                  : kEventKindCount;
  if (kind >= kind_limit) {
    error_ = "bad event kind " + std::to_string(kind);
    return std::nullopt;
  }
  e.source = static_cast<Source>(source);
  e.kind = static_cast<EventKind>(kind);
  if (!decode_payload(d, e)) {
    error_ = d.err.empty() ? "malformed payload" : d.err;
    return std::nullopt;
  }
  last_ps_ = e.at.ps();
  ++read_;
  return e;
}

std::optional<std::vector<Event>> read_capture(std::istream& is,
                                               std::string* error) {
  CaptureReader reader{is};
  std::vector<Event> out;
  while (auto e = reader.next()) out.push_back(*e);
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  return out;
}

}  // namespace lamsdlc::obs
