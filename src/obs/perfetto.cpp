#include "lamsdlc/obs/perfetto.hpp"

#include <cstdio>
#include <string>
#include <string_view>

namespace lamsdlc::obs {
namespace {

constexpr int kPid = 1;
constexpr int kSenderTid = static_cast<int>(Source::kLamsSender) + 1;
constexpr int kReceiverTid = static_cast<int>(Source::kLamsReceiver) + 1;

int tid_of(Source s) { return static_cast<int>(s) + 1; }

/// Trace-event timestamps are microseconds; emit the picosecond remainder as
/// fractional digits so nothing quantizes away.
std::string ts_us(Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", t.us());
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits one trace-event object per call, handling the comma discipline.
class EventSink {
 public:
  explicit EventSink(std::ostream& os) : os_{os} {}

  void meta_process_name(const char* name) {
    begin();
    os_ << R"({"ph":"M","pid":)" << kPid
        << R"(,"name":"process_name","args":{"name":")" << name << "\"}}";
  }
  void meta_thread_name(int tid, const char* name) {
    begin();
    os_ << R"({"ph":"M","pid":)" << kPid << R"(,"tid":)" << tid
        << R"(,"name":"thread_name","args":{"name":")" << name << "\"}}";
  }
  void async(char ph, const std::string& name, std::uint64_t id, int tid,
             Time at, const std::string& args = {}) {
    begin();
    os_ << R"({"ph":")" << ph << R"(","cat":"pkt","id":)" << id
        << R"(,"pid":)" << kPid << R"(,"tid":)" << tid << R"(,"ts":)"
        << ts_us(at) << R"(,"name":")" << json_escape(name) << '"';
    if (!args.empty()) os_ << R"(,"args":{)" << args << '}';
    os_ << '}';
  }
  void instant(const std::string& name, int tid, Time at,
               const std::string& args = {}) {
    begin();
    os_ << R"({"ph":"i","s":"t","pid":)" << kPid << R"(,"tid":)" << tid
        << R"(,"ts":)" << ts_us(at) << R"(,"name":")" << json_escape(name)
        << '"';
    if (!args.empty()) os_ << R"(,"args":{)" << args << '}';
    os_ << '}';
  }
  void counter(const std::string& name, Time at, const std::string& series,
               double value) {
    begin();
    char val[40];
    std::snprintf(val, sizeof val, "%.6g", value);
    os_ << R"({"ph":"C","pid":)" << kPid << R"(,"ts":)" << ts_us(at)
        << R"(,"name":")" << json_escape(name) << R"(","args":{")" << series
        << "\":" << val << "}}";
  }
  void flow(char ph, std::uint64_t id, int tid, Time at) {
    begin();
    os_ << R"({"ph":")" << ph << R"(","cat":"renumber","id":)" << id
        << R"(,"pid":)" << kPid << R"(,"tid":)" << tid << R"(,"ts":)"
        << ts_us(at) << R"(,"name":"renumber")";
    if (ph == 'f') os_ << R"(,"bp":"e")";
    os_ << '}';
  }

 private:
  void begin() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_perfetto(std::ostream& os, const TraceBuilder& tb) {
  os << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  EventSink sink{os};

  sink.meta_process_name("lamsdlc");
  for (std::uint8_t s = 0; s < kSourceCount; ++s) {
    sink.meta_thread_name(s + 1, to_string(static_cast<Source>(s)));
  }

  for (const auto& [id, t] : tb.packets()) {
    if (t.attempts.empty()) continue;
    const std::string pname = "pkt " + std::to_string(id);
    // Outer span: admission (or first send) to release (or last observed
    // instant) — the packet's whole residence in the protocol.
    const Time open = t.admitted.value_or(t.attempts.front().sent);
    Time close = t.attempts.back().sent;
    if (t.attempts.back().received && close < *t.attempts.back().received) {
      close = *t.attempts.back().received;
    }
    if (t.delivered && close < *t.delivered) close = *t.delivered;
    if (t.released && close < *t.released) close = *t.released;
    sink.async('b', pname, id, kSenderTid, open,
               "\"attempts\":" + std::to_string(t.attempts.size()) +
                   ",\"complete\":" + (t.complete() ? "true" : "false"));

    for (std::size_t i = 0; i < t.attempts.size(); ++i) {
      const TraceAttempt& a = t.attempts[i];
      const std::string aname =
          pname + " attempt " + std::to_string(a.number);
      // Inner slice: this copy's time on the books — send until the next
      // attempt supersedes it (failed copy) or until delivery/receipt.
      Time end = i + 1 < t.attempts.size() ? t.attempts[i + 1].sent
                 : t.delivered             ? *t.delivered
                 : a.received              ? *a.received
                                           : a.sent;
      if (end < a.sent) end = a.sent;
      sink.async('b', aname, id, kSenderTid, a.sent,
                 "\"ctr\":" + std::to_string(a.ctr));
      if (a.nak) {
        sink.instant("NAK ctr=" + std::to_string(a.ctr), kReceiverTid, *a.nak);
      }
      if (a.retx_queued) {
        sink.instant("retx claim ctr=" + std::to_string(a.ctr), kSenderTid,
                     *a.retx_queued);
      }
      sink.async('e', aname, id, kSenderTid, end);
      if (i + 1 < t.attempts.size()) {
        // Flow arrow: failed copy -> renumbered successor (the visual form
        // of kRetransmitMapped).  Unique id per arrow.
        const std::uint64_t fid = id * 1024 + a.number;
        sink.flow('s', fid, kSenderTid, end);
        sink.flow('f', fid, kSenderTid, t.attempts[i + 1].sent);
      }
    }
    if (t.delivered) {
      sink.instant(pname + " delivered", kReceiverTid, *t.delivered);
    }
    if (t.released) {
      sink.instant(pname + " released", kSenderTid, *t.released,
                   "\"holding_ms\":" +
                       std::to_string(static_cast<double>(t.holding_ps) * 1e-9));
    }
    sink.async('e', pname, id, kSenderTid, close);
  }

  for (const CheckpointMark& cp : tb.checkpoints()) {
    sink.instant((cp.enforced ? "enforced-NAK cp=" : "checkpoint cp=") +
                     std::to_string(cp.cp_seq),
                 kReceiverTid, cp.at,
                 "\"naks\":" + std::to_string(cp.nak_count));
  }
  // Recovery episodes render as duration spans: a span opens when the sender
  // leaves normal mode and closes when it returns to normal (or declares
  // failure).  Mode changes *within* an episode (enforced -> resyncing) keep
  // the span open; the per-transition instants below carry the reasons.
  {
    // Id space disjoint from the packet spans (pkt id) and flow arrows
    // (id*1024+attempt) above.
    constexpr std::uint64_t kRecoverySpanBase = 1ULL << 48;
    std::uint64_t episode = 0;
    bool open = false;
    for (const RecoveryMark& r : tb.recoveries()) {
      sink.instant(std::string{"recovery "} + to_string(r.from) + "->" +
                       to_string(r.to),
                   kSenderTid, r.at,
                   std::string{"\"reason\":\""} + to_string(r.reason) + '"');
      const bool terminal =
          r.to == SenderMode::kNormal || r.to == SenderMode::kFailed;
      if (!open && !terminal) {
        open = true;
        // Same name as the matching 'e' below: viewers (and
        // scripts/check_perfetto.py) pair async events by (cat, id, name).
        sink.async('b', std::string{"recovery"},
                   kRecoverySpanBase + episode, kSenderTid, r.at,
                   std::string{"\"reason\":\""} + to_string(r.reason) +
                       "\",\"entered\":\"" + to_string(r.to) + '"');
      } else if (open && terminal) {
        open = false;
        sink.async('e', std::string{"recovery"}, kRecoverySpanBase + episode,
                   kSenderTid, r.at,
                   std::string{"\"outcome\":\""} + to_string(r.to) + '"');
        ++episode;
      }
    }
    if (open) {
      // Run ended mid-episode: close the span at its last transition so the
      // trace stays well-formed.
      const RecoveryMark& last = tb.recoveries().back();
      sink.async('e', std::string{"recovery"}, kRecoverySpanBase + episode,
                 kSenderTid, last.at, "\"outcome\":\"truncated\"");
    }
  }
  for (const OccupancyPoint& o : tb.occupancy()) {
    sink.counter(std::string{to_string(o.source)} + "." + to_string(o.which),
                 o.at, "depth", static_cast<double>(o.depth));
  }
  for (const SamplePoint& s : tb.samples()) {
    sink.counter(s.name, s.at, s.is_counter ? "count" : "value", s.value);
  }

  os << "\n]}\n";
}

}  // namespace lamsdlc::obs
