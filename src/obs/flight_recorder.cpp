#include "lamsdlc/obs/flight_recorder.hpp"

#include <fstream>

#include "lamsdlc/obs/capture.hpp"

namespace lamsdlc::obs {

FlightRecorder::FlightRecorder(Config cfg) : cfg_{std::move(cfg)} {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.resize(cfg_.capacity);
}

bool FlightRecorder::is_anomaly(const Event& e) noexcept {
  switch (e.kind) {
    case EventKind::kSelfAuditFailed:
    case EventKind::kResyncInitiated:
      return true;
    case EventKind::kRecoveryTransition:
      // Bounded-retry teardown: the sender gave up and declared the link
      // failed (RESYNC retries exhausted, failure timer, lifetime, ...).
      return e.p.recovery.to == SenderMode::kFailed;
    default:
      return false;
  }
}

void FlightRecorder::record(const Event& e) {
  ring_[next_] = e;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  if (held_ < ring_.size()) ++held_;
  ++recorded_;

  if (!is_anomaly(e) || cfg_.dump_prefix.empty()) return;
  if (dumps_ >= cfg_.max_dumps ||
      (dumped_once_ && e.at < last_dump_at_ + cfg_.min_dump_gap)) {
    ++suppressed_;
    return;
  }
  const std::string path = cfg_.dump_prefix + "-" +
                           std::to_string(dumps_ + 1) + ".ldlcap";
  if (!dump_to_file(path)) return;
  ++dumps_;
  dumped_once_ = true;
  last_dump_at_ = e.at;
  last_dump_path_ = path;
}

void FlightRecorder::dump(std::ostream& os) const {
  CaptureWriter writer{os};
  // Oldest event first: with the ring full, that is the slot `next_` points
  // at; otherwise the ring starts at slot 0.
  const std::size_t start = held_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held_; ++i) {
    writer.write(ring_[(start + i) % ring_.size()]);
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) return false;
  dump(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace lamsdlc::obs
