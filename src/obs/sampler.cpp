#include "lamsdlc/obs/sampler.hpp"

namespace lamsdlc::obs {

void Sampler::start() {
  if (timer_ != 0 || period_.ps() <= 0) return;
  timer_ = sim_.schedule_in(period_, [this] { tick(); });
}

void Sampler::stop() {
  if (timer_ == 0) return;
  sim_.cancel(timer_);
  timer_ = 0;
}

void Sampler::tick() {
  timer_ = 0;
  if (bus_.enabled()) {
    Event e;
    e.at = sim_.now();
    e.source = Source::kOther;
    e.kind = EventKind::kMetricSample;
    for (const auto& [name, c] : registry_.counters()) {
      e.p.sample = MetricSamplePayload{};
      e.p.sample.set_name(name);
      e.p.sample.value = static_cast<double>(c.value());
      e.p.sample.is_counter = 1;
      bus_.emit(e);
    }
    for (const auto& [name, g] : registry_.gauges()) {
      e.p.sample = MetricSamplePayload{};
      e.p.sample.set_name(name);
      e.p.sample.value = g.value();
      e.p.sample.is_counter = 0;
      bus_.emit(e);
    }
    ++snapshots_;
  }
  timer_ = sim_.schedule_in(period_, [this] { tick(); });
}

}  // namespace lamsdlc::obs
