#include "lamsdlc/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lamsdlc::obs {
namespace {

/// Clamp an optional boundary into [lo, hi] so the telescoping attribution
/// stays exact even when an instant strays outside its cycle (it cannot in a
/// well-formed run, but a replayed foreign capture must not break the sums).
Time clamp_time(Time v, Time lo, Time hi) noexcept {
  if (v < lo) return lo;
  if (hi < v) return hi;
  return v;
}

void put_ms(std::string& out, Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", t.ms());
  out += buf;
  out += "ms";
}

void put_ms(std::string& out, std::int64_t ps) {
  put_ms(out, Time::picoseconds(ps));
}

}  // namespace

LatencyBreakdown attribute(const PacketTrace& t) noexcept {
  LatencyBreakdown b;
  if (t.attempts.empty()) return b;
  const Time first = t.attempts.front().sent;
  if (t.admitted) b.admission_wait_ps = (first - *t.admitted).ps();
  // The copy that reached the client ends the in-flight story.  Normally it
  // is the last attempt; after a RESYNC requeue, later duplicate copies may
  // exist — their flights fall inside release_wait, not final_flight.
  std::size_t final_idx = t.attempts.size() - 1;
  if (t.delivered) {
    for (std::size_t i = 0; i < t.attempts.size(); ++i) {
      if (t.attempts[i].ctr == t.delivered_ctr) {
        final_idx = i;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < final_idx; ++i) {
    // Failed cycle i: send(i) .. send(i+1).  Interior boundaries are the NAK
    // and the retransmit claim; a missing boundary collapses its component
    // to zero while the cycle total t3-t0 is preserved (telescoping).
    const Time t0 = t.attempts[i].sent;
    const Time t3 = t.attempts[i + 1].sent;
    const Time t1 = clamp_time(t.attempts[i].nak.value_or(t0), t0, t3);
    const Time t2 = clamp_time(t.attempts[i].retx_queued.value_or(t1), t1, t3);
    b.nak_wait_ps += (t1 - t0).ps();
    b.checkpoint_wait_ps += (t2 - t1).ps();
    b.retx_serialization_ps += (t3 - t2).ps();
  }
  const Time last = t.attempts[final_idx].sent;
  if (t.delivered) {
    b.final_flight_ps = (*t.delivered - last).ps();
    if (t.released) b.release_wait_ps = (*t.released - *t.delivered).ps();
  } else if (t.released) {
    // Degenerate (no delivery leaf): charge the whole tail to flight so the
    // holding-time identity still holds.
    b.final_flight_ps = (*t.released - last).ps();
  }
  return b;
}

PacketTrace& TraceBuilder::packet(std::uint64_t packet_id) {
  PacketTrace& t = packets_[packet_id];
  t.packet_id = packet_id;
  return t;
}

TraceAttempt* TraceBuilder::attempt_for(std::uint64_t ctr) {
  const auto it = by_ctr_.find(ctr);
  if (it == by_ctr_.end()) return nullptr;
  const auto pit = packets_.find(it->second.first);
  if (pit == packets_.end()) return nullptr;
  if (it->second.second >= pit->second.attempts.size()) return nullptr;
  return &pit->second.attempts[it->second.second];
}

void TraceBuilder::orphan(const Event& e) { ++orphans_[to_string(e.kind)]; }

void TraceBuilder::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kPacketAdmitted: {
      if (e.source != Source::kLamsSender) break;
      PacketTrace& t = packet(e.p.frame.packet_id);
      if (!t.admitted) t.admitted = e.at;
      break;
    }
    case EventKind::kFrameSent: {
      // Stitching uses endpoint events only: link sources re-emit frames
      // with *wrapped* wire sequences that would collide across cycles.
      if (e.source != Source::kLamsSender || e.p.frame.control) break;
      const FramePayload& f = e.p.frame;
      PacketTrace& t = packet(f.packet_id);
      if (f.attempt > 1) {
        const bool linked = pending_map_.has_value() &&
                            pending_map_->new_ctr == f.ctr &&
                            pending_map_->packet_id == f.packet_id &&
                            pending_map_->attempt == f.attempt &&
                            !t.attempts.empty() &&
                            t.attempts.back().ctr == pending_map_->old_ctr;
        if (!linked) t.chain_broken = true;
      } else if (!t.attempts.empty()) {
        const auto git = pkt_gen_.find(f.packet_id);
        const std::uint32_t seen = git == pkt_gen_.end() ? 0 : git->second;
        if (seen < resync_gen_) {
          // A RESYNC requeued this packet: attempt numbering lawfully
          // restarts at 1 under a fresh counter (new incarnation).
          ++t.resync_requeues;
        } else {
          // A second "attempt 1" with no intervening RESYNC (session
          // renumbering or a corrupt capture) — the chain cannot be trusted.
          t.chain_broken = true;
        }
      }
      pkt_gen_[f.packet_id] = resync_gen_;
      pending_map_.reset();
      TraceAttempt a;
      a.ctr = f.ctr;
      a.number = f.attempt;
      a.sent = e.at;
      by_ctr_.insert_or_assign(f.ctr,
                               std::make_pair(f.packet_id, t.attempts.size()));
      t.attempts.push_back(a);
      break;
    }
    case EventKind::kRetransmitMapped:
      if (e.source != Source::kLamsSender) break;
      pending_map_ = e.p.map;
      break;
    case EventKind::kNakGenerated: {
      if (e.source != Source::kLamsReceiver) break;
      if (TraceAttempt* a = attempt_for(e.p.nak.ctr)) {
        if (!a->nak) a->nak = e.at;
      } else {
        orphan(e);
      }
      break;
    }
    case EventKind::kRetransmitQueued: {
      if (e.source != Source::kLamsSender || e.p.frame.control) break;
      if (TraceAttempt* a = attempt_for(e.p.frame.ctr)) {
        if (!a->retx_queued) a->retx_queued = e.at;
      } else {
        orphan(e);
      }
      break;
    }
    case EventKind::kFrameReceived: {
      if (e.source != Source::kLamsReceiver || e.p.frame.control) break;
      if (TraceAttempt* a = attempt_for(e.p.frame.ctr)) {
        if (!a->received) a->received = e.at;
      } else {
        orphan(e);
      }
      break;
    }
    case EventKind::kPacketDelivered: {
      if (e.source != Source::kLamsReceiver) break;
      PacketTrace& t = packet(e.p.frame.packet_id);
      if (t.delivered) {
        ++t.extra_deliveries;
      } else {
        t.delivered = e.at;
        t.delivered_ctr = e.p.frame.ctr;
      }
      break;
    }
    case EventKind::kFrameReleased: {
      if (e.source != Source::kLamsSender || e.p.frame.control) break;
      if (attempt_for(e.p.frame.ctr) == nullptr) {
        orphan(e);
        break;
      }
      PacketTrace& t = packet(e.p.frame.packet_id);
      if (!t.released) {
        t.released = e.at;
        t.holding_ps = e.p.frame.holding_ps;
      }
      break;
    }
    case EventKind::kCheckpointEmitted:
      if (e.source != Source::kLamsReceiver) break;
      checkpoints_.push_back(CheckpointMark{e.at, e.p.checkpoint.cp_seq,
                                            e.p.checkpoint.nak_count,
                                            e.p.checkpoint.enforced()});
      break;
    case EventKind::kBufferOccupancy:
      occupancy_.push_back(
          OccupancyPoint{e.at, e.source, e.p.buffer.which, e.p.buffer.depth});
      break;
    case EventKind::kMetricSample:
      samples_.push_back(SamplePoint{e.at, std::string{e.p.sample.name_view()},
                                     e.p.sample.value,
                                     e.p.sample.is_counter != 0});
      break;
    case EventKind::kRecoveryTransition:
      recoveries_.push_back(RecoveryMark{e.at, e.p.recovery.from,
                                         e.p.recovery.to, e.p.recovery.reason});
      break;
    case EventKind::kResyncInitiated:
      if (e.source == Source::kLamsSender) ++resync_gen_;
      break;
    default:
      break;
  }
}

const PacketTrace* TraceBuilder::find(std::uint64_t packet_id) const {
  const auto it = packets_.find(packet_id);
  return it == packets_.end() ? nullptr : &it->second;
}

const PacketTrace* TraceBuilder::worst() const {
  const PacketTrace* best = nullptr;
  for (const auto& [id, t] : packets_) {
    if (!t.complete()) continue;
    if (!best || t.holding_ps > best->holding_ps ||
        (t.holding_ps == best->holding_ps &&
         t.attempts.size() > best->attempts.size())) {
      best = &t;
    }
  }
  return best;
}

TraceSummary TraceBuilder::summarize() const {
  TraceSummary s;
  s.packets = packets_.size();
  for (const auto& [id, t] : packets_) {
    if (t.complete()) ++s.complete;
    if (t.delivered) ++s.delivered;
    if (t.released) ++s.released;
    if (t.chain_broken) ++s.broken_chains;
    s.attempts += t.attempts.size();
    s.max_attempts = std::max(s.max_attempts,
                              static_cast<std::uint32_t>(t.attempts.size()));
    s.extra_deliveries += t.extra_deliveries;
    s.resync_requeues += t.resync_requeues;
  }
  for (const auto& [kind, n] : orphans_) s.orphan_events += n;
  return s;
}

std::string TraceBuilder::dump() const {
  // Canonical form: integer picoseconds only, fixed field order, packets in
  // id order.  Byte-for-byte equality of two dumps certifies that the two
  // reconstructions (live bus vs. capture replay) stitched identically.
  std::ostringstream os;
  os << "trace-dump v1\n";
  for (const auto& [id, t] : packets_) {
    os << "packet " << id;
    os << " admitted=";
    if (t.admitted) os << t.admitted->ps(); else os << '-';
    os << " delivered=";
    if (t.delivered) os << t.delivered->ps() << " ctr=" << t.delivered_ctr;
    else os << '-';
    os << " released=";
    if (t.released) os << t.released->ps(); else os << '-';
    os << " holding=" << t.holding_ps << " extra=" << t.extra_deliveries
       << " broken=" << (t.chain_broken ? 1 : 0) << '\n';
    for (const TraceAttempt& a : t.attempts) {
      os << "  attempt " << a.number << " ctr=" << a.ctr
         << " sent=" << a.sent.ps();
      os << " nak=";
      if (a.nak) os << a.nak->ps(); else os << '-';
      os << " retx_queued=";
      if (a.retx_queued) os << a.retx_queued->ps(); else os << '-';
      os << " received=";
      if (a.received) os << a.received->ps(); else os << '-';
      os << '\n';
    }
  }
  os << "aux checkpoints=" << checkpoints_.size()
     << " occupancy=" << occupancy_.size() << " samples=" << samples_.size()
     << " recoveries=" << recoveries_.size() << '\n';
  for (const auto& [kind, n] : orphans_) {
    os << "orphan " << kind << '=' << n << '\n';
  }
  return os.str();
}

void TraceBuilder::fold_latency(Registry& registry) const {
  for (const auto& [id, t] : packets_) {
    if (!t.complete()) continue;
    const LatencyBreakdown b = attribute(t);
    registry.counter("trace.packets_complete").add();
    registry.histogram("trace.latency.admission_wait_ms")
        .observe(static_cast<double>(b.admission_wait_ps) * 1e-9);
    registry.histogram("trace.latency.nak_wait_ms")
        .observe(static_cast<double>(b.nak_wait_ps) * 1e-9);
    registry.histogram("trace.latency.checkpoint_wait_ms")
        .observe(static_cast<double>(b.checkpoint_wait_ps) * 1e-9);
    registry.histogram("trace.latency.retx_serialization_ms")
        .observe(static_cast<double>(b.retx_serialization_ps) * 1e-9);
    registry.histogram("trace.latency.final_flight_ms")
        .observe(static_cast<double>(b.final_flight_ps) * 1e-9);
    registry.histogram("trace.latency.release_wait_ms")
        .observe(static_cast<double>(b.release_wait_ps) * 1e-9);
    registry.histogram("trace.latency.total_ms")
        .observe(static_cast<double>(b.total_ps()) * 1e-9);
  }
}

std::string explain(const PacketTrace& t) {
  std::string out;
  out += "packet " + std::to_string(t.packet_id) + "\n";
  if (t.admitted) {
    out += "  admitted          t=";
    put_ms(out, *t.admitted);
    out += "  (entered the sending buffer)\n";
  } else {
    out += "  admitted          (not observed)\n";
  }
  for (std::size_t i = 0; i < t.attempts.size(); ++i) {
    const TraceAttempt& a = t.attempts[i];
    out += "  attempt " + std::to_string(a.number) + " ctr=" +
           std::to_string(a.ctr) + "  sent t=";
    put_ms(out, a.sent);
    if (a.number > 1) out += "  (renumbered retransmission)";
    out += "\n";
    const bool failed = i + 1 < t.attempts.size();
    if (a.nak) {
      out += "    damaged in flight; receiver NAKed at t=";
      put_ms(out, *a.nak);
      out += " (detection wait ";
      put_ms(out, *a.nak - a.sent);
      out += ")\n";
    } else if (failed) {
      out += "    claimed undelivered by highest-seen reasoning (no explicit NAK)\n";
    }
    if (a.retx_queued) {
      out += "    checkpoint carried the NAK; sender claimed it at t=";
      put_ms(out, *a.retx_queued);
      out += "\n";
    }
    if (a.received) {
      out += "    received good at t=";
      put_ms(out, *a.received);
      out += "\n";
    }
  }
  if (t.delivered) {
    out += "  delivered         t=";
    put_ms(out, *t.delivered);
    out += "  (client handoff after t_proc, via ctr " +
           std::to_string(t.delivered_ctr) + ")\n";
  } else {
    out += "  delivered         (never — packet lost or run truncated)\n";
  }
  if (t.released) {
    out += "  released          t=";
    put_ms(out, *t.released);
    out += "  (implicit acknowledgement; holding time ";
    put_ms(out, t.holding_ps);
    out += ")\n";
  } else {
    out += "  released          (never — no covering checkpoint observed)\n";
  }
  if (t.extra_deliveries > 0) {
    out += "  WARNING: " + std::to_string(t.extra_deliveries) +
           " duplicate client deliveries\n";
  }
  if (t.chain_broken) {
    out += "  WARNING: renumbering chain failed to stitch\n";
  }
  if (t.complete()) {
    const LatencyBreakdown b = attribute(t);
    out += "  latency: admission ";
    put_ms(out, b.admission_wait_ps);
    out += " | nak-wait ";
    put_ms(out, b.nak_wait_ps);
    out += " | checkpoint-wait ";
    put_ms(out, b.checkpoint_wait_ps);
    out += " | retx-serialization ";
    put_ms(out, b.retx_serialization_ps);
    out += " | flight ";
    put_ms(out, b.final_flight_ps);
    out += " | release-wait ";
    put_ms(out, b.release_wait_ps);
    out += " | total ";
    put_ms(out, b.total_ps());
    out += "\n";
  }
  return out;
}

}  // namespace lamsdlc::obs
