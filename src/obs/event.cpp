#include "lamsdlc/obs/event.hpp"

#include <sstream>

namespace lamsdlc::obs {
namespace {

bool frame_eq(const FramePayload& a, const FramePayload& b) noexcept {
  return a.ctr == b.ctr && a.packet_id == b.packet_id &&
         a.attempt == b.attempt && a.control == b.control &&
         a.holding_ps == b.holding_ps;
}

bool drop_eq(const DropPayload& a, const DropPayload& b) noexcept {
  return a.cause == b.cause && a.control == b.control && a.ctr == b.ctr;
}

bool checkpoint_eq(const CheckpointPayload& a,
                   const CheckpointPayload& b) noexcept {
  return a.cp_seq == b.cp_seq && a.highest_seen == b.highest_seen &&
         a.missed == b.missed && a.nak_count == b.nak_count &&
         a.flags == b.flags && a.naks == b.naks;
}

bool timer_eq(const TimerPayload& a, const TimerPayload& b) noexcept {
  return a.timer == b.timer && a.deadline_ps == b.deadline_ps;
}

bool recovery_eq(const RecoveryPayload& a, const RecoveryPayload& b) noexcept {
  return a.from == b.from && a.to == b.to && a.reason == b.reason;
}

bool map_eq(const RetransmitMapPayload& a,
            const RetransmitMapPayload& b) noexcept {
  return a.old_ctr == b.old_ctr && a.new_ctr == b.new_ctr &&
         a.packet_id == b.packet_id && a.attempt == b.attempt;
}

bool sample_eq(const MetricSamplePayload& a,
               const MetricSamplePayload& b) noexcept {
  return a.name == b.name && a.value == b.value &&
         a.is_counter == b.is_counter;
}

bool audit_eq(const AuditPayload& a, const AuditPayload& b) noexcept {
  return a.check == b.check && a.a == b.a && a.b == b.b;
}

bool corruption_eq(const CorruptionPayload& a,
                   const CorruptionPayload& b) noexcept {
  return a.cls == b.cls && a.target == b.target && a.a == b.a && a.b == b.b;
}

bool resync_eq(const ResyncPayload& a, const ResyncPayload& b) noexcept {
  return a.token == b.token && a.epoch == b.epoch && a.attempt == b.attempt &&
         a.reason == b.reason;
}

const char* frame_verb(EventKind k) noexcept {
  switch (k) {
    case EventKind::kFrameSent: return "tx";
    case EventKind::kFrameReceived: return "rx";
    case EventKind::kFrameReleased: return "released";
    case EventKind::kRetransmitQueued: return "retx-queued";
    default: return "?";
  }
}

}  // namespace

bool operator==(const Event& a, const Event& b) noexcept {
  if (a.at != b.at || a.source != b.source || a.kind != b.kind) return false;
  switch (a.kind) {
    case EventKind::kFrameSent:
    case EventKind::kFrameReceived:
    case EventKind::kFrameReleased:
    case EventKind::kRetransmitQueued:
    case EventKind::kPacketAdmitted:
    case EventKind::kPacketDelivered:
      return frame_eq(a.p.frame, b.p.frame);
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed:
      return drop_eq(a.p.drop, b.p.drop);
    case EventKind::kCheckpointEmitted:
    case EventKind::kCheckpointProcessed:
      return checkpoint_eq(a.p.checkpoint, b.p.checkpoint);
    case EventKind::kNakGenerated:
      return a.p.nak.ctr == b.p.nak.ctr;
    case EventKind::kBufferOccupancy:
      return a.p.buffer.which == b.p.buffer.which &&
             a.p.buffer.depth == b.p.buffer.depth;
    case EventKind::kTimerArmed:
    case EventKind::kTimerFired:
      return timer_eq(a.p.timer, b.p.timer);
    case EventKind::kRecoveryTransition:
      return recovery_eq(a.p.recovery, b.p.recovery);
    case EventKind::kRetransmitMapped:
      return map_eq(a.p.map, b.p.map);
    case EventKind::kMetricSample:
      return sample_eq(a.p.sample, b.p.sample);
    case EventKind::kSelfAuditFailed:
      return audit_eq(a.p.audit, b.p.audit);
    case EventKind::kStateCorrupted:
      return corruption_eq(a.p.corruption, b.p.corruption);
    case EventKind::kResyncInitiated:
    case EventKind::kResyncCompleted:
      return resync_eq(a.p.resync, b.p.resync);
  }
  return false;
}

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kFrameSent: return "frame_sent";
    case EventKind::kFrameReceived: return "frame_received";
    case EventKind::kFrameReleased: return "frame_released";
    case EventKind::kRetransmitQueued: return "retransmit_queued";
    case EventKind::kFrameCorrupted: return "frame_corrupted";
    case EventKind::kFrameDropped: return "frame_dropped";
    case EventKind::kFrameDuplicated: return "frame_duplicated";
    case EventKind::kFrameDelayed: return "frame_delayed";
    case EventKind::kCheckpointEmitted: return "checkpoint_emitted";
    case EventKind::kCheckpointProcessed: return "checkpoint_processed";
    case EventKind::kNakGenerated: return "nak_generated";
    case EventKind::kBufferOccupancy: return "buffer_occupancy";
    case EventKind::kTimerArmed: return "timer_armed";
    case EventKind::kTimerFired: return "timer_fired";
    case EventKind::kRecoveryTransition: return "recovery_transition";
    case EventKind::kRetransmitMapped: return "retransmit_mapped";
    case EventKind::kPacketAdmitted: return "packet_admitted";
    case EventKind::kPacketDelivered: return "packet_delivered";
    case EventKind::kMetricSample: return "metric_sample";
    case EventKind::kSelfAuditFailed: return "self_audit_failed";
    case EventKind::kStateCorrupted: return "state_corrupted";
    case EventKind::kResyncInitiated: return "resync_initiated";
    case EventKind::kResyncCompleted: return "resync_completed";
  }
  return "unknown";
}

const char* to_string(Source s) noexcept {
  switch (s) {
    case Source::kLamsSender: return "lams.sender";
    case Source::kLamsReceiver: return "lams.receiver";
    case Source::kLinkForward: return "link.forward";
    case Source::kLinkReverse: return "link.reverse";
    case Source::kOther: return "other";
  }
  return "unknown";
}

const char* to_string(DropCause c) noexcept {
  switch (c) {
    case DropCause::kWireCorruption: return "wire_corruption";
    case DropCause::kFaultDrop: return "fault_drop";
    case DropCause::kFaultTruncation: return "fault_truncation";
    case DropCause::kFaultJitter: return "fault_jitter";
    case DropCause::kFaultDuplicate: return "fault_duplicate";
    case DropCause::kLinkDown: return "link_down";
    case DropCause::kNoSink: return "no_sink";
    case DropCause::kCongestion: return "congestion";
    case DropCause::kStaleSequence: return "stale_sequence";
    case DropCause::kCorruptControl: return "corrupt_control";
  }
  return "unknown";
}

const char* to_string(TimerId t) noexcept {
  switch (t) {
    case TimerId::kCheckpointTimer: return "checkpoint_timer";
    case TimerId::kFailureTimer: return "failure_timer";
    case TimerId::kCheckpointCadence: return "checkpoint_cadence";
    case TimerId::kResyncTimer: return "resync_timer";
    case TimerId::kSelfAuditCadence: return "self_audit_cadence";
    case TimerId::kWatchdogTimer: return "watchdog_timer";
  }
  return "unknown";
}

const char* to_string(SenderMode m) noexcept {
  switch (m) {
    case SenderMode::kNormal: return "normal";
    case SenderMode::kEnforcedRecovery: return "enforced_recovery";
    case SenderMode::kFailed: return "failed";
    case SenderMode::kResyncing: return "resyncing";
  }
  return "unknown";
}

const char* to_string(RecoveryReason r) noexcept {
  switch (r) {
    case RecoveryReason::kCheckpointSilence: return "checkpoint_silence";
    case RecoveryReason::kNakGapAmbiguity: return "nak_gap_ambiguity";
    case RecoveryReason::kEnforcedNakResolved: return "enforced_nak_resolved";
    case RecoveryReason::kFailureTimeout: return "failure_timeout";
    case RecoveryReason::kLifetimeExhausted: return "lifetime_exhausted";
    case RecoveryReason::kSelfAuditFailure: return "self_audit_failure";
    case RecoveryReason::kProgressWatchdog: return "progress_watchdog";
    case RecoveryReason::kResyncRequested: return "resync_requested";
    case RecoveryReason::kImplausibleAck: return "implausible_ack";
    case RecoveryReason::kResyncExhausted: return "resync_exhausted";
    case RecoveryReason::kResyncCompleted: return "resync_completed";
  }
  return "unknown";
}

const char* to_string(AuditCheck c) noexcept {
  switch (c) {
    case AuditCheck::kSenderCtrCoherence: return "sender_ctr_coherence";
    case AuditCheck::kSenderWindowBound: return "sender_window_bound";
    case AuditCheck::kSenderCpTracking: return "sender_cp_tracking";
    case AuditCheck::kSenderTimerCoherence: return "sender_timer_coherence";
    case AuditCheck::kSenderPacingStuck: return "sender_pacing_stuck";
    case AuditCheck::kReceiverAnchorCoherence:
      return "receiver_anchor_coherence";
    case AuditCheck::kReceiverSeqCoherence: return "receiver_seq_coherence";
    case AuditCheck::kReceiverNakCoherence: return "receiver_nak_coherence";
    case AuditCheck::kReceiverHistoryOrder: return "receiver_history_order";
    case AuditCheck::kReceiverHuskStall: return "receiver_husk_stall";
    case AuditCheck::kReceiverCadenceStall: return "receiver_cadence_stall";
  }
  return "unknown";
}

const char* to_string(BufferId b) noexcept {
  switch (b) {
    case BufferId::kSendBuffer: return "send_buffer";
    case BufferId::kRecvBuffer: return "recv_buffer";
  }
  return "unknown";
}

std::optional<EventKind> kind_from_string(std::string_view name) noexcept {
  for (std::uint8_t i = 0; i < kEventKindCount; ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::optional<Source> source_from_string(std::string_view name) noexcept {
  for (std::uint8_t i = 0; i < kSourceCount; ++i) {
    const auto s = static_cast<Source>(i);
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

std::string describe(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kFrameSent:
    case EventKind::kFrameReceived:
    case EventKind::kRetransmitQueued: {
      const auto& f = e.p.frame;
      os << (f.control ? "control " : "iframe ") << frame_verb(e.kind)
         << " ctr=" << f.ctr;
      if (!f.control) os << " pkt=" << f.packet_id;
      if (f.attempt > 0) os << " attempt=" << f.attempt;
      break;
    }
    case EventKind::kFrameReleased: {
      const auto& f = e.p.frame;
      os << "iframe released ctr=" << f.ctr << " pkt=" << f.packet_id
         << " held=" << static_cast<double>(f.holding_ps) * 1e-9 << "ms";
      break;
    }
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed: {
      const auto& d = e.p.drop;
      os << (d.control ? "control " : "frame ") << to_string(e.kind) + 6
         << " cause=" << to_string(d.cause);
      if (d.ctr != 0) os << " ctr=" << d.ctr;
      break;
    }
    case EventKind::kCheckpointEmitted:
    case EventKind::kCheckpointProcessed: {
      const auto& cp = e.p.checkpoint;
      os << (e.kind == EventKind::kCheckpointEmitted ? "checkpoint tx seq="
                                                     : "checkpoint rx seq=")
         << cp.cp_seq << " highest=" << cp.highest_seen
         << " naks=" << cp.nak_count;
      if (cp.missed > 0) os << " missed=" << cp.missed;
      if (cp.enforced()) os << " enforced";
      if (cp.stop_go()) os << " stop-go";
      if (cp.resync_req()) os << " resync-req";
      if (cp.nak_count > 0) {
        os << " [";
        for (std::size_t i = 0; i < cp.inline_naks(); ++i) {
          if (i) os << ' ';
          os << cp.naks[i];
        }
        if (cp.nak_count > kMaxInlineNaks) os << " ...";
        os << ']';
      }
      break;
    }
    case EventKind::kNakGenerated:
      os << "nak ctr=" << e.p.nak.ctr;
      break;
    case EventKind::kBufferOccupancy:
      os << to_string(e.p.buffer.which) << " depth=" << e.p.buffer.depth;
      break;
    case EventKind::kTimerArmed:
      os << "timer armed " << to_string(e.p.timer.timer) << " deadline="
         << static_cast<double>(e.p.timer.deadline_ps) * 1e-9 << "ms";
      break;
    case EventKind::kTimerFired:
      os << "timer fired " << to_string(e.p.timer.timer);
      break;
    case EventKind::kRecoveryTransition:
      os << "mode " << to_string(e.p.recovery.from) << " -> "
         << to_string(e.p.recovery.to)
         << " reason=" << to_string(e.p.recovery.reason);
      break;
    case EventKind::kRetransmitMapped:
      os << "renumbered ctr " << e.p.map.old_ctr << " -> " << e.p.map.new_ctr
         << " pkt=" << e.p.map.packet_id << " attempt=" << e.p.map.attempt;
      break;
    case EventKind::kPacketAdmitted:
      os << "packet admitted pkt=" << e.p.frame.packet_id;
      break;
    case EventKind::kPacketDelivered:
      os << "packet delivered pkt=" << e.p.frame.packet_id
         << " ctr=" << e.p.frame.ctr;
      break;
    case EventKind::kMetricSample:
      os << "sample " << (e.p.sample.is_counter ? "counter " : "gauge ")
         << e.p.sample.name_view() << '=' << e.p.sample.value;
      break;
    case EventKind::kSelfAuditFailed:
      os << "self-audit failed " << to_string(e.p.audit.check)
         << " a=" << e.p.audit.a << " b=" << e.p.audit.b;
      break;
    case EventKind::kStateCorrupted:
      os << "state corrupted class=" << static_cast<unsigned>(e.p.corruption.cls)
         << " target=" << (e.p.corruption.target == 0 ? "sender" : "receiver")
         << " a=" << e.p.corruption.a << " b=" << e.p.corruption.b;
      break;
    case EventKind::kResyncInitiated:
      os << "resync initiated token=" << e.p.resync.token
         << " epoch=" << e.p.resync.epoch << " attempt=" << e.p.resync.attempt
         << " reason=" << to_string(e.p.resync.reason);
      break;
    case EventKind::kResyncCompleted:
      os << "resync completed token=" << e.p.resync.token
         << " epoch=" << e.p.resync.epoch << " attempt=" << e.p.resync.attempt;
      break;
  }
  return os.str();
}

std::string to_json(const Event& e) {
  std::ostringstream os;
  os << "{\"t_ps\":" << e.at.ps() << ",\"source\":\"" << to_string(e.source)
     << "\",\"kind\":\"" << to_string(e.kind) << '"';
  switch (e.kind) {
    case EventKind::kFrameSent:
    case EventKind::kFrameReceived:
    case EventKind::kFrameReleased:
    case EventKind::kRetransmitQueued:
    case EventKind::kPacketAdmitted:
    case EventKind::kPacketDelivered: {
      const auto& f = e.p.frame;
      os << ",\"ctr\":" << f.ctr << ",\"packet_id\":" << f.packet_id
         << ",\"attempt\":" << f.attempt
         << ",\"control\":" << (f.control ? "true" : "false")
         << ",\"holding_ps\":" << f.holding_ps;
      break;
    }
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed: {
      const auto& d = e.p.drop;
      os << ",\"cause\":\"" << to_string(d.cause) << "\",\"control\":"
         << (d.control ? "true" : "false") << ",\"ctr\":" << d.ctr;
      break;
    }
    case EventKind::kCheckpointEmitted:
    case EventKind::kCheckpointProcessed: {
      const auto& cp = e.p.checkpoint;
      os << ",\"cp_seq\":" << cp.cp_seq << ",\"highest_seen\":"
         << cp.highest_seen << ",\"missed\":" << cp.missed
         << ",\"nak_count\":" << cp.nak_count
         << ",\"any_seen\":" << (cp.any_seen() ? "true" : "false")
         << ",\"enforced\":" << (cp.enforced() ? "true" : "false")
         << ",\"stop_go\":" << (cp.stop_go() ? "true" : "false")
         << ",\"resync_req\":" << (cp.resync_req() ? "true" : "false")
         << ",\"naks\":[";
      for (std::size_t i = 0; i < cp.inline_naks(); ++i) {
        if (i) os << ',';
        os << cp.naks[i];
      }
      os << ']';
      break;
    }
    case EventKind::kNakGenerated:
      os << ",\"ctr\":" << e.p.nak.ctr;
      break;
    case EventKind::kBufferOccupancy:
      os << ",\"buffer\":\"" << to_string(e.p.buffer.which)
         << "\",\"depth\":" << e.p.buffer.depth;
      break;
    case EventKind::kTimerArmed:
    case EventKind::kTimerFired:
      os << ",\"timer\":\"" << to_string(e.p.timer.timer)
         << "\",\"deadline_ps\":" << e.p.timer.deadline_ps;
      break;
    case EventKind::kRecoveryTransition:
      os << ",\"from\":\"" << to_string(e.p.recovery.from) << "\",\"to\":\""
         << to_string(e.p.recovery.to) << "\",\"reason\":\""
         << to_string(e.p.recovery.reason) << '"';
      break;
    case EventKind::kRetransmitMapped:
      os << ",\"old_ctr\":" << e.p.map.old_ctr << ",\"new_ctr\":"
         << e.p.map.new_ctr << ",\"packet_id\":" << e.p.map.packet_id
         << ",\"attempt\":" << e.p.map.attempt;
      break;
    case EventKind::kMetricSample:
      // Metric names are dot/underscore identifiers; nothing to escape.
      os << ",\"name\":\"" << e.p.sample.name_view() << "\",\"value\":"
         << e.p.sample.value
         << ",\"is_counter\":" << (e.p.sample.is_counter ? "true" : "false");
      break;
    case EventKind::kSelfAuditFailed:
      os << ",\"check\":\"" << to_string(e.p.audit.check)
         << "\",\"a\":" << e.p.audit.a << ",\"b\":" << e.p.audit.b;
      break;
    case EventKind::kStateCorrupted:
      os << ",\"class\":" << static_cast<unsigned>(e.p.corruption.cls)
         << ",\"target\":\""
         << (e.p.corruption.target == 0 ? "sender" : "receiver")
         << "\",\"a\":" << e.p.corruption.a << ",\"b\":" << e.p.corruption.b;
      break;
    case EventKind::kResyncInitiated:
    case EventKind::kResyncCompleted:
      os << ",\"token\":" << e.p.resync.token << ",\"epoch\":"
         << e.p.resync.epoch << ",\"attempt\":" << e.p.resync.attempt
         << ",\"reason\":\"" << to_string(e.p.resync.reason) << '"';
      break;
  }
  os << '}';
  return os.str();
}

}  // namespace lamsdlc::obs
