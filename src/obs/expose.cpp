#include "lamsdlc/obs/expose.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace lamsdlc::obs {
namespace {

bool legal_body_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus sample values: decimal float, `NaN`/`+Inf`/`-Inf` spelled out.
void prom_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(12) << v;
  os << tmp.str();
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  out.append(prefix);
  if (prefix.empty() && !name.empty() && name.front() >= '0' &&
      name.front() <= '9') {
    out.push_back('_');
  }
  for (const char c : name) {
    out.push_back(legal_body_byte(c) ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const Registry& reg,
                      std::string_view prefix) {
  for (const auto& [name, c] : reg.counters()) {
    const std::string pn = prometheus_name(name, prefix) + "_total";
    os << "# TYPE " << pn << " counter\n";
    os << pn << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : reg.gauges()) {
    const std::string pn = prometheus_name(name, prefix);
    os << "# TYPE " << pn << " gauge\n";
    os << pn << ' ';
    prom_number(os, g.value());
    os << '\n';
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string pn = prometheus_name(name, prefix);
    os << "# TYPE " << pn << " summary\n";
    if (h.count() > 0) {
      os << pn << "{quantile=\"0.5\"} ";
      prom_number(os, h.p50());
      os << '\n' << pn << "{quantile=\"0.9\"} ";
      prom_number(os, h.p90());
      os << '\n' << pn << "{quantile=\"0.99\"} ";
      prom_number(os, h.p99());
      os << '\n';
    }
    os << pn << "_sum ";
    prom_number(os, h.count() > 0 ? h.mean() * static_cast<double>(h.count())
                                  : 0.0);
    os << '\n' << pn << "_count " << h.count() << '\n';
  }
}

std::string json_escape(std::string_view s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

}  // namespace lamsdlc::obs
