#include "lamsdlc/obs/collector.hpp"

#include <iterator>
#include <string>

namespace lamsdlc::obs {
namespace {

/// "link.forward" / "link.reverse" / "lams.sender" / ... — the source name
/// doubles as the metric prefix, so link metrics split by direction.
std::string prefix(Source s) { return to_string(s); }

const char* drop_counter_suffix(DropCause c) noexcept {
  switch (c) {
    case DropCause::kWireCorruption: return "wire_corrupted";
    case DropCause::kFaultDrop: return "fault_dropped";
    case DropCause::kFaultTruncation: return "fault_truncated";
    case DropCause::kFaultJitter: return "fault_delayed";
    case DropCause::kFaultDuplicate: return "fault_duplicated";
    case DropCause::kLinkDown: return "down_dropped";
    case DropCause::kNoSink: return "no_sink_dropped";
    case DropCause::kCongestion: return "congestion_discards";
    case DropCause::kStaleSequence: return "duplicates_suppressed";
    case DropCause::kCorruptControl: return "corrupt_control_discards";
  }
  return "dropped";
}

}  // namespace

MetricsCollector::MetricsCollector(EventBus& bus, Registry& registry)
    : bus_{bus}, registry_{registry} {
  sub_ = bus_.subscribe([this](const Event& e) { on_event(e); });
}

MetricsCollector::~MetricsCollector() { bus_.unsubscribe(sub_); }

void MetricsCollector::on_event(const Event& e) {
  const std::string pre = prefix(e.source);
  switch (e.kind) {
    case EventKind::kFrameSent:
      if (e.p.frame.control) {
        registry_.counter(pre + ".control_tx").add();
      } else {
        registry_.counter(pre + ".iframe_tx").add();
        if (e.p.frame.attempt > 1) {
          registry_.counter(pre + ".iframe_retx").add();
        }
      }
      break;
    case EventKind::kFrameReceived:
      registry_.counter(pre + (e.p.frame.control ? ".control_rx" : ".iframe_rx"))
          .add();
      break;
    case EventKind::kFrameReleased:
      registry_.counter(pre + ".frames_released").add();
      registry_.histogram(pre + ".holding_time_ms")
          .observe(static_cast<double>(e.p.frame.holding_ps) * 1e-9);
      break;
    case EventKind::kRetransmitQueued:
      registry_.counter(pre + ".retransmits_queued").add();
      break;
    case EventKind::kFrameCorrupted:
    case EventKind::kFrameDropped:
    case EventKind::kFrameDuplicated:
    case EventKind::kFrameDelayed:
      registry_.counter(pre + '.' + drop_counter_suffix(e.p.drop.cause)).add();
      break;
    case EventKind::kCheckpointEmitted:
      registry_.counter(pre + ".checkpoints_emitted").add();
      if (e.p.checkpoint.enforced()) {
        registry_.counter(pre + ".enforced_naks_emitted").add();
      }
      cp_emitted_[e.p.checkpoint.cp_seq] = e.at;
      break;
    case EventKind::kCheckpointProcessed: {
      registry_.counter(pre + ".checkpoints_processed").add();
      if (e.p.checkpoint.missed > 0) {
        registry_.counter(pre + ".checkpoints_missed")
            .add(e.p.checkpoint.missed);
      }
      const auto it = cp_emitted_.find(e.p.checkpoint.cp_seq);
      if (it != cp_emitted_.end()) {
        registry_.histogram(pre + ".checkpoint_rtt_ms")
            .observe((e.at - it->second).ms());
        // Lost checkpoints with lower seq can never be processed now.
        cp_emitted_.erase(cp_emitted_.begin(), std::next(it));
      }
      break;
    }
    case EventKind::kNakGenerated:
      registry_.counter(pre + ".naks_generated").add();
      break;
    case EventKind::kBufferOccupancy: {
      const char* which = to_string(e.p.buffer.which);
      registry_.gauge(pre + '.' + which + "_depth")
          .set(e.p.buffer.depth);
      registry_.histogram(pre + '.' + which + "_depth_hist")
          .observe(e.p.buffer.depth);
      break;
    }
    case EventKind::kTimerArmed:
      registry_
          .counter(pre + ".timer_armed." + to_string(e.p.timer.timer))
          .add();
      break;
    case EventKind::kTimerFired:
      registry_
          .counter(pre + ".timer_fired." + to_string(e.p.timer.timer))
          .add();
      break;
    case EventKind::kRecoveryTransition:
      registry_
          .counter(pre + ".recovery." + to_string(e.p.recovery.reason))
          .add();
      if (e.p.recovery.to == SenderMode::kEnforcedRecovery) {
        registry_.counter(pre + ".enforced_recoveries").add();
      }
      if (e.p.recovery.to == SenderMode::kFailed) {
        registry_.counter(pre + ".failures").add();
      }
      break;
    case EventKind::kRetransmitMapped:
      registry_.counter(pre + ".retransmits_mapped").add();
      break;
    case EventKind::kPacketAdmitted:
      registry_.counter(pre + ".packets_admitted").add();
      break;
    case EventKind::kPacketDelivered:
      registry_.counter(pre + ".packets_delivered").add();
      break;
    case EventKind::kMetricSample:
      // Sampler snapshots are *of* this registry; folding them back in would
      // feed the metrics surface its own output.  Capture/timeline consumers
      // read them directly.
      break;
    case EventKind::kSelfAuditFailed:
      registry_.counter(pre + ".self_audit_failed").add();
      registry_.counter(pre + ".self_audit." + to_string(e.p.audit.check))
          .add();
      break;
    case EventKind::kStateCorrupted:
      registry_.counter("verif.state_corruptions").add();
      break;
    case EventKind::kResyncInitiated:
      registry_.counter(pre + ".resyncs_initiated").add();
      resync_started_[e.p.resync.token] = e.at;
      break;
    case EventKind::kResyncCompleted: {
      registry_.counter(pre + ".resyncs_completed").add();
      // Recovery time spans the sender's whole episode: resync initiation to
      // acknowledged re-anchor.  Only the sender-side completion closes it
      // (the receiver emits its own kResyncCompleted when it applies).
      const auto it = resync_started_.find(e.p.resync.token);
      if (it != resync_started_.end() && e.source == Source::kLamsSender) {
        registry_.histogram("recovery.time_ms").observe((e.at - it->second).ms());
        resync_started_.erase(it);
      }
      break;
    }
  }
}

}  // namespace lamsdlc::obs
