#include "lamsdlc/obs/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace lamsdlc::obs {
namespace {

/// Metric names are identifier-ish by convention, but escape anyway so the
/// exporters can never emit invalid JSON.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(12) << v;
  os << tmp.str();
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    json_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ":{\"count\":" << h.count() << ",\"min\":";
    json_number(os, h.min());
    os << ",\"mean\":";
    json_number(os, h.mean());
    os << ",\"p50\":";
    json_number(os, h.p50());
    os << ",\"p90\":";
    json_number(os, h.p90());
    os << ",\"p99\":";
    json_number(os, h.p99());
    os << ",\"max\":";
    json_number(os, h.max());
    os << '}';
  }
  os << "}}";
}

void Registry::write_csv(std::ostream& os) const {
  os << "type,name,value,count,min,mean,p50,p90,p99,max\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ',' << c.value() << ",,,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ',' << g.value() << ",,,,,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",," << h.count() << ',' << h.min() << ','
       << h.mean() << ',' << h.p50() << ',' << h.p90() << ',' << h.p99()
       << ',' << h.max() << '\n';
  }
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace lamsdlc::obs
