#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::workload {

void submit_batch(Simulator& sim, sim::DlcSender& dlc, DeliveryTracker& tracker,
                  PacketIdAllocator& ids, std::uint64_t count,
                  std::uint32_t bytes, Time at) {
  sim.schedule_at(at, [&sim, &dlc, &tracker, &ids, count, bytes] {
    for (std::uint64_t i = 0; i < count; ++i) {
      sim::Packet p;
      p.id = ids.next();
      p.bytes = bytes;
      p.created_at = sim.now();
      tracker.note_submitted(p);
      dlc.submit(p);
    }
  });
}

RateSource::RateSource(Simulator& sim, sim::DlcSender& dlc,
                       DeliveryTracker& tracker, PacketIdAllocator& ids,
                       Config cfg)
    : sim_{sim}, dlc_{dlc}, tracker_{tracker}, ids_{ids}, cfg_{cfg} {}

void RateSource::start() {
  if (running_) return;
  running_ = true;
  timer_ = sim_.schedule_at(std::max(cfg_.start, sim_.now()), [this] { tick(); });
}

void RateSource::stop() {
  running_ = false;
  sim_.cancel(timer_);
  timer_ = 0;
}

void RateSource::tick() {
  if (!running_) return;
  if (cfg_.count != 0 && generated_ >= cfg_.count) {
    running_ = false;
    return;
  }
  if (!cfg_.respect_backpressure || dlc_.accepting()) {
    sim::Packet p;
    p.id = ids_.next();
    p.bytes = cfg_.bytes;
    p.created_at = sim_.now();
    tracker_.note_submitted(p);
    ++generated_;
    dlc_.submit(p);
  } else {
    ++shed_;
  }
  timer_ = sim_.schedule_in(cfg_.interarrival, [this] { tick(); });
}

PoissonSource::PoissonSource(Simulator& sim, sim::DlcSender& dlc,
                             DeliveryTracker& tracker, PacketIdAllocator& ids,
                             Config cfg, RandomStream rng)
    : sim_{sim},
      dlc_{dlc},
      tracker_{tracker},
      ids_{ids},
      cfg_{cfg},
      rng_{std::move(rng)} {}

void PoissonSource::start() {
  if (running_) return;
  running_ = true;
  timer_ = sim_.schedule_at(std::max(cfg_.start, sim_.now()), [this] { tick(); });
}

void PoissonSource::stop() {
  running_ = false;
  sim_.cancel(timer_);
  timer_ = 0;
}

void PoissonSource::tick() {
  if (!running_) return;
  if (cfg_.count != 0 && generated_ >= cfg_.count) {
    running_ = false;
    return;
  }
  sim::Packet p;
  p.id = ids_.next();
  p.bytes = cfg_.bytes;
  p.created_at = sim_.now();
  tracker_.note_submitted(p);
  ++generated_;
  dlc_.submit(p);
  const double gap_s = rng_.exponential(1.0 / cfg_.rate_pps);
  timer_ = sim_.schedule_in(Time::seconds(gap_s), [this] { tick(); });
}

}  // namespace lamsdlc::workload
