#include "lamsdlc/workload/message.hpp"

namespace lamsdlc::workload {

std::uint64_t MessageSource::send_message(std::uint32_t segments,
                                          std::uint32_t bytes) {
  const std::uint64_t mid = ++next_message_;
  for (std::uint32_t i = 0; i < segments; ++i) {
    sim::Packet p;
    p.id = ids_.next();
    p.bytes = bytes;
    p.created_at = sim_.now();
    p.message_id = mid;
    p.msg_index = i;
    p.msg_count = segments;
    registry_.record(p);
    tracker_.note_submitted(p);
    dlc_.submit(p);
  }
  return mid;
}

void Resequencer::on_packet(const sim::Packet& p, Time at) {
  if (chain_) chain_->on_packet(p, at);
  const MessageRegistry::Coord* c = registry_.find(p.id);
  if (c == nullptr) return;  // not message traffic
  if (done_.contains(c->message_id)) {
    ++dup_packets_;  // message already released; late duplicate
    return;
  }
  Assembly& a = open_[c->message_id];
  a.count = c->count;
  if (!a.have.insert(c->index).second) {
    ++dup_packets_;
    return;
  }
  ++pending_packets_;
  if (a.have.size() == a.count) {
    pending_packets_ -= a.count;
    open_.erase(c->message_id);
    done_.insert(c->message_id);
    ++completed_;
    if (on_message_) on_message_(c->message_id, at);
  }
}

}  // namespace lamsdlc::workload
