#include "lamsdlc/link/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "lamsdlc/frame/codec.hpp"

namespace lamsdlc::link {
namespace {

/// Wire sequence of a frame, for event payloads (0 for unnumbered frames).
std::uint64_t wire_ctr(const frame::Frame& f) noexcept {
  if (const auto* in = std::get_if<frame::IFrame>(&f.body)) return in->seq;
  if (const auto* hin = std::get_if<frame::HdlcIFrame>(&f.body)) return hin->ns;
  return 0;
}

}  // namespace

void SimplexChannel::emit_fate(obs::EventKind kind, obs::DropCause cause,
                               const frame::Frame& f) {
  if (bus_ == nullptr || !bus_->enabled()) return;
  obs::Event e;
  e.at = sim_.now();
  e.source = src_;
  e.kind = kind;
  e.p.drop = {cause, static_cast<std::uint8_t>(f.is_control() ? 1 : 0),
              wire_ctr(f)};
  bus_->emit(e);
}

SimplexChannel::SimplexChannel(Simulator& sim, Config cfg,
                               std::unique_ptr<phy::ErrorModel> error_model)
    : sim_{sim},
      cfg_{std::move(cfg)},
      error_{std::move(error_model)},
      flip_rng_{cfg_.byte_level_seed, "link.bitflip"} {
  if (cfg_.iframe_fec) iframe_codec_.emplace(*cfg_.iframe_fec);
  if (cfg_.control_fec) control_codec_.emplace(*cfg_.control_fec);
}

frame::Frame SimplexChannel::through_codec(frame::Frame f, bool corrupt) {
  frame::encode_into(f, wire_buf_);
  if (corrupt) {
    // One or more real bit flips (a short geometric tail mimics a small
    // error cluster inside the frame).
    const auto flips = 1 + flip_rng_.geometric(0.5);
    for (std::int64_t i = 0; i < flips; ++i) {
      const auto at = static_cast<std::size_t>(flip_rng_.uniform_int(
          0, static_cast<std::int64_t>(wire_buf_.size()) - 1));
      wire_buf_[at] ^=
          static_cast<std::uint8_t>(1u << flip_rng_.uniform_int(0, 7));
    }
  }
  frame::DecodeReject why = frame::DecodeReject::kNone;
  auto decoded = frame::decode(wire_buf_, cfg_.decode_limits, &why);
  if (!decoded.has_value()) {
    decode_rejects_.count(why);
    // The FCS caught the damage (the expected outcome for corrupt frames):
    // deliver the unreadable husk — the original, moved through, marked.
    if (!corrupt) ++codec_mismatches_;  // clean frame failed decode: a bug
    f.corrupted = true;
    return f;
  }
  if (corrupt) {
    // Flips survived the CRC check: aliasing (~2^-16 per damaged frame).
    // Surface it and fail safe by still marking the frame corrupted, which
    // preserves link-model assumption 9 for the protocols above.
    ++codec_aliases_;
    decoded->corrupted = true;
    return *std::move(decoded);
  }
  // Clean round trip: restore the simulation-side identity the codec
  // intentionally keeps off the wire, and verify the wire fields survived.
  if (auto* in = std::get_if<frame::IFrame>(&decoded->body)) {
    const auto* oin = std::get_if<frame::IFrame>(&f.body);
    if (oin != nullptr && in->seq == oin->seq &&
        in->payload_bytes == oin->payload_bytes) {
      in->packet_id = oin->packet_id;
    } else {
      ++codec_mismatches_;
    }
  } else if (auto* hin = std::get_if<frame::HdlcIFrame>(&decoded->body)) {
    const auto* oin = std::get_if<frame::HdlcIFrame>(&f.body);
    if (oin != nullptr && hin->ns == oin->ns && hin->poll == oin->poll) {
      hin->packet_id = oin->packet_id;
    } else {
      ++codec_mismatches_;
    }
  }
  return *std::move(decoded);
}

std::size_t SimplexChannel::coded_bits(const frame::Frame& f) const noexcept {
  const std::size_t raw = frame::wire_bits(f);
  if (f.is_control()) {
    return control_codec_ ? control_codec_->coded_bits(raw) : raw;
  }
  return iframe_codec_ ? iframe_codec_->coded_bits(raw) : raw;
}

Time SimplexChannel::tx_time(const frame::Frame& f) const noexcept {
  const double bits = static_cast<double>(coded_bits(f));
  return Time::seconds(bits / cfg_.data_rate_bps);
}

Time SimplexChannel::busy_until() const noexcept {
  return transmitting_ ? tx_done_ : sim_.now();
}

bool SimplexChannel::busy() const noexcept {
  return transmitting_ || !queue_.empty();
}

void SimplexChannel::send(frame::Frame f) {
  if (!up_) {
    ++frames_dropped_;
    emit_fate(obs::EventKind::kFrameDropped, obs::DropCause::kLinkDown, f);
    return;
  }
  queue_.push_back(std::move(f));
  if (!transmitting_) start_next();
}

void SimplexChannel::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (up_) {
    // Restored: tell the sender the transmitter is available again.
    if (idle_cb_) idle_cb_();
    return;
  }
  {
    frames_dropped_ += queue_.size();
    for (const auto& q : queue_) {
      emit_fate(obs::EventKind::kFrameDropped, obs::DropCause::kLinkDown, q);
    }
    queue_.clear();
    // A frame mid-serialization is lost too; its completion event still
    // fires but finds the link down and discards the frame (handled in
    // start_next's completion lambda via the epoch check).
    ++down_epoch_;
    transmitting_ = false;
  }
}

void SimplexChannel::start_next() {
  if (queue_.empty() || !up_) {
    if (idle_cb_ && up_) idle_cb_();
    return;
  }
  frame::Frame f = std::move(queue_.front());
  queue_.pop_front();
  const Time start = sim_.now();
  const std::size_t bits = coded_bits(f);
  const Time dur = tx_time(f);
  const Time end = start + dur;
  transmitting_ = true;
  tx_done_ = end;
  ++frames_sent_;
  bits_sent_ += bits;

  // The error process models the *post-FEC residual* channel (the paper
  // folds the codec into the medium, assumption 5), so it sees information
  // bits; the FEC expansion affects only serialization time above.
  phy::ErrorModel* model =
      (f.is_control() && control_error_) ? control_error_.get() : error_.get();
  phy::FrameFate fate;
  fate.corrupt =
      model != nullptr && model->corrupts(start, end, frame::wire_bits(f));
  for (auto& stage : faults_) {
    fate.combine(stage->fate(f.is_control(), start, end, frame::wire_bits(f)));
  }
  if (fate.corrupt) {
    ++frames_corrupted_;
    emit_fate(obs::EventKind::kFrameCorrupted, obs::DropCause::kWireCorruption,
              f);
  }
  if (cfg_.byte_level) {
    f = through_codec(std::move(f), fate.corrupt);
  } else if (fate.corrupt) {
    f.corrupted = true;
  }
  if (fate.truncate) {
    // Header damage: whatever survived the codec is an unreadable husk.
    ++frames_truncated_;
    emit_fate(obs::EventKind::kFrameCorrupted, obs::DropCause::kFaultTruncation,
              f);
    f.corrupted = true;
  }

  const Time prop = cfg_.propagation(start);
  const std::uint64_t epoch = down_epoch_;

  // Serialization completes: free the transmitter, start the next frame.
  sim_.schedule_at(end, [this, epoch] {
    if (epoch != down_epoch_) return;  // link went down meanwhile
    transmitting_ = false;
    start_next();
  });

  if (fate.drop) {
    // Silent omission: the frame occupied the serializer but nothing ever
    // reaches the far end — the pure-loss channel of the self-stabilizing
    // ARQ literature, stronger than the paper's detectable-error model.
    ++frames_fault_dropped_;
    emit_fate(obs::EventKind::kFrameDropped, obs::DropCause::kFaultDrop, f);
    return;
  }

  // Head of the frame left at `start`; the tail (and hence the deliverable
  // frame) arrives at end + prop, plus any fault-stage jitter.  A delayed
  // frame can land after later-sent ones: the channel is no longer FIFO.
  const Time arrival = end + prop + fate.delay;
  if (!fate.delay.is_zero()) {
    ++frames_delayed_;
    emit_fate(obs::EventKind::kFrameDelayed, obs::DropCause::kFaultJitter, f);
  }
  // Parallel-driver handoff: the fate is fully decided, so the finished
  // (frame, arrival, epoch) triple can leave this kernel entirely.  The
  // duplicates precede the original, matching the transit-queue push order
  // below.
  if (egress_) {
    for (std::uint32_t i = 0; i < fate.duplicates; ++i) {
      ++frames_duplicated_;
      emit_fate(obs::EventKind::kFrameDuplicated,
                obs::DropCause::kFaultDuplicate, f);
      egress_(arrival, epoch, frame::Frame{f});
    }
    egress_(arrival, epoch, std::move(f));
    return;
  }
  // Frames in flight park in the slot pool; the scheduled callback carries
  // only the slot index, so it fits the simulator's inline storage and the
  // steady-state path allocates nothing.
  for (std::uint32_t i = 0; i < fate.duplicates; ++i) {
    ++frames_duplicated_;
    emit_fate(obs::EventKind::kFrameDuplicated, obs::DropCause::kFaultDuplicate,
              f);
    const std::uint32_t dup = stash_inflight(frame::Frame{f});
    if (cfg_.batched_delivery) {
      push_transit(arrival, epoch, dup);
    } else {
      sim_.schedule_at(arrival,
                       [this, epoch, dup] { deliver_inflight(epoch, dup); });
    }
  }
  const std::uint32_t slot = stash_inflight(std::move(f));
  if (cfg_.batched_delivery) {
    push_transit(arrival, epoch, slot);
  } else {
    sim_.schedule_at(arrival,
                     [this, epoch, slot] { deliver_inflight(epoch, slot); });
  }
}

void SimplexChannel::push_transit(Time arrival, std::uint64_t epoch,
                                  std::uint32_t slot) {
  if (transit_.empty() || !(arrival < transit_.back().arrival)) {
    transit_.push_back(Transit{arrival, epoch, slot});
  } else {
    // Out-of-order arrival (fault jitter, or propagation shrinking faster
    // than the serializer advances).  Insert after every entry arriving at
    // or before the same instant, preserving FIFO among equal arrivals.
    const auto pos = std::upper_bound(
        transit_.begin(), transit_.end(), arrival,
        [](Time a, const Transit& t) { return a < t.arrival; });
    transit_.insert(pos, Transit{arrival, epoch, slot});
  }
  arm_sweep();
}

void SimplexChannel::arm_sweep() {
  if (transit_.empty()) return;
  const Time head = transit_.front().arrival;
  if (sweep_armed_) {
    if (!(head < sweep_at_)) return;
    sim_.cancel(sweep_event_);
  }
  sweep_at_ = head;
  sweep_armed_ = true;
  sweep_event_ = sim_.schedule_at(head, [this] { sweep_transit(); });
}

void SimplexChannel::sweep_transit() {
  sweep_armed_ = false;
  const Time now = sim_.now();
  while (!transit_.empty() && !(now < transit_.front().arrival)) {
    const Transit t = transit_.front();
    transit_.pop_front();
    // Delivery can synchronously send on this channel (relays, piggybacked
    // responses) and re-enter push_transit; popping first keeps the queue
    // consistent, and arm_sweep below coalesces with any re-entrant arm.
    deliver_inflight(t.epoch, t.slot);
  }
  arm_sweep();
}

std::uint32_t SimplexChannel::stash_inflight(frame::Frame f) {
  if (inflight_free_.empty()) {
    inflight_.push_back(std::move(f));
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  const std::uint32_t slot = inflight_free_.back();
  inflight_free_.pop_back();
  inflight_[slot] = std::move(f);
  return slot;
}

frame::Frame SimplexChannel::take_inflight(std::uint32_t slot) {
  frame::Frame f = std::move(inflight_[slot]);
  inflight_free_.push_back(slot);
  return f;
}

void SimplexChannel::deliver_inflight(std::uint64_t epoch, std::uint32_t slot) {
  frame::Frame f = take_inflight(slot);
  if (epoch != down_epoch_) {
    ++frames_dropped_;  // photons in flight when pointing was lost
    emit_fate(obs::EventKind::kFrameDropped, obs::DropCause::kLinkDown, f);
    return;
  }
  if (sink_) {
    sink_->on_frame(std::move(f));
  } else {
    ++frames_dropped_;
    emit_fate(obs::EventKind::kFrameDropped, obs::DropCause::kNoSink, f);
  }
}

void ChannelIngress::emit_drop(obs::DropCause cause, const frame::Frame& f) {
  if (bus_ == nullptr || !bus_->enabled()) return;
  obs::Event e;
  e.at = sim_.now();
  e.source = src_;
  e.kind = obs::EventKind::kFrameDropped;
  e.p.drop = {cause, static_cast<std::uint8_t>(f.is_control() ? 1 : 0),
              wire_ctr(f)};
  bus_->emit(e);
}

void ChannelIngress::push(Time arrival, std::uint64_t epoch, frame::Frame f) {
  if (arrival < sim_.now()) {
    // The window lookahead bound (min link propagation) was violated: this
    // frame's delivery instant is already in the receiver's past.  Fail loud
    // — a silent mis-ordering here would diverge from the serial run in ways
    // that surface only as wrong protocol behaviour much later.
    throw std::logic_error(
        "ChannelIngress::push: arrival before local clock (lookahead bound "
        "violated)");
  }
  if (transit_.empty() || !(arrival < transit_.back().arrival)) {
    transit_.push_back(Transit{arrival, epoch, std::move(f)});
  } else {
    // Same discipline as SimplexChannel::push_transit: insert after every
    // entry arriving at or before the same instant, preserving FIFO among
    // equal arrivals.
    const auto pos = std::upper_bound(
        transit_.begin(), transit_.end(), arrival,
        [](Time a, const Transit& t) { return a < t.arrival; });
    transit_.insert(pos, Transit{arrival, epoch, std::move(f)});
  }
  arm_sweep();
}

void ChannelIngress::arm_sweep() {
  if (transit_.empty()) return;
  const Time head = transit_.front().arrival;
  if (sweep_armed_) {
    if (!(head < sweep_at_)) return;
    sim_.cancel(sweep_event_);
  }
  sweep_at_ = head;
  sweep_armed_ = true;
  sweep_event_ = sim_.schedule_at(head, sweep_priority_, [this] { sweep(); });
}

void ChannelIngress::sweep() {
  sweep_armed_ = false;
  const Time now = sim_.now();
  while (!transit_.empty() && !(now < transit_.front().arrival)) {
    Transit t = std::move(transit_.front());
    transit_.pop_front();
    if (t.epoch != epoch_) {
      ++frames_dropped_;  // photons in flight when pointing was lost
      emit_drop(obs::DropCause::kLinkDown, t.f);
      continue;
    }
    if (sink_ == nullptr) {
      ++frames_dropped_;
      emit_drop(obs::DropCause::kNoSink, t.f);
      continue;
    }
    ++frames_delivered_;
    // Delivery can synchronously send (and re-enter push for a local
    // channel); the pop above keeps the queue consistent, and arm_sweep
    // below coalesces with any re-entrant arm.
    sink_->on_frame(std::move(t.f));
  }
  arm_sweep();
}

}  // namespace lamsdlc::link
