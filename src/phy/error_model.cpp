#include "lamsdlc/phy/error_model.hpp"

#include <algorithm>
#include <cmath>

namespace lamsdlc::phy {

double frame_error_probability(double ber, std::size_t bits) noexcept {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // 1 - (1-ber)^bits, computed stably via expm1/log1p.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

GilbertElliottModel::GilbertElliottModel(Params p, RandomStream rng)
    : p_{p}, rng_{std::move(rng)} {
  // Start in the stationary distribution so short runs are unbiased.
  in_bad_ = rng_.bernoulli(bad_fraction());
  const Time mean = in_bad_ ? p_.mean_bad : p_.mean_good;
  state_until_ = Time::seconds(rng_.exponential(mean.sec()));
}

double GilbertElliottModel::bad_fraction() const noexcept {
  const double g = p_.mean_good.sec();
  const double b = p_.mean_bad.sec();
  return b / (g + b);
}

void GilbertElliottModel::advance_to(Time t) {
  while (state_until_ <= t) {
    in_bad_ = !in_bad_;
    const Time mean = in_bad_ ? p_.mean_bad : p_.mean_good;
    state_until_ += Time::seconds(rng_.exponential(mean.sec()));
  }
}

bool GilbertElliottModel::corrupts(Time start, Time end, std::size_t bits) {
  advance_to(start);
  // Walk the state segments overlapping [start, end), apportioning bits to
  // each segment by duration, and survive each segment independently.
  const double total = (end - start).sec();
  if (total <= 0.0 || bits == 0) {
    return rng_.bernoulli(
        frame_error_probability(in_bad_ ? p_.bad_ber : p_.good_ber, bits));
  }
  double log_survive = 0.0;
  Time cursor = start;
  while (cursor < end) {
    const Time seg_end = state_until_ < end ? state_until_ : end;
    const double frac = (seg_end - cursor).sec() / total;
    const double seg_bits = frac * static_cast<double>(bits);
    const double ber = in_bad_ ? p_.bad_ber : p_.good_ber;
    if (ber >= 1.0) return true;
    log_survive += seg_bits * std::log1p(-ber);
    cursor = seg_end;
    if (cursor < end) advance_to(cursor);
  }
  const double p_err = -std::expm1(log_survive);
  return rng_.bernoulli(p_err);
}

ScriptedOutageModel::ScriptedOutageModel(std::vector<Outage> outages,
                                         std::unique_ptr<ErrorModel> base)
    : outages_{std::move(outages)}, base_{std::move(base)} {
  // Normalize: a window with to <= from covers nothing; the rest sort by
  // start so overlapping or touching windows merge into one.
  std::erase_if(outages_, [](const Outage& o) { return o.to <= o.from; });
  std::sort(outages_.begin(), outages_.end(),
            [](const Outage& a, const Outage& b) { return a.from < b.from; });
  std::size_t kept = 0;
  for (std::size_t i = 1; i < outages_.size(); ++i) {
    if (outages_[i].from <= outages_[kept].to) {
      outages_[kept].to = std::max(outages_[kept].to, outages_[i].to);
    } else {
      outages_[++kept] = outages_[i];
    }
  }
  if (!outages_.empty()) outages_.resize(kept + 1);
}

bool ScriptedOutageModel::corrupts(Time start, Time end, std::size_t bits) {
  for (const Outage& o : outages_) {
    if (o.from >= end) break;  // sorted: no later window can overlap
    if (start < o.to) return true;
  }
  return base_ ? base_->corrupts(start, end, bits) : false;
}

}  // namespace lamsdlc::phy
