#include "lamsdlc/phy/fec.hpp"

#include <cmath>
#include <stdexcept>

namespace lamsdlc::phy {
namespace {

/// log of binomial coefficient via lgamma, stable for n up to thousands.
double log_choose(std::size_t n, std::size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

FecCodec::FecCodec(FecParams p) : p_{p} {
  if (p_.k == 0 || p_.n < p_.k || p_.symbol_bits == 0) {
    throw std::invalid_argument("FecCodec: require 0 < k <= n, symbol_bits > 0");
  }
  if (p_.t > (p_.n - p_.k) / 2) {
    throw std::invalid_argument("FecCodec: t exceeds (n-k)/2 correction bound");
  }
}

double FecCodec::rate() const noexcept {
  return static_cast<double>(p_.k) / static_cast<double>(p_.n);
}

std::size_t FecCodec::coded_bits(std::size_t payload_bits) const noexcept {
  const std::size_t data_bits_per_cw = p_.k * p_.symbol_bits;
  const std::size_t codewords = (payload_bits + data_bits_per_cw - 1) / data_bits_per_cw;
  return codewords == 0 ? 0 : codewords * p_.n * p_.symbol_bits;
}

double FecCodec::symbol_error_prob(double ber) const noexcept {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  return -std::expm1(static_cast<double>(p_.symbol_bits) * std::log1p(-ber));
}

double FecCodec::codeword_error_prob(double ber) const noexcept {
  const double ps = symbol_error_prob(ber);
  if (ps <= 0.0) return 0.0;
  if (ps >= 1.0) return 1.0;
  // P[more than t of n symbols in error] = sum_{i=t+1..n} C(n,i) ps^i (1-ps)^(n-i)
  // Summed in log space from the largest term down; terms below 1e-300 of the
  // running sum are negligible.
  double sum = 0.0;
  const double log_ps = std::log(ps);
  const double log_qs = std::log1p(-ps);
  for (std::size_t i = p_.t + 1; i <= p_.n; ++i) {
    const double log_term = log_choose(p_.n, i) +
                            static_cast<double>(i) * log_ps +
                            static_cast<double>(p_.n - i) * log_qs;
    sum += std::exp(log_term);
  }
  return sum > 1.0 ? 1.0 : sum;
}

double FecCodec::frame_error_prob(double ber, std::size_t payload_bits) const noexcept {
  const double pcw = codeword_error_prob(ber);
  if (pcw <= 0.0) return 0.0;
  const std::size_t data_bits_per_cw = p_.k * p_.symbol_bits;
  const std::size_t codewords =
      payload_bits == 0 ? 1 : (payload_bits + data_bits_per_cw - 1) / data_bits_per_cw;
  return -std::expm1(static_cast<double>(codewords) * std::log1p(-pcw));
}

double FecCodec::residual_ber(double ber) const noexcept {
  // When decoding fails (> t symbol errors), roughly (t + average excess)
  // symbols emerge corrupted; the standard approximation charges each data
  // bit with P[codeword error] * (2t+1)/n symbol corruption spread evenly.
  const double pcw = codeword_error_prob(ber);
  const double corrupted_fraction =
      static_cast<double>(2 * p_.t + 1) / static_cast<double>(p_.n);
  return 0.5 * pcw * corrupted_fraction;  // half the bits of a bad symbol flip
}

}  // namespace lamsdlc::phy
