#include "lamsdlc/phy/fault_injector.hpp"

#include <algorithm>
#include <utility>

namespace lamsdlc::phy {

FaultInjector::FaultInjector(Config cfg, RandomStream rng,
                             std::unique_ptr<ErrorModel> base)
    : cfg_{std::move(cfg)}, rng_{std::move(rng)}, base_{std::move(base)} {}

bool FaultInjector::matches_class(bool is_control) const noexcept {
  switch (cfg_.affects) {
    case Affects::kAll:
      return true;
    case Affects::kDataOnly:
      return !is_control;
    case Affects::kControlOnly:
      return is_control;
  }
  return true;
}

bool FaultInjector::active(Time start, Time end) const noexcept {
  if (cfg_.windows.empty()) return true;
  return std::any_of(cfg_.windows.begin(), cfg_.windows.end(),
                     [&](const Window& w) {
                       return start < w.to && w.from < end;
                     });
}

FrameFate FaultInjector::fate(bool is_control, Time start, Time end,
                              std::size_t bits) {
  FrameFate f;
  if (!matches_class(is_control)) return f;
  if (base_ && base_->corrupts(start, end, bits)) f.corrupt = true;
  if (!active(start, end)) {
    corrupted_ += f.corrupt ? 1 : 0;
    return f;
  }
  // Fixed trial order keeps runs reproducible across config tweaks that only
  // change probabilities; a zero probability consumes no randomness.
  if (cfg_.p_corrupt > 0.0 && rng_.bernoulli(cfg_.p_corrupt)) f.corrupt = true;
  if (cfg_.p_drop > 0.0 && rng_.bernoulli(cfg_.p_drop)) f.drop = true;
  if (cfg_.p_truncate > 0.0 && rng_.bernoulli(cfg_.p_truncate)) {
    f.truncate = true;
  }
  if (cfg_.p_duplicate > 0.0 && rng_.bernoulli(cfg_.p_duplicate)) {
    const auto extra = 1 + rng_.geometric(0.5);
    f.duplicates = static_cast<std::uint32_t>(
        std::min<std::int64_t>(extra, cfg_.max_duplicates));
  }
  if (cfg_.p_reorder > 0.0 && rng_.bernoulli(cfg_.p_reorder)) {
    // (0, max_jitter]: a zero delay would not reorder anything.
    const double frac = 1.0 - rng_.uniform();
    f.delay = cfg_.max_jitter * frac;
    if (f.delay.is_zero()) f.delay = Time::picoseconds(1);
  }

  corrupted_ += f.corrupt ? 1 : 0;
  dropped_ += f.drop ? 1 : 0;
  truncated_ += f.truncate ? 1 : 0;
  duplicated_ += f.duplicates > 0 ? 1 : 0;
  reordered_ += f.delay.is_zero() ? 0 : 1;
  return f;
}

}  // namespace lamsdlc::phy
