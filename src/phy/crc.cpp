#include "lamsdlc/phy/crc.hpp"

#include <array>
#include <bit>
#include <cstring>

// True IEEE-polynomial CRC32 instructions exist on ARMv8 (armv8-a+crc); the
// x86 SSE4.2 `crc32` instruction computes CRC-32C (Castagnoli, 0x1EDC6F41)
// and is useless for the 802.3 polynomial without a PCLMULQDQ folding
// kernel, so x86 stays on the slice-by-8 path.
#if defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define LAMSDLC_CRC32_HW 1
#else
#define LAMSDLC_CRC32_HW 0
#endif

namespace lamsdlc::phy {
namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int b = 0; b < 8; ++b) {
      c = static_cast<std::uint16_t>((c & 0x8000u) ? (c << 1) ^ 0x1021u : (c << 1));
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) ? (c >> 1) ^ 0xEDB88320u : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kCrc16Table = make_crc16_table();
constexpr auto kCrc32Table = make_crc32_table();

/// Slice-by-8 (Intel's "slicing-by-8"): table k folds one input byte followed
/// by k zero bytes into the CRC, so eight bytes fold in parallel with eight
/// independent loads per iteration instead of eight dependent table steps.
/// Table 0 is the classic one-byte table; table k advances table k-1 by one
/// zero byte.
constexpr std::array<std::array<std::uint16_t, 256>, 8> make_crc16_slices() {
  std::array<std::array<std::uint16_t, 256>, 8> t{};
  t[0] = make_crc16_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint16_t prev = t[k - 1][i];
      t[k][i] =
          static_cast<std::uint16_t>((prev << 8) ^ t[0][(prev >> 8) & 0xFFu]);
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = make_crc32_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = t[k - 1][i];
      t[k][i] = t[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return t;
}

constexpr auto kCrc16Slices = make_crc16_slices();
constexpr auto kCrc32Slices = make_crc32_slices();

/// The 8-byte inner loops read the input through little-endian 32-bit loads;
/// on a big-endian host the reflected CRC32 mixing below would be wrong, so
/// such hosts keep the (identical-output) bytewise loops.
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

}  // namespace

std::uint16_t crc16_ccitt_bytewise(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFFu;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ byte) & 0xFFu]);
  }
  return crc;
}

std::uint32_t crc32_ieee_bytewise(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = kCrc32Table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  if constexpr (!kLittleEndian) return crc16_ccitt_bytewise(data);
  std::uint16_t crc = 0xFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  const auto& t = kCrc16Slices;
  while (n >= 8) {
    // The 16-bit state covers the first two bytes; the remaining six fold in
    // as pure table lookups with no dependency on the running CRC.
    crc = static_cast<std::uint16_t>(
        t[7][(crc >> 8) ^ p[0]] ^ t[6][(crc ^ p[1]) & 0xFFu] ^ t[5][p[2]] ^
        t[4][p[3]] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]]);
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ *p) & 0xFFu]);
  }
  return crc;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept {
#if LAMSDLC_CRC32_HW
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    crc = __crc32d(crc, v);
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) crc = __crc32b(crc, *p);
  return crc ^ 0xFFFFFFFFu;
#else
  if constexpr (!kLittleEndian) return crc32_ieee_bytewise(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  const auto& t = kCrc32Slices;
  while (n >= 8) {
    std::uint32_t lo;
    std::memcpy(&lo, p, 4);  // unaligned little-endian load
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) {
    crc = kCrc32Table[(crc ^ *p) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
#endif
}

const char* crc_backend() noexcept {
#if LAMSDLC_CRC32_HW
  return "slice-by-8 (crc16) + armv8 crc32 (crc32)";
#else
  return kLittleEndian ? "slice-by-8" : "bytewise (big-endian host)";
#endif
}

}  // namespace lamsdlc::phy
