#include "lamsdlc/phy/crc.hpp"

#include <array>

namespace lamsdlc::phy {
namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int b = 0; b < 8; ++b) {
      c = static_cast<std::uint16_t>((c & 0x8000u) ? (c << 1) ^ 0x1021u : (c << 1));
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) ? (c >> 1) ^ 0xEDB88320u : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kCrc16Table = make_crc16_table();
constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFFu;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ byte) & 0xFFu]);
  }
  return crc;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = kCrc32Table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace lamsdlc::phy
