#include "lamsdlc/lams/inflight.hpp"

#include <algorithm>
#include <utility>

namespace lamsdlc::lams {

std::uint64_t InFlightTable::mix(std::uint64_t x) noexcept {
  // splitmix64 finalizer: full-avalanche, so chaos-warped counters (which
  // can differ only in high bits) still spread across the table.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint32_t InFlightTable::find_pos(std::uint64_t ctr) const noexcept {
  if (index_.empty()) return kNoPos;
  std::size_t s = mix(ctr) & mask_;
  while (index_[s].pos != kNoPos) {
    if (index_[s].ctr == ctr) return index_[s].pos;
    s = (s + 1) & mask_;
  }
  return kNoPos;
}

std::size_t InFlightTable::index_slot(std::uint64_t ctr) const noexcept {
  std::size_t s = mix(ctr) & mask_;
  while (index_[s].pos == kNoPos || index_[s].ctr != ctr) {
    s = (s + 1) & mask_;
  }
  return s;
}

void InFlightTable::index_insert(std::uint64_t ctr, std::uint32_t pos) {
  std::size_t s = mix(ctr) & mask_;
  while (index_[s].pos != kNoPos) s = (s + 1) & mask_;
  index_[s] = IndexSlot{ctr, pos};
}

void InFlightTable::index_erase(std::uint64_t ctr) {
  // Backward-shift deletion keeps probe chains gap-free without tombstones,
  // so lookup cost never degrades over a long claim/release churn.
  std::size_t s = index_slot(ctr);
  std::size_t next = (s + 1) & mask_;
  while (index_[next].pos != kNoPos) {
    const std::size_t home = mix(index_[next].ctr) & mask_;
    // Shift the follower into the hole unless the hole sits before the
    // follower's home slot in cyclic probe order.
    if (((next - home) & mask_) >= ((next - s) & mask_)) {
      index_[s] = index_[next];
      s = next;
    }
    next = (next + 1) & mask_;
  }
  index_[s].pos = kNoPos;
}

void InFlightTable::grow_index() {
  const std::size_t cap = index_.empty() ? 16 : index_.size() * 2;
  index_.assign(cap, IndexSlot{});
  mask_ = cap - 1;
  for (std::uint32_t pos = 0; pos < ctrs_.size(); ++pos) {
    index_insert(ctrs_[pos], pos);
  }
}

void InFlightTable::insert(std::uint64_t ctr, Pending pending,
                           Time expected_arrival) {
  if ((ctrs_.size() + 1) * 2 > index_.size()) grow_index();
  const auto pos = static_cast<std::uint32_t>(ctrs_.size());
  ctrs_.push_back(ctr);
  arrivals_.push_back(expected_arrival);
  pendings_.push_back(std::move(pending));
  index_insert(ctr, pos);
}

Pending* InFlightTable::find(std::uint64_t ctr) noexcept {
  const std::uint32_t pos = find_pos(ctr);
  return pos == kNoPos ? nullptr : &pendings_[pos];
}

const Pending* InFlightTable::find(std::uint64_t ctr) const noexcept {
  const std::uint32_t pos = find_pos(ctr);
  return pos == kNoPos ? nullptr : &pendings_[pos];
}

Time* InFlightTable::arrival(std::uint64_t ctr) noexcept {
  const std::uint32_t pos = find_pos(ctr);
  return pos == kNoPos ? nullptr : &arrivals_[pos];
}

Pending InFlightTable::take(std::uint64_t ctr) {
  const std::uint32_t pos = find_pos(ctr);
  Pending out = std::move(pendings_[pos]);
  index_erase(ctr);
  const auto last = static_cast<std::uint32_t>(ctrs_.size() - 1);
  if (pos != last) {
    // Swap-remove: relocate the tail slot and repoint its index entry.
    ctrs_[pos] = ctrs_[last];
    arrivals_[pos] = arrivals_[last];
    pendings_[pos] = std::move(pendings_[last]);
    index_[index_slot(ctrs_[pos])].pos = pos;
  }
  ctrs_.pop_back();
  arrivals_.pop_back();
  pendings_.pop_back();
  return out;
}

void InFlightTable::clear() {
  ctrs_.clear();
  arrivals_.clear();
  pendings_.clear();
  std::fill(index_.begin(), index_.end(), IndexSlot{});
}

std::vector<std::uint64_t> InFlightTable::sorted_ctrs() const {
  std::vector<std::uint64_t> out = ctrs_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lamsdlc::lams
