#include "lamsdlc/lams/session.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace lamsdlc::lams {

namespace {
const char* state_name(SessionSender::State s) {
  switch (s) {
    case SessionSender::State::kIdle:
      return "idle";
    case SessionSender::State::kInitializing:
      return "initializing";
    case SessionSender::State::kEstablished:
      return "established";
    case SessionSender::State::kDraining:
      return "draining";
    case SessionSender::State::kClosing:
      return "closing";
    case SessionSender::State::kClosed:
      return "closed";
    case SessionSender::State::kFailed:
      return "failed";
  }
  return "?";
}
}  // namespace

// --------------------------------------------------------- SessionSender --

SessionSender::SessionSender(Simulator& sim, link::FrameChannel& data_out,
                             SessionConfig cfg, sim::DlcStats* stats,
                             Tracer tracer, obs::EventBus* bus)
    : sim_{sim},
      out_{data_out},
      cfg_{cfg},
      tracer_{tracer},
      inner_{sim, data_out, cfg.lams, stats, std::move(tracer), bus} {
  inner_.set_failure_callback([this] { on_inner_failed(); });
  // Checkpoint releases shrink the inner buffer: each change is a potential
  // accepting() rising edge for a producer paused on backpressure.
  inner_.set_buffer_change_callback([this] { note_accepting(); });
  was_accepting_ = accepting();
}

SessionSender::~SessionSender() {
  sim_.cancel(handshake_timer_);
  sim_.cancel(drain_timer_);
}

void SessionSender::trace(std::string what) const {
  tracer_.emit(sim_.now(), "lams.session.tx", std::move(what));
}

void SessionSender::enter(State s) {
  state_ = s;
  if (tracer_.enabled()) trace(std::string("state -> ") + state_name(s));
  if (on_state_) on_state_(s);
  note_accepting();  // state gates accepting(); this may be a rising edge
}

void SessionSender::note_accepting() {
  const bool now = accepting();
  const bool was = was_accepting_;
  // Update *before* the callback: a re-entrant submit() that fills the
  // buffer again must see the edge already consumed.
  was_accepting_ = now;
  if (now && !was && on_can_accept_) on_can_accept_();
}

void SessionSender::open() {
  if (state_ == State::kInitializing || state_ == State::kEstablished) return;
  // The inner sender's RESYNC episodes advance its epoch past the one this
  // layer handed out; allocating merely epoch_+1 could then collide with an
  // epoch a RESYNC already used and killed, letting that era's stale
  // checkpoints be misread against the new session's numbering.
  epoch_ = std::max(epoch_, inner_.current_epoch()) + 1;
  retries_ = 0;
  inner_.set_expected_epoch(epoch_);
  enter(State::kInitializing);
  send_handshake(frame::SessionFrame::Kind::kInit);
}

void SessionSender::send_handshake(frame::SessionFrame::Kind kind) {
  frame::Frame f;
  f.body = frame::SessionFrame{kind, epoch_};
  out_.send(std::move(f));
  sim_.cancel(handshake_timer_);
  handshake_timer_ =
      sim_.schedule_in(cfg_.init_retry, [this] { on_handshake_timer(); });
}

void SessionSender::on_handshake_timer() {
  handshake_timer_ = 0;
  if (state_ != State::kInitializing && state_ != State::kClosing) return;
  if (++retries_ > cfg_.max_handshake_retries) {
    trace("handshake retries exhausted");
    enter(State::kFailed);
    return;
  }
  send_handshake(state_ == State::kInitializing
                     ? frame::SessionFrame::Kind::kInit
                     : frame::SessionFrame::Kind::kClose);
}

void SessionSender::submit(sim::Packet p) {
  if (state_ == State::kEstablished) {
    inner_.submit(p);
    return;
  }
  // Buffered traffic waits for the handshake (or the resync).
  pending_.push_back(p);
  if (state_ == State::kIdle) open();
  note_accepting();  // a falling edge re-arms the detector
}

std::size_t SessionSender::sending_buffer_depth() const {
  return pending_.size() + inner_.sending_buffer_depth();
}

bool SessionSender::accepting() const {
  return state_ != State::kFailed && state_ != State::kClosed &&
         state_ != State::kClosing && state_ != State::kDraining &&
         !close_requested_ &&
         sending_buffer_depth() < cfg_.lams.send_buffer_capacity;
}

bool SessionSender::idle() const {
  return pending_.empty() && inner_.idle();
}

void SessionSender::on_frame(frame::Frame f) {
  if (f.corrupted) {
    inner_.on_frame(std::move(f));  // let it count the damage
    return;
  }
  if (const auto* s = std::get_if<frame::SessionFrame>(&f.body)) {
    switch (s->kind) {
      case frame::SessionFrame::Kind::kInitAck:
        if (s->epoch == epoch_ && state_ == State::kInitializing) {
          sim_.cancel(handshake_timer_);
          handshake_timer_ = 0;
          enter(State::kEstablished);
          while (!pending_.empty()) {
            inner_.submit(pending_.front());
            pending_.pop_front();
          }
          if (close_requested_) {
            close_requested_ = false;
            close();
          }
        }
        return;
      case frame::SessionFrame::Kind::kCloseAck:
        if (s->epoch == epoch_ && state_ == State::kClosing) {
          sim_.cancel(handshake_timer_);
          handshake_timer_ = 0;
          enter(State::kClosed);
        }
        return;
      default:
        return;  // INIT/CLOSE are sender-to-receiver only
    }
  }
  // Acknowledgement traffic reaches the inner sender only while a session
  // is (being) established; a late checkpoint after close must not re-arm
  // the silence detector.
  if (state_ == State::kInitializing || state_ == State::kEstablished ||
      state_ == State::kDraining) {
    inner_.on_frame(std::move(f));
  }
}

void SessionSender::close() {
  if (state_ == State::kClosed || state_ == State::kClosing ||
      state_ == State::kFailed) {
    return;
  }
  if (state_ == State::kIdle || state_ == State::kInitializing) {
    // Finish the handshake first so both ends agree on the epoch being
    // closed; the buffered traffic still gets its chance to flow.
    close_requested_ = true;
    return;
  }
  enter(State::kDraining);
  check_drained();
}

void SessionSender::check_drained() {
  if (state_ != State::kDraining) return;
  if (idle()) {
    // Everything resolved: silence the inner machinery (its checkpoint
    // timer would otherwise read the post-close quiet as a link failure)
    // and run the CLOSE exchange.
    inner_.reset_session();
    retries_ = 0;
    enter(State::kClosing);
    send_handshake(frame::SessionFrame::Kind::kClose);
    return;
  }
  drain_timer_ = sim_.schedule_in(cfg_.lams.checkpoint_interval,
                                  [this] { check_drained(); });
}

void SessionSender::on_inner_failed() {
  trace("inner sender declared link failure");
  if (cfg_.auto_resync && resyncs_ < cfg_.max_resyncs) {
    ++resyncs_;
    try_resync();
  } else {
    enter(State::kFailed);
  }
}

void SessionSender::try_resync() {
  // Requeue everything unresolved under a fresh epoch and re-run INIT.
  inner_.reset_session();
  state_ = State::kIdle;
  trace("resynchronizing (attempt " + std::to_string(resyncs_) + ")");
  open();
}

// ------------------------------------------------------- SessionReceiver --

SessionReceiver::SessionReceiver(Simulator& sim,
                                 link::FrameChannel& control_out,
                                 SessionConfig cfg,
                                 sim::PacketListener* listener,
                                 sim::DlcStats* stats, Tracer tracer,
                                 obs::EventBus* bus)
    : sim_{sim},
      out_{control_out},
      tracer_{tracer},
      inner_{sim, control_out, cfg.lams, listener, stats, std::move(tracer),
             bus} {}

void SessionReceiver::trace(std::string what) const {
  tracer_.emit(sim_.now(), "lams.session.rx", std::move(what));
}

void SessionReceiver::reply(frame::SessionFrame::Kind kind,
                            std::uint32_t epoch) {
  frame::Frame f;
  f.body = frame::SessionFrame{kind, epoch};
  out_.send(std::move(f));
}

void SessionReceiver::on_frame(frame::Frame f) {
  if (!f.corrupted) {
    if (const auto* s = std::get_if<frame::SessionFrame>(&f.body)) {
      switch (s->kind) {
        case frame::SessionFrame::Kind::kInit:
          if (s->epoch > epoch_ || (!in_session_ && s->epoch == epoch_)) {
            // New epoch (or re-INIT after close): reset and start fresh.
            epoch_ = s->epoch;
            in_session_ = true;
            ++inits_;
            inner_.reset_session();
            inner_.set_epoch(epoch_);
            inner_.start();
            trace("session epoch " + std::to_string(epoch_) + " initialized");
            if (on_lifecycle_) on_lifecycle_(true, epoch_);
          }
          // Always (re-)acknowledge the current epoch: a duplicate INIT
          // means our previous INIT-ACK was lost.
          if (s->epoch == epoch_) {
            reply(frame::SessionFrame::Kind::kInitAck, epoch_);
          }
          return;
        case frame::SessionFrame::Kind::kClose:
          if (s->epoch == epoch_ && in_session_) {
            in_session_ = false;
            inner_.stop();
            trace("session epoch " + std::to_string(epoch_) + " closed");
            if (on_lifecycle_) on_lifecycle_(false, epoch_);
          }
          reply(frame::SessionFrame::Kind::kCloseAck, s->epoch);
          return;
        default:
          return;  // ACKs are receiver-to-sender only
      }
    }
  }
  if (in_session_) inner_.on_frame(std::move(f));
}

const char* to_string(SessionSender::State s) noexcept {
  switch (s) {
    case SessionSender::State::kIdle: return "idle";
    case SessionSender::State::kInitializing: return "initializing";
    case SessionSender::State::kEstablished: return "established";
    case SessionSender::State::kDraining: return "draining";
    case SessionSender::State::kClosing: return "closing";
    case SessionSender::State::kClosed: return "closed";
    case SessionSender::State::kFailed: return "failed";
  }
  return "?";
}

}  // namespace lamsdlc::lams
