#include "lamsdlc/lams/sender.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace lamsdlc::lams {
namespace {

obs::SenderMode to_obs(LamsSender::Mode m) noexcept {
  switch (m) {
    case LamsSender::Mode::kNormal: return obs::SenderMode::kNormal;
    case LamsSender::Mode::kEnforcedRecovery:
      return obs::SenderMode::kEnforcedRecovery;
    case LamsSender::Mode::kResyncing: return obs::SenderMode::kResyncing;
    case LamsSender::Mode::kFailed: return obs::SenderMode::kFailed;
  }
  return obs::SenderMode::kNormal;
}

}  // namespace

LamsSender::LamsSender(Simulator& sim, link::FrameChannel& data_out,
                       LamsConfig cfg, sim::DlcStats* stats, Tracer tracer,
                       obs::EventBus* bus)
    : sim_{sim},
      out_{data_out},
      cfg_{cfg},
      stats_{stats},
      obs_{bus, std::move(tracer)},
      seqspace_{cfg.modulus} {
  out_.set_idle_callback([this] { try_send(); });
  if (!cfg_.self_audit_period.is_zero()) {
    audit_timer_ =
        sim_.schedule_in(cfg_.self_audit_period, [this] { on_audit_tick(); });
  }
  if (!cfg_.resync_watchdog.is_zero()) {
    watchdog_timer_ =
        sim_.schedule_in(cfg_.resync_watchdog, [this] { on_watchdog(); });
  }
}

LamsSender::~LamsSender() {
  sim_.cancel(checkpoint_timer_);
  sim_.cancel(failure_timer_);
  sim_.cancel(pace_timer_);
  sim_.cancel(audit_timer_);
  sim_.cancel(watchdog_timer_);
  sim_.cancel(resync_timer_);
}

obs::Event LamsSender::make_event(obs::EventKind k) const {
  obs::Event e;
  e.at = sim_.now();
  e.source = obs::Source::kLamsSender;
  e.kind = k;
  return e;
}

void LamsSender::emit_frame_event(obs::EventKind k, std::uint64_t ctr,
                                  const Pending& p, std::int64_t holding_ps) {
  if (!obs_.active()) return;
  obs::Event e = make_event(k);
  e.p.frame = {ctr, p.packet.id, p.attempts, 0, holding_ps};
  obs_.emit(e);
}

void LamsSender::emit_mode_change(Mode from, Mode to,
                                  obs::RecoveryReason reason) {
  if (!obs_.active()) return;
  obs::Event e = make_event(obs::EventKind::kRecoveryTransition);
  e.p.recovery = {to_obs(from), to_obs(to), reason};
  obs_.emit(e);
}

void LamsSender::emit_timer(obs::EventKind k, obs::TimerId id, Time deadline) {
  if (!obs_.active()) return;
  obs::Event e = make_event(k);
  e.p.timer = {id, deadline.ps()};
  obs_.emit(e);
}

void LamsSender::submit(sim::Packet p) {
  if (stats_) ++stats_->packets_submitted;
  if (obs_.active()) {
    // Admission timestamp: the root of the packet's trace span tree; the gap
    // to its first kFrameSent is the issuance-queueing latency component.
    obs::Event e = make_event(obs::EventKind::kPacketAdmitted);
    e.p.frame = {0, p.id, 0, 0, 0};
    obs_.emit(e);
  }
  new_queue_.push_back(Pending{p, Time{}, 0});
  note_buffer_change();
  try_send();
}

std::size_t LamsSender::sending_buffer_depth() const {
  return new_queue_.size() + retx_queue_.size() + outstanding_.size();
}

bool LamsSender::accepting() const {
  return mode_ != Mode::kFailed &&
         sending_buffer_depth() < cfg_.send_buffer_capacity;
}

bool LamsSender::idle() const {
  return new_queue_.empty() && retx_queue_.empty() && outstanding_.empty();
}

void LamsSender::note_buffer_change() {
  if (stats_) {
    stats_->send_buffer.update(sim_.now(),
                               static_cast<double>(sending_buffer_depth()));
  }
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kBufferOccupancy);
    e.p.buffer = {obs::BufferId::kSendBuffer,
                  static_cast<std::uint32_t>(sending_buffer_depth())};
    obs_.emit(e);
  }
  if (on_buffer_change_) on_buffer_change_();
}

void LamsSender::try_send() {
  // kResyncing quiesces the pipe completely: no new frames *and* no
  // retransmissions, so nothing sent under the dying epoch races the RESYNC
  // down the (FIFO) forward channel.  complete_resync() re-opens the tap.
  if (mode_ == Mode::kFailed || mode_ == Mode::kResyncing || out_.busy() ||
      !out_.up()) {
    return;
  }
  // Numbering-window stall (Section 3.3): a new frame may only be issued
  // while fewer than modulus/2 frames are unresolved (outstanding plus the
  // NAKed ones waiting to go out again — those re-enter the outstanding set
  // the moment they are retransmitted).  Past that population the wrapped
  // sequence references on the wire turn ambiguous.  Retransmissions are
  // exempt: they conserve the unresolved population.  The stall clears when
  // a checkpoint releases or claims frames (handle_checkpoint ends with
  // try_send), and a silent receiver trips the checkpoint/failure timers as
  // usual, so the stall cannot deadlock.
  const bool window_open =
      outstanding_.size() + retx_queue_.size() < cfg_.numbering_window();
  const bool can_new = mode_ == Mode::kNormal && window_open;
  if (retx_queue_.empty() && (!can_new || new_queue_.empty())) return;

  const Time now = sim_.now();
  if (now < next_send_allowed_) {
    if (!sim_.pending(pace_timer_)) {
      pace_timer_ = sim_.schedule_at(next_send_allowed_, [this] { try_send(); });
    }
    return;
  }

  Pending p;
  if (!retx_queue_.empty()) {
    p = std::move(retx_queue_.front());
    retx_queue_.pop_front();
  } else {
    p = std::move(new_queue_.front());
    new_queue_.pop_front();
  }
  send_iframe(std::move(p));
}

void LamsSender::send_iframe(Pending p) {
  const Time now = sim_.now();
  ++p.attempts;
  if (p.attempts == 1) p.first_tx = now;

  // Counter-collision hardening: in a sane run no in-flight slot can hold a
  // counter at or above next_ctr_, but a corrupted (backward-warped) counter
  // would land this frame on a live slot — the emplace below would quietly
  // fail and the packet would leak out of every queue: silent loss no
  // recovery can undo.  Skip over claimed counters instead (bounded by the
  // numbering window); the periodic self-audit still reports the corruption.
  while (outstanding_.contains(next_ctr_)) ++next_ctr_;

  const std::uint64_t ctr = next_ctr_++;
  if (p.attempts > 1 && obs_.active()) {
    // The old->new pairing, emitted before the new copy's kFrameSent: the
    // wire never links the two numbers (relaxed in-sequence rule), so this
    // record is what lets trace reconstruction follow renumbering chains.
    obs::Event e = make_event(obs::EventKind::kRetransmitMapped);
    e.p.map = {p.last_ctr, ctr, p.packet.id, p.attempts};
    obs_.emit(e);
  }
  p.last_ctr = ctr;
  frame::Frame f;
  // Retransmissions re-copy the payload: the frame on the wire owns its
  // bytes, while the held Pending keeps the original for the next attempt.
  f.body =
      frame::IFrame{seqspace_.wrap(ctr), p.packet.id, p.packet.bytes,
                    p.packet.data};

  const Time tx = out_.tx_time(f);
  const Time prop = out_.propagation_at(now);
  const Time expected_arrival = now + tx + prop + cfg_.t_proc;

  if (stats_) {
    ++stats_->iframe_tx;
    if (p.attempts > 1) ++stats_->iframe_retx;
  }
  emit_frame_event(obs::EventKind::kFrameSent, ctr, p);

  outstanding_.insert(ctr, std::move(p), expected_arrival);

  // Pace against the Stop-Go rate factor: at factor 1 this equals the
  // serialization time, i.e. back-to-back transmission.
  next_send_allowed_ = now + tx * (1.0 / rate_factor_);

  out_.send(std::move(f));

  // Before the first checkpoint arrives, guard startup with a generous
  // timer: a silent receiver is detected after one response time plus the
  // usual checkpoint timeout.
  if (!got_any_cp_ && !sim_.pending(checkpoint_timer_)) {
    const Time grace =
        cfg_.max_rtt + cfg_.checkpoint_interval + cfg_.checkpoint_timeout();
    checkpoint_timer_ =
        sim_.schedule_in(grace, [this] { on_checkpoint_silence(); });
    emit_timer(obs::EventKind::kTimerArmed, obs::TimerId::kCheckpointTimer,
               sim_.now() + grace);
  }
}

void LamsSender::on_frame(frame::Frame f) {
  if (mode_ == Mode::kFailed) return;
  if (f.corrupted) {
    // A damaged control command is unreadable; the cumulative NAK design
    // makes the *next* checkpoint carry the same information.
    if (stats_) ++stats_->control_corrupted_rx;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kFrameDropped);
      e.p.drop = {obs::DropCause::kCorruptControl, 1, 0};
      obs_.emit(e);
    }
    return;
  }
  if (const auto* cp = std::get_if<frame::CheckpointFrame>(&f.body)) {
    handle_checkpoint(*cp);
    return;
  }
  if (const auto* ack = std::get_if<frame::ResyncAckFrame>(&f.body)) {
    handle_resync_ack(*ack);
    return;
  }
  // Any other frame type on the reverse channel is a misconfiguration;
  // ignore it rather than guess.
}

void LamsSender::handle_checkpoint(const frame::CheckpointFrame& cp) {
  if (mode_ == Mode::kResyncing) {
    // expected_epoch_ already holds the pending RESYNC epoch: a checkpoint
    // stamped with it proves the receiver applied the re-anchor even if the
    // explicit RESYNC-ACK was lost on the reverse channel.  Complete the
    // episode and process this checkpoint under the fresh numbering;
    // anything else is pre-resync feedback, stale by definition.
    if (cp.epoch != expected_epoch_) return;
    complete_resync();
  }
  if (cp.epoch != expected_epoch_) return;  // leftover of an earlier session
  if (cfg_.resync_enabled && cp.resync_req) {
    // The receiver's self-audit declared its own sequence tracking corrupt,
    // so this checkpoint's content cannot be trusted — do not process it;
    // re-anchor both ends instead.
    initiate_resync(obs::RecoveryReason::kResyncRequested);
    return;
  }
  if (got_any_cp_ && cp.cp_seq <= last_cp_seq_) return;  // stale/duplicate
  const std::uint64_t prev_seq = got_any_cp_ ? last_cp_seq_ : 0;
  got_any_cp_ = true;
  last_cp_seq_ = cp.cp_seq;

  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kCheckpointProcessed);
    auto& pl = e.p.checkpoint;
    pl.cp_seq = cp.cp_seq;
    pl.highest_seen = cp.highest_seen;
    pl.missed = static_cast<std::uint32_t>(cp.cp_seq - prev_seq - 1);
    pl.nak_count = static_cast<std::uint16_t>(
        std::min<std::size_t>(cp.naks.size(), UINT16_MAX));
    pl.flags = static_cast<std::uint8_t>((cp.any_seen ? 1u : 0u) |
                                         (cp.enforced ? 2u : 0u) |
                                         (cp.stop_go ? 4u : 0u) |
                                         (cp.resync_req ? 8u : 0u));
    for (std::size_t i = 0; i < pl.inline_naks(); ++i) pl.naks[i] = cp.naks[i];
    obs_.emit(e);
  }

  // Consecutive checkpoints missed before this one (cp_seq is dense, so the
  // jump is exact).  A NAK repeats in C_depth consecutive checkpoints; when
  // at least that many are missing, some NAK's every repetition may have
  // been lost with them, and the cumulative list no longer proves "not
  // NAKed".  Releasing on it could discard a damaged frame as implicitly
  // acknowledged — silent loss.  An Enforced-NAK's list spans the whole
  // resolving period, so force one before any further release.
  const std::uint64_t missed = cp.cp_seq - prev_seq - 1;
  const bool nak_list_incomplete =
      !cp.enforced && missed >= cfg_.cumulation_depth;

  if (mode_ == Mode::kNormal) {
    if (nak_list_incomplete && !outstanding_.empty()) {
      process_naks(cp);
      enter_enforced_recovery(obs::RecoveryReason::kNakGapAmbiguity);
    } else {
      process_naks(cp);
      sweep_outstanding(cp);
    }
  } else {  // kEnforcedRecovery
    if (cp.enforced) {
      // Enforced-NAK / Resolving Command: resolves every outstanding frame
      // (its NAK list spans the whole resolving period) and ends recovery.
      process_naks(cp);
      sweep_outstanding(cp);
      sim_.cancel(failure_timer_);
      failure_timer_ = 0;
      mode_ = Mode::kNormal;
      emit_mode_change(Mode::kEnforcedRecovery, Mode::kNormal,
                       obs::RecoveryReason::kEnforcedNakResolved);
    } else {
      // Checkpoint Recovery stays allowed during enforced recovery, but no
      // releases and no new I-frames (Section 3.2).
      process_naks(cp);
      if (cfg_.retry_request_nak &&
          sim_.now() >= request_sent_at_ + cfg_.max_rtt) {
        send_request_nak();
      }
    }
  }

  apply_flow_control(cp.stop_go);

  // Implausible-ack anomaly: a streak of checkpoints whose highest-seen
  // references counters never issued means one side's sequence state is
  // corrupt beyond what the per-checkpoint guard in sweep_outstanding can
  // absorb — re-anchor.
  if (cfg_.resync_enabled && cfg_.implausible_ack_threshold > 0 &&
      implausible_streak_ >= cfg_.implausible_ack_threshold &&
      mode_ != Mode::kResyncing && mode_ != Mode::kFailed) {
    implausible_streak_ = 0;
    initiate_resync(obs::RecoveryReason::kImplausibleAck);
  }

  if (mode_ == Mode::kNormal) arm_checkpoint_timer();
  note_buffer_change();
  try_send();
}

void LamsSender::process_naks(const frame::CheckpointFrame& cp) {
  if (next_ctr_ == 0) return;  // nothing ever sent
  for (const frame::Seq wire : cp.naks) {
    const std::uint64_t ctr = seqspace_.unwrap(wire, next_ctr_ - 1);
    const Pending* held = outstanding_.find(ctr);
    if (held == nullptr) {
      // Already retransmitted under a newer number (the NAK repeats
      // C_depth times by design) — "assumed to be retransmitted already".
      continue;
    }
    emit_frame_event(obs::EventKind::kRetransmitQueued, ctr, *held);
    retx_queue_.push_back(outstanding_.take(ctr));
  }
}

void LamsSender::sweep_outstanding(const frame::CheckpointFrame& cp) {
  if (outstanding_.empty() || next_ctr_ == 0) return;
  // Release decisions reason against next_ctr_; a live slot holding a
  // counter at or above it means the sequence space is corrupt and every
  // unwrap below is unreliable — releasing on one could discard undelivered
  // frames as implicitly acknowledged.  Skip this checkpoint's sweep and
  // audit immediately (which reports the trip and, when enabled, starts the
  // RESYNC that repairs the space).  Unreachable in a sane run.
  for (const std::uint64_t ctr : outstanding_.ctrs()) {
    if (ctr >= next_ctr_) {
      run_self_audit();
      return;
    }
  }
  bool any_seen = cp.any_seen;
  const std::uint64_t high =
      any_seen ? seqspace_.unwrap(cp.highest_seen, next_ctr_ - 1) : 0;
  if (any_seen && high > next_ctr_ - 1) {
    // Implausible: the receiver cannot have accepted a number the sender
    // has not issued.  This happens when the checkpoint's highest-seen is
    // stale by more than half the numbering size (a long all-husk forward
    // burst keeps the receiver's highest pinned while next_ctr_ advances),
    // so the nearest-to-reference unwrap lands a cycle too far forward.
    // Releasing against it would discard undelivered frames as implicitly
    // acknowledged — silent loss.  Skip the release rule for this
    // checkpoint; the provably-undelivered retransmission rule below is
    // reference-free and stays in force.
    any_seen = false;
    ++implausible_streak_;
  } else if (any_seen) {
    implausible_streak_ = 0;
  }

  // Hot scan: only the packed (counter, arrival) arrays are touched; the
  // matched counters then act in ascending order, so release and
  // retransmission events come out oldest-first deterministically.
  std::vector<std::uint64_t> release;
  std::vector<std::uint64_t> undelivered;
  const auto& ctrs = outstanding_.ctrs();
  const auto& arrivals = outstanding_.arrivals();
  for (std::size_t i = 0; i < ctrs.size(); ++i) {
    if (any_seen && ctrs[i] <= high) {
      // The receiver saw a later frame before generating this checkpoint;
      // had this one arrived damaged its gap-NAK would be in the list and
      // process_naks would have claimed it.  Implicitly acknowledged.
      release.push_back(ctrs[i]);
    } else if (arrivals[i] + cfg_.release_margin <= cp.generated_at) {
      // It provably reached the receiver before this checkpoint, yet the
      // highest-seen number never got there: it arrived unreadable (e.g.
      // the tail frame of a burst).  Retransmit under a new number.
      undelivered.push_back(ctrs[i]);
    }
    // Otherwise: still in flight relative to this checkpoint; keep holding.
  }
  std::sort(release.begin(), release.end());
  std::sort(undelivered.begin(), undelivered.end());

  for (const std::uint64_t ctr : release) {
    Pending held = outstanding_.take(ctr);
    const Time held_for = sim_.now() - held.first_tx;
    if (stats_) stats_->holding_time_s.add(held_for.sec());
    emit_frame_event(obs::EventKind::kFrameReleased, ctr, held,
                     held_for.ps());
    ++resolved_;
  }
  for (const std::uint64_t ctr : undelivered) {
    Pending held = outstanding_.take(ctr);
    emit_frame_event(obs::EventKind::kRetransmitQueued, ctr, held);
    retx_queue_.push_back(std::move(held));
  }
}

void LamsSender::arm_checkpoint_timer() {
  sim_.cancel(checkpoint_timer_);
  checkpoint_timer_ =
      sim_.schedule_in(cfg_.checkpoint_timeout(), [this] { on_checkpoint_silence(); });
  emit_timer(obs::EventKind::kTimerArmed, obs::TimerId::kCheckpointTimer,
             sim_.now() + cfg_.checkpoint_timeout());
}

void LamsSender::on_checkpoint_silence() {
  checkpoint_timer_ = 0;
  if (mode_ != Mode::kNormal) return;
  emit_timer(obs::EventKind::kTimerFired, obs::TimerId::kCheckpointTimer);
  enter_enforced_recovery(obs::RecoveryReason::kCheckpointSilence);
}

void LamsSender::enter_enforced_recovery(obs::RecoveryReason reason) {
  // Recoverable only if the expected response fits in the remaining link
  // lifetime (Section 3.2).
  if (cfg_.link_deadline &&
      sim_.now() + cfg_.failure_timeout() > *cfg_.link_deadline) {
    declare_failed(obs::RecoveryReason::kLifetimeExhausted);
    return;
  }
  const Mode from = mode_;
  mode_ = Mode::kEnforcedRecovery;
  emit_mode_change(from, mode_, reason);
  send_request_nak();
  sim_.cancel(failure_timer_);
  failure_timer_ =
      sim_.schedule_in(cfg_.failure_timeout(), [this] { on_failure_timeout(); });
  emit_timer(obs::EventKind::kTimerArmed, obs::TimerId::kFailureTimer,
             sim_.now() + cfg_.failure_timeout());
}

void LamsSender::send_request_nak() {
  frame::Frame f;
  f.body = frame::RequestNakFrame{++request_token_};
  if (stats_) ++stats_->control_tx;
  ++request_naks_;
  request_sent_at_ = sim_.now();
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameSent);
    e.p.frame = {request_token_, 0, 0, 1, 0};
    obs_.emit(e);
  }
  out_.send(std::move(f));
}

void LamsSender::on_failure_timeout() {
  failure_timer_ = 0;
  if (mode_ != Mode::kEnforcedRecovery) return;
  emit_timer(obs::EventKind::kTimerFired, obs::TimerId::kFailureTimer);
  if (cfg_.resync_enabled) {
    // Enforced recovery failed inside its own budget: either the feedback
    // channel is being destroyed or an endpoint's state is wedged — both are
    // exactly what the RESYNC handshake re-anchors.  Teardown still follows,
    // but only after the bounded RESYNC retries also come up empty.
    initiate_resync(obs::RecoveryReason::kFailureTimeout);
    return;
  }
  declare_failed(obs::RecoveryReason::kFailureTimeout);
}

void LamsSender::declare_failed(obs::RecoveryReason reason) {
  const Mode from = mode_;
  mode_ = Mode::kFailed;
  emit_mode_change(from, mode_, reason);
  sim_.cancel(checkpoint_timer_);
  sim_.cancel(failure_timer_);
  sim_.cancel(pace_timer_);
  sim_.cancel(audit_timer_);
  sim_.cancel(watchdog_timer_);
  sim_.cancel(resync_timer_);
  checkpoint_timer_ = failure_timer_ = pace_timer_ = 0;
  audit_timer_ = watchdog_timer_ = resync_timer_ = 0;
  if (on_failed_) on_failed_();
}

void LamsSender::requeue_unresolved() {
  // Unresolved traffic survives the reset, oldest first.
  std::vector<std::uint64_t> ctrs = outstanding_.sorted_ctrs();
  // Prepend in reverse so the final order is: outstanding (by counter),
  // then previously queued retransmissions, then new traffic.
  for (auto it = retx_queue_.rbegin(); it != retx_queue_.rend(); ++it) {
    new_queue_.push_front(Pending{it->packet, Time{}, 0});
  }
  for (auto it = ctrs.rbegin(); it != ctrs.rend(); ++it) {
    new_queue_.push_front(Pending{outstanding_.find(*it)->packet, Time{}, 0});
  }
  outstanding_.clear();
  retx_queue_.clear();
}

void LamsSender::reset_session() {
  requeue_unresolved();
  sim_.cancel(checkpoint_timer_);
  sim_.cancel(failure_timer_);
  sim_.cancel(pace_timer_);
  sim_.cancel(resync_timer_);
  checkpoint_timer_ = failure_timer_ = pace_timer_ = resync_timer_ = 0;
  next_ctr_ = 0;
  got_any_cp_ = false;
  last_cp_seq_ = 0;
  implausible_streak_ = 0;
  mode_ = Mode::kNormal;
  next_send_allowed_ = Time{};
  note_buffer_change();
}

std::vector<sim::Packet> LamsSender::take_unresolved() {
  std::vector<sim::Packet> out;
  out.reserve(sending_buffer_depth());
  // Outstanding first (oldest traffic), ordered by transmission counter.
  for (const std::uint64_t ctr : outstanding_.sorted_ctrs()) {
    out.push_back(outstanding_.find(ctr)->packet);
  }
  outstanding_.clear();
  for (const Pending& p : retx_queue_) out.push_back(p.packet);
  retx_queue_.clear();
  for (const Pending& p : new_queue_) out.push_back(p.packet);
  new_queue_.clear();
  note_buffer_change();
  return out;
}

void LamsSender::apply_flow_control(bool stop) {
  if (stop) {
    rate_factor_ = std::max(cfg_.min_rate_factor, rate_factor_ * cfg_.stop_decrease);
  } else if (rate_factor_ < 1.0) {
    rate_factor_ = std::min(1.0, rate_factor_ + cfg_.go_increase);
  }
}

// ---------------------------------------------------------------------------
// Self-stabilization: audit, watchdog, RESYNC handshake (docs/PROTOCOL.md).

std::size_t LamsSender::run_self_audit() {
  if (mode_ == Mode::kFailed) return 0;
  std::size_t trips = 0;
  const auto trip = [&](obs::AuditCheck check, std::uint64_t a,
                        std::uint64_t b) {
    ++trips;
    ++audit_trips_;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kSelfAuditFailed);
      e.p.audit = {check, a, b};
      obs_.emit(e);
    }
  };

  // Counter coherence: every in-flight slot was issued below next_ctr_.
  std::uint64_t worst_ctr = 0;
  bool ctr_bad = false;
  for (const std::uint64_t ctr : outstanding_.ctrs()) {
    if (ctr >= next_ctr_ && (!ctr_bad || ctr > worst_ctr)) {
      ctr_bad = true;
      worst_ctr = ctr;
    }
  }
  if (ctr_bad) trip(obs::AuditCheck::kSenderCtrCoherence, worst_ctr, next_ctr_);

  // Window bound: the unresolved population (in flight plus NAKed awaiting
  // renumbering) never exceeds modulus/2 — try_send enforces it on issue.
  const std::size_t unresolved = outstanding_.size() + retx_queue_.size();
  if (unresolved > cfg_.numbering_window()) {
    trip(obs::AuditCheck::kSenderWindowBound, unresolved,
         cfg_.numbering_window());
  }

  // Checkpoint tracking: cp_seq starts at 1 on the wire, so "saw one with
  // sequence zero" is unreachable.
  if (got_any_cp_ && last_cp_seq_ == 0) {
    trip(obs::AuditCheck::kSenderCpTracking, last_cp_seq_, 0);
  }

  // Timer coherence: enforced recovery without a live failure timer would
  // hang forever — the mode is entered and left only around that timer.
  if (mode_ == Mode::kEnforcedRecovery && !sim_.pending(failure_timer_)) {
    trip(obs::AuditCheck::kSenderTimerCoherence,
         static_cast<std::uint64_t>(failure_timer_), 0);
  }

  // Pacing sanity: the Stop-Go gate advances by at most one serialization
  // time per send; a gate beyond a whole failure budget is stuck state.
  if (next_send_allowed_ > sim_.now() + cfg_.failure_timeout()) {
    trip(obs::AuditCheck::kSenderPacingStuck,
         static_cast<std::uint64_t>(next_send_allowed_.ps()),
         static_cast<std::uint64_t>(sim_.now().ps()));
  }

  if (trips > 0 && cfg_.resync_enabled && mode_ != Mode::kResyncing) {
    initiate_resync(obs::RecoveryReason::kSelfAuditFailure);
  }
  return trips;
}

void LamsSender::on_audit_tick() {
  audit_timer_ = 0;
  if (mode_ == Mode::kFailed) return;
  audit_timer_ =
      sim_.schedule_in(cfg_.self_audit_period, [this] { on_audit_tick(); });
  run_self_audit();
}

void LamsSender::on_watchdog() {
  watchdog_timer_ = 0;
  if (mode_ == Mode::kFailed) return;
  // Stalled: unresolved traffic exists yet a whole period produced not one
  // release.  The ordinary checkpoint/failure timers get the first try (the
  // period should exceed failure_timeout()); this net catches wedges those
  // timers cannot see, e.g. a corrupted pacing gate or a husk-pinned
  // receiver whose checkpoints keep arriving but never cover anything.
  //
  // Two consecutive stalled observations are required before firing: a single
  // tick only proves no release since the *previous* tick, which may have
  // sampled an idle sender — traffic admitted just before this tick would
  // look instantly wedged and a spurious RESYNC would re-deliver every
  // delivered-but-unreleased frame.  Back-to-back strikes prove a full busy
  // period with zero progress (detection latency <= two periods, which is
  // what callers budget for).
  const bool stalled = !idle() && resolved_ == watchdog_last_resolved_ &&
                       mode_ != Mode::kResyncing;
  watchdog_last_resolved_ = resolved_;
  watchdog_timer_ =
      sim_.schedule_in(cfg_.resync_watchdog, [this] { on_watchdog(); });
  if (!stalled) {
    watchdog_strike_ = false;
    return;
  }
  if (!watchdog_strike_) {
    watchdog_strike_ = true;
    return;
  }
  watchdog_strike_ = false;
  if (cfg_.resync_enabled) {
    emit_timer(obs::EventKind::kTimerFired, obs::TimerId::kWatchdogTimer);
    initiate_resync(obs::RecoveryReason::kProgressWatchdog);
  }
}

void LamsSender::initiate_resync(obs::RecoveryReason reason) {
  if (!cfg_.resync_enabled || mode_ == Mode::kResyncing ||
      mode_ == Mode::kFailed) {
    return;
  }
  const Mode from = mode_;
  mode_ = Mode::kResyncing;
  resync_reason_ = reason;
  resync_attempt_ = 0;
  ++resync_token_;
  pending_resync_epoch_ = expected_epoch_ + 1;
  if (pending_resync_epoch_ == 0) pending_resync_epoch_ = 1;  // 0 = "no session"
  // Adopting the fresh epoch immediately kills the old sequence space: every
  // pre-resync checkpoint now drops in handle_checkpoint's epoch filter, so
  // nothing stale can be misread against the restarted numbering.
  expected_epoch_ = pending_resync_epoch_;
  sim_.cancel(checkpoint_timer_);
  sim_.cancel(failure_timer_);
  sim_.cancel(pace_timer_);
  checkpoint_timer_ = failure_timer_ = pace_timer_ = 0;
  emit_mode_change(from, mode_, reason);
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kResyncInitiated);
    e.p.resync = {resync_token_, pending_resync_epoch_, 0, reason};
    obs_.emit(e);
  }
  send_resync();
}

void LamsSender::send_resync() {
  ++resync_attempt_;
  if (resync_attempt_ > cfg_.max_resync_attempts) {
    // Bounded-retry teardown: the peer never acknowledged under the new
    // epoch, so recovery is hopeless — declare the link failed cleanly and
    // let the network layer reroute the residue (take_unresolved).
    declare_failed(obs::RecoveryReason::kResyncExhausted);
    return;
  }
  frame::Frame f;
  f.body = frame::ResyncFrame{resync_token_, pending_resync_epoch_};
  if (stats_) ++stats_->control_tx;
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameSent);
    e.p.frame = {resync_token_, 0, resync_attempt_, 1, 0};
    obs_.emit(e);
  }
  out_.send(std::move(f));
  // Capped exponential backoff: 1x, 2x, 4x, then 8x per further attempt
  // (mirrored by LamsConfig::resync_budget()).
  const std::uint32_t shift = std::min(resync_attempt_ - 1, 3u);
  const Time delay =
      cfg_.effective_resync_backoff() * static_cast<std::int64_t>(1u << shift);
  resync_timer_ = sim_.schedule_in(delay, [this] { on_resync_timer(); });
  emit_timer(obs::EventKind::kTimerArmed, obs::TimerId::kResyncTimer,
             sim_.now() + delay);
}

void LamsSender::on_resync_timer() {
  resync_timer_ = 0;
  if (mode_ != Mode::kResyncing) return;
  emit_timer(obs::EventKind::kTimerFired, obs::TimerId::kResyncTimer);
  send_resync();
}

void LamsSender::handle_resync_ack(const frame::ResyncAckFrame& ack) {
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {ack.token, 0, 0, 1, 0};
    obs_.emit(e);
  }
  if (mode_ != Mode::kResyncing) return;  // duplicate ack, episode over
  if (ack.token != resync_token_ || ack.epoch != pending_resync_epoch_) return;
  complete_resync();
}

void LamsSender::complete_resync() {
  sim_.cancel(resync_timer_);
  resync_timer_ = 0;
  // Re-anchor: numbering restarts at zero under the new epoch and every
  // unresolved frame goes out again as a fresh submission.  Frames the old
  // epoch did deliver but never release may be re-sent — bounded duplication
  // during convergence; the destination tracker de-duplicates.
  requeue_unresolved();
  next_ctr_ = 0;
  got_any_cp_ = false;
  last_cp_seq_ = 0;
  implausible_streak_ = 0;
  next_send_allowed_ = Time{};
  ++resyncs_completed_;
  mode_ = Mode::kNormal;
  emit_mode_change(Mode::kResyncing, Mode::kNormal,
                   obs::RecoveryReason::kResyncCompleted);
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kResyncCompleted);
    e.p.resync = {resync_token_, pending_resync_epoch_, resync_attempt_,
                  resync_reason_};
    obs_.emit(e);
  }
  note_buffer_change();
  try_send();
}

// ---------------------------------------------------------------------------
// State-corruption hooks (verif::StateCorruptor).  Verification-only.

std::vector<frame::PacketId> LamsSender::outstanding_ids() const {
  const std::vector<std::uint64_t> ctrs = outstanding_.sorted_ctrs();
  std::vector<frame::PacketId> ids;
  ids.reserve(ctrs.size());
  for (const std::uint64_t c : ctrs) {
    ids.push_back(outstanding_.find(c)->packet.id);
  }
  return ids;
}

void LamsSender::corrupt_warp_next_ctr(std::int64_t delta) {
  if (mode_ == Mode::kFailed) return;
  if (delta >= 0) {
    next_ctr_ += static_cast<std::uint64_t>(delta);
  } else {
    const std::uint64_t back = static_cast<std::uint64_t>(-delta);
    next_ctr_ = back >= next_ctr_ ? 0 : next_ctr_ - back;
  }
}

frame::PacketId LamsSender::corrupt_drop_slot(std::size_t nth) {
  if (mode_ == Mode::kFailed || outstanding_.empty()) return 0;
  const std::vector<std::uint64_t> ctrs = outstanding_.sorted_ctrs();
  const Pending dropped = outstanding_.take(ctrs[nth % ctrs.size()]);
  note_buffer_change();
  return dropped.packet.id;
}

bool LamsSender::corrupt_warp_slot_arrival(std::size_t nth, Time delta) {
  if (mode_ == Mode::kFailed || outstanding_.empty()) return false;
  const std::vector<std::uint64_t> ctrs = outstanding_.sorted_ctrs();
  Time* arrival = outstanding_.arrival(ctrs[nth % ctrs.size()]);
  *arrival = *arrival + delta;
  return true;
}

void LamsSender::corrupt_cp_tracking(std::uint64_t last_cp_seq, bool got_any) {
  if (mode_ == Mode::kFailed) return;
  last_cp_seq_ = last_cp_seq;
  got_any_cp_ = got_any;
}

void LamsSender::corrupt_pacing_gate(Time until) {
  if (mode_ == Mode::kFailed) return;
  next_send_allowed_ = until;
}

const char* to_string(LamsSender::Mode m) noexcept {
  switch (m) {
    case LamsSender::Mode::kNormal: return "normal";
    case LamsSender::Mode::kEnforcedRecovery: return "enforced_recovery";
    case LamsSender::Mode::kResyncing: return "resyncing";
    case LamsSender::Mode::kFailed: return "failed";
  }
  return "?";
}

}  // namespace lamsdlc::lams
