#include "lamsdlc/lams/receiver.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace lamsdlc::lams {

LamsReceiver::LamsReceiver(Simulator& sim, link::FrameChannel& control_out,
                           LamsConfig cfg, sim::PacketListener* listener,
                           sim::DlcStats* stats, Tracer tracer,
                           obs::EventBus* bus)
    : sim_{sim},
      out_{control_out},
      cfg_{cfg},
      listener_{listener},
      stats_{stats},
      obs_{bus, std::move(tracer)},
      seqspace_{cfg.modulus} {}

LamsReceiver::~LamsReceiver() {
  sim_.cancel(cp_timer_);
  sim_.cancel(audit_timer_);
}

obs::Event LamsReceiver::make_event(obs::EventKind k) const {
  obs::Event e;
  e.at = sim_.now();
  e.source = obs::Source::kLamsReceiver;
  e.kind = k;
  return e;
}

void LamsReceiver::emit_drop(obs::DropCause cause, std::uint8_t control,
                             std::uint64_t ctr) {
  if (!obs_.active()) return;
  obs::Event e = make_event(obs::EventKind::kFrameDropped);
  e.p.drop = {cause, control, ctr};
  obs_.emit(e);
}

void LamsReceiver::note_recv_buffer() {
  if (!obs_.active()) return;
  obs::Event e = make_event(obs::EventKind::kBufferOccupancy);
  e.p.buffer = {obs::BufferId::kRecvBuffer,
                static_cast<std::uint32_t>(processing_)};
  obs_.emit(e);
}

void LamsReceiver::start() {
  if (running_) return;
  running_ = true;
  cp_timer_ = sim_.schedule_in(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
  if (!cfg_.self_audit_period.is_zero() && !sim_.pending(audit_timer_)) {
    audit_timer_ =
        sim_.schedule_in(cfg_.self_audit_period, [this] { on_audit_tick(); });
  }
}

void LamsReceiver::stop() {
  running_ = false;
  sim_.cancel(cp_timer_);
  cp_timer_ = 0;
  sim_.cancel(audit_timer_);
  audit_timer_ = 0;
}

void LamsReceiver::reset_session() {
  any_seen_ = false;
  highest_ctr_ = 0;
  iframe_arrivals_ = 0;
  anchor_arrival_ = 0;
  interval_naks_.clear();
  current_interval_.clear();
  history_.clear();
}

void LamsReceiver::checkpoint_tick() {
  if (!running_) return;
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kTimerFired);
    e.p.timer = {obs::TimerId::kCheckpointCadence, 0};
    obs_.emit(e);
  }
  // Close the current detection interval before reporting, so a NAK raised
  // an instant before the tick is included in this checkpoint.
  interval_naks_.push_back(std::move(current_interval_));
  current_interval_.clear();
  while (interval_naks_.size() > cfg_.cumulation_depth) {
    interval_naks_.pop_front();
  }
  emit_checkpoint(/*enforced=*/false);
  cp_timer_ = sim_.schedule_in(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
}

void LamsReceiver::emit_checkpoint(bool enforced) {
  frame::CheckpointFrame cp;
  cp.cp_seq = ++cp_seq_;
  cp.generated_at = sim_.now();
  cp.any_seen = any_seen_;
  cp.highest_seen = any_seen_ ? seqspace_.wrap(highest_ctr_) : 0;
  cp.enforced = enforced;
  cp.stop_go = processing_ > cfg_.recv_high_watermark;
  cp.epoch = epoch_;
  cp.resync_req = resync_req_;

  // Wire-safety filter: a NAK that has fallen modulus/2 or more behind the
  // highest accepted counter is no longer expressible on the wire.  The
  // sender unwraps each NAK near its newest issued number, so the wrapped
  // value of such a stale record resolves a full numbering cycle *ahead* of
  // the counter it was recorded for — and if the frame was since
  // retransmitted under a fresh number, the alias lands exactly on the fresh
  // copy in flight: a spurious retransmission and a duplicate delivery.
  // Suppressing the record is fail-safe — a frame that old is past the
  // resolving-period bound, and the sender's provably-undelivered rule and
  // failure timer still cover it.
  const std::uint64_t half = cfg_.modulus / 2;
  const auto expressible = [&](std::uint64_t ctr) {
    const bool ok = highest_ctr_ - ctr < half;
    if (!ok) ++naks_expired_;
    return ok;
  };

  if (enforced) {
    // Enforced-NAK: every unexpired NAK of the resolving period, so a
    // sender that missed an arbitrary run of checkpoints still recovers
    // every damaged frame.  `history_` alone covers this: every NAK enters
    // it the instant it enters `current_interval_`, and prune_history()
    // never prunes inside the cumulative-reporting window.
    prune_history();
    cp.naks.reserve(history_.size());
    for (const NakRecord& r : history_) {
      if (expressible(r.ctr)) cp.naks.push_back(seqspace_.wrap(r.ctr));
    }
  } else {
    // Cumulative list over the last C_depth closed intervals plus anything
    // detected in the (just-started) current one.
    for (const auto& interval : interval_naks_) {
      for (const std::uint64_t ctr : interval) {
        if (expressible(ctr)) cp.naks.push_back(seqspace_.wrap(ctr));
      }
    }
    for (const std::uint64_t ctr : current_interval_) {
      if (expressible(ctr)) cp.naks.push_back(seqspace_.wrap(ctr));
    }
  }

  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kCheckpointEmitted);
    auto& pl = e.p.checkpoint;
    pl.cp_seq = cp.cp_seq;
    pl.highest_seen = cp.highest_seen;
    pl.nak_count = static_cast<std::uint16_t>(
        std::min<std::size_t>(cp.naks.size(), 0xFFFF));
    pl.flags = static_cast<std::uint8_t>((cp.any_seen ? 1u : 0u) |
                                         (cp.enforced ? 2u : 0u) |
                                         (cp.stop_go ? 4u : 0u) |
                                         (cp.resync_req ? 8u : 0u));
    for (std::size_t i = 0; i < pl.inline_naks(); ++i) pl.naks[i] = cp.naks[i];
    obs_.emit(e);
  }

  ++cp_count_;
  if (stats_) ++stats_->control_tx;
  frame::Frame f;
  f.body = std::move(cp);
  out_.send(std::move(f));
}

void LamsReceiver::prune_history() {
  // Never prune inside the cumulative-reporting window (the current interval
  // plus C_depth closed ones): a NAK still being repeated in periodic
  // checkpoints must also appear in an Enforced-NAK, whatever retention
  // horizon the configuration asked for.
  const Time floor = cfg_.checkpoint_interval *
                     static_cast<std::int64_t>(cfg_.cumulation_depth + 1);
  const Time horizon = std::max(cfg_.effective_nak_horizon(), floor);
  while (!history_.empty() &&
         history_.front().detected_at + horizon < sim_.now()) {
    history_.pop_front();
  }
  // Counter-based floor: once a record falls modulus/2 behind the highest
  // accepted counter it can never be emitted again (emit_checkpoint's
  // wire-safety filter rejects it, and highest_ctr_ only grows), so drop
  // it.  Records are appended in counter order — the stalest is in front.
  while (!history_.empty() &&
         highest_ctr_ - history_.front().ctr >= cfg_.modulus / 2) {
    history_.pop_front();
    ++naks_expired_;
  }
}

void LamsReceiver::on_frame(frame::Frame f) {
  if (!running_) return;  // a stopped receiver is dead: no processing at all
  if (const auto* in = std::get_if<frame::IFrame>(&f.body)) {
    handle_iframe(*in, f.corrupted);
    return;
  }
  if (f.corrupted) {
    if (stats_) ++stats_->control_corrupted_rx;
    emit_drop(obs::DropCause::kCorruptControl, 1, 0);
    return;
  }
  if (const auto* rq = std::get_if<frame::RequestNakFrame>(&f.body)) {
    handle_request_nak(*rq);
    return;
  }
  if (const auto* rs = std::get_if<frame::ResyncFrame>(&f.body)) {
    handle_resync(*rs);
  }
}

void LamsReceiver::handle_iframe(const frame::IFrame& in, bool corrupted) {
  if (sim_.now() < resync_guard_until_) {
    // Straggler of the epoch a just-applied RESYNC killed: its number means
    // nothing under the fresh anchor, and accepting it would poison
    // highest_ctr_ so genuinely new frames look stale — silent loss.  The
    // first new-epoch frame cannot arrive inside the guard (the sender
    // quiesces for at least a round trip before sending again), so dropping
    // here is always safe.
    ++duplicates_suppressed_;
    emit_drop(obs::DropCause::kStaleSequence, 0, in.seq);
    return;
  }
  // Count the arrival *event* before any disposition (husk, congestion
  // discard, stale duplicate, good frame).  Under the paper's link model
  // (assumption 9: damage is detectable — frames arrive unreadable rather
  // than vanish) the event count tracks the sender's counter exactly, which
  // anchors the unwrap below.
  const std::uint64_t arrival_ref = iframe_arrivals_++;
  if (corrupted) {
    // Worst-case assumption: a damaged frame's header is unreadable, so the
    // receiver learns of it only through the sequence gap exposed by the
    // next good arrival (or the sender's highest-seen reasoning).
    if (stats_) ++stats_->iframe_corrupted_rx;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kFrameCorrupted);
      e.p.drop = {obs::DropCause::kWireCorruption, 0, in.seq};
      obs_.emit(e);
    }
    return;
  }
  if (processing_ >= cfg_.recv_hard_capacity) {
    // Congestion overflow: discard while Stop is being signalled (Section
    // 3.4).  Dropping before the sequence tracking makes the frame look
    // exactly like a damaged arrival, so the sender's NAK machinery
    // recovers it after the backlog drains — "minimize the losses due
    // congestion" without a new mechanism.
    ++congestion_discards_;
    emit_drop(obs::DropCause::kCongestion, 0, in.seq);
    return;
  }

  // A good arrival is NOT necessarily within m/2 of the last accepted
  // counter: at a tiny modulus a burst of husks can span whole cycles (the
  // first cycle included — the old code trusted the raw wire value of the
  // first good frame), and unwrapping near the stale highest would alias
  // the counter a multiple of m low.  The receiver would then under-NAK
  // the gap and the sender would release undelivered frames as implicitly
  // acknowledged — silent loss.  The arrival-event count carries the cycle
  // through any such burst: damage is detectable (assumption 9), so every
  // counter issued since the last accepted frame left an arrival event
  // behind, and the expected counter of this frame is the last accepted
  // counter advanced by the events seen since.  Omissions or duplicates
  // (outside the paper's link model) only disturb the anchor until the
  // next accepted frame re-bases it.
  const std::uint64_t ref = highest_ctr_ + (arrival_ref - anchor_arrival_);
  const std::uint64_t ctr = seqspace_.unwrap(in.seq, ref);
  if (any_seen_ && ctr <= highest_ctr_) {
    // A non-increasing counter is a wire-level duplicate or a late reordered
    // frame; either way the frame was already NAKed or delivered, so it must
    // not go upward again.
    ++duplicates_suppressed_;
    emit_drop(obs::DropCause::kStaleSequence, 0, ctr);
    if (cfg_.suppress_duplicates) return;
    // Ablation path (tests only): deliver the stale frame anyway, without
    // touching the sequence tracking, to prove the invariant checker notices.
    deliver_up(in, ctr);
    return;
  }

  // Every hole below the new highest number is a frame that arrived
  // unreadable: NAK each exactly once.
  const std::uint64_t gap_from = any_seen_ ? highest_ctr_ + 1 : 0;
  for (std::uint64_t missing = gap_from; missing < ctr; ++missing) {
    current_interval_.push_back(missing);
    history_.push_back(NakRecord{missing, sim_.now()});
    ++naks_generated_;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kNakGenerated);
      e.p.nak = {missing};
      obs_.emit(e);
    }
  }
  highest_ctr_ = ctr;
  anchor_arrival_ = arrival_ref;
  any_seen_ = true;

  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {ctr, in.packet_id, 0, 0, 0};
    obs_.emit(e);
  }
  deliver_up(in, ctr);
}

void LamsReceiver::deliver_up(const frame::IFrame& in, std::uint64_t ctr) {
  // Forward upward after t_proc; no resequencing hold (Section 3.3).
  ++processing_;
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(processing_));
  }
  note_recv_buffer();
  std::uint32_t slot;
  if (up_free_.empty()) {
    slot = static_cast<std::uint32_t>(up_pool_.size());
    up_pool_.emplace_back();
  } else {
    slot = up_free_.back();
    up_free_.pop_back();
  }
  UpSlot& s = up_pool_[slot];
  s.packet.id = in.packet_id;
  s.packet.bytes = in.payload_bytes;
  s.packet.created_at = Time{};
  s.packet.message_id = 0;
  s.packet.msg_index = 0;
  s.packet.msg_count = 1;
  s.packet.data = in.payload;  // copy-assign reuses the slot's capacity
  s.ctr = ctr;
  sim_.schedule_in(cfg_.t_proc, [this, slot] { finish_deliver_up(slot); });
}

void LamsReceiver::finish_deliver_up(std::uint32_t slot) {
  sim::Packet p = std::move(up_pool_[slot].packet);
  const std::uint64_t ctr = up_pool_[slot].ctr;
  --processing_;
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(processing_));
  }
  note_recv_buffer();
  if (obs_.active()) {
    // The delivery leaf of the packet's trace span tree: the instant the
    // payload leaves the DLC upward, after the t_proc pipeline.
    obs::Event e = make_event(obs::EventKind::kPacketDelivered);
    e.p.frame = {ctr, p.id, 0, 0, 0};
    obs_.emit(e);
  }
  if (listener_) listener_->on_packet(p, sim_.now());
  // The packet's heap storage (if any) goes back with the slot only after
  // the listener is done with it.
  up_pool_[slot].packet = std::move(p);
  up_free_.push_back(slot);
}

void LamsReceiver::handle_request_nak(const frame::RequestNakFrame& rq) {
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {rq.token, 0, 0, 1, 0};
    obs_.emit(e);
  }
  emit_checkpoint(/*enforced=*/true);
}

// ---------------------------------------------------------------------------
// Self-stabilization: RESYNC application, audit, corruption hooks.

void LamsReceiver::handle_resync(const frame::ResyncFrame& rs) {
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {rs.token, 0, 0, 1, 0};
    obs_.emit(e);
  }
  if (rs.epoch < epoch_) return;  // leftover of a superseded episode/session
  if (rs.epoch > epoch_) {
    // Fresh episode: drop every trace of the dead sequence space and adopt
    // the new epoch.  cp_seq_ deliberately keeps counting across the
    // re-anchor, so the sender's checkpoint-staleness filter needs no
    // special case.
    reset_session();
    epoch_ = rs.epoch;
    resync_req_ = false;
    resync_guard_until_ = sim_.now() + cfg_.release_margin;
    ++resyncs_applied_;
    if (running_ && !sim_.pending(cp_timer_)) {
      // A stalled cadence is part of what a RESYNC repairs — the checkpoint
      // stream must flow again for the sender to finish the episode (a
      // new-epoch checkpoint completes it even if the explicit ack is lost).
      cp_timer_ = sim_.schedule_in(cfg_.checkpoint_interval,
                                   [this] { checkpoint_tick(); });
    }
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kResyncCompleted);
      e.p.resync = {rs.token, rs.epoch, 0,
                    obs::RecoveryReason::kResyncCompleted};
      obs_.emit(e);
    }
  }
  // Acknowledge on the reverse channel; a duplicate RESYNC of the current
  // epoch means the previous ack was lost, so always re-ack.
  frame::Frame f;
  f.body = frame::ResyncAckFrame{rs.token, rs.epoch};
  if (stats_) ++stats_->control_tx;
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameSent);
    e.p.frame = {rs.token, 0, 0, 1, 0};
    obs_.emit(e);
  }
  out_.send(std::move(f));
}

void LamsReceiver::on_audit_tick() {
  audit_timer_ = 0;
  if (!running_) return;
  audit_timer_ =
      sim_.schedule_in(cfg_.self_audit_period, [this] { on_audit_tick(); });
  run_self_audit();
}

std::size_t LamsReceiver::run_self_audit() {
  if (!running_) return 0;
  std::size_t trips = 0;
  const auto trip = [&](obs::AuditCheck check, std::uint64_t a,
                        std::uint64_t b) {
    ++trips;
    ++audit_trips_;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kSelfAuditFailed);
      e.p.audit = {check, a, b};
      obs_.emit(e);
    }
  };

  // The cycle anchor records the arrival count at the last accept; it can
  // never lead the arrival count itself.
  if (anchor_arrival_ > iframe_arrivals_) {
    trip(obs::AuditCheck::kReceiverAnchorCoherence, anchor_arrival_,
         iframe_arrivals_);
  }

  // "Nothing accepted yet" with nonzero sequence state is unreachable.
  if (!any_seen_ && (highest_ctr_ != 0 || anchor_arrival_ != 0)) {
    trip(obs::AuditCheck::kReceiverSeqCoherence, highest_ctr_,
         anchor_arrival_);
  }

  // NAK records are created strictly below the counter whose acceptance
  // revealed them, so every record lies below the accepted highest.  Records
  // append in counter order — checking both ends covers the whole deque.
  if (any_seen_) {
    std::uint64_t witness = 0;
    bool nak_bad = false;
    const auto check_end = [&](std::uint64_t ctr) {
      if (ctr >= highest_ctr_ && !nak_bad) {
        nak_bad = true;
        witness = ctr;
      }
    };
    if (!history_.empty()) {
      check_end(history_.front().ctr);
      check_end(history_.back().ctr);
    }
    if (!current_interval_.empty()) {
      check_end(current_interval_.front());
      check_end(current_interval_.back());
    }
    if (nak_bad) {
      trip(obs::AuditCheck::kReceiverNakCoherence, witness, highest_ctr_);
    }
  }

  // Detection timestamps append monotonically.
  if (history_.size() >= 2 &&
      history_.back().detected_at < history_.front().detected_at) {
    trip(obs::AuditCheck::kReceiverHistoryOrder,
         static_cast<std::uint64_t>(history_.front().detected_at.ps()),
         static_cast<std::uint64_t>(history_.back().detected_at.ps()));
  }

  // Husk stall: more unaccepted arrivals since the last accept than the
  // whole numbering size means the unwrap anchor has lost the cycle — the
  // wire can no longer express where the sequence space stands.
  if (any_seen_ && iframe_arrivals_ - anchor_arrival_ > cfg_.modulus) {
    trip(obs::AuditCheck::kReceiverHuskStall,
         iframe_arrivals_ - anchor_arrival_, cfg_.modulus);
  }

  // The link is active yet no checkpoint tick is pending: the cadence died
  // and the sender is flying blind.
  if (!sim_.pending(cp_timer_)) {
    trip(obs::AuditCheck::kReceiverCadenceStall, cp_seq_, 0);
  }

  if (trips > 0 && cfg_.resync_enabled) resync_req_ = true;
  return trips;
}

// ---------------------------------------------------------------------------
// State-corruption hooks (verif::StateCorruptor).  Verification-only.

void LamsReceiver::corrupt_warp_highest(std::int64_t delta) {
  if (!running_) return;
  if (delta >= 0) {
    highest_ctr_ += static_cast<std::uint64_t>(delta);
  } else {
    const std::uint64_t back = static_cast<std::uint64_t>(-delta);
    highest_ctr_ = back >= highest_ctr_ ? 0 : highest_ctr_ - back;
  }
  any_seen_ = true;
}

void LamsReceiver::corrupt_warp_anchor(std::int64_t delta) {
  if (!running_) return;
  if (delta >= 0) {
    anchor_arrival_ += static_cast<std::uint64_t>(delta);
  } else {
    const std::uint64_t back = static_cast<std::uint64_t>(-delta);
    anchor_arrival_ = back >= anchor_arrival_ ? 0 : anchor_arrival_ - back;
  }
}

void LamsReceiver::corrupt_inject_nak(std::uint64_t ctr) {
  if (!running_) return;
  current_interval_.push_back(ctr);
  history_.push_back(NakRecord{ctr, sim_.now()});
}

void LamsReceiver::corrupt_clear_nak_state() {
  if (!running_) return;
  interval_naks_.clear();
  current_interval_.clear();
  history_.clear();
}

void LamsReceiver::corrupt_warp_cp_seq(std::int64_t delta) {
  if (!running_) return;
  if (delta >= 0) {
    cp_seq_ += static_cast<std::uint32_t>(delta);
  } else {
    const std::uint32_t back = static_cast<std::uint32_t>(-delta);
    cp_seq_ = back >= cp_seq_ ? 0 : cp_seq_ - back;
  }
}

void LamsReceiver::corrupt_stall_cadence() {
  if (!running_) return;
  sim_.cancel(cp_timer_);
  cp_timer_ = 0;
}

}  // namespace lamsdlc::lams
