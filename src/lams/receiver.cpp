#include "lamsdlc/lams/receiver.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace lamsdlc::lams {

LamsReceiver::LamsReceiver(Simulator& sim, link::SimplexChannel& control_out,
                           LamsConfig cfg, sim::PacketListener* listener,
                           sim::DlcStats* stats, Tracer tracer,
                           obs::EventBus* bus)
    : sim_{sim},
      out_{control_out},
      cfg_{cfg},
      listener_{listener},
      stats_{stats},
      obs_{bus, std::move(tracer)},
      seqspace_{cfg.modulus} {}

LamsReceiver::~LamsReceiver() { sim_.cancel(cp_timer_); }

obs::Event LamsReceiver::make_event(obs::EventKind k) const {
  obs::Event e;
  e.at = sim_.now();
  e.source = obs::Source::kLamsReceiver;
  e.kind = k;
  return e;
}

void LamsReceiver::emit_drop(obs::DropCause cause, std::uint8_t control,
                             std::uint64_t ctr) {
  if (!obs_.active()) return;
  obs::Event e = make_event(obs::EventKind::kFrameDropped);
  e.p.drop = {cause, control, ctr};
  obs_.emit(e);
}

void LamsReceiver::note_recv_buffer() {
  if (!obs_.active()) return;
  obs::Event e = make_event(obs::EventKind::kBufferOccupancy);
  e.p.buffer = {obs::BufferId::kRecvBuffer,
                static_cast<std::uint32_t>(processing_)};
  obs_.emit(e);
}

void LamsReceiver::start() {
  if (running_) return;
  running_ = true;
  cp_timer_ = sim_.schedule_in(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
}

void LamsReceiver::stop() {
  running_ = false;
  sim_.cancel(cp_timer_);
  cp_timer_ = 0;
}

void LamsReceiver::reset_session() {
  any_seen_ = false;
  highest_ctr_ = 0;
  interval_naks_.clear();
  current_interval_.clear();
  history_.clear();
}

void LamsReceiver::checkpoint_tick() {
  if (!running_) return;
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kTimerFired);
    e.p.timer = {obs::TimerId::kCheckpointCadence, 0};
    obs_.emit(e);
  }
  // Close the current detection interval before reporting, so a NAK raised
  // an instant before the tick is included in this checkpoint.
  interval_naks_.push_back(std::move(current_interval_));
  current_interval_.clear();
  while (interval_naks_.size() > cfg_.cumulation_depth) {
    interval_naks_.pop_front();
  }
  emit_checkpoint(/*enforced=*/false);
  cp_timer_ = sim_.schedule_in(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
}

void LamsReceiver::emit_checkpoint(bool enforced) {
  frame::CheckpointFrame cp;
  cp.cp_seq = ++cp_seq_;
  cp.generated_at = sim_.now();
  cp.any_seen = any_seen_;
  cp.highest_seen = any_seen_ ? seqspace_.wrap(highest_ctr_) : 0;
  cp.enforced = enforced;
  cp.stop_go = processing_ > cfg_.recv_high_watermark;
  cp.epoch = epoch_;

  if (enforced) {
    // Enforced-NAK: every unexpired NAK of the resolving period, so a
    // sender that missed an arbitrary run of checkpoints still recovers
    // every damaged frame.
    prune_history();
    cp.naks.reserve(history_.size() + current_interval_.size());
    for (const NakRecord& r : history_) cp.naks.push_back(seqspace_.wrap(r.ctr));
  } else {
    // Cumulative list over the last C_depth closed intervals plus anything
    // detected in the (just-started) current one.
    for (const auto& interval : interval_naks_) {
      for (const std::uint64_t ctr : interval) cp.naks.push_back(seqspace_.wrap(ctr));
    }
    for (const std::uint64_t ctr : current_interval_) {
      cp.naks.push_back(seqspace_.wrap(ctr));
    }
  }

  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kCheckpointEmitted);
    auto& pl = e.p.checkpoint;
    pl.cp_seq = cp.cp_seq;
    pl.highest_seen = cp.highest_seen;
    pl.nak_count = static_cast<std::uint16_t>(
        std::min<std::size_t>(cp.naks.size(), 0xFFFF));
    pl.flags = static_cast<std::uint8_t>((cp.any_seen ? 1u : 0u) |
                                         (cp.enforced ? 2u : 0u) |
                                         (cp.stop_go ? 4u : 0u));
    for (std::size_t i = 0; i < pl.inline_naks(); ++i) pl.naks[i] = cp.naks[i];
    obs_.emit(e);
  }

  ++cp_count_;
  if (stats_) ++stats_->control_tx;
  frame::Frame f;
  f.body = std::move(cp);
  out_.send(std::move(f));
}

void LamsReceiver::prune_history() {
  const Time horizon = cfg_.effective_nak_horizon();
  while (!history_.empty() &&
         history_.front().detected_at + horizon < sim_.now()) {
    history_.pop_front();
  }
}

void LamsReceiver::on_frame(frame::Frame f) {
  if (!running_) return;  // a stopped receiver is dead: no processing at all
  if (const auto* in = std::get_if<frame::IFrame>(&f.body)) {
    handle_iframe(*in, f.corrupted);
    return;
  }
  if (f.corrupted) {
    if (stats_) ++stats_->control_corrupted_rx;
    emit_drop(obs::DropCause::kCorruptControl, 1, 0);
    return;
  }
  if (const auto* rq = std::get_if<frame::RequestNakFrame>(&f.body)) {
    handle_request_nak(*rq);
  }
}

void LamsReceiver::handle_iframe(const frame::IFrame& in, bool corrupted) {
  if (corrupted) {
    // Worst-case assumption: a damaged frame's header is unreadable, so the
    // receiver learns of it only through the sequence gap exposed by the
    // next good arrival (or the sender's highest-seen reasoning).
    if (stats_) ++stats_->iframe_corrupted_rx;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kFrameCorrupted);
      e.p.drop = {obs::DropCause::kWireCorruption, 0, in.seq};
      obs_.emit(e);
    }
    return;
  }
  if (processing_ >= cfg_.recv_hard_capacity) {
    // Congestion overflow: discard while Stop is being signalled (Section
    // 3.4).  Dropping before the sequence tracking makes the frame look
    // exactly like a damaged arrival, so the sender's NAK machinery
    // recovers it after the backlog drains — "minimize the losses due
    // congestion" without a new mechanism.
    ++congestion_discards_;
    emit_drop(obs::DropCause::kCongestion, 0, in.seq);
    return;
  }

  const std::uint64_t ctr =
      any_seen_ ? seqspace_.unwrap(in.seq, highest_ctr_)
                : static_cast<std::uint64_t>(in.seq);
  if (any_seen_ && ctr <= highest_ctr_) {
    // A non-increasing counter is a wire-level duplicate or a late reordered
    // frame; either way the frame was already NAKed or delivered, so it must
    // not go upward again.
    ++duplicates_suppressed_;
    emit_drop(obs::DropCause::kStaleSequence, 0, ctr);
    if (cfg_.suppress_duplicates) return;
    // Ablation path (tests only): deliver the stale frame anyway, without
    // touching the sequence tracking, to prove the invariant checker notices.
    deliver_up(in);
    return;
  }

  // Every hole below the new highest number is a frame that arrived
  // unreadable: NAK each exactly once.
  const std::uint64_t gap_from = any_seen_ ? highest_ctr_ + 1 : 0;
  for (std::uint64_t missing = gap_from; missing < ctr; ++missing) {
    current_interval_.push_back(missing);
    history_.push_back(NakRecord{missing, sim_.now()});
    ++naks_generated_;
    if (obs_.active()) {
      obs::Event e = make_event(obs::EventKind::kNakGenerated);
      e.p.nak = {missing};
      obs_.emit(e);
    }
  }
  highest_ctr_ = ctr;
  any_seen_ = true;

  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {ctr, in.packet_id, 0, 0, 0};
    obs_.emit(e);
  }
  deliver_up(in);
}

void LamsReceiver::deliver_up(const frame::IFrame& in) {
  // Forward upward after t_proc; no resequencing hold (Section 3.3).
  ++processing_;
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(processing_));
  }
  note_recv_buffer();
  const sim::Packet p{in.packet_id, in.payload_bytes, Time{}, 0, 0, 1};
  sim_.schedule_in(cfg_.t_proc, [this, p] {
    --processing_;
    if (stats_) {
      stats_->recv_buffer.update(sim_.now(), static_cast<double>(processing_));
    }
    note_recv_buffer();
    if (listener_) listener_->on_packet(p, sim_.now());
  });
}

void LamsReceiver::handle_request_nak(const frame::RequestNakFrame& rq) {
  if (obs_.active()) {
    obs::Event e = make_event(obs::EventKind::kFrameReceived);
    e.p.frame = {rq.token, 0, 0, 1, 0};
    obs_.emit(e);
  }
  emit_checkpoint(/*enforced=*/true);
}

}  // namespace lamsdlc::lams
