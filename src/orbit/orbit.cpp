#include "lamsdlc/orbit/orbit.hpp"

#include <algorithm>

namespace lamsdlc::orbit {

Vec3 CircularOrbit::position(Time t) const noexcept {
  const double u = phase_rad + mean_motion_rad_s() * t.sec();  // argument of latitude
  const double r = radius_m();
  // Position in the orbital plane.
  const double xp = r * std::cos(u);
  const double yp = r * std::sin(u);
  // Rotate by inclination about x, then by RAAN about z.
  const double ci = std::cos(inclination_rad), si = std::sin(inclination_rad);
  const double co = std::cos(raan_rad), so = std::sin(raan_rad);
  const double x1 = xp;
  const double y1 = yp * ci;
  const double z1 = yp * si;
  return Vec3{co * x1 - so * y1, so * x1 + co * y1, z1};
}

double SatellitePair::range_m(Time t) const noexcept {
  return (a_.position(t) - b_.position(t)).norm();
}

bool SatellitePair::visible(Time t, double grazing_altitude_m) const noexcept {
  const Vec3 pa = a_.position(t);
  const Vec3 pb = b_.position(t);
  const Vec3 d = pb - pa;
  const double range = d.norm();
  if (range > max_range_m_) return false;
  // Minimum distance from Earth's centre to segment pa..pb.
  const double dd = d.dot(d);
  double s = dd > 0 ? -pa.dot(d) / dd : 0.0;
  s = std::clamp(s, 0.0, 1.0);
  const Vec3 closest = pa + s * d;
  return closest.norm() >= kEarthRadiusM + grazing_altitude_m;
}

std::vector<VisibilityWindow> find_windows(const SatellitePair& pair,
                                           Time horizon, Time step) {
  std::vector<VisibilityWindow> windows;
  bool open = false;
  Time start{};
  for (Time t{}; t <= horizon; t += step) {
    const bool vis = pair.visible(t);
    if (vis && !open) {
      open = true;
      start = t;
    } else if (!vis && open) {
      open = false;
      windows.push_back({start, t});
    }
  }
  if (open) windows.push_back({start, horizon});
  return windows;
}

RangeStats range_stats(const SatellitePair& pair,
                       const VisibilityWindow& window, Time step) {
  RangeStats st;
  bool first = true;
  for (Time t = window.start; t <= window.end; t += step) {
    const double r = pair.range_m(t);
    if (first) {
      st.r_min_m = st.r_max_m = r;
      first = false;
    } else {
      st.r_min_m = std::min(st.r_min_m, r);
      st.r_max_m = std::max(st.r_max_m, r);
    }
  }
  return st;
}

}  // namespace lamsdlc::orbit
