#include "lamsdlc/orbit/constellation.hpp"

#include <algorithm>
#include <stdexcept>

namespace lamsdlc::orbit {

Constellation::Constellation(WalkerParams p) : params_{p} {
  if (p.planes == 0 || p.total % p.planes != 0) {
    throw std::invalid_argument(
        "Constellation: total must divide evenly into planes");
  }
  const std::uint32_t per_plane = p.total / p.planes;
  sats_.reserve(p.total);
  for (std::uint32_t k = 0; k < p.planes; ++k) {
    for (std::uint32_t j = 0; j < per_plane; ++j) {
      CircularOrbit o;
      o.altitude_m = p.altitude_m;
      o.inclination_rad = p.inclination_rad;
      o.raan_rad = 2.0 * M_PI * static_cast<double>(k) /
                   static_cast<double>(p.planes);
      // In-plane spacing plus the Walker inter-plane phasing term 2*pi*f*k/t.
      o.phase_rad = 2.0 * M_PI * static_cast<double>(j) /
                        static_cast<double>(per_plane) +
                    2.0 * M_PI * static_cast<double>(p.phasing) *
                        static_cast<double>(k) / static_cast<double>(p.total);
      sats_.push_back(o);
    }
  }
}

std::size_t Constellation::index(std::uint32_t plane,
                                 std::uint32_t slot) const noexcept {
  const std::uint32_t per_plane = params_.total / params_.planes;
  return static_cast<std::size_t>(plane % params_.planes) * per_plane +
         (slot % per_plane);
}

std::vector<std::pair<std::size_t, std::size_t>>
Constellation::grid_neighbors() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::uint32_t per_plane = params_.total / params_.planes;
  auto add = [&](std::size_t i, std::size_t j) {
    if (i == j) return;
    auto pr = std::minmax(i, j);
    out.emplace_back(pr.first, pr.second);
  };
  for (std::uint32_t k = 0; k < params_.planes; ++k) {
    for (std::uint32_t j = 0; j < per_plane; ++j) {
      add(index(k, j), index(k, j + 1));  // intra-plane ring
      if (params_.planes > 1) {
        add(index(k, j), index(k + 1, j));  // cross-plane, same slot
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Contact> contact_plan(const Constellation& c, Time horizon,
                                  Time step, double max_range_m,
                                  Time min_duration) {
  std::vector<Contact> plan;
  for (const auto& [i, j] : c.grid_neighbors()) {
    const SatellitePair pair = c.pair(i, j, max_range_m);
    for (const VisibilityWindow& w : find_windows(pair, horizon, step)) {
      if (w.duration() < min_duration) continue;
      Contact contact;
      contact.a = i;
      contact.b = j;
      contact.window = w;
      contact.ranges = range_stats(pair, w, step);
      plan.push_back(contact);
    }
  }
  std::sort(plan.begin(), plan.end(), [](const Contact& x, const Contact& y) {
    return x.window.start < y.window.start;
  });
  return plan;
}

}  // namespace lamsdlc::orbit
