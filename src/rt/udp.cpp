#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "lamsdlc/rt/transport.hpp"

namespace lamsdlc::rt {

struct UdpTransport::Impl {
  std::vector<sockaddr_in> peers;

  [[nodiscard]] PeerId find_or_add(const sockaddr_in& addr, bool add) {
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (peers[i].sin_addr.s_addr == addr.sin_addr.s_addr &&
          peers[i].sin_port == addr.sin_port) {
        return static_cast<PeerId>(i);
      }
    }
    if (!add) return kUnknown;
    peers.push_back(addr);
    return static_cast<PeerId>(peers.size() - 1);
  }

  static constexpr PeerId kUnknown = 0xFFFFFFFFu;
};

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

UdpTransport::UdpTransport(EventLoop& loop, const Config& cfg)
    : loop_{loop},
      impl_{std::make_unique<Impl>()},
      accept_unknown_{cfg.accept_unknown} {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("UdpTransport: socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int e = errno;
    ::close(fd_);
    errno = e;
    throw_errno("UdpTransport: O_NONBLOCK");
  }
  // Ask for generous kernel buffers: a sender at the modeled line rate can
  // burst a full window into loopback faster than a single-threaded receiver
  // drains it, and every overflowed datagram is a real loss the ARQ then has
  // to repair.  Best effort — the kernel clamps to its rmem/wmem limits.
  const int sockbuf = 4 * 1024 * 1024;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &sockbuf, sizeof sockbuf);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sockbuf, sizeof sockbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.bind_port);
  if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    errno = EINVAL;
    throw_errno("UdpTransport: bind_host");
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd_);
    errno = e;
    throw_errno("UdpTransport: bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int e = errno;
    ::close(fd_);
    errno = e;
    throw_errno("UdpTransport: getsockname");
  }
  port_ = ntohs(bound.sin_port);
  loop_.watch_fd(fd_, [this] { on_readable(); });
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    loop_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

PeerId UdpTransport::add_peer(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    throw_errno("UdpTransport::add_peer: host");
  }
  return impl_->find_or_add(addr, /*add=*/true);
}

std::size_t UdpTransport::peer_count() const noexcept {
  return impl_->peers.size();
}

bool UdpTransport::send(PeerId peer, std::span<const std::uint8_t> datagram) {
  if (peer >= impl_->peers.size() || datagram.size() > max_datagram()) {
    return false;
  }
  const sockaddr_in& addr = impl_->peers[peer];
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  // A full socket buffer (EWOULDBLOCK) loses the datagram, exactly as a
  // congested network would — the ARQ above recovers it; no retry queue.
  return n == static_cast<ssize_t>(datagram.size());
}

void UdpTransport::on_readable() {
  std::uint8_t buf[65536];
  for (;;) {
    sockaddr_in from{};
    socklen_t fromlen = sizeof from;
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof buf, 0,
                   reinterpret_cast<sockaddr*>(&from), &fromlen);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EINTR) continue;
      return;  // transient (e.g. ECONNREFUSED from a previous send); drop
    }
    const PeerId peer = impl_->find_or_add(from, accept_unknown_);
    if (peer == Impl::kUnknown) {
      ++refused_unknown_;
      continue;
    }
    if (on_recv_) {
      on_recv_(peer, std::span<const std::uint8_t>{
                         buf, static_cast<std::size_t>(n)});
    }
  }
}

}  // namespace lamsdlc::rt
