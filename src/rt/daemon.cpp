#include "lamsdlc/rt/daemon.hpp"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <system_error>
#include <vector>

#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/capture.hpp"
#include "lamsdlc/obs/collector.hpp"
#include "lamsdlc/obs/expose.hpp"
#include "lamsdlc/obs/flight_recorder.hpp"
#include "lamsdlc/obs/sampler.hpp"

namespace lamsdlc::rt {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

}  // namespace

struct Daemon::Impl {
  DaemonConfig cfg;
  WallClock loop;

  std::unique_ptr<UdpTransport> udp;
  std::unique_ptr<phy::FaultInjector> injector;
  std::unique_ptr<ImpairedTransport> impaired;
  std::unique_ptr<SessionMux> mux;

  PeerId peer_id = 0;
  bool have_peer = false;

  // ------------------------------------------------------------- bridge --
  int listen_fd = -1;
  std::uint16_t bridge_port = 0;
  struct Client {
    int fd = -1;
    std::uint32_t sid = 0;
    std::uint64_t bytes_in = 0;
    bool eof = false;           ///< Client half-closed; stream is draining.
    bool paused = false;        ///< Unwatched, waiting for a stream resume.
    EventId resume_event = 0;   ///< Deferred re-watch after a resume signal.
  };
  std::map<int, Client> clients;          // by fd
  std::map<std::uint32_t, int> sid_to_fd; // stream -> client

  std::uint32_t next_sid = 0;

  // ----------------------------------------------------------- delivery --
  struct Delivery {
    std::ofstream file;
    std::string part_path;
    std::string final_base;  ///< Rename target without extension.
    std::uint64_t bytes = 0;
  };
  std::map<std::uint64_t, Delivery> deliveries;  // by rx_key(peer, sid)

  // ---------------------------------------------------------- telemetry --
  /// Shared aggregation surface: one registry, fed by one collector per
  /// session bus.  (Per-bus collectors, not one on a merged bus: a
  /// collector correlates checkpoint sequence numbers and resync tokens,
  /// which alias across sessions.)
  obs::Registry registry;

  /// Everything hanging off one session's event bus.
  struct SessionTelemetry {
    obs::EventBus bus;
    std::unique_ptr<obs::MetricsCollector> collector;
    std::unique_ptr<obs::FlightRecorder> recorder;
    std::ofstream cap_file;
    std::unique_ptr<obs::CaptureWriter> cap_writer;
  };
  std::map<std::uint32_t, std::unique_ptr<SessionTelemetry>> sessions;  // sid

  // ------------------------------------------------------------- status --
  int status_listen_fd = -1;
  std::uint16_t status_port = 0;
  std::map<int, std::string> status_bufs;  ///< Partial request lines, by fd.
  obs::EventBus sample_bus;                ///< Sampler ticks land here.
  std::vector<obs::Event> last_samples;    ///< The most recent tick, whole.
  std::unique_ptr<obs::Sampler> sampler;

  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  bool started = false;

  explicit Impl(DaemonConfig c) : cfg{std::move(c)} {}

  void log(const std::string& line) const {
    if (cfg.verbose) std::fprintf(stderr, "lamsdlcd: %s\n", line.c_str());
  }

  obs::EventBus* bus_for(std::uint32_t sid) {
    const bool want_capture = !cfg.capture_prefix.empty();
    if (!want_capture && !cfg.telemetry) return nullptr;
    auto it = sessions.find(sid);
    if (it == sessions.end()) {
      auto st = std::make_unique<SessionTelemetry>();
      if (cfg.telemetry) {
        st->collector =
            std::make_unique<obs::MetricsCollector>(st->bus, registry);
        if (cfg.recorder_events > 0) {
          obs::FlightRecorder::Config rcfg;
          rcfg.capacity = cfg.recorder_events;
          rcfg.dump_prefix =
              (cfg.recorder_dir.empty() ? std::string{}
                                        : cfg.recorder_dir + "/") +
              "blackbox-s" + std::to_string(sid);
          st->recorder = std::make_unique<obs::FlightRecorder>(rcfg);
          st->bus.subscribe(st->recorder->subscriber());
        }
      }
      if (want_capture) {
        const std::string path =
            cfg.capture_prefix + "-s" + std::to_string(sid) + ".ldlcap";
        st->cap_file.open(path, std::ios::binary | std::ios::trunc);
        if (st->cap_file) {
          st->cap_writer = std::make_unique<obs::CaptureWriter>(st->cap_file);
          obs::CaptureWriter* w = st->cap_writer.get();
          st->bus.subscribe([w](const obs::Event& e) { w->write(e); });
        } else {
          log("capture open failed: " + path);
        }
      }
      if (!st->bus.enabled()) return nullptr;  // nothing attached after all
      it = sessions.emplace(sid, std::move(st)).first;
    }
    return &it->second->bus;
  }

  void start() {
    UdpTransport::Config ucfg;
    ucfg.bind_host = cfg.bind_host;
    ucfg.bind_port = cfg.udp_port;
    ucfg.accept_unknown = true;
    udp = std::make_unique<UdpTransport>(loop, ucfg);

    Transport* wire = udp.get();
    if (cfg.impair) {
      injector = std::make_unique<phy::FaultInjector>(
          cfg.fault, RandomStream{cfg.fault_seed, "rt.fault"});
      impaired = std::make_unique<ImpairedTransport>(
          loop, *udp, *injector, RandomStream{cfg.fault_seed, "rt.damage"});
      wire = impaired.get();
    }

    SessionMux::Config mcfg;
    mcfg.session = cfg.session;
    mcfg.data_rate_bps = cfg.data_rate_bps;
    mcfg.max_one_way = cfg.max_one_way;
    mcfg.chunk_bytes = cfg.chunk_bytes;
    mcfg.stream_buffer_packets = cfg.stream_buffer_packets;
    mcfg.accept_inbound = true;
    mcfg.bus_for = [this](std::uint32_t sid, bool) { return bus_for(sid); };
    mux = std::make_unique<SessionMux>(loop, *wire, mcfg);

    mux->set_stream_state_handler(
        [this](std::uint32_t sid, lams::SessionSender::State s) {
          on_stream_state(sid, s);
        });
    mux->set_stream_resume_handler(
        [this](std::uint32_t sid) { on_stream_resume(sid); });
    mux->set_inbound_data_handler(
        [this](PeerId p, std::uint32_t sid,
               std::span<const std::uint8_t> bytes) {
          on_inbound_data(p, sid, bytes);
        });
    mux->set_inbound_end_handler(
        [this](PeerId p, std::uint32_t sid, bool clean) {
          on_inbound_end(p, sid, clean);
        });

    if (cfg.self_peer) {
      const std::string self_host =
          cfg.bind_host == "0.0.0.0" ? "127.0.0.1" : cfg.bind_host;
      peer_id = udp->add_peer(self_host, udp->local_port());
      have_peer = true;
    } else if (!cfg.peer_host.empty()) {
      peer_id = udp->add_peer(cfg.peer_host, cfg.peer_port);
      have_peer = true;
    }

    next_sid = cfg.session_base != 0
                   ? cfg.session_base
                   : (static_cast<std::uint32_t>(::getpid()) << 8) & 0x7FFFFF00;
    if (next_sid == 0) next_sid = 1;

    if (cfg.bridge) open_bridge(cfg.bridge_port);

    if (cfg.telemetry) {
      // Node stability makes the pointer safe for the registry's lifetime.
      obs::LogHistogram* lateness =
          &registry.histogram("rt.loop.tick_lateness_us");
      loop.set_tick_observer([lateness](std::int64_t late_ns) {
        lateness->observe(static_cast<double>(late_ns) / 1000.0);
      });
    }
    if (cfg.status) {
      open_status(cfg.status_port);
      if (cfg.status_sample_period.ps() > 0) {
        sample_bus.subscribe([this](const obs::Event& e) {
          if (!last_samples.empty() && !(last_samples.front().at == e.at)) {
            last_samples.clear();
          }
          last_samples.push_back(e);
        });
        sampler = std::make_unique<obs::Sampler>(
            loop.sim(), registry, sample_bus, cfg.status_sample_period);
        sampler->start();
      }
    }

    started = true;
    log("udp " + cfg.bind_host + ":" + std::to_string(udp->local_port()) +
        (have_peer ? " (peer wired)" : " (serve-only)"));
  }

  // ------------------------------------------------------------- bridge --

  void open_bridge(std::uint16_t port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw_errno("bridge socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      throw_errno("bridge bind_host");
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      throw_errno("bridge bind");
    }
    if (::listen(listen_fd, 16) < 0) throw_errno("bridge listen");
    set_nonblock(listen_fd);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bridge_port = ntohs(bound.sin_port);
    loop.watch_fd(listen_fd, [this] { on_accept(); });
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      if (!have_peer) {
        static const char err[] = "ERR no-peer\n";
        (void)!::write(fd, err, sizeof err - 1);
        ::close(fd);
        continue;
      }
      set_nonblock(fd);
      Client c;
      c.fd = fd;
      c.sid = next_sid++;
      clients[fd] = c;
      sid_to_fd[c.sid] = fd;
      mux->open_stream(peer_id, c.sid);
      loop.watch_fd(fd, [this, fd] { on_client_readable(fd); });
      log("bridge client -> stream s" + std::to_string(c.sid));
    }
  }

  void on_client_readable(int fd) {
    const auto it = clients.find(fd);
    if (it == clients.end()) return;
    Client& c = it->second;
    std::uint8_t buf[16384];
    for (;;) {
      if (!mux->stream_accepting(c.sid)) {
        // Backpressure: stop consuming, let the DLC drain, try again soon.
        pause_client(c);
        return;
      }
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // Connection damage: abandon the stream; the session will drain
        // what was accepted and close.
        c.eof = true;
        loop.unwatch_fd(fd);
        mux->stream_close(c.sid);
        return;
      }
      if (n == 0) {
        // Half-close: the client's byte stream is complete.
        c.eof = true;
        loop.unwatch_fd(fd);
        mux->stream_close(c.sid);
        log("stream s" + std::to_string(c.sid) + " eof after " +
            std::to_string(c.bytes_in) + " bytes");
        return;
      }
      c.bytes_in += static_cast<std::uint64_t>(n);
      mux->stream_write(c.sid, std::span<const std::uint8_t>{
                                   buf, static_cast<std::size_t>(n)});
    }
  }

  void pause_client(Client& c) {
    // Stop consuming the client socket entirely; the kernel's TCP window
    // backpressures the client.  No polling: the mux fires the stream
    // resume handler the moment the session accepts again.
    loop.unwatch_fd(c.fd);
    c.paused = true;
  }

  void on_stream_resume(std::uint32_t sid) {
    const auto sit = sid_to_fd.find(sid);
    if (sit == sid_to_fd.end()) return;
    const auto it = clients.find(sit->second);
    if (it == clients.end() || !it->second.paused || it->second.eof) return;
    // The signal can arrive from inside datagram processing — defer the
    // re-watch and the read loop to a fresh loop turn.
    const int fd = it->second.fd;
    loop.sim().cancel(it->second.resume_event);
    it->second.resume_event = loop.sim().schedule_in(Time{}, [this, fd] {
      const auto cit = clients.find(fd);
      if (cit == clients.end() || cit->second.eof) return;
      cit->second.resume_event = 0;
      if (!mux->stream_accepting(cit->second.sid)) return;  // filled again
      cit->second.paused = false;
      loop.watch_fd(fd, [this, fd] { on_client_readable(fd); });
      on_client_readable(fd);
    });
  }

  void finish_client(std::uint32_t sid, bool ok, const char* why) {
    const auto sit = sid_to_fd.find(sid);
    if (sit == sid_to_fd.end()) return;
    const int fd = sit->second;
    const auto cit = clients.find(fd);
    if (cit != clients.end()) {
      std::string line =
          ok ? "OK " + std::to_string(cit->second.bytes_in) + "\n"
             : std::string("ERR ") + why + "\n";
      (void)!::write(fd, line.data(), line.size());
      loop.unwatch_fd(fd);
      loop.sim().cancel(cit->second.resume_event);
      ::close(fd);
      clients.erase(cit);
    }
    sid_to_fd.erase(sit);
  }

  void on_stream_state(std::uint32_t sid, lams::SessionSender::State s) {
    using State = lams::SessionSender::State;
    if (s != State::kClosed && s != State::kFailed) return;
    const bool ok = s == State::kClosed;
    log("stream s" + std::to_string(sid) + (ok ? " closed" : " FAILED"));
    finish_client(sid, ok, "session-failed");
    ++completed;
    if (!ok) ++failed;
    // Retire the session's state outside the state callback (the sender is
    // mid-transition under our feet).
    loop.sim().schedule_in(Time{}, [this, sid] { mux->drop_stream(sid); });
    maybe_exit();
  }

  // ------------------------------------------------------------- status --
  //
  // Connection discipline: one request line in, one response out, close.
  // The listener is just another fd on the single-threaded loop, so a
  // snapshot runs between protocol events and can never observe torn
  // state.  Responses are written with the socket flipped to blocking plus
  // a 1 s send timeout — a stalled scraper costs at most that, and cannot
  // wedge the daemon with a partial-write buffer to manage.

  void open_status(std::uint16_t port) {
    status_listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (status_listen_fd < 0) throw_errno("status socket");
    const int one = 1;
    ::setsockopt(status_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      throw_errno("status bind_host");
    }
    if (::bind(status_listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      throw_errno("status bind");
    }
    if (::listen(status_listen_fd, 16) < 0) throw_errno("status listen");
    set_nonblock(status_listen_fd);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(status_listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    status_port = ntohs(bound.sin_port);
    loop.watch_fd(status_listen_fd, [this] { on_status_accept(); });
  }

  void on_status_accept() {
    for (;;) {
      const int fd = ::accept(status_listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      set_nonblock(fd);
      status_bufs[fd];
      loop.watch_fd(fd, [this, fd] { on_status_readable(fd); });
    }
  }

  void close_status(int fd) {
    loop.unwatch_fd(fd);
    ::close(fd);
    status_bufs.erase(fd);
  }

  void on_status_readable(int fd) {
    const auto it = status_bufs.find(fd);
    if (it == status_bufs.end()) return;
    char buf[512];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close_status(fd);
        return;
      }
      if (n == 0) {
        close_status(fd);
        return;
      }
      it->second.append(buf, static_cast<std::size_t>(n));
      const auto nl = it->second.find('\n');
      if (nl != std::string::npos) {
        std::string cmd = it->second.substr(0, nl);
        if (!cmd.empty() && cmd.back() == '\r') cmd.pop_back();
        send_and_close(fd, status_respond(cmd));
        return;
      }
      if (it->second.size() > 256) {  // no verb is this long
        close_status(fd);
        return;
      }
    }
  }

  void send_and_close(int fd, const std::string& s) {
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl & ~O_NONBLOCK);
    timeval tv{};
    tv.tv_sec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n = ::write(fd, s.data() + off, s.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    close_status(fd);
  }

  std::string status_respond(const std::string& cmd) {
    if (cmd.empty() || cmd == "status") return status_json() + "\n";
    if (cmd == "metrics") {
      std::ostringstream os;
      obs::write_prometheus(os, registry);
      return os.str();
    }
    if (cmd == "samples") return samples_text();
    if (cmd == "text") return status_text();
    return "ERR unknown-command\n";
  }

  [[nodiscard]] static int count_fds() {
    DIR* d = ::opendir("/proc/self/fd");
    if (d == nullptr) return -1;
    int n = 0;
    while (const dirent* ent = ::readdir(d)) {
      if (ent->d_name[0] != '.') ++n;
    }
    ::closedir(d);
    return n - 1;  // minus the opendir fd itself
  }

  std::string status_json() {
    std::ostringstream os;
    os << std::setprecision(12);
    os << "{\"daemon\":{\"pid\":" << ::getpid() << ",\"uptime_s\":"
       << static_cast<double>(loop.wall_now().ps()) * 1e-12
       << ",\"fds\":" << count_fds()
       << ",\"udp_port\":" << (udp ? udp->local_port() : 0)
       << ",\"bridge_port\":" << bridge_port
       << ",\"status_port\":" << status_port
       << ",\"bridge_clients\":" << clients.size()
       << ",\"streams_completed\":" << completed
       << ",\"streams_failed\":" << failed << '}';

    os << ",\"loop\":{";
    if (const obs::LogHistogram* h =
            registry.find_histogram("rt.loop.tick_lateness_us")) {
      os << "\"ticks\":" << h->count() << ",\"lateness_us\":{\"p50\":"
         << h->p50() << ",\"p90\":" << h->p90() << ",\"p99\":" << h->p99()
         << ",\"max\":" << h->max() << '}';
    } else {
      os << "\"ticks\":0";
    }
    os << '}';

    const frame::EnvelopeRejectCounts& er = mux->envelope_rejects();
    const frame::DecodeRejectCounts& fr = mux->frame_rejects();
    os << ",\"mux\":{\"outbound\":" << mux->outbound_count()
       << ",\"inbound\":" << mux->inbound_count()
       << ",\"undecodable\":" << mux->undecodable()
       << ",\"unroutable\":" << mux->unroutable()
       << ",\"envelope_rejects\":{\"runt_header\":" << er.runt_header
       << ",\"bad_magic\":" << er.bad_magic
       << ",\"bad_version\":" << er.bad_version
       << ",\"reserved_flags\":" << er.reserved_flags
       << ",\"truncated_id\":" << er.truncated_id
       << ",\"length_mismatch\":" << er.length_mismatch
       << ",\"empty_payload\":" << er.empty_payload
       << ",\"total\":" << er.total()
       << "},\"frame_rejects\":{\"truncated\":" << fr.truncated
       << ",\"bad_fcs\":" << fr.bad_fcs
       << ",\"length_overrun\":" << fr.length_overrun
       << ",\"trailing_bytes\":" << fr.trailing_bytes
       << ",\"unknown_kind\":" << fr.unknown_kind
       << ",\"limits\":" << fr.limits << ",\"total\":" << fr.total()
       << "}}";

    os << ",\"sessions_out\":[";
    bool first = true;
    for (const SessionMux::OutboundStatus& s : mux->outbound_status()) {
      if (!first) os << ',';
      first = false;
      os << "{\"sid\":" << s.session_id << ",\"peer\":" << s.peer
         << ",\"state\":\"" << lams::to_string(s.state)
         << "\",\"epoch\":" << s.epoch
         << ",\"resync_attempts\":" << s.resync_attempts << ",\"mode\":\""
         << lams::to_string(s.mode)
         << "\",\"outstanding\":" << s.outstanding_frames
         << ",\"buffer\":" << s.buffer_depth
         << ",\"buffer_high_water\":" << s.buffer_high_water
         << ",\"rate_factor\":" << s.rate_factor
         << ",\"chunks\":" << s.next_chunk
         << ",\"submitted\":" << s.packets_submitted
         << ",\"resolved\":" << s.packets_resolved
         << ",\"iframe_tx\":" << s.iframe_tx
         << ",\"iframe_retx\":" << s.iframe_retx
         << ",\"control_tx\":" << s.control_tx
         << ",\"request_naks\":" << s.request_naks
         << ",\"audit_trips\":" << s.audit_trips
         << ",\"resyncs_completed\":" << s.resyncs_completed << '}';
    }
    os << "],\"sessions_in\":[";
    first = true;
    for (const SessionMux::InboundStatus& s : mux->inbound_status()) {
      if (!first) os << ',';
      first = false;
      os << "{\"peer\":" << s.peer << ",\"sid\":" << s.session_id
         << ",\"in_session\":" << (s.in_session ? "true" : "false")
         << ",\"ended\":" << (s.ended ? "true" : "false")
         << ",\"epoch\":" << s.epoch
         << ",\"inits_accepted\":" << s.inits_accepted
         << ",\"held\":" << s.held_packets
         << ",\"next_index\":" << s.next_index
         << ",\"delivered\":" << s.packets_delivered
         << ",\"duplicates\":" << s.duplicates
         << ",\"checkpoints_sent\":" << s.checkpoints_sent
         << ",\"naks_generated\":" << s.naks_generated
         << ",\"iframe_corrupted_rx\":" << s.iframe_corrupted_rx
         << ",\"control_corrupted_rx\":" << s.control_corrupted_rx << '}';
    }
    os << ']';

    std::uint64_t rec_recorded = 0;
    std::uint64_t rec_dumps = 0;
    std::uint64_t rec_suppressed = 0;
    std::size_t rec_rings = 0;
    std::string rec_last;
    for (const auto& [sid, st] : sessions) {
      if (!st->recorder) continue;
      ++rec_rings;
      rec_recorded += st->recorder->recorded();
      rec_dumps += st->recorder->dumps();
      rec_suppressed += st->recorder->suppressed_triggers();
      if (!st->recorder->last_dump_path().empty()) {
        rec_last = st->recorder->last_dump_path();
      }
    }
    os << ",\"recorder\":{\"rings\":" << rec_rings
       << ",\"recorded\":" << rec_recorded << ",\"dumps\":" << rec_dumps
       << ",\"suppressed\":" << rec_suppressed << ",\"last_dump\":\""
       << obs::json_escape(rec_last) << "\"}";

    os << ",\"registry\":";
    registry.write_json(os);
    os << '}';
    return os.str();
  }

  /// Server-rendered table for `lamsdlc_cli status --pretty` — the daemon
  /// already has every struct in hand; shipping text keeps the client dumb.
  std::string status_text() {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "lamsdlcd pid " << ::getpid() << "  uptime "
       << static_cast<double>(loop.wall_now().ps()) * 1e-12 << "s  udp "
       << (udp ? udp->local_port() : 0) << "  bridge " << bridge_port
       << "  status " << status_port << '\n';
    os << "streams: " << mux->outbound_count() << " out, "
       << mux->inbound_count() << " in, " << completed << " finished ("
       << failed << " failed), " << clients.size() << " bridge client(s)\n";
    os << "mux: undecodable " << mux->undecodable() << " (envelope "
       << mux->envelope_rejects().total() << ", frame "
       << mux->frame_rejects().total() << "), unroutable "
       << mux->unroutable() << '\n';
    if (const obs::LogHistogram* h =
            registry.find_histogram("rt.loop.tick_lateness_us")) {
      os << "loop: " << h->count() << " ticks, lateness p50 " << h->p50()
         << "us p99 " << h->p99() << "us max " << h->max() << "us\n";
    }
    for (const SessionMux::OutboundStatus& s : mux->outbound_status()) {
      os << "out s" << s.session_id << " -> p" << s.peer << "  "
         << lams::to_string(s.state) << " e" << s.epoch << "  mode "
         << lams::to_string(s.mode) << "  win " << s.outstanding_frames
         << "  buf " << s.buffer_depth << " (hw " << s.buffer_high_water
         << ")  tx " << s.iframe_tx << " (+" << s.iframe_retx
         << " retx)  naks " << s.request_naks << "  resyncs "
         << s.resyncs_completed << '\n';
    }
    for (const SessionMux::InboundStatus& s : mux->inbound_status()) {
      os << "in  p" << s.peer << " s" << s.session_id << "  "
         << (s.ended ? "ended" : s.in_session ? "in-session" : "opening")
         << " e" << s.epoch << "  delivered " << s.packets_delivered << " (+"
         << s.duplicates << " dup)  held " << s.held_packets << "  cp "
         << s.checkpoints_sent << "  naks " << s.naks_generated << '\n';
    }
    return os.str();
  }

  /// The latest sampler tick as line-delimited event JSON.  `watch` diffs
  /// two fetches client-side to print rates.
  std::string samples_text() {
    std::string out;
    for (const obs::Event& e : last_samples) {
      out += obs::to_json(e);
      out += '\n';
    }
    return out;
  }

  // ----------------------------------------------------------- delivery --

  void on_inbound_data(PeerId peer, std::uint32_t sid,
                       std::span<const std::uint8_t> bytes) {
    if (cfg.deliver_dir.empty()) return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(peer) << 32) | sid;
    auto it = deliveries.find(key);
    if (it == deliveries.end()) {
      Delivery d;
      d.final_base = cfg.deliver_dir + "/stream-p" + std::to_string(peer) +
                     "-s" + std::to_string(sid);
      d.part_path = d.final_base + ".part";
      d.file.open(d.part_path, std::ios::binary | std::ios::trunc);
      if (!d.file) log("deliver open failed: " + d.part_path);
      it = deliveries.emplace(key, std::move(d)).first;
    }
    it->second.file.write(reinterpret_cast<const char*>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()));
    it->second.bytes += bytes.size();
  }

  void on_inbound_end(PeerId peer, std::uint32_t sid, bool clean) {
    log("inbound s" + std::to_string(sid) +
        (clean ? " complete" : " INCOMPLETE"));
    if (!cfg.deliver_dir.empty()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(peer) << 32) | sid;
      const auto it = deliveries.find(key);
      if (it != deliveries.end()) {
        it->second.file.close();
        // Rename-on-complete: consumers never observe a torn file.
        const std::string target =
            it->second.final_base + (clean ? ".bin" : ".err");
        if (std::rename(it->second.part_path.c_str(), target.c_str()) != 0) {
          log("rename failed: " + target);
        }
        deliveries.erase(it);
      }
    }
    ++completed;
    if (!clean) ++failed;
    maybe_exit();
  }

  void maybe_exit() {
    if (cfg.exit_after_streams != 0 && completed >= cfg.exit_after_streams) {
      log("exit-after-streams reached");
      // Let in-flight CLOSE-ACK retransmissions settle before tearing the
      // loop down, so the peer also ends clean.
      loop.sim().schedule_in(Time::milliseconds(50), [this] { loop.stop(); });
    }
  }

  void shutdown() {
    for (auto& [fd, c] : clients) {
      loop.unwatch_fd(fd);
      ::close(fd);
    }
    clients.clear();
    sid_to_fd.clear();
    if (listen_fd >= 0) {
      loop.unwatch_fd(listen_fd);
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (auto& [fd, buf] : status_bufs) {
      loop.unwatch_fd(fd);
      ::close(fd);
    }
    status_bufs.clear();
    if (status_listen_fd >= 0) {
      loop.unwatch_fd(status_listen_fd);
      ::close(status_listen_fd);
      status_listen_fd = -1;
    }
    for (auto& [sid, st] : sessions) {
      if (st->cap_writer) st->cap_file.flush();
    }
  }
};

Daemon::Daemon(DaemonConfig cfg) : impl_{std::make_unique<Impl>(std::move(cfg))} {}

Daemon::~Daemon() {
  if (impl_) impl_->shutdown();
}

void Daemon::start() { impl_->start(); }

void Daemon::run() {
  impl_->loop.run();
  // Captures must be complete on disk the moment run() returns — callers
  // (tests, the smoke script) read them before the daemon is destroyed.
  for (auto& [sid, st] : impl_->sessions) {
    if (st->cap_writer) st->cap_file.flush();
  }
}

void Daemon::stop() { impl_->loop.stop(); }

std::uint16_t Daemon::udp_port() const noexcept {
  return impl_->udp ? impl_->udp->local_port() : 0;
}

std::uint16_t Daemon::bridge_port() const noexcept {
  return impl_->bridge_port;
}

std::uint16_t Daemon::status_port() const noexcept {
  return impl_->status_port;
}

const obs::Registry& Daemon::registry() const noexcept {
  return impl_->registry;
}

std::string Daemon::status_json() { return impl_->status_json(); }

std::uint32_t Daemon::streams_completed() const noexcept {
  return impl_->completed;
}

std::uint32_t Daemon::streams_failed() const noexcept {
  return impl_->failed;
}

SessionMux& Daemon::mux() { return *impl_->mux; }

EventLoop& Daemon::loop() { return impl_->loop; }

}  // namespace lamsdlc::rt
