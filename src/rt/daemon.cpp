#include "lamsdlc/rt/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <system_error>
#include <vector>

#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/capture.hpp"

namespace lamsdlc::rt {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

}  // namespace

struct Daemon::Impl {
  DaemonConfig cfg;
  WallClock loop;

  std::unique_ptr<UdpTransport> udp;
  std::unique_ptr<phy::FaultInjector> injector;
  std::unique_ptr<ImpairedTransport> impaired;
  std::unique_ptr<SessionMux> mux;

  PeerId peer_id = 0;
  bool have_peer = false;

  // ------------------------------------------------------------- bridge --
  int listen_fd = -1;
  std::uint16_t bridge_port = 0;
  struct Client {
    int fd = -1;
    std::uint32_t sid = 0;
    std::uint64_t bytes_in = 0;
    bool eof = false;           ///< Client half-closed; stream is draining.
    bool paused = false;        ///< Unwatched, waiting for a stream resume.
    EventId resume_event = 0;   ///< Deferred re-watch after a resume signal.
  };
  std::map<int, Client> clients;          // by fd
  std::map<std::uint32_t, int> sid_to_fd; // stream -> client

  std::uint32_t next_sid = 0;

  // ----------------------------------------------------------- delivery --
  struct Delivery {
    std::ofstream file;
    std::string part_path;
    std::string final_base;  ///< Rename target without extension.
    std::uint64_t bytes = 0;
  };
  std::map<std::uint64_t, Delivery> deliveries;  // by rx_key(peer, sid)

  // ----------------------------------------------------------- captures --
  struct Capture {
    obs::EventBus bus;
    std::ofstream file;
    std::unique_ptr<obs::CaptureWriter> writer;
  };
  std::map<std::uint32_t, std::unique_ptr<Capture>> captures;  // by sid

  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  bool started = false;

  explicit Impl(DaemonConfig c) : cfg{std::move(c)} {}

  void log(const std::string& line) const {
    if (cfg.verbose) std::fprintf(stderr, "lamsdlcd: %s\n", line.c_str());
  }

  obs::EventBus* bus_for(std::uint32_t sid) {
    if (cfg.capture_prefix.empty()) return nullptr;
    auto it = captures.find(sid);
    if (it == captures.end()) {
      auto cap = std::make_unique<Capture>();
      const std::string path =
          cfg.capture_prefix + "-s" + std::to_string(sid) + ".ldlcap";
      cap->file.open(path, std::ios::binary | std::ios::trunc);
      if (!cap->file) {
        log("capture open failed: " + path);
        return nullptr;
      }
      cap->writer = std::make_unique<obs::CaptureWriter>(cap->file);
      obs::CaptureWriter* w = cap->writer.get();
      cap->bus.subscribe([w](const obs::Event& e) { w->write(e); });
      it = captures.emplace(sid, std::move(cap)).first;
    }
    return &it->second->bus;
  }

  void start() {
    UdpTransport::Config ucfg;
    ucfg.bind_host = cfg.bind_host;
    ucfg.bind_port = cfg.udp_port;
    ucfg.accept_unknown = true;
    udp = std::make_unique<UdpTransport>(loop, ucfg);

    Transport* wire = udp.get();
    if (cfg.impair) {
      injector = std::make_unique<phy::FaultInjector>(
          cfg.fault, RandomStream{cfg.fault_seed, "rt.fault"});
      impaired = std::make_unique<ImpairedTransport>(
          loop, *udp, *injector, RandomStream{cfg.fault_seed, "rt.damage"});
      wire = impaired.get();
    }

    SessionMux::Config mcfg;
    mcfg.session = cfg.session;
    mcfg.data_rate_bps = cfg.data_rate_bps;
    mcfg.max_one_way = cfg.max_one_way;
    mcfg.chunk_bytes = cfg.chunk_bytes;
    mcfg.stream_buffer_packets = cfg.stream_buffer_packets;
    mcfg.accept_inbound = true;
    mcfg.bus_for = [this](std::uint32_t sid, bool) { return bus_for(sid); };
    mux = std::make_unique<SessionMux>(loop, *wire, mcfg);

    mux->set_stream_state_handler(
        [this](std::uint32_t sid, lams::SessionSender::State s) {
          on_stream_state(sid, s);
        });
    mux->set_stream_resume_handler(
        [this](std::uint32_t sid) { on_stream_resume(sid); });
    mux->set_inbound_data_handler(
        [this](PeerId p, std::uint32_t sid,
               std::span<const std::uint8_t> bytes) {
          on_inbound_data(p, sid, bytes);
        });
    mux->set_inbound_end_handler(
        [this](PeerId p, std::uint32_t sid, bool clean) {
          on_inbound_end(p, sid, clean);
        });

    if (cfg.self_peer) {
      const std::string self_host =
          cfg.bind_host == "0.0.0.0" ? "127.0.0.1" : cfg.bind_host;
      peer_id = udp->add_peer(self_host, udp->local_port());
      have_peer = true;
    } else if (!cfg.peer_host.empty()) {
      peer_id = udp->add_peer(cfg.peer_host, cfg.peer_port);
      have_peer = true;
    }

    next_sid = cfg.session_base != 0
                   ? cfg.session_base
                   : (static_cast<std::uint32_t>(::getpid()) << 8) & 0x7FFFFF00;
    if (next_sid == 0) next_sid = 1;

    if (cfg.bridge) open_bridge(cfg.bridge_port);
    started = true;
    log("udp " + cfg.bind_host + ":" + std::to_string(udp->local_port()) +
        (have_peer ? " (peer wired)" : " (serve-only)"));
  }

  // ------------------------------------------------------------- bridge --

  void open_bridge(std::uint16_t port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw_errno("bridge socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      throw_errno("bridge bind_host");
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      throw_errno("bridge bind");
    }
    if (::listen(listen_fd, 16) < 0) throw_errno("bridge listen");
    set_nonblock(listen_fd);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bridge_port = ntohs(bound.sin_port);
    loop.watch_fd(listen_fd, [this] { on_accept(); });
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      if (!have_peer) {
        static const char err[] = "ERR no-peer\n";
        (void)!::write(fd, err, sizeof err - 1);
        ::close(fd);
        continue;
      }
      set_nonblock(fd);
      Client c;
      c.fd = fd;
      c.sid = next_sid++;
      clients[fd] = c;
      sid_to_fd[c.sid] = fd;
      mux->open_stream(peer_id, c.sid);
      loop.watch_fd(fd, [this, fd] { on_client_readable(fd); });
      log("bridge client -> stream s" + std::to_string(c.sid));
    }
  }

  void on_client_readable(int fd) {
    const auto it = clients.find(fd);
    if (it == clients.end()) return;
    Client& c = it->second;
    std::uint8_t buf[16384];
    for (;;) {
      if (!mux->stream_accepting(c.sid)) {
        // Backpressure: stop consuming, let the DLC drain, try again soon.
        pause_client(c);
        return;
      }
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // Connection damage: abandon the stream; the session will drain
        // what was accepted and close.
        c.eof = true;
        loop.unwatch_fd(fd);
        mux->stream_close(c.sid);
        return;
      }
      if (n == 0) {
        // Half-close: the client's byte stream is complete.
        c.eof = true;
        loop.unwatch_fd(fd);
        mux->stream_close(c.sid);
        log("stream s" + std::to_string(c.sid) + " eof after " +
            std::to_string(c.bytes_in) + " bytes");
        return;
      }
      c.bytes_in += static_cast<std::uint64_t>(n);
      mux->stream_write(c.sid, std::span<const std::uint8_t>{
                                   buf, static_cast<std::size_t>(n)});
    }
  }

  void pause_client(Client& c) {
    // Stop consuming the client socket entirely; the kernel's TCP window
    // backpressures the client.  No polling: the mux fires the stream
    // resume handler the moment the session accepts again.
    loop.unwatch_fd(c.fd);
    c.paused = true;
  }

  void on_stream_resume(std::uint32_t sid) {
    const auto sit = sid_to_fd.find(sid);
    if (sit == sid_to_fd.end()) return;
    const auto it = clients.find(sit->second);
    if (it == clients.end() || !it->second.paused || it->second.eof) return;
    // The signal can arrive from inside datagram processing — defer the
    // re-watch and the read loop to a fresh loop turn.
    const int fd = it->second.fd;
    loop.sim().cancel(it->second.resume_event);
    it->second.resume_event = loop.sim().schedule_in(Time{}, [this, fd] {
      const auto cit = clients.find(fd);
      if (cit == clients.end() || cit->second.eof) return;
      cit->second.resume_event = 0;
      if (!mux->stream_accepting(cit->second.sid)) return;  // filled again
      cit->second.paused = false;
      loop.watch_fd(fd, [this, fd] { on_client_readable(fd); });
      on_client_readable(fd);
    });
  }

  void finish_client(std::uint32_t sid, bool ok, const char* why) {
    const auto sit = sid_to_fd.find(sid);
    if (sit == sid_to_fd.end()) return;
    const int fd = sit->second;
    const auto cit = clients.find(fd);
    if (cit != clients.end()) {
      std::string line =
          ok ? "OK " + std::to_string(cit->second.bytes_in) + "\n"
             : std::string("ERR ") + why + "\n";
      (void)!::write(fd, line.data(), line.size());
      loop.unwatch_fd(fd);
      loop.sim().cancel(cit->second.resume_event);
      ::close(fd);
      clients.erase(cit);
    }
    sid_to_fd.erase(sit);
  }

  void on_stream_state(std::uint32_t sid, lams::SessionSender::State s) {
    using State = lams::SessionSender::State;
    if (s != State::kClosed && s != State::kFailed) return;
    const bool ok = s == State::kClosed;
    log("stream s" + std::to_string(sid) + (ok ? " closed" : " FAILED"));
    finish_client(sid, ok, "session-failed");
    ++completed;
    if (!ok) ++failed;
    // Retire the session's state outside the state callback (the sender is
    // mid-transition under our feet).
    loop.sim().schedule_in(Time{}, [this, sid] { mux->drop_stream(sid); });
    maybe_exit();
  }

  // ----------------------------------------------------------- delivery --

  void on_inbound_data(PeerId peer, std::uint32_t sid,
                       std::span<const std::uint8_t> bytes) {
    if (cfg.deliver_dir.empty()) return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(peer) << 32) | sid;
    auto it = deliveries.find(key);
    if (it == deliveries.end()) {
      Delivery d;
      d.final_base = cfg.deliver_dir + "/stream-p" + std::to_string(peer) +
                     "-s" + std::to_string(sid);
      d.part_path = d.final_base + ".part";
      d.file.open(d.part_path, std::ios::binary | std::ios::trunc);
      if (!d.file) log("deliver open failed: " + d.part_path);
      it = deliveries.emplace(key, std::move(d)).first;
    }
    it->second.file.write(reinterpret_cast<const char*>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()));
    it->second.bytes += bytes.size();
  }

  void on_inbound_end(PeerId peer, std::uint32_t sid, bool clean) {
    log("inbound s" + std::to_string(sid) +
        (clean ? " complete" : " INCOMPLETE"));
    if (!cfg.deliver_dir.empty()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(peer) << 32) | sid;
      const auto it = deliveries.find(key);
      if (it != deliveries.end()) {
        it->second.file.close();
        // Rename-on-complete: consumers never observe a torn file.
        const std::string target =
            it->second.final_base + (clean ? ".bin" : ".err");
        if (std::rename(it->second.part_path.c_str(), target.c_str()) != 0) {
          log("rename failed: " + target);
        }
        deliveries.erase(it);
      }
    }
    ++completed;
    if (!clean) ++failed;
    maybe_exit();
  }

  void maybe_exit() {
    if (cfg.exit_after_streams != 0 && completed >= cfg.exit_after_streams) {
      log("exit-after-streams reached");
      // Let in-flight CLOSE-ACK retransmissions settle before tearing the
      // loop down, so the peer also ends clean.
      loop.sim().schedule_in(Time::milliseconds(50), [this] { loop.stop(); });
    }
  }

  void shutdown() {
    for (auto& [fd, c] : clients) {
      loop.unwatch_fd(fd);
      ::close(fd);
    }
    clients.clear();
    sid_to_fd.clear();
    if (listen_fd >= 0) {
      loop.unwatch_fd(listen_fd);
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (auto& [sid, cap] : captures) {
      cap->file.flush();
    }
  }
};

Daemon::Daemon(DaemonConfig cfg) : impl_{std::make_unique<Impl>(std::move(cfg))} {}

Daemon::~Daemon() {
  if (impl_) impl_->shutdown();
}

void Daemon::start() { impl_->start(); }

void Daemon::run() {
  impl_->loop.run();
  // Captures must be complete on disk the moment run() returns — callers
  // (tests, the smoke script) read them before the daemon is destroyed.
  for (auto& [sid, cap] : impl_->captures) cap->file.flush();
}

void Daemon::stop() { impl_->loop.stop(); }

std::uint16_t Daemon::udp_port() const noexcept {
  return impl_->udp ? impl_->udp->local_port() : 0;
}

std::uint16_t Daemon::bridge_port() const noexcept {
  return impl_->bridge_port;
}

std::uint32_t Daemon::streams_completed() const noexcept {
  return impl_->completed;
}

std::uint32_t Daemon::streams_failed() const noexcept {
  return impl_->failed;
}

SessionMux& Daemon::mux() { return *impl_->mux; }

EventLoop& Daemon::loop() { return impl_->loop; }

}  // namespace lamsdlc::rt
