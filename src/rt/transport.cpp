#include "lamsdlc/rt/transport.hpp"

#include <algorithm>

#include "lamsdlc/frame/envelope.hpp"

namespace lamsdlc::rt {

// ---------------------------------------------------------------------------
// LoopbackTransport

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
LoopbackTransport::make_pair(EventLoop& loop, Time one_way) {
  auto hub = std::make_shared<Hub>();
  auto a = std::unique_ptr<LoopbackTransport>(
      new LoopbackTransport{loop, one_way, hub, /*is_a=*/true});
  auto b = std::unique_ptr<LoopbackTransport>(
      new LoopbackTransport{loop, one_way, hub, /*is_a=*/false});
  hub->a = a.get();
  hub->b = b.get();
  return {std::move(a), std::move(b)};
}

LoopbackTransport::~LoopbackTransport() {
  (is_a_ ? hub_->a : hub_->b) = nullptr;
}

bool LoopbackTransport::send(PeerId peer,
                             std::span<const std::uint8_t> datagram) {
  if (peer != 0 || datagram.size() > max_datagram()) return false;
  // Deliver through the loop, never inline: the receiver's handler must not
  // run inside the sender's stack frame (same discipline as a socket).
  std::vector<std::uint8_t> copy{datagram.begin(), datagram.end()};
  const bool to_a = !is_a_;
  loop_.sim().schedule_in(
      one_way_, [hub = hub_, to_a, bytes = std::move(copy)] {
        LoopbackTransport* dst = to_a ? hub->a : hub->b;
        if (dst == nullptr) return;  // receiver died while we were in flight
        ++dst->delivered_;
        if (dst->on_recv_) dst->on_recv_(0, bytes);
      });
  return true;
}

// ---------------------------------------------------------------------------
// ImpairedTransport

ImpairedTransport::ImpairedTransport(EventLoop& loop, Transport& under,
                                     phy::FaultInjector& injector,
                                     RandomStream rng)
    : loop_{loop}, under_{under}, injector_{injector}, rng_{std::move(rng)} {}

void ImpairedTransport::dispatch(PeerId peer, std::vector<std::uint8_t> bytes,
                                 Time delay) {
  if (delay.is_zero()) {
    under_.send(peer, bytes);
    return;
  }
  loop_.sim().schedule_in(
      delay, [this, peer, b = std::move(bytes)] { under_.send(peer, b); });
}

bool ImpairedTransport::send(PeerId peer,
                             std::span<const std::uint8_t> datagram) {
  // Frame class from the envelope header: flag bit0 marks data (I-frames);
  // everything else — checkpoints, NAKs, session/RESYNC — is control.  This
  // is how a class-selective injector config (Affects::kControlOnly attacks
  // the feedback path) keeps working over a real socket.
  const bool is_data = datagram.size() >= 4 &&
                       (datagram[3] & frame::kEnvFlagData) != 0;
  const Time now = loop_.now();
  phy::FrameFate fate =
      injector_.fate(!is_data, now, now, datagram.size() * 8);
  if (fate.drop) {
    ++dropped_;
    return true;  // "sent", from the caller's point of view
  }

  std::vector<std::uint8_t> bytes{datagram.begin(), datagram.end()};
  if (fate.truncate && bytes.size() > 1) {
    // Header damage: shear the datagram mid-flight.  The far end refuses it
    // at the envelope length check — the live analogue of an FCS husk.
    bytes.resize(static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(bytes.size()) - 1)));
    ++damaged_;
  } else if (fate.corrupt) {
    // Real byte damage.  With the envelope header intact the inner frame's
    // FCS catches it; header hits die at the envelope door instead.
    const auto n = 1 + rng_.uniform_int(0, 3);
    for (std::int64_t i = 0; i < n; ++i) {
      bytes[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1))] ^=
          static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
    }
    ++damaged_;
  }

  for (std::uint32_t d = 0; d < fate.duplicates; ++d) {
    ++duplicated_;
    // Copies trail the original by their own jitter draw so they genuinely
    // reorder rather than arriving back-to-back.
    const Time extra = fate.delay + Time::microseconds(rng_.uniform_int(
                           1, std::max<std::int64_t>(
                                  1, injector_.config().max_jitter.ps() /
                                         1'000'000)));
    dispatch(peer, bytes, extra);
  }
  dispatch(peer, std::move(bytes), fate.delay);
  return true;
}

}  // namespace lamsdlc::rt
