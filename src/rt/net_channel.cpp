#include "lamsdlc/rt/net_channel.hpp"

#include <utility>
#include <variant>

namespace lamsdlc::rt {

NetChannel::~NetChannel() { loop_.sim().cancel(serializer_timer_); }

Time NetChannel::tx_time(const frame::Frame& f) const {
  const double bits = static_cast<double>(frame::encoded_size(f)) * 8.0;
  return Time::seconds(bits / cfg_.data_rate_bps);
}

void NetChannel::send(frame::Frame f) {
  if (busy_) {
    queue_.push_back(std::move(f));
    return;
  }
  transmit(std::move(f));
}

void NetChannel::transmit(frame::Frame f) {
  const Time tx = tx_time(f);

  frame::Envelope env;
  env.session_id = cfg_.session_id;
  env.to_receiver = cfg_.to_receiver;
  if (const auto* i = std::get_if<frame::IFrame>(&f.body)) {
    env.has_packet_id = true;
    env.packet_id = i->packet_id;
  }
  frame::encode_into(f, frame_buf_);
  env.payload = frame_buf_;  // copy; env_buf_ holds the assembled datagram
  frame::encode_envelope_into(env, env_buf_);
  if (transport_.send(cfg_.peer, env_buf_)) {
    ++sent_;
  } else {
    // A refused datagram is a lost frame; the ARQ recovers it like any
    // other loss.  Counted so operators can tell congestion from protocol
    // retransmission.
    ++send_failures_;
  }

  // Serializer model: the wire is occupied for the frame's tx_time even
  // though the datagram already left — this is what paces the sender.
  busy_ = true;
  serializer_timer_ = loop_.sim().schedule_in(tx, [this] { serializer_done(); });
}

void NetChannel::serializer_done() {
  if (!queue_.empty()) {
    frame::Frame next = std::move(queue_.front());
    queue_.pop_front();
    transmit(std::move(next));
    return;
  }
  busy_ = false;
  if (idle_cb_) idle_cb_();
}

}  // namespace lamsdlc::rt
