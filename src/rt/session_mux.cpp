#include "lamsdlc/rt/session_mux.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <variant>

#include "lamsdlc/frame/envelope.hpp"

namespace lamsdlc::rt {

// ---------------------------------------------------------------------------
// Per-stream state

struct SessionMux::TxSession {
  NetChannel channel;
  sim::DlcStats stats;
  lams::SessionSender sender;
  PeerId peer;
  std::uint32_t next_chunk = 0;
  std::size_t buffer_high_water = 0;

  TxSession(EventLoop& loop, Transport& t, const NetChannel::Config& ccfg,
            const lams::SessionConfig& scfg, obs::EventBus* bus)
      : channel{loop, t, ccfg},
        sender{loop.sim(), channel, scfg, &stats, {}, bus},
        peer{ccfg.peer} {}
};

struct SessionMux::RxSession final : sim::PacketListener {
  SessionMux& mux;
  PeerId peer;
  std::uint32_t sid;
  NetChannel channel;  ///< Feedback path (checkpoints, session ACKs).
  sim::DlcStats stats;
  lams::SessionReceiver receiver;
  /// Out-of-order chunks parked until their predecessors arrive.
  std::map<std::uint32_t, std::vector<std::uint8_t>> held;
  std::uint32_t next_index = 0;
  bool ended = false;

  RxSession(SessionMux& m, EventLoop& loop, Transport& t,
            const NetChannel::Config& ccfg, const lams::SessionConfig& scfg,
            obs::EventBus* bus)
      : mux{m},
        peer{ccfg.peer},
        sid{ccfg.session_id},
        channel{loop, t, ccfg},
        receiver{loop.sim(), channel, scfg, this, &stats, {}, bus} {
    receiver.set_lifecycle_callback(
        [this](bool in_session, std::uint32_t) { mux.end_rx(*this, in_session); });
  }

  void on_packet(const sim::Packet& p, Time) override {
    mux.on_rx_packet(*this, p);
  }
};

// ---------------------------------------------------------------------------

SessionMux::SessionMux(EventLoop& loop, Transport& transport, Config cfg)
    : loop_{loop}, transport_{transport}, cfg_{std::move(cfg)} {
  if (cfg_.decode_limits.seq_modulus == 0) {
    cfg_.decode_limits.seq_modulus = cfg_.session.lams.modulus;
  }
  transport_.set_recv_handler(
      [this](PeerId peer, std::span<const std::uint8_t> bytes) {
        on_datagram(peer, bytes);
      });
}

SessionMux::~SessionMux() { transport_.set_recv_handler({}); }

// ------------------------------------------------------- outbound streams --

void SessionMux::open_stream(PeerId peer, std::uint32_t session_id) {
  NetChannel::Config ccfg;
  ccfg.data_rate_bps = cfg_.data_rate_bps;
  ccfg.max_one_way = cfg_.max_one_way;
  ccfg.session_id = session_id;
  ccfg.peer = peer;
  ccfg.to_receiver = true;
  obs::EventBus* bus =
      cfg_.bus_for ? cfg_.bus_for(session_id, /*sender_side=*/true) : nullptr;
  lams::SessionConfig scfg = cfg_.session;
  if (scfg.lams.send_buffer_capacity ==
          std::numeric_limits<std::size_t>::max() &&
      cfg_.stream_buffer_packets > 0) {
    scfg.lams.send_buffer_capacity = cfg_.stream_buffer_packets;
  }
  auto tx = std::make_unique<TxSession>(loop_, transport_, ccfg, scfg, bus);
  tx->sender.set_state_callback(
      [this, session_id](lams::SessionSender::State s) {
        if (on_stream_state_) on_stream_state_(session_id, s);
      });
  tx->sender.set_can_accept_callback([this, session_id] {
    if (on_stream_resume_) on_stream_resume_(session_id);
  });
  TxSession& ref = *tx;
  tx_[session_id] = std::move(tx);
  ref.sender.open();
}

bool SessionMux::stream_write(std::uint32_t session_id,
                              std::span<const std::uint8_t> bytes) {
  const auto it = tx_.find(session_id);
  if (it == tx_.end()) return false;
  TxSession& tx = *it->second;
  for (std::size_t off = 0; off < bytes.size(); off += cfg_.chunk_bytes) {
    const std::size_t n = std::min<std::size_t>(cfg_.chunk_bytes,
                                                bytes.size() - off);
    sim::Packet p;
    p.id = (static_cast<frame::PacketId>(session_id) << 32) | tx.next_chunk;
    p.bytes = static_cast<std::uint32_t>(n);
    p.created_at = loop_.now();
    p.message_id = session_id;
    p.msg_index = tx.next_chunk;
    p.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                  bytes.begin() + static_cast<std::ptrdiff_t>(off + n));
    ++tx.next_chunk;
    tx.sender.submit(std::move(p));
    tx.buffer_high_water =
        std::max(tx.buffer_high_water, tx.sender.sending_buffer_depth());
  }
  return true;
}

void SessionMux::stream_close(std::uint32_t session_id) {
  const auto it = tx_.find(session_id);
  if (it != tx_.end()) it->second->sender.close();
}

void SessionMux::drop_stream(std::uint32_t session_id) {
  tx_.erase(session_id);
}

bool SessionMux::stream_accepting(std::uint32_t session_id) const {
  const auto it = tx_.find(session_id);
  return it != tx_.end() && it->second->sender.accepting();
}

std::size_t SessionMux::stream_buffer_high_water(
    std::uint32_t session_id) const {
  const auto it = tx_.find(session_id);
  return it == tx_.end() ? 0 : it->second->buffer_high_water;
}

lams::SessionSender* SessionMux::stream(std::uint32_t session_id) {
  const auto it = tx_.find(session_id);
  return it == tx_.end() ? nullptr : &it->second->sender;
}

const sim::DlcStats* SessionMux::stream_stats(
    std::uint32_t session_id) const {
  const auto it = tx_.find(session_id);
  return it == tx_.end() ? nullptr : &it->second->stats;
}

// ------------------------------------------------------ status snapshots --

std::vector<SessionMux::OutboundStatus> SessionMux::outbound_status() {
  std::vector<OutboundStatus> out;
  out.reserve(tx_.size());
  for (auto& [sid, tx] : tx_) {
    lams::LamsSender& inner = tx->sender.inner();
    OutboundStatus s;
    s.session_id = sid;
    s.peer = tx->peer;
    s.state = tx->sender.state();
    s.epoch = tx->sender.epoch();
    s.resync_attempts = tx->sender.resyncs();
    s.mode = inner.mode();
    s.outstanding_frames = inner.outstanding_frames();
    s.buffer_depth = inner.sending_buffer_depth();
    s.buffer_high_water = tx->buffer_high_water;
    s.rate_factor = inner.rate_factor();
    s.next_chunk = tx->next_chunk;
    s.packets_submitted = tx->stats.packets_submitted;
    s.packets_resolved = inner.packets_resolved();
    s.iframe_tx = tx->stats.iframe_tx;
    s.iframe_retx = tx->stats.iframe_retx;
    s.control_tx = tx->stats.control_tx;
    s.request_naks = inner.request_naks_sent();
    s.audit_trips = inner.self_audit_trips();
    s.resyncs_completed = inner.resyncs_completed();
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const OutboundStatus& a, const OutboundStatus& b) {
              return a.session_id < b.session_id;
            });
  return out;
}

std::vector<SessionMux::InboundStatus> SessionMux::inbound_status() {
  std::vector<InboundStatus> out;
  out.reserve(rx_.size());
  for (auto& [key, rx] : rx_) {
    lams::LamsReceiver& inner = rx->receiver.inner();
    InboundStatus s;
    s.peer = rx->peer;
    s.session_id = rx->sid;
    s.in_session = rx->receiver.in_session();
    s.ended = rx->ended;
    s.epoch = rx->receiver.epoch();
    s.inits_accepted = rx->receiver.inits_accepted();
    s.held_packets = rx->held.size();
    s.next_index = rx->next_index;
    s.packets_delivered = rx->stats.packets_delivered;
    s.duplicates = rx->stats.duplicates_delivered;
    s.checkpoints_sent = inner.checkpoints_sent();
    s.naks_generated = inner.naks_generated();
    s.iframe_corrupted_rx = rx->stats.iframe_corrupted_rx;
    s.control_corrupted_rx = rx->stats.control_corrupted_rx;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const InboundStatus& a, const InboundStatus& b) {
              return a.peer != b.peer ? a.peer < b.peer
                                      : a.session_id < b.session_id;
            });
  return out;
}

// -------------------------------------------------------- inbound streams --

const sim::DlcStats* SessionMux::inbound_stats(
    PeerId peer, std::uint32_t session_id) const {
  const auto it = rx_.find(rx_key(peer, session_id));
  return it == rx_.end() ? nullptr : &it->second->stats;
}

void SessionMux::on_rx_packet(RxSession& rx, const sim::Packet& p) {
  const auto index = static_cast<std::uint32_t>(p.id & 0xFFFFFFFFu);
  if (index < rx.next_index || rx.held.contains(index)) {
    // RESYNC re-delivery (or a duplicate fault): the paper moves
    // de-duplication to the destination — this is the destination.
    ++rx.stats.duplicates_delivered;
    return;
  }
  ++rx.stats.packets_delivered;
  auto& slot = rx.held[index];
  if (!p.data.empty()) {
    slot = p.data;
  } else {
    slot.assign(p.bytes, 0);  // length-only workload (simulated traffic)
  }
  flush_rx(rx);
}

void SessionMux::flush_rx(RxSession& rx) {
  while (!rx.held.empty() && rx.held.begin()->first == rx.next_index) {
    const std::vector<std::uint8_t>& chunk = rx.held.begin()->second;
    if (on_inbound_data_) on_inbound_data_(rx.peer, rx.sid, chunk);
    rx.held.erase(rx.held.begin());
    ++rx.next_index;
  }
}

void SessionMux::end_rx(RxSession& rx, bool in_session_now) {
  if (in_session_now) {
    // INIT (first, re-INIT, or RESYNC epoch bump): the byte stream
    // continues — reassembly state must survive a resynchronization.
    rx.ended = false;
    return;
  }
  // CLOSE: every chunk below next_index was handed up contiguously; any
  // parked chunk means a hole the drain should have made impossible.
  rx.ended = true;
  if (on_inbound_end_) on_inbound_end_(rx.peer, rx.sid, rx.held.empty());
}

// ------------------------------------------------------------- datagrams --

void SessionMux::on_datagram(PeerId peer,
                             std::span<const std::uint8_t> bytes) {
  frame::EnvelopeReject env_why = frame::EnvelopeReject::kNone;
  const auto env = frame::decode_envelope(bytes, &env_why);
  if (!env.has_value()) {
    ++undecodable_;
    envelope_rejects_.count(env_why);
    return;
  }
  frame::DecodeReject frame_why = frame::DecodeReject::kNone;
  auto f = frame::decode(env->payload, cfg_.decode_limits, &frame_why);
  if (!f.has_value()) {
    // Damaged in flight (ImpairedTransport, or a real network).  Unlike the
    // simulated channel there is no corrupted husk to deliver — a lost
    // datagram and an unreadable one are the same event up here, and the
    // checkpoint machinery recovers both.
    ++undecodable_;
    frame_rejects_.count(frame_why);
    return;
  }
  if (env->to_receiver) {
    route_to_receiver(peer, env->session_id, std::move(*f), env->packet_id,
                      env->has_packet_id);
  } else {
    route_to_sender(env->session_id, std::move(*f));
  }
}

void SessionMux::route_to_receiver(PeerId peer, std::uint32_t sid,
                                   frame::Frame f, frame::PacketId packet_id,
                                   bool is_data) {
  const std::uint64_t key = rx_key(peer, sid);
  auto it = rx_.find(key);

  // Peer restart / session-id reuse: a *fresh* initiator starts over at a
  // low epoch.  If our old receiver state is closed, tear it down so the
  // new INIT is judged against a clean epoch history instead of being
  // discarded as stale.
  if (it != rx_.end() && !f.corrupted) {
    if (const auto* s = std::get_if<frame::SessionFrame>(&f.body)) {
      if (s->kind == frame::SessionFrame::Kind::kInit &&
          !it->second->receiver.in_session() &&
          s->epoch <= it->second->receiver.epoch()) {
        rx_.erase(it);
        it = rx_.end();
      }
    }
  }

  if (it == rx_.end()) {
    if (!cfg_.accept_inbound) {
      ++unroutable_;
      return;
    }
    NetChannel::Config ccfg;
    ccfg.data_rate_bps = cfg_.data_rate_bps;
    ccfg.max_one_way = cfg_.max_one_way;
    ccfg.session_id = sid;
    ccfg.peer = peer;
    ccfg.to_receiver = false;  // our replies travel the feedback direction
    obs::EventBus* bus =
        cfg_.bus_for ? cfg_.bus_for(sid, /*sender_side=*/false) : nullptr;
    it = rx_.emplace(key, std::make_unique<RxSession>(
                              *this, loop_, transport_, ccfg, cfg_.session,
                              bus))
             .first;
  }

  if (is_data) {
    // Restore the identity the link codec intentionally omits.
    if (auto* i = std::get_if<frame::IFrame>(&f.body)) {
      i->packet_id = packet_id;
    }
  }
  it->second->receiver.on_frame(std::move(f));
}

void SessionMux::route_to_sender(std::uint32_t sid, frame::Frame f) {
  const auto it = tx_.find(sid);
  if (it == tx_.end()) {
    ++unroutable_;
    return;
  }
  if (auto* cp = std::get_if<frame::CheckpointFrame>(&f.body)) {
    // Checkpoint age normalization: stamp the oldest instant this
    // checkpoint could have been generated, per the configured delay
    // bound, so the release rule reasons in local time only.
    const Time floor_at = loop_.now() - cfg_.max_one_way;
    cp->generated_at = std::max(Time{}, floor_at);
  }
  it->second->sender.on_frame(std::move(f));
}

}  // namespace lamsdlc::rt
