#include "lamsdlc/rt/event_loop.hpp"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

namespace lamsdlc::rt {

void SimClock::watch_fd(int, std::function<void()>) {
  throw std::logic_error(
      "SimClock::watch_fd: file descriptors need a wall clock; "
      "a simulated run has no sockets");
}

namespace {

std::int64_t monotonic_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

WallClock::WallClock() : t0_ns_{monotonic_ns()} {}

Time WallClock::wall_now() const noexcept {
  return Time::nanoseconds(monotonic_ns() - t0_ns_);
}

void WallClock::stop() {
  stopped_ = true;
  sim_.stop();  // halt a run_until() in progress too
}

void WallClock::watch_fd(int fd, std::function<void()> on_readable) {
  for (Watch& w : watches_) {
    if (w.fd == fd) {
      w.on_readable = std::move(on_readable);
      return;
    }
  }
  watches_.push_back(Watch{fd, std::move(on_readable)});
}

void WallClock::unwatch_fd(int fd) {
  std::erase_if(watches_, [fd](const Watch& w) { return w.fd == fd; });
}

void WallClock::run() {
  stopped_ = false;
  std::vector<pollfd> pfds;
  while (!stopped_) {
    // Advance the kernel to the wall: every timer due by now fires, in
    // timestamp order, exactly as it would under simulation.
    const Time now = wall_now();
    if (tick_observer_) {
      const Time due = sim_.next_event_time();
      if (due != Time::max() && due <= now) {
        tick_observer_((now.ps() - due.ps()) / 1'000);
      }
    }
    sim_.run_until(now);
    if (stopped_) break;

    const Time next = sim_.next_event_time();
    if (next == Time::max() && watches_.empty()) break;  // out of work

    // Sleep until the earliest deadline (ns precision via ppoll) or an fd.
    timespec ts{};
    timespec* tsp = nullptr;
    if (next != Time::max()) {
      const std::int64_t wait_ns = std::max<std::int64_t>(
          0, static_cast<std::int64_t>(next.ps() - wall_now().ps()) / 1'000);
      ts.tv_sec = wait_ns / 1'000'000'000;
      ts.tv_nsec = wait_ns % 1'000'000'000;
      tsp = &ts;
    }
    pfds.clear();
    for (const Watch& w : watches_) {
      pfds.push_back(pollfd{w.fd, POLLIN, 0});
    }
    const int rc = ppoll(pfds.data(), pfds.size(), tsp, nullptr);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WallClock::run: ppoll failed");
    }
    if (rc > 0) {
      // Handlers may watch/unwatch mid-drain; re-resolve each fd against
      // the live watch list and skip ones that vanished.
      for (const pollfd& p : pfds) {
        if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
        if (stopped_) break;
        const auto it = std::find_if(
            watches_.begin(), watches_.end(),
            [&p](const Watch& w) { return w.fd == p.fd; });
        if (it == watches_.end()) continue;
        // Copy before calling: the handler may watch/unwatch and reallocate
        // the vector out from under the iterator.
        const std::function<void()> fn = it->on_readable;
        if (fn) fn();
      }
    }
  }
}

}  // namespace lamsdlc::rt
