#include "lamsdlc/core/trace.hpp"

#include <iomanip>

namespace lamsdlc {

Tracer::Sink Tracer::print_to(std::ostream& os) {
  return [&os](const TraceEvent& e) {
    os << "[" << std::setw(12) << std::fixed << std::setprecision(6)
       << e.at.sec() << "s] " << e.source << ": " << e.what << "\n";
  };
}

namespace {
void write_json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}
}  // namespace

Tracer::Sink Tracer::jsonl_to(std::ostream& os) {
  return [&os](const TraceEvent& e) {
    os << "{\"t_ps\":" << e.at.ps() << ",\"src\":\"";
    write_json_escaped(os, e.source);
    os << "\",\"msg\":\"";
    write_json_escaped(os, e.what);
    os << "\"}\n";
  };
}

}  // namespace lamsdlc
