#include "lamsdlc/core/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lamsdlc {

EventId Simulator::schedule_at(Time at, Priority prio, Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  }
  if (!cb) {
    throw std::invalid_argument("Simulator::schedule_at: empty callback");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint32_t gen = slots_[slot].gen;
  slots_[slot].cb = std::move(cb);
  const std::uint64_t seq =
      (static_cast<std::uint64_t>(prio) << 48) |
      (next_seq_++ & ((std::uint64_t{1} << 48) - 1));
  heap_.push_back(Entry{at, seq, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return pack(slot, gen);
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = unpack_slot(id);
  if (slot >= slots_.size() || slots_[slot].gen != unpack_gen(id)) return false;
  // O(1): invalidate the id and destroy the callback now (its captures are
  // released immediately); the 24-byte heap entry is a tombstone, reclaimed
  // when it surfaces at the top — or by compaction below.
  slots_[slot].cb = Callback{};
  retire_slot(slot);
  --live_;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  // A timer re-armed in a loop (cancel + far-future re-schedule) strands
  // every cancelled entry near the bottom of the heap, where lazy reclaim
  // never reaches.  Once tombstones outnumber live events, sweep them out
  // and re-heapify: O(heap) work paid at most every O(heap) cancels, so the
  // heap stays within 2x of the live population.
  const std::size_t tombstones = heap_.size() - live_;
  if (tombstones <= live_ || tombstones < 64) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void Simulator::drop_stale_top() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

bool Simulator::dispatch_next() {
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    if (!entry_live(e)) {
      drop_stale_top();  // tombstone of a cancelled event
      continue;
    }
    drop_stale_top();  // same pop; the entry itself was copied out above
    Callback cb = std::move(slots_[e.slot].cb);
    retire_slot(e.slot);  // fired: the id is now stale, the slot reusable
    --live_;
    now_ = e.at;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next()) {
  }
}

Time Simulator::next_event_time() noexcept {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    drop_stale_top();
  }
  return heap_.empty() ? Time::max() : heap_.front().at;
}

void Simulator::run_until(Time horizon) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past tombstones to find the next live event time.
    while (!heap_.empty() && !entry_live(heap_.front())) {
      drop_stale_top();
    }
    if (heap_.empty() || heap_.front().at > horizon) {
      break;
    }
    dispatch_next();
  }
  if (now_ < horizon && !stopped_) {
    now_ = horizon;
  }
}

void Simulator::run_before(Time limit) {
  stopped_ = false;
  while (!stopped_) {
    while (!heap_.empty() && !entry_live(heap_.front())) {
      drop_stale_top();
    }
    if (heap_.empty() || heap_.front().at >= limit) {
      break;
    }
    dispatch_next();
  }
  if (now_ < limit && !stopped_) {
    now_ = limit;
  }
}

std::ostream& operator<<(std::ostream& os, Time t) {
  const std::int64_t ps = t.ps();
  if (ps % 1'000'000'000'000 == 0) return os << ps / 1'000'000'000'000 << "s";
  if (ps % 1'000'000'000 == 0) return os << ps / 1'000'000'000 << "ms";
  if (ps % 1'000'000 == 0) return os << ps / 1'000'000 << "us";
  if (ps % 1'000 == 0) return os << ps / 1'000 << "ns";
  return os << ps << "ps";
}

}  // namespace lamsdlc
