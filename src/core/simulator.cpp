#include "lamsdlc/core/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace lamsdlc {

EventId Simulator::schedule_at(Time at, Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  }
  if (!cb) {
    throw std::invalid_argument("Simulator::schedule_at: empty callback");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::pending(EventId id) const { return callbacks_.contains(id); }

bool Simulator::dispatch_next() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // tombstone of a cancelled event
      continue;
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    queue_.pop();
    now_ = e.at;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next()) {
  }
}

void Simulator::run_until(Time horizon) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past tombstones to find the next live event time.
    while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > horizon) {
      break;
    }
    dispatch_next();
  }
  if (now_ < horizon && !stopped_) {
    now_ = horizon;
  }
}

std::ostream& operator<<(std::ostream& os, Time t) {
  const std::int64_t ps = t.ps();
  if (ps % 1'000'000'000'000 == 0) return os << ps / 1'000'000'000'000 << "s";
  if (ps % 1'000'000'000 == 0) return os << ps / 1'000'000'000 << "ms";
  if (ps % 1'000'000 == 0) return os << ps / 1'000'000 << "us";
  if (ps % 1'000 == 0) return os << ps / 1'000 << "ns";
  return os << ps << "ps";
}

}  // namespace lamsdlc
