#include "lamsdlc/sim/sweep.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

namespace lamsdlc::sim {

ParallelSweep::ParallelSweep(unsigned threads)
    : threads_{threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())} {}

void ParallelSweep::for_each(std::size_t n,
                             const std::function<void(std::size_t)>& fn) const {
  const unsigned t =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n == 0 ? 1 : n));
  if (t <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One index queue per worker.  Indices are dealt round-robin so every
  // worker starts with a spread of the index space (neighbouring seeds tend
  // to cost alike); a worker whose queue runs dry steals from the tail of
  // its neighbours'.  Tasks never spawn tasks, so a worker finding every
  // queue empty is done.
  struct Queue {
    std::mutex m;
    std::deque<std::size_t> d;
  };
  std::vector<Queue> queues(t);
  for (std::size_t i = 0; i < n; ++i) queues[i % t].d.push_back(i);

  std::mutex err_m;
  std::exception_ptr first_error;
  auto worker = [&](unsigned self) {
    for (;;) {
      std::optional<std::size_t> task;
      {
        std::lock_guard lk{queues[self].m};
        if (!queues[self].d.empty()) {
          task = queues[self].d.front();
          queues[self].d.pop_front();
        }
      }
      if (!task) {
        for (unsigned k = 1; k < t && !task; ++k) {
          Queue& q = queues[(self + k) % t];
          std::lock_guard lk{q.m};
          if (!q.d.empty()) {
            task = q.d.back();  // steal from the cold end
            q.d.pop_back();
          }
        }
      }
      if (!task) return;
      try {
        fn(*task);
      } catch (...) {
        std::lock_guard lk{err_m};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(t - 1);
  for (unsigned w = 1; w < t; ++w) pool.emplace_back(worker, w);
  worker(0);  // the calling thread is worker 0
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ChaosVerdict> run_chaos_sweep(const ChaosKnobs& base,
                                          std::uint64_t first_seed,
                                          std::uint64_t count,
                                          unsigned threads) {
  ParallelSweep pool{threads};
  return pool.map<ChaosVerdict>(
      static_cast<std::size_t>(count), [&base, first_seed](std::size_t i) {
        ChaosKnobs k = base;
        k.seed = first_seed + i;
        return run_chaos(k);
      });
}

}  // namespace lamsdlc::sim
