#include "lamsdlc/sim/chaos.hpp"

#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "lamsdlc/obs/sampler.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/sim/invariants.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::sim {

namespace {

/// One drawn fault episode, kept for the reproduction transcript.
struct Episode {
  bool reverse = false;
  const char* kind = "";
  phy::FaultInjector::Affects affects = phy::FaultInjector::Affects::kAll;
  double p = 0.0;
  Time from{};
  Time len{};
};

const char* affects_name(phy::FaultInjector::Affects a) {
  switch (a) {
    case phy::FaultInjector::Affects::kAll:
      return "all";
    case phy::FaultInjector::Affects::kDataOnly:
      return "data";
    case phy::FaultInjector::Affects::kControlOnly:
      return "control";
  }
  return "?";
}

}  // namespace

std::string ChaosVerdict::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATED")
     << (completed ? " (completed)"
                   : declared_failed ? " (declared failure)" : " (incomplete)")
     << "\n";
  for (const std::string& v : violations) os << "  violation: " << v << "\n";
  os << schedule;
  return os.str();
}

ChaosVerdict run_chaos(const ChaosKnobs& knobs) {
  RandomStream rng{knobs.seed, "chaos.schedule"};
  std::ostringstream schedule;
  schedule << "chaos seed=" << knobs.seed << " packets=" << knobs.packets
           << "\n";

  // Jitter must stay below the sender's release margin, or a late (but
  // delivered) frame would be misread as provably undelivered and
  // retransmitted into a duplicate client delivery (Section 3.2's release
  // rule assumes bounded delivery-time skew).
  const Time kMaxJitter = Time::microseconds(500);

  ScenarioConfig cfg;
  cfg.protocol = Protocol::kLams;
  cfg.metrics = true;  // chaos verdicts read their counters from the registry
  cfg.data_rate_bps = 100e6;
  cfg.prop_delay = Time::milliseconds(5);
  cfg.frame_bytes = knobs.frame_bytes;
  cfg.seed = knobs.seed;
  cfg.batched_delivery = knobs.batched_delivery;
  cfg.lams.checkpoint_interval = Time::milliseconds(5);
  cfg.lams.cumulation_depth = 4;
  cfg.lams.max_rtt = Time::milliseconds(15);
  cfg.lams.release_margin = kMaxJitter + Time::microseconds(200);
  cfg.lams.suppress_duplicates = knobs.suppress_duplicates;
  if (!knobs.suppress_duplicates) schedule << "  ablation: duplicate suppression OFF\n";

  Time fault_span{};  // Total scheduled fault time, for the invariant grace.

  // Background channel noise (plain corruption, the paper's own fault class).
  if (knobs.allow_base_noise && rng.bernoulli(0.5)) {
    cfg.forward_error.kind = ErrorConfig::Kind::kFixedFrameProb;
    cfg.forward_error.p_frame = rng.uniform(0.0, 0.25);
    cfg.forward_error.p_control = rng.uniform(0.0, 0.15);
    cfg.reverse_error.kind = ErrorConfig::Kind::kFixedFrameProb;
    cfg.reverse_error.p_frame = rng.uniform(0.0, 0.15);
    cfg.reverse_error.p_control = cfg.reverse_error.p_frame;
    schedule << "  base noise: pf=" << cfg.forward_error.p_frame
             << " pc_fwd=" << cfg.forward_error.p_control
             << " p_rev=" << cfg.reverse_error.p_frame << "\n";
  }

  // Feedback-error asymmetry pin: overrides whatever the schedule drew for
  // the reverse channel, leaving the forward channel and every subsequent
  // random draw untouched (the sweep varies only feedback quality).
  if (knobs.reverse_noise >= 0.0) {
    cfg.reverse_error.kind = ErrorConfig::Kind::kFixedFrameProb;
    cfg.reverse_error.p_frame = knobs.reverse_noise;
    cfg.reverse_error.p_control = knobs.reverse_noise;
    schedule << "  reverse noise pinned: p_rev=" << knobs.reverse_noise
             << "\n";
  }

  if (knobs.self_heal) {
    cfg.lams.self_audit_period = cfg.lams.checkpoint_interval * 2;
    cfg.lams.resync_enabled = true;
    cfg.lams.resync_watchdog = cfg.lams.failure_timeout() * 2;
    cfg.lams.implausible_ack_threshold = 3;
    schedule << "  self-heal: audit=" << cfg.lams.self_audit_period.ms()
             << "ms watchdog=" << cfg.lams.resync_watchdog.ms() << "ms\n";
  }

  // Congestion: slow receiver processing against small buffers forces
  // Stop-Go and (with the hard cap) congestion discards.
  if (knobs.allow_congestion && rng.bernoulli(0.4)) {
    cfg.lams.t_proc = Time::microseconds(rng.uniform_int(100, 300));
    cfg.lams.recv_high_watermark =
        static_cast<std::size_t>(rng.uniform_int(8, 32));
    cfg.lams.recv_hard_capacity =
        cfg.lams.recv_high_watermark +
        static_cast<std::size_t>(rng.uniform_int(4, 16));
    schedule << "  congestion: t_proc=" << cfg.lams.t_proc.us()
             << "us watermark=" << cfg.lams.recv_high_watermark
             << " hard_cap=" << cfg.lams.recv_hard_capacity << "\n";
  }

  // Draw the fault episodes.
  std::vector<const char*> kinds;
  if (knobs.allow_drop) kinds.push_back("drop");
  if (knobs.allow_duplicate) kinds.push_back("duplicate");
  if (knobs.allow_reorder) kinds.push_back("reorder");
  if (knobs.allow_truncate) kinds.push_back("truncate");
  if (knobs.allow_corrupt) kinds.push_back("corrupt");
  std::vector<Episode> episodes;
  if (!kinds.empty() &&
      (knobs.allow_forward_faults || knobs.allow_reverse_faults)) {
    const auto n = 1 + rng.uniform_int(0, 3);
    for (std::int64_t i = 0; i < n; ++i) {
      Episode e;
      if (knobs.allow_forward_faults && knobs.allow_reverse_faults) {
        e.reverse = rng.bernoulli(0.5);
      } else {
        e.reverse = knobs.allow_reverse_faults;
      }
      e.kind = kinds[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
      // The reverse channel only carries control traffic; on the forward
      // channel, half the episodes spare the Request-NAK path (data-only) —
      // the class-selective case the feedback-error literature studies.
      e.affects = (!e.reverse && rng.bernoulli(0.5))
                      ? phy::FaultInjector::Affects::kDataOnly
                      : phy::FaultInjector::Affects::kAll;
      e.p = rng.uniform(0.25, 1.0);
      e.from = Time::milliseconds(rng.uniform_int(0, 80));
      e.len = Time::milliseconds(rng.uniform_int(2, 30));
      fault_span += e.len;
      episodes.push_back(e);
      schedule << "  episode " << i << ": " << (e.reverse ? "reverse" : "forward")
               << " " << e.kind << " affects=" << affects_name(e.affects)
               << " p=" << e.p << " window=[" << e.from.ms() << "ms, "
               << (e.from + e.len).ms() << "ms)\n";
    }
  }

  // Full two-way outage: pointing loss.  Long outages lawfully end in a
  // declared unrecoverable failure, which the checker audits for clean
  // residue accounting.
  Time outage_from{}, outage_len{};
  if (knobs.allow_link_outage && rng.bernoulli(0.3)) {
    outage_from = Time::milliseconds(rng.uniform_int(5, 60));
    outage_len = Time::milliseconds(rng.uniform_int(5, 80));
    fault_span += outage_len;
    schedule << "  link outage: [" << outage_from.ms() << "ms, "
             << (outage_from + outage_len).ms() << "ms)\n";
  }

  // Reverse-only outage (feedback blackout): checkpoints vanish while data
  // keeps flowing, so the sender's silence detector — not the receiver —
  // must carry the episode.
  if (!knobs.reverse_outage_len.is_zero()) {
    fault_span += knobs.reverse_outage_len;
    schedule << "  reverse outage: [" << knobs.reverse_outage_from.ms()
             << "ms, "
             << (knobs.reverse_outage_from + knobs.reverse_outage_len).ms()
             << "ms)\n";
  }

  Scenario s{cfg};
  if (knobs.tap) knobs.tap(s);
  // Declared after `s` so it is destroyed first — its dtor cancels the
  // pending tick before the simulator goes away.
  std::optional<obs::Sampler> sampler;
  if (!knobs.sample_period.is_zero()) {
    sampler.emplace(s.simulator(), s.metrics(), s.events(),
                    knobs.sample_period);
    sampler->start();
  }

  std::size_t stage_idx = 0;
  std::vector<const phy::FaultInjector*> all_stages;
  std::vector<const phy::FaultInjector*> reverse_stages;
  for (const Episode& e : episodes) {
    phy::FaultInjector::Config fc;
    fc.affects = e.affects;
    fc.windows.push_back({e.from, e.from + e.len});
    fc.max_jitter = kMaxJitter;
    const std::string kind{e.kind};
    if (kind == "drop") fc.p_drop = e.p;
    if (kind == "duplicate") fc.p_duplicate = e.p;
    if (kind == "reorder") fc.p_reorder = e.p;
    if (kind == "truncate") fc.p_truncate = e.p;
    if (kind == "corrupt") fc.p_corrupt = e.p;
    auto stage = std::make_unique<phy::FaultInjector>(
        fc, RandomStream{knobs.seed, "chaos.fault." + std::to_string(stage_idx++)});
    all_stages.push_back(stage.get());
    if (e.reverse) {
      reverse_stages.push_back(stage.get());
      s.link().reverse().add_fault_stage(std::move(stage));
    } else {
      s.link().forward().add_fault_stage(std::move(stage));
    }
  }
  if (!outage_len.is_zero()) {
    s.simulator().schedule_at(outage_from, [&s] { s.link().set_up(false); });
    s.simulator().schedule_at(outage_from + outage_len,
                              [&s] { s.link().set_up(true); });
  }
  if (!knobs.reverse_outage_len.is_zero()) {
    s.simulator().schedule_at(knobs.reverse_outage_from,
                              [&s] { s.link().reverse().set_up(false); });
    s.simulator().schedule_at(
        knobs.reverse_outage_from + knobs.reverse_outage_len,
        [&s] { s.link().reverse().set_up(true); });
  }

  InvariantLimits limits;
  limits.max_outstanding = knobs.packets;
  limits.max_holding = cfg.lams.resolving_period_bound();
  // With a finite hard capacity the congestion discard must keep the
  // t_proc pipeline at or below it; an infinite capacity stays unchecked.
  if (cfg.lams.recv_hard_capacity != static_cast<std::size_t>(-1)) {
    limits.max_recv_buffer = cfg.lams.recv_hard_capacity;
  }
  // Faults lawfully stall releases for their whole span plus a recovery, and
  // Stop-Go pacing stretches the retransmission queue; the flat term covers
  // the congestion-throttled drain.
  limits.grace = fault_span * 2 + Time::milliseconds(500);
  limits.seed = knobs.seed;
  InvariantChecker checker{s, limits};

  // Workload shape: one batch burst, or a paced arrival stream.
  std::unique_ptr<workload::RateSource> source;
  if (rng.bernoulli(0.4)) {
    const Time gap = Time::microseconds(rng.uniform_int(100, 500));
    const bool backpressure = rng.bernoulli(0.5);
    schedule << "  workload: rate gap=" << gap.us() << "us backpressure="
             << (backpressure ? "yes" : "no") << "\n";
    source = std::make_unique<workload::RateSource>(
        s.simulator(), s.sender(), s.tracker(), s.ids(),
        workload::RateSource::Config{gap, knobs.packets, knobs.frame_bytes,
                                     Time{}, backpressure});
    source->start();
  } else {
    schedule << "  workload: batch\n";
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           knobs.packets, knobs.frame_bytes);
  }

  const bool completed = s.run_to_completion(knobs.horizon);
  const bool failed =
      s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;
  checker.finish(completed);

  ChaosVerdict v;
  v.ok = checker.ok();
  v.completed = completed;
  v.declared_failed = failed;
  v.violations = checker.violations();
  v.schedule = schedule.str();
  v.report = s.report();

  // Fold the fault-stage counters into the registry (`phy.fault.*`), then
  // read every verdict counter back from the registry — the event stream is
  // the single source of truth for link/endpoint counts, and any divergence
  // from the channels' own counters would show up as a soak-test failure.
  obs::Registry& reg = s.metrics();
  for (const phy::FaultInjector* st : all_stages) {
    reg.counter("phy.fault.dropped").add(st->dropped());
    reg.counter("phy.fault.duplicated").add(st->duplicated());
    reg.counter("phy.fault.reordered").add(st->reordered());
    reg.counter("phy.fault.truncated").add(st->truncated());
    reg.counter("phy.fault.corrupted").add(st->corrupted());
  }
  for (const phy::FaultInjector* st : reverse_stages) {
    v.reverse_faulted += st->dropped() + st->duplicated() + st->reordered() +
                         st->truncated() + st->corrupted();
  }
  reg.counter("phy.fault.reverse_faulted").add(v.reverse_faulted);
  reg.gauge("scenario.throughput_frames_s").set(v.report.throughput_frames_s);
  reg.gauge("scenario.efficiency").set(v.report.efficiency);

  const auto both = [&reg](const char* suffix) {
    return reg.counter_value(std::string{"link.forward."} + suffix) +
           reg.counter_value(std::string{"link.reverse."} + suffix);
  };
  v.faults_dropped = both("fault_dropped");
  v.faults_duplicated = both("fault_duplicated");
  v.faults_delayed = both("fault_delayed");
  v.faults_truncated = both("fault_truncated");
  v.frames_corrupted = both("wire_corrupted");
  v.congestion_discards =
      reg.counter_value("lams.receiver.congestion_discards");
  v.duplicates_suppressed =
      reg.counter_value("lams.receiver.duplicates_suppressed");
  v.request_naks = reg.counter_value("lams.sender.control_tx");
  v.checkpoints_sent = reg.counter_value("lams.receiver.checkpoints_emitted");
  v.metrics_json = reg.json();
  return v;
}

}  // namespace lamsdlc::sim
