#include "lamsdlc/sim/scenario.hpp"

#include <string>
#include <utility>

namespace lamsdlc::sim {

std::unique_ptr<phy::ErrorModel> make_error_model(const ErrorConfig& e,
                                                  std::uint64_t run_seed,
                                                  std::string_view stream) {
  switch (e.kind) {
    case ErrorConfig::Kind::kPerfect:
      return std::make_unique<phy::PerfectChannel>();
    case ErrorConfig::Kind::kBernoulliBer:
      return std::make_unique<phy::BernoulliBerModel>(
          e.ber, RandomStream{run_seed, stream});
    case ErrorConfig::Kind::kFixedFrameProb:
      return std::make_unique<phy::FixedFrameErrorModel>(
          e.p_frame, RandomStream{run_seed, stream});
    case ErrorConfig::Kind::kGilbertElliott:
      return std::make_unique<phy::GilbertElliottModel>(
          e.gilbert, RandomStream{run_seed, stream});
  }
  return std::make_unique<phy::PerfectChannel>();
}

std::unique_ptr<phy::ErrorModel> Scenario::make_error(
    const ErrorConfig& e, std::string_view stream) const {
  return make_error_model(e, cfg_.seed, stream);
}

Scenario::Scenario(ScenarioConfig cfg)
    : cfg_{std::move(cfg)}, tracker_{sim_, &stats_} {
  auto prop = cfg_.propagation
                  ? cfg_.propagation
                  : [d = cfg_.prop_delay](Time) { return d; };

  link::SimplexChannel::Config fwd;
  fwd.data_rate_bps = cfg_.data_rate_bps;
  fwd.propagation = prop;
  fwd.iframe_fec = cfg_.iframe_fec;
  fwd.control_fec = cfg_.control_fec;
  fwd.byte_level = cfg_.byte_level_wire;
  fwd.byte_level_seed = cfg_.seed ^ 0xB17E;
  fwd.batched_delivery = cfg_.batched_delivery;
  // Endpoints reject decoded frames whose sequence fields fall outside the
  // protocol's numbering size (NBDT numbers absolutely: no limit applies).
  switch (cfg_.protocol) {
    case Protocol::kLams:
      fwd.decode_limits.seq_modulus = cfg_.lams.modulus;
      break;
    case Protocol::kSrHdlc:
    case Protocol::kGbnHdlc:
      fwd.decode_limits.seq_modulus = cfg_.hdlc.modulus;
      break;
    case Protocol::kNbdt:
      break;
  }
  link::SimplexChannel::Config rev = fwd;
  rev.byte_level_seed = cfg_.seed ^ 0xB17F;

  link_ = std::make_unique<link::FullDuplexLink>(
      sim_, fwd, make_error(cfg_.forward_error, "fwd.data"), rev,
      make_error(cfg_.reverse_error, "rev.data"));
  link_->forward().set_event_bus(&bus_, obs::Source::kLinkForward);
  link_->reverse().set_event_bus(&bus_, obs::Source::kLinkReverse);
  if (cfg_.metrics) {
    collector_ = std::make_unique<obs::MetricsCollector>(bus_, registry_);
  }

  // Distinct control-frame error processes so P_C can differ from P_F
  // (fixed-probability mode); in the other modes frame length already
  // differentiates the classes.
  if (cfg_.forward_error.kind == ErrorConfig::Kind::kFixedFrameProb) {
    link_->forward().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            cfg_.forward_error.p_control, RandomStream{cfg_.seed, "fwd.ctl"}));
  }
  if (cfg_.reverse_error.kind == ErrorConfig::Kind::kFixedFrameProb) {
    link_->reverse().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            cfg_.reverse_error.p_control, RandomStream{cfg_.seed, "rev.ctl"}));
  }

  switch (cfg_.protocol) {
    case Protocol::kLams:
      lams_tx_ = std::make_unique<lams::LamsSender>(sim_, link_->forward(),
                                                    cfg_.lams, &stats_,
                                                    cfg_.tracer, &bus_);
      lams_rx_ = std::make_unique<lams::LamsReceiver>(sim_, link_->reverse(),
                                                      cfg_.lams, &tracker_,
                                                      &stats_, cfg_.tracer,
                                                      &bus_);
      link_->reverse().set_sink(lams_tx_.get());
      link_->forward().set_sink(lams_rx_.get());
      lams_rx_->start();
      sender_ = lams_tx_.get();
      break;
    case Protocol::kSrHdlc:
      sr_tx_ = std::make_unique<hdlc::SrSender>(sim_, link_->forward(),
                                                cfg_.hdlc, &stats_, cfg_.tracer);
      sr_rx_ = std::make_unique<hdlc::SrReceiver>(
          sim_, link_->reverse(), cfg_.hdlc, &tracker_, &stats_, cfg_.tracer);
      link_->reverse().set_sink(sr_tx_.get());
      link_->forward().set_sink(sr_rx_.get());
      sender_ = sr_tx_.get();
      break;
    case Protocol::kGbnHdlc:
      gbn_tx_ = std::make_unique<hdlc::GbnSender>(sim_, link_->forward(),
                                                  cfg_.hdlc, &stats_,
                                                  cfg_.tracer);
      gbn_rx_ = std::make_unique<hdlc::GbnReceiver>(
          sim_, link_->reverse(), cfg_.hdlc, &tracker_, &stats_, cfg_.tracer);
      link_->reverse().set_sink(gbn_tx_.get());
      link_->forward().set_sink(gbn_rx_.get());
      sender_ = gbn_tx_.get();
      break;
    case Protocol::kNbdt:
      nbdt_tx_ = std::make_unique<nbdt::NbdtSender>(sim_, link_->forward(),
                                                    cfg_.nbdt, &stats_,
                                                    cfg_.tracer);
      nbdt_rx_ = std::make_unique<nbdt::NbdtReceiver>(
          sim_, link_->reverse(), cfg_.nbdt, &tracker_, &stats_, cfg_.tracer);
      link_->reverse().set_sink(nbdt_tx_.get());
      link_->forward().set_sink(nbdt_rx_.get());
      nbdt_rx_->start();
      sender_ = nbdt_tx_.get();
      break;
  }
}

Scenario::~Scenario() = default;

void Scenario::set_listener(PacketListener* l) {
  if (lams_rx_) lams_rx_->set_listener(l);
  if (sr_rx_) sr_rx_->set_listener(l);
  if (gbn_rx_) gbn_rx_->set_listener(l);
  if (nbdt_rx_) nbdt_rx_->set_listener(l);
}

Time Scenario::frame_tx_time() const {
  frame::Frame f;
  if (cfg_.protocol == Protocol::kLams || cfg_.protocol == Protocol::kNbdt) {
    f.body = frame::IFrame{0, 0, cfg_.frame_bytes, {}};
  } else {
    f.body = frame::HdlcIFrame{0, 0, false, 0, cfg_.frame_bytes, {}};
  }
  return link_->forward().tx_time(f);
}

Time Scenario::control_tx_time() const {
  frame::Frame f;
  if (cfg_.protocol == Protocol::kLams) {
    f.body = frame::CheckpointFrame{};
  } else if (cfg_.protocol == Protocol::kNbdt) {
    f.body = frame::SelectiveAckFrame{};
  } else {
    f.body = frame::HdlcSFrame{};
  }
  return link_->reverse().tx_time(f);
}

bool Scenario::run_to_completion(Time horizon, Time check_every) {
  while (sim_.now() < horizon) {
    const Time next = std::min(horizon, sim_.now() + check_every);
    sim_.run_until(next);
    if (tracker_.submitted() > 0 && tracker_.all_delivered() &&
        sender_->idle()) {
      return true;
    }
    if (lams_tx_ && lams_tx_->mode() == lams::LamsSender::Mode::kFailed) {
      return false;  // link declared failed; no further progress possible
    }
  }
  return tracker_.submitted() > 0 && tracker_.all_delivered() && sender_->idle();
}

analysis::Params Scenario::analysis_params() const {
  analysis::Params p;
  p.t_f = frame_tx_time().sec();
  p.t_c = control_tx_time().sec();
  p.t_proc = (cfg_.protocol == Protocol::kLams ? cfg_.lams.t_proc
                                               : cfg_.hdlc.t_proc)
                 .sec();
  const Time prop =
      cfg_.propagation ? cfg_.propagation(sim_.now()) : cfg_.prop_delay;
  p.rtt = 2.0 * prop.sec();
  p.alpha = std::max(0.0, cfg_.hdlc.timeout.sec() - p.rtt);
  p.i_cp = cfg_.lams.checkpoint_interval.sec();
  p.c_depth = cfg_.lams.cumulation_depth;
  p.window = cfg_.hdlc.window;

  auto frame_prob = [&](const ErrorConfig& e, bool control) {
    frame::Frame f;
    if (control) {
      if (cfg_.protocol == Protocol::kLams) {
        f.body = frame::CheckpointFrame{};
      } else if (cfg_.protocol == Protocol::kNbdt) {
        f.body = frame::SelectiveAckFrame{};
      } else {
        f.body = frame::HdlcSFrame{};
      }
    } else if (cfg_.protocol == Protocol::kLams ||
               cfg_.protocol == Protocol::kNbdt) {
      f.body = frame::IFrame{0, 0, cfg_.frame_bytes, {}};
    } else {
      f.body = frame::HdlcIFrame{0, 0, false, 0, cfg_.frame_bytes, {}};
    }
    switch (e.kind) {
      case ErrorConfig::Kind::kPerfect:
        return 0.0;
      case ErrorConfig::Kind::kBernoulliBer:
        return phy::frame_error_probability(e.ber, frame::wire_bits(f));
      case ErrorConfig::Kind::kFixedFrameProb:
        return control ? e.p_control : e.p_frame;
      case ErrorConfig::Kind::kGilbertElliott: {
        // Long-run average BER of the two-state channel.
        const double bad = phy::GilbertElliottModel{e.gilbert,
                                                    RandomStream{0, "tmp"}}
                               .bad_fraction();
        const double ber =
            bad * e.gilbert.bad_ber + (1.0 - bad) * e.gilbert.good_ber;
        return phy::frame_error_probability(ber, frame::wire_bits(f));
      }
    }
    return 0.0;
  };
  p.p_f = frame_prob(cfg_.forward_error, false);
  // Control traffic of interest flows on the reverse channel (checkpoints /
  // RR / SREJ).
  p.p_c = frame_prob(cfg_.reverse_error, true);
  return p;
}

ScenarioReport Scenario::report() const {
  ScenarioReport r;
  r.submitted = tracker_.submitted();
  r.unique_delivered = tracker_.unique_delivered();
  r.duplicates = tracker_.duplicates();
  r.lost = r.submitted - r.unique_delivered;

  r.elapsed_s = tracker_.last_delivery().sec();
  if (r.elapsed_s > 0 && r.unique_delivered > 0) {
    r.throughput_frames_s = static_cast<double>(r.unique_delivered) / r.elapsed_s;
    r.efficiency = r.throughput_frames_s * frame_tx_time().sec();
  }

  r.mean_delay_s = stats_.packet_delay_s.mean();
  r.mean_holding_s = stats_.holding_time_s.mean();

  // Close the occupancy integrals at the current instant.
  DlcStats& s = const_cast<DlcStats&>(stats_);
  s.send_buffer.finish(sim_.now());
  s.recv_buffer.finish(sim_.now());
  r.mean_send_buffer = stats_.send_buffer.average();
  r.peak_send_buffer = stats_.send_buffer.peak();
  r.mean_recv_buffer = stats_.recv_buffer.average();
  r.peak_recv_buffer = stats_.recv_buffer.peak();

  r.iframe_tx = stats_.iframe_tx;
  r.iframe_retx = stats_.iframe_retx;
  r.control_tx = stats_.control_tx;
  if (r.unique_delivered > 0) {
    r.tx_per_frame = static_cast<double>(r.iframe_tx) /
                     static_cast<double>(r.unique_delivered);
  }
  return r;
}

}  // namespace lamsdlc::sim
