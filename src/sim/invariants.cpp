#include "lamsdlc/sim/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::sim {

namespace {
/// High-rate bookkeeping kinds that would flush the real story out of the
/// short context ring attached to violation reports.
bool context_noise(obs::EventKind k) {
  return k == obs::EventKind::kBufferOccupancy ||
         k == obs::EventKind::kMetricSample;
}
constexpr std::size_t kContextRing = 6;
}  // namespace

InvariantChecker::InvariantChecker(Scenario& s, InvariantLimits limits)
    : scenario_{s}, limits_{std::move(limits)} {
  scenario_.set_listener(this);
  timer_ = scenario_.simulator().schedule_in(limits_.check_every,
                                             [this] { periodic_check(); });
  sub_ = scenario_.events().subscribe(
      [this](const obs::Event& e) { note_event(e); });
}

InvariantChecker::~InvariantChecker() {
  scenario_.simulator().cancel(timer_);
  scenario_.events().unsubscribe(sub_);
}

void InvariantChecker::note_event(const obs::Event& e) {
  if (context_noise(e.kind)) return;
  recent_.push_back(e);
  if (recent_.size() > kContextRing) recent_.pop_front();
}

void InvariantChecker::violate(std::string what, bool terminal) {
  const Time now = scenario_.simulator().now();
  std::ostringstream os;
  os << "t=" << now;
  if (limits_.seed != 0) os << " seed=" << limits_.seed;
  os << " " << what;
  if (!recent_.empty()) {
    os << "\n  last events:";
    for (const obs::Event& e : recent_) {
      os << "\n    [" << e.at << "] " << obs::to_string(e.source) << ": "
         << obs::describe(e);
    }
  }
  const bool transient = !terminal && !limits_.converge_after.is_zero() &&
                         now <= limits_.converge_after;
  (transient ? transients_ : violations_).push_back(os.str());
}

void InvariantChecker::rearm_latches() {
  // The convergence phase is over: whatever the corrupted state did to the
  // bounds was lawful.  Audit the steady state from scratch.
  converged_rearm_done_ = true;
  reported_outstanding_ = false;
  reported_recv_buffer_ = false;
  reported_holding_ = false;
  reported_codec_ = false;
  reported_unknown_ = false;
  // The holding histogram's max is cumulative, so remember the convergence
  // phase's high-water mark: only a *new* maximum set after this instant can
  // trip the steady-state bound.
  holding_baseline_s_ = scenario_.stats().holding_time_s.max();
  last_duplicates_ = scenario_.tracker().duplicates();
  last_unknown_ = scenario_.tracker().unknown_deliveries();
}

void InvariantChecker::on_packet(const Packet& p, Time delivered_at) {
  workload::DeliveryTracker& tracker = scenario_.tracker();
  tracker.on_packet(p, delivered_at);

  if (!reported_unknown_ && tracker.unknown_deliveries() > last_unknown_) {
    reported_unknown_ = true;
    last_unknown_ = tracker.unknown_deliveries();
    violate("delivered a packet that was never submitted (id=" +
            std::to_string(p.id) + ")");
  }
  if (limits_.expect_no_duplicates && tracker.duplicates() > last_duplicates_) {
    last_duplicates_ = tracker.duplicates();
    // A RESYNC requeues every unresolved frame, re-delivering copies that
    // had already arrived — self-stabilization's lawful bounded duplication
    // during convergence.  Only packets the fault plan never put at risk
    // may not duplicate.
    if (limits_.excused.find(p.id) == limits_.excused.end()) {
      violate("duplicate client delivery (packet id=" + std::to_string(p.id) +
              ", total duplicates=" + std::to_string(last_duplicates_) + ")");
    }
  }
}

void InvariantChecker::periodic_check() {
  if (!limits_.converge_after.is_zero() && !converged_rearm_done_ &&
      scenario_.simulator().now() > limits_.converge_after) {
    rearm_latches();
  }
  const lams::LamsSender* tx = scenario_.lams_sender();

  if (!reported_outstanding_ && limits_.max_outstanding > 0 && tx != nullptr &&
      tx->outstanding_frames() > limits_.max_outstanding) {
    reported_outstanding_ = true;
    violate("transparent-buffer bound exceeded: outstanding=" +
            std::to_string(tx->outstanding_frames()) +
            " > bound=" + std::to_string(limits_.max_outstanding));
  }

  const lams::LamsReceiver* rx = scenario_.lams_receiver();
  if (!reported_recv_buffer_ && limits_.max_recv_buffer > 0 && rx != nullptr &&
      rx->recv_buffer_depth() > limits_.max_recv_buffer) {
    reported_recv_buffer_ = true;
    violate("receiving-buffer bound exceeded: depth=" +
            std::to_string(rx->recv_buffer_depth()) +
            " > bound=" + std::to_string(limits_.max_recv_buffer));
  }

  if (!reported_holding_ && !limits_.max_holding.is_zero()) {
    const double bound = (limits_.max_holding + limits_.grace).sec();
    const double seen = scenario_.stats().holding_time_s.max();
    if (seen > bound && seen > holding_baseline_s_) {
      reported_holding_ = true;
      std::ostringstream os;
      os << "holding-time bound exceeded: " << seen * 1e3 << " ms > "
         << bound * 1e3 << " ms";
      violate(os.str());
    }
  }

  if (!reported_codec_ && (scenario_.link().forward().codec_mismatches() > 0 ||
                           scenario_.link().reverse().codec_mismatches() > 0)) {
    reported_codec_ = true;
    violate("undetected wire error slipped past the FCS (codec mismatch)");
  }

  if (!finished_) {
    timer_ = scenario_.simulator().schedule_in(limits_.check_every,
                                               [this] { periodic_check(); });
  }
}

void InvariantChecker::finish(bool completed) {
  if (finished_) return;
  finished_ = true;
  scenario_.simulator().cancel(timer_);
  timer_ = 0;
  periodic_check();  // close the sampling loop on the final state

  workload::DeliveryTracker& tracker = scenario_.tracker();
  lams::LamsSender* tx = scenario_.lams_sender();

  if (completed) {
    if (!tracker.all_delivered()) {
      // Packets the corruption tier excused (destroyed inside the endpoint
      // by an injected fault) are lawful bounded convergence loss; anything
      // else undelivered is a real leak.
      std::size_t lost = 0;
      for (const frame::PacketId id : tracker.missing()) {
        if (limits_.excused.find(id) == limits_.excused.end()) ++lost;
      }
      if (lost > 0) {
        violate("run reported complete but " + std::to_string(lost) +
                    " packets are undelivered (not excused by the fault plan)",
                /*terminal=*/true);
      }
    }
    return;
  }

  if (tx != nullptr && tx->mode() == lams::LamsSender::Mode::kFailed) {
    // Declared unrecoverable failure is a clean terminal state *iff* every
    // undelivered packet sits in the residue the sender hands the network
    // layer — nothing may be lost silently (Section 3.2: the DLC "informs
    // the network layer", which reroutes).  Excused ids were destroyed by
    // injected endpoint corruption and lawfully appear in neither place.
    std::unordered_set<frame::PacketId> residue;
    for (const Packet& p : tx->take_unresolved()) residue.insert(p.id);
    std::size_t lost = 0;
    for (const frame::PacketId id : tracker.missing()) {
      if (residue.find(id) == residue.end() &&
          limits_.excused.find(id) == limits_.excused.end()) {
        ++lost;
      }
    }
    if (lost > 0) {
      violate("declared failure lost " + std::to_string(lost) +
                  " packets silently (missing from the unresolved residue)",
              /*terminal=*/true);
    }
    return;
  }

  violate("silent hang: " + std::to_string(tracker.missing().size()) +
              " packets undelivered, no completion and no declared failure",
          /*terminal=*/true);
}

std::string InvariantChecker::summary() const {
  std::string out;
  for (const std::string& v : violations_) {
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace lamsdlc::sim
