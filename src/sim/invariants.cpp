#include "lamsdlc/sim/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::sim {

InvariantChecker::InvariantChecker(Scenario& s, InvariantLimits limits)
    : scenario_{s}, limits_{std::move(limits)} {
  scenario_.set_listener(this);
  timer_ = scenario_.simulator().schedule_in(limits_.check_every,
                                             [this] { periodic_check(); });
}

InvariantChecker::~InvariantChecker() { scenario_.simulator().cancel(timer_); }

void InvariantChecker::violate(std::string what) {
  std::ostringstream os;
  os << "t=" << scenario_.simulator().now() << " " << what;
  violations_.push_back(os.str());
}

void InvariantChecker::on_packet(const Packet& p, Time delivered_at) {
  workload::DeliveryTracker& tracker = scenario_.tracker();
  tracker.on_packet(p, delivered_at);

  if (!reported_unknown_ && tracker.unknown_deliveries() > 0) {
    reported_unknown_ = true;
    violate("delivered a packet that was never submitted (id=" +
            std::to_string(p.id) + ")");
  }
  if (limits_.expect_no_duplicates && tracker.duplicates() > last_duplicates_) {
    last_duplicates_ = tracker.duplicates();
    violate("duplicate client delivery (packet id=" + std::to_string(p.id) +
            ", total duplicates=" + std::to_string(last_duplicates_) + ")");
  }
}

void InvariantChecker::periodic_check() {
  const lams::LamsSender* tx = scenario_.lams_sender();

  if (!reported_outstanding_ && limits_.max_outstanding > 0 && tx != nullptr &&
      tx->outstanding_frames() > limits_.max_outstanding) {
    reported_outstanding_ = true;
    violate("transparent-buffer bound exceeded: outstanding=" +
            std::to_string(tx->outstanding_frames()) +
            " > bound=" + std::to_string(limits_.max_outstanding));
  }

  const lams::LamsReceiver* rx = scenario_.lams_receiver();
  if (!reported_recv_buffer_ && limits_.max_recv_buffer > 0 && rx != nullptr &&
      rx->recv_buffer_depth() > limits_.max_recv_buffer) {
    reported_recv_buffer_ = true;
    violate("receiving-buffer bound exceeded: depth=" +
            std::to_string(rx->recv_buffer_depth()) +
            " > bound=" + std::to_string(limits_.max_recv_buffer));
  }

  if (!reported_holding_ && !limits_.max_holding.is_zero()) {
    const double bound = (limits_.max_holding + limits_.grace).sec();
    const double seen = scenario_.stats().holding_time_s.max();
    if (seen > bound) {
      reported_holding_ = true;
      std::ostringstream os;
      os << "holding-time bound exceeded: " << seen * 1e3 << " ms > "
         << bound * 1e3 << " ms";
      violate(os.str());
    }
  }

  if (!reported_codec_ && (scenario_.link().forward().codec_mismatches() > 0 ||
                           scenario_.link().reverse().codec_mismatches() > 0)) {
    reported_codec_ = true;
    violate("undetected wire error slipped past the FCS (codec mismatch)");
  }

  if (!finished_) {
    timer_ = scenario_.simulator().schedule_in(limits_.check_every,
                                               [this] { periodic_check(); });
  }
}

void InvariantChecker::finish(bool completed) {
  if (finished_) return;
  finished_ = true;
  scenario_.simulator().cancel(timer_);
  timer_ = 0;
  periodic_check();  // close the sampling loop on the final state

  workload::DeliveryTracker& tracker = scenario_.tracker();
  lams::LamsSender* tx = scenario_.lams_sender();

  if (completed) {
    if (!tracker.all_delivered()) {
      violate("run reported complete but " +
              std::to_string(tracker.missing().size()) +
              " packets are undelivered");
    }
    return;
  }

  if (tx != nullptr && tx->mode() == lams::LamsSender::Mode::kFailed) {
    // Declared unrecoverable failure is a clean terminal state *iff* every
    // undelivered packet sits in the residue the sender hands the network
    // layer — nothing may be lost silently (Section 3.2: the DLC "informs
    // the network layer", which reroutes).
    std::unordered_set<frame::PacketId> residue;
    for (const Packet& p : tx->take_unresolved()) residue.insert(p.id);
    std::size_t lost = 0;
    for (const frame::PacketId id : tracker.missing()) {
      if (residue.find(id) == residue.end()) ++lost;
    }
    if (lost > 0) {
      violate("declared failure lost " + std::to_string(lost) +
              " packets silently (missing from the unresolved residue)");
    }
    return;
  }

  violate("silent hang: " + std::to_string(tracker.missing().size()) +
          " packets undelivered, no completion and no declared failure");
}

std::string InvariantChecker::summary() const {
  std::string out;
  for (const std::string& v : violations_) {
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace lamsdlc::sim
