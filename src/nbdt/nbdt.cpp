#include "lamsdlc/nbdt/nbdt.hpp"

#include <algorithm>
#include <utility>

namespace lamsdlc::nbdt {

// ---------------------------------------------------------------- sender --

NbdtSender::NbdtSender(Simulator& sim, link::SimplexChannel& data_out,
                       NbdtConfig cfg, sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{data_out},
      cfg_{cfg},
      stats_{stats},
      tracer_{std::move(tracer)} {
  out_.set_idle_callback([this] { try_send(); });
}

NbdtSender::~NbdtSender() { sim_.cancel(tail_timer_); }

void NbdtSender::trace(std::string what) const {
  tracer_.emit(sim_.now(), "nbdt.sender", std::move(what));
}

void NbdtSender::submit(sim::Packet p) {
  if (stats_) ++stats_->packets_submitted;
  queue_.push_back(p);
  if (stats_) {
    stats_->send_buffer.update(sim_.now(),
                               static_cast<double>(sending_buffer_depth()));
  }
  try_send();
}

std::size_t NbdtSender::sending_buffer_depth() const {
  return queue_.size() + window_.size();
}

bool NbdtSender::idle() const {
  return queue_.empty() && window_.empty() && retx_queue_.empty();
}

void NbdtSender::try_send() {
  if (out_.busy() || !out_.up()) return;

  // Continuous mode: retransmissions mix with new traffic; holes first
  // (they block the receiver's in-sequence delivery).
  std::uint64_t number;
  Pending* p = nullptr;
  while (!retx_queue_.empty()) {
    auto it = window_.find(retx_queue_.front());
    if (it == window_.end()) {
      retx_queue_.pop_front();  // acknowledged meanwhile
      continue;
    }
    number = it->first;
    p = &it->second;
    retx_queue_.pop_front();
    break;
  }
  if (p == nullptr) {
    if (queue_.empty()) return;
    // Multiphase: the retransmission phase ends only when every resent
    // frame has been confirmed; until then, new traffic waits.
    if (cfg_.multiphase && unconfirmed_retx_ > 0) return;
    number = next_number_++;
    auto it = window_.emplace(number, Pending{queue_.front(), Time{}, Time{}, 0})
                  .first;
    queue_.pop_front();
    p = &it->second;
  }

  ++p->attempts;
  if (p->attempts == 1) p->first_tx = sim_.now();
  if (p->attempts == 2) ++unconfirmed_retx_;  // entered the retransmission set
  p->last_tx = sim_.now();

  frame::Frame f;
  // Absolute numbering: the 32-bit wire field carries the full number.
  f.body = frame::IFrame{static_cast<frame::Seq>(number), p->packet.id,
                         p->packet.bytes, {}};
  if (stats_) {
    ++stats_->iframe_tx;
    if (p->attempts > 1) ++stats_->iframe_retx;
  }
  if (!sim_.pending(tail_timer_)) {
    tail_timer_ = sim_.schedule_in(cfg_.timeout, [this] { on_tail_timer(); });
  }
  out_.send(std::move(f));
}

void NbdtSender::release(std::uint64_t number) {
  auto it = window_.find(number);
  if (it == window_.end()) return;
  if (stats_) {
    stats_->holding_time_s.add((sim_.now() - it->second.first_tx).sec());
  }
  if (it->second.attempts >= 2 && unconfirmed_retx_ > 0) --unconfirmed_retx_;
  window_.erase(it);
}

void NbdtSender::queue_retx(std::uint64_t number) {
  auto it = window_.find(number);
  if (it == window_.end()) return;
  // Rate-limit: a hole already resent within the guard is in flight.
  if (it->second.last_tx + cfg_.retx_guard > sim_.now()) return;
  if (std::find(retx_queue_.begin(), retx_queue_.end(), number) !=
      retx_queue_.end()) {
    return;
  }
  retx_queue_.push_back(number);
}

void NbdtSender::handle_status(const frame::SelectiveAckFrame& st) {
  // Completely selective release: everything below base plus everything in
  // (base, highest] that is not reported missing.
  while (!window_.empty() && window_.begin()->first < st.base) {
    release(window_.begin()->first);
  }
  if (st.any_seen) {
    std::vector<std::uint64_t> covered;
    for (const auto& [num, p] : window_) {
      if (num > st.highest) break;
      if (num < st.base) continue;
      if (!std::binary_search(st.missing.begin(), st.missing.end(),
                              static_cast<frame::Seq>(num))) {
        covered.push_back(num);
      }
    }
    for (const std::uint64_t num : covered) release(num);
    for (const frame::Seq m : st.missing) queue_retx(m);
  }
  if (stats_) {
    stats_->send_buffer.update(sim_.now(),
                               static_cast<double>(sending_buffer_depth()));
  }
  try_send();
}

void NbdtSender::on_tail_timer() {
  tail_timer_ = 0;
  if (window_.empty()) {
    return;
  }
  // Anything unacknowledged for a full timeout is re-offered (covers tails
  // the status reports cannot name and lost status runs).
  for (const auto& [num, p] : window_) {
    if (p.last_tx + cfg_.timeout <= sim_.now()) {
      queue_retx(num);
    }
  }
  tail_timer_ = sim_.schedule_in(cfg_.timeout, [this] { on_tail_timer(); });
  try_send();
}

void NbdtSender::on_frame(frame::Frame f) {
  if (f.corrupted) {
    if (stats_) ++stats_->control_corrupted_rx;
    return;
  }
  if (const auto* st = std::get_if<frame::SelectiveAckFrame>(&f.body)) {
    handle_status(*st);
  }
}

// -------------------------------------------------------------- receiver --

NbdtReceiver::NbdtReceiver(Simulator& sim, link::SimplexChannel& control_out,
                           NbdtConfig cfg, sim::PacketListener* listener,
                           sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{control_out},
      cfg_{cfg},
      listener_{listener},
      stats_{stats},
      tracer_{std::move(tracer)} {}

NbdtReceiver::~NbdtReceiver() { sim_.cancel(status_timer_); }

void NbdtReceiver::trace(std::string what) const {
  tracer_.emit(sim_.now(), "nbdt.receiver", std::move(what));
}

void NbdtReceiver::start() {
  if (running_) return;
  running_ = true;
  status_timer_ = sim_.schedule_in(cfg_.status_interval, [this] { status_tick(); });
}

void NbdtReceiver::stop() {
  running_ = false;
  sim_.cancel(status_timer_);
  status_timer_ = 0;
}

void NbdtReceiver::status_tick() {
  if (!running_) return;
  frame::SelectiveAckFrame st;
  st.base = static_cast<frame::Seq>(base_);
  st.any_seen = highest_plus1_ > 0;
  st.highest = highest_plus1_ > 0
                   ? static_cast<frame::Seq>(highest_plus1_ - 1)
                   : 0;
  for (std::uint64_t n = base_; n < highest_plus1_; ++n) {
    if (!held_.contains(n)) st.missing.push_back(static_cast<frame::Seq>(n));
  }
  ++statuses_;
  if (stats_) ++stats_->control_tx;
  frame::Frame f;
  f.body = std::move(st);
  out_.send(std::move(f));
  status_timer_ = sim_.schedule_in(cfg_.status_interval, [this] { status_tick(); });
}

void NbdtReceiver::deliver_ready() {
  while (held_.contains(base_)) {
    const sim::Packet p = held_.at(base_);
    held_.erase(base_);
    ++base_;
    sim_.schedule_in(cfg_.t_proc, [this, p] {
      if (listener_) listener_->on_packet(p, sim_.now());
    });
  }
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(held_.size()));
  }
}

void NbdtReceiver::on_frame(frame::Frame f) {
  const auto* in = std::get_if<frame::IFrame>(&f.body);
  if (in == nullptr) {
    if (f.corrupted && stats_) ++stats_->control_corrupted_rx;
    return;
  }
  if (f.corrupted) {
    if (stats_) ++stats_->iframe_corrupted_rx;
    return;  // absolute number unreadable; the status gap names it later
  }
  const auto number = static_cast<std::uint64_t>(in->seq);
  if (number < base_ || held_.contains(number)) {
    return;  // duplicate of something delivered or already parked
  }
  held_.emplace(number, sim::Packet{in->packet_id, in->payload_bytes, Time{}, 0,
                                    0, 1, in->payload});
  highest_plus1_ = std::max(highest_plus1_, number + 1);
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(held_.size()));
  }
  deliver_ready();
}

}  // namespace lamsdlc::nbdt
