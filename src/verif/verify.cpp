#include "lamsdlc/verif/verify.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lamsdlc/analysis/model.hpp"
#include "lamsdlc/core/random.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/sim/invariants.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::verif {
namespace {

/// All verification traffic uses small frames: the generator pins the frame
/// *time* (below), so payload size only scales the drawn data rate.
constexpr std::uint32_t kFrameBytes = 256;

/// One drawn fault episode, kept for the transcript.  Episodes are always
/// drawn — gating knobs decide only whether they apply — so dropping a knob
/// never disturbs the other draws and shrunk repros stay bit-identical.
struct Episode {
  bool reverse = false;
  const char* kind = "";
  phy::FaultInjector::Affects affects = phy::FaultInjector::Affects::kAll;
  double p = 0.0;
  double from_frac = 0.0;
  Time len{};
  bool applied = false;
};

const char* affects_name(phy::FaultInjector::Affects a) {
  switch (a) {
    case phy::FaultInjector::Affects::kAll: return "all";
    case phy::FaultInjector::Affects::kDataOnly: return "data";
    case phy::FaultInjector::Affects::kControlOnly: return "control";
  }
  return "?";
}

/// Wire bits of one verification I-frame (fixed payload size).
double frame_bits() {
  frame::Frame probe;
  probe.body = frame::IFrame{0, 0, kFrameBytes, {}};
  return static_cast<double>(frame::wire_bits(probe));
}

}  // namespace

std::string VerifyVerdict::repro_command() const {
  std::ostringstream os;
  os << "lamsdlc_cli verify --repro --seed " << knobs.seed << " --modulus "
     << knobs.modulus << " --cdepth " << knobs.c_depth << " --packets "
     << knobs.packets;
  if (!knobs.faults) os << " --no-faults";
  if (!knobs.congestion) os << " --no-congestion";
  if (!knobs.outage) os << " --no-outage";
  if (!knobs.reverse_faults) os << " --no-reverse";
  if (!knobs.byte_level) os << " --no-byte-level";
  if (!knobs.differential) os << " --no-differential";
  if (!knobs.analysis_check) os << " --no-analysis";
  if (knobs.fault_scale != 1.0) os << " --fault-scale " << knobs.fault_scale;
  return os.str();
}

std::string VerifyVerdict::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED")
     << (completed ? " (completed)"
                   : declared_failed ? " (declared failure)" : " (incomplete)")
     << "\n";
  for (const std::string& f : failures) os << "  failure: " << f << "\n";
  os << transcript;
  if (!ok) os << "  repro: " << repro_command() << "\n";
  return os.str();
}

VerifyVerdict run_verify(const VerifyKnobs& knobs) {
  VerifyVerdict v;
  VerifyKnobs eff = knobs;
  std::ostringstream tr;

  // ---- base draws: protocol shape and channel noise ----------------------
  RandomStream base{knobs.seed, "verif.base"};
  static constexpr std::uint32_t kModuli[] = {8, 16, 32};
  std::uint32_t m = kModuli[base.uniform_int(0, 2)];
  auto c_depth = static_cast<std::uint32_t>(base.uniform_int(1, 8));
  auto packets = static_cast<std::uint64_t>(base.uniform_int(40, 160));
  const Time prop = Time::microseconds(base.uniform_int(200, 1000));
  const double w_factor = base.uniform(0.5, 4.0);
  const bool byte_draw = base.bernoulli(0.5);
  const bool noise_draw = base.bernoulli(0.6);
  const double pf_frac = base.uniform(0.0, 1.0);
  const double pc_fwd = base.uniform(0.0, 0.15);
  const double p_rev = base.uniform(0.0, 0.15);
  if (knobs.modulus != 0) m = knobs.modulus;
  if (knobs.c_depth != 0) c_depth = knobs.c_depth;
  if (knobs.packets != 0) packets = knobs.packets;
  eff.modulus = m;
  eff.c_depth = c_depth;
  eff.packets = packets;

  const Time rtt = prop * 2;
  const Time W = rtt * w_factor;  // spans rtt- and W_cp-dominated regimes
  const Time max_rtt = rtt + W;
  const Time resolving = max_rtt + W / 2 + W * static_cast<std::int64_t>(c_depth);

  // Numbering-size envelope (Section 3.3): the paper promises nothing when
  // more than m/2 numbers are in flight, so the generator *derives* the
  // frame time from the drawn resolving period to pin the worst-case
  // in-flight span near 0.35·m — hostile (one aliasing mistake shows up
  // within a few frames at m=8) but inside the precondition.
  const double tf_s = resolving.sec() / (0.35 * static_cast<double>(m));
  const Time tf = Time::seconds(tf_s);
  const double data_rate = frame_bits() / tf_s;

  const bool byte_applied = knobs.byte_level && byte_draw;
  eff.byte_level = byte_applied;

  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = data_rate;
  cfg.prop_delay = prop;
  cfg.frame_bytes = kFrameBytes;
  cfg.byte_level_wire = byte_applied;
  cfg.seed = knobs.seed;
  cfg.lams.modulus = m;
  cfg.lams.cumulation_depth = c_depth;
  cfg.lams.checkpoint_interval = W;
  cfg.lams.max_rtt = max_rtt;

  // Jitter must stay below the release margin (the release rule assumes
  // bounded delivery-time skew); up to four overlapping stages can each add
  // one jitter delay.
  const Time jitter_max = tf * (0.1 * static_cast<double>(m));
  cfg.lams.release_margin = jitter_max * 4 + tf * 0.1 + Time::microseconds(200);

  // Base noise: cap P_F so a run of >= m consecutive husks (which would
  // carry the sender's counter a full cycle away from anything the receiver
  // accepted) stays negligible at the smallest modulus.
  const double pf_cap = (m == 8) ? 0.15 : 0.3;
  const double pf = noise_draw ? pf_frac * pf_cap : 0.0;
  if (noise_draw) {
    cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.forward_error.p_frame = pf;
    cfg.forward_error.p_control = pc_fwd;
    cfg.reverse_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.reverse_error.p_frame = p_rev;
    cfg.reverse_error.p_control = p_rev;
  }

  // ---- congestion draws --------------------------------------------------
  RandomStream cong{knobs.seed, "verif.congestion"};
  const bool cong_draw = cong.bernoulli(0.4);
  const Time cong_tproc = tf * cong.uniform(0.3, 1.0);
  const auto watermark = static_cast<std::size_t>(cong.uniform_int(4, 12));
  const auto hard_extra = static_cast<std::size_t>(cong.uniform_int(2, 8));
  const bool cong_applied = knobs.congestion && cong_draw;
  eff.congestion = cong_applied;
  if (cong_applied) {
    cfg.lams.t_proc = cong_tproc;
    cfg.lams.recv_high_watermark = watermark;
    cfg.lams.recv_hard_capacity = watermark + hard_extra;
  }

  // ---- workload draws ----------------------------------------------------
  RandomStream wl{knobs.seed, "verif.workload"};
  const bool paced = wl.bernoulli(0.4);
  const Time gap = tf * wl.uniform(0.8, 2.5);
  const bool backpressure = wl.bernoulli(0.5);

  const Time per = paced ? std::max(tf, gap) : tf;
  const Time est =
      per * static_cast<std::int64_t>(packets) * 2 + resolving * 10;

  // ---- fault-episode draws -----------------------------------------------
  // Forward episodes share one length budget of 0.35·m frame times: a drop
  // run decoheres the receiver's arrival-indexed unwrap reference and a
  // husk run drives the sender's counter ahead of the last accepted number,
  // and both are only guaranteed recoverable while the imbalance between
  // two accepted frames stays under m/2 (receiver) respectively under m
  // (sender, including ~0.35·m in flight).  Reverse episodes carry no such
  // coupling and may span several resolving periods.
  RandomStream eps{knobs.seed, "verif.episodes"};
  const bool episodes_draw = eps.bernoulli(0.7);
  static constexpr const char* kKinds[] = {"drop", "duplicate", "reorder",
                                           "truncate", "corrupt"};
  std::vector<Episode> episodes;
  Time fwd_budget = tf * (0.35 * static_cast<double>(m));
  const auto n_episodes = 1 + eps.uniform_int(0, 3);
  bool any_applied = false;
  bool any_reverse_applied = false;
  Time fault_span{};
  for (std::int64_t i = 0; i < n_episodes; ++i) {
    Episode e;
    e.reverse = eps.bernoulli(0.35);
    e.kind = kKinds[eps.uniform_int(0, 4)];
    e.affects = (!e.reverse && eps.bernoulli(0.5))
                    ? phy::FaultInjector::Affects::kDataOnly
                    : phy::FaultInjector::Affects::kAll;
    e.p = eps.uniform(0.25, 1.0);
    e.from_frac = eps.uniform(0.0, 0.7);
    const double len_frac = eps.uniform(0.1, 0.6);
    if (e.reverse) {
      e.len = resolving * (2.5 * len_frac * knobs.fault_scale);
    } else {
      const Time want =
          tf * (0.35 * static_cast<double>(m) * len_frac * knobs.fault_scale);
      e.len = std::min(want, fwd_budget);
      fwd_budget = fwd_budget - e.len;
    }
    e.applied = knobs.faults && episodes_draw &&
                (!e.reverse || knobs.reverse_faults) && !e.len.is_zero();
    if (e.applied) {
      any_applied = true;
      if (e.reverse) any_reverse_applied = true;
      fault_span += e.len;
    }
    episodes.push_back(e);
  }
  eff.faults = knobs.faults && any_applied;
  eff.reverse_faults = knobs.reverse_faults && any_reverse_applied;

  // ---- outage draws ------------------------------------------------------
  RandomStream outg{knobs.seed, "verif.outage"};
  const bool outage_draw = outg.bernoulli(0.25);
  const double o_from = outg.uniform(0.1, 0.5);
  const double o_len = outg.uniform(0.3, 1.8);
  const bool outage_applied = knobs.outage && outage_draw;
  eff.outage = outage_applied;
  Time outage_from{}, outage_len{};
  if (outage_applied) {
    outage_from = est * o_from;
    // Spanning the failure timer both ways: short outages must recover via
    // Request-NAK, long ones must end in a *declared* failure with clean
    // residue — never a silent hang.
    outage_len = cfg.lams.failure_timeout() * (o_len * knobs.fault_scale);
  }

  Time horizon = knobs.horizon;
  if (horizon.is_zero()) {
    horizon = est * 6 + outage_len + cfg.lams.failure_timeout() * 4 +
              Time::seconds_int(2);
  }

  // ---- transcript --------------------------------------------------------
  tr << "verify seed=" << knobs.seed << " m=" << m << " C=" << c_depth
     << " packets=" << packets << "\n";
  tr << "  link: prop=" << prop.us() << "us W_cp=" << W.us()
     << "us max_rtt=" << max_rtt.us() << "us resolving=" << resolving.us()
     << "us t_f=" << tf.us() << "us rate=" << data_rate / 1e3 << "kbps"
     << (byte_applied ? " byte-level" : "") << "\n";
  if (noise_draw) {
    tr << "  base noise: pf=" << pf << " pc_fwd=" << pc_fwd
       << " p_rev=" << p_rev << "\n";
  }
  if (cong_applied) {
    tr << "  congestion: t_proc=" << cong_tproc.us() << "us watermark="
       << watermark << " hard_cap=" << watermark + hard_extra << "\n";
  }
  tr << "  workload: "
     << (paced ? "rate" : "batch");
  if (paced) {
    tr << " gap=" << gap.us() << "us backpressure="
       << (backpressure ? "yes" : "no");
  }
  tr << "\n";
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const Episode& e = episodes[i];
    if (!e.applied) continue;
    const Time from = est * e.from_frac;
    tr << "  episode " << i << ": " << (e.reverse ? "reverse" : "forward")
       << " " << e.kind << " affects=" << affects_name(e.affects)
       << " p=" << e.p << " window=[" << from.ms() << "ms, "
       << (from + e.len).ms() << "ms)\n";
  }
  if (outage_applied) {
    tr << "  link outage: [" << outage_from.ms() << "ms, "
       << (outage_from + outage_len).ms() << "ms)\n";
  }

  // ---- build and run the LAMS leg ----------------------------------------
  sim::Scenario s{cfg};
  if (knobs.tap) knobs.tap(s);
  std::size_t stage_idx = 0;
  for (const Episode& e : episodes) {
    if (!e.applied) continue;
    phy::FaultInjector::Config fc;
    fc.affects = e.affects;
    const Time from = est * e.from_frac;
    fc.windows.push_back({from, from + e.len});
    fc.max_jitter = jitter_max;
    // One extra copy at most: duplicate arrivals inflate the receiver's
    // arrival count, and the budget above assumes at most one per frame.
    fc.max_duplicates = 1;
    const std::string kind{e.kind};
    if (kind == "drop") fc.p_drop = e.p;
    if (kind == "duplicate") fc.p_duplicate = e.p;
    if (kind == "reorder") fc.p_reorder = e.p;
    if (kind == "truncate") fc.p_truncate = e.p;
    if (kind == "corrupt") fc.p_corrupt = e.p;
    auto stage = std::make_unique<phy::FaultInjector>(
        fc,
        RandomStream{knobs.seed, "verif.fault." + std::to_string(stage_idx++)});
    if (e.reverse) {
      s.link().reverse().add_fault_stage(std::move(stage));
    } else {
      s.link().forward().add_fault_stage(std::move(stage));
    }
  }
  if (!outage_len.is_zero()) {
    s.simulator().schedule_at(outage_from, [&s] { s.link().set_up(false); });
    s.simulator().schedule_at(outage_from + outage_len,
                              [&s] { s.link().set_up(true); });
  }

  sim::InvariantLimits limits;
  // The paper's numbering-size claim, checked directly: the transparent
  // buffer never holds m/2 or more unresolved numbers (the generator sized
  // t_f so lawful operation peaks near 0.42·m).
  limits.max_outstanding = m / 2;
  limits.max_holding = cfg.lams.resolving_period_bound();
  limits.grace = fault_span * 2 + outage_len * 2 + Time::milliseconds(500) +
                 cfg.lams.t_proc * static_cast<std::int64_t>(packets);
  sim::InvariantChecker checker{s, limits};

  std::unique_ptr<workload::RateSource> source;
  if (paced) {
    source = std::make_unique<workload::RateSource>(
        s.simulator(), s.sender(), s.tracker(), s.ids(),
        workload::RateSource::Config{gap, packets, kFrameBytes, Time{},
                                     backpressure});
    source->start();
  } else {
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           packets, kFrameBytes);
  }

  const bool completed = s.run_to_completion(horizon);
  const bool declared =
      s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;
  checker.finish(completed);
  for (const std::string& viol : checker.violations()) {
    v.failures.push_back("invariant: " + viol);
  }

  // ---- differential oracle: SR-HDLC and GBN-HDLC legs --------------------
  // Same seed, same noisy channel, same workload multiset; episodes, outage
  // and congestion stay off (the HDLC baselines have no outage recovery or
  // Stop-Go, so only the common contract — deliver exactly the submitted
  // multiset — is comparable).
  if (knobs.differential) {
    const auto diff_leg = [&](sim::Protocol proto, const char* name) {
      sim::ScenarioConfig lc;
      lc.protocol = proto;
      lc.data_rate_bps = data_rate;
      lc.prop_delay = prop;
      lc.frame_bytes = kFrameBytes;
      lc.byte_level_wire = byte_applied;
      lc.seed = knobs.seed;
      lc.forward_error = cfg.forward_error;
      lc.reverse_error = cfg.reverse_error;
      lc.hdlc.modulus = std::max<std::uint32_t>(m, 8);
      lc.hdlc.window = lc.hdlc.modulus / 2;
      lc.hdlc.timeout =
          rtt + tf * static_cast<std::int64_t>(lc.hdlc.window + 4);
      sim::Scenario leg{lc};
      workload::submit_batch(leg.simulator(), leg.sender(), leg.tracker(),
                             leg.ids(), packets, kFrameBytes);
      const Time leg_horizon =
          tf * (static_cast<double>(packets) * 80.0) + Time::seconds_int(5);
      const bool done = leg.run_to_completion(leg_horizon);
      const sim::ScenarioReport r = leg.report();
      std::ostringstream fail;
      if (!done) {
        fail << name << ": incomplete after " << leg_horizon.sec() << "s ("
             << r.unique_delivered << "/" << packets << " delivered)";
      } else if (r.lost != 0 || r.duplicates != 0 ||
                 r.unique_delivered != packets ||
                 leg.tracker().unknown_deliveries() != 0) {
        fail << name << ": delivered multiset diverges (unique="
             << r.unique_delivered << "/" << packets << " lost=" << r.lost
             << " dup=" << r.duplicates
             << " unknown=" << leg.tracker().unknown_deliveries() << ")";
      }
      if (!fail.str().empty()) v.failures.push_back(fail.str());
    };
    diff_leg(sim::Protocol::kSrHdlc, "differential sr-hdlc");
    diff_leg(sim::Protocol::kGbnHdlc, "differential gbn-hdlc");
  }

  v.report = s.report();

  // ---- closed-form model check (clean draws only) ------------------------
  if (knobs.analysis_check && completed && !paced && !any_applied &&
      !cong_applied && !outage_applied && packets >= 80) {
    const analysis::Params ap = s.analysis_params();
    const double sbar = analysis::s_bar_lams(ap);
    const double p_r = analysis::p_r_lams(ap);
    // Per-frame transmission count is geometric: sd = sqrt(p)/(1-p); allow
    // 3 sigma of the N-sample mean plus 10% model slack.
    const double sd = std::sqrt(p_r) / (1.0 - p_r);
    const double tol =
        0.10 * sbar + 3.0 * sd / std::sqrt(static_cast<double>(packets));
    if (std::abs(v.report.tx_per_frame - sbar) > tol) {
      std::ostringstream fail;
      fail << "model: tx_per_frame=" << v.report.tx_per_frame
           << " vs s_bar=" << sbar << " (tol " << tol << ")";
      v.failures.push_back(fail.str());
    }
    tr << "  model check: s_bar=" << sbar << " measured="
       << v.report.tx_per_frame << "\n";
  }

  v.ok = v.failures.empty();
  v.completed = completed;
  v.declared_failed = declared;
  v.transcript = tr.str();
  v.knobs = eff;
  return v;
}

VerifyVerdict shrink_failure(const VerifyKnobs& failing, int budget) {
  VerifyVerdict best = run_verify(failing);
  int spent = 1;
  if (best.ok) return best;  // precondition violated; nothing to shrink
  VerifyKnobs cur = best.knobs;

  // 1. Halve the workload while the failure survives.
  while (spent < budget && cur.packets > 8) {
    VerifyKnobs cand = cur;
    cand.packets = std::max<std::uint64_t>(8, cur.packets / 2);
    if (cand.packets == cur.packets) break;
    VerifyVerdict r = run_verify(cand);
    ++spent;
    if (r.ok) break;
    cur = r.knobs;
    best = std::move(r);
  }

  // 2. Drop scenario classes one at a time (cheapest-to-lose first).
  static constexpr bool VerifyKnobs::* kFlags[] = {
      &VerifyKnobs::differential, &VerifyKnobs::analysis_check,
      &VerifyKnobs::congestion,   &VerifyKnobs::outage,
      &VerifyKnobs::byte_level,   &VerifyKnobs::reverse_faults,
      &VerifyKnobs::faults};
  for (const auto flag : kFlags) {
    if (spent >= budget || !(cur.*flag)) continue;
    VerifyKnobs cand = cur;
    cand.*flag = false;
    VerifyVerdict r = run_verify(cand);
    ++spent;
    if (!r.ok) {
      cur = r.knobs;
      best = std::move(r);
    }
  }

  // 3. Bisect the fault windows toward the shortest span that still fails.
  for (int i = 0; i < 2 && spent < budget && cur.faults; ++i) {
    VerifyKnobs cand = cur;
    cand.fault_scale = cur.fault_scale * 0.5;
    VerifyVerdict r = run_verify(cand);
    ++spent;
    if (!r.ok) {
      cur = r.knobs;
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace lamsdlc::verif
