#include "lamsdlc/verif/fuzz.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string_view>
#include <variant>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/envelope.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/phy/crc.hpp"

namespace lamsdlc::verif {
namespace {

using frame::Frame;
using frame::Seq;

/// Draw one syntactically valid frame.  \p lawful_below bounds every
/// sequence-carrying field when nonzero; 0 draws over the full 32-bit range.
Frame random_frame(RandomStream& rng, std::uint32_t lawful_below) {
  auto seq = [&]() -> Seq {
    if (lawful_below != 0) {
      return static_cast<Seq>(rng.uniform_int(0, lawful_below - 1));
    }
    return static_cast<Seq>(
        rng.uniform_int(0, static_cast<std::int64_t>(0xFFFFFFFFu)));
  };
  auto small = [&](std::int64_t hi) {
    return static_cast<std::size_t>(rng.uniform_int(0, hi));
  };
  Frame f;
  switch (rng.uniform_int(0, 6)) {
    case 0: {
      frame::IFrame i;
      i.seq = seq();
      i.payload_bytes = static_cast<std::uint32_t>(small(48));
      if (rng.bernoulli(0.5)) {
        i.payload.resize(i.payload_bytes);
        for (auto& b : i.payload) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
      }
      f.body = std::move(i);
      break;
    }
    case 1: {
      frame::CheckpointFrame c;
      c.cp_seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
      c.generated_at = Time::picoseconds(rng.uniform_int(0, 1'000'000'000'000));
      c.highest_seen = seq();
      c.any_seen = rng.bernoulli(0.8);
      c.enforced = rng.bernoulli(0.3);
      c.stop_go = rng.bernoulli(0.2);
      c.epoch = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
      c.naks.resize(small(12));
      for (auto& s : c.naks) s = seq();
      f.body = std::move(c);
      break;
    }
    case 2:
      f.body = frame::RequestNakFrame{
          static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20))};
      break;
    case 3: {
      frame::HdlcIFrame i;
      i.ns = seq();
      i.nr = seq();
      i.poll = rng.bernoulli(0.5);
      i.payload_bytes = static_cast<std::uint32_t>(small(48));
      f.body = std::move(i);
      break;
    }
    case 4: {
      frame::HdlcSFrame s;
      s.type = static_cast<frame::HdlcSFrame::Type>(rng.uniform_int(0, 3));
      s.nr = seq();
      s.poll_final = rng.bernoulli(0.5);
      s.srej_list.resize(small(8));
      for (auto& q : s.srej_list) q = seq();
      f.body = std::move(s);
      break;
    }
    case 5: {
      frame::SessionFrame s;
      s.kind = static_cast<frame::SessionFrame::Kind>(rng.uniform_int(0, 3));
      s.epoch = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
      f.body = s;
      break;
    }
    default: {
      frame::SelectiveAckFrame a;
      a.base = seq();
      a.highest = seq();
      a.any_seen = rng.bernoulli(0.8);
      a.missing.resize(small(8));
      for (auto& m : a.missing) m = seq();
      f.body = std::move(a);
      break;
    }
  }
  return f;
}

/// Force exactly one sequence-carrying field of \p f out of range (>= m).
/// Returns false when the drawn frame has no such field.
bool poison_one_seq(Frame& f, RandomStream& rng, std::uint32_t m) {
  const Seq bad = m + static_cast<Seq>(rng.uniform_int(0, 1 << 16));
  if (auto* i = std::get_if<frame::IFrame>(&f.body)) {
    i->seq = bad;
    return true;
  }
  if (auto* c = std::get_if<frame::CheckpointFrame>(&f.body)) {
    if (!c->naks.empty() && rng.bernoulli(0.5)) {
      c->naks[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(c->naks.size()) - 1))] = bad;
    } else {
      c->highest_seen = bad;
    }
    return true;
  }
  if (auto* i = std::get_if<frame::HdlcIFrame>(&f.body)) {
    (rng.bernoulli(0.5) ? i->ns : i->nr) = bad;
    return true;
  }
  if (auto* s = std::get_if<frame::HdlcSFrame>(&f.body)) {
    if (!s->srej_list.empty() && rng.bernoulli(0.5)) {
      s->srej_list[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(s->srej_list.size()) - 1))] = bad;
    } else {
      s->nr = bad;
    }
    return true;
  }
  return false;  // RequestNak / Session / SelectiveAck carry no cyclic seq
}

/// Mutate \p bytes in place; returns a short description for failure logs.
const char* mutate(std::vector<std::uint8_t>& bytes, RandomStream& rng,
                   const std::vector<std::uint8_t>& donor) {
  auto pos = [&](std::size_t size) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
  };
  switch (rng.uniform_int(0, 5)) {
    case 0: {  // bit flips
      const auto flips = 1 + rng.uniform_int(0, 15);
      for (std::int64_t i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[pos(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      return "bitflip";
    }
    case 1: {  // truncate the tail
      if (bytes.size() > 1) {
        bytes.resize(pos(bytes.size()));
      } else {
        bytes.clear();
      }
      return "truncate";
    }
    case 2: {  // append junk
      const auto n = 1 + rng.uniform_int(0, 7);
      for (std::int64_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      return "extend";
    }
    case 3: {  // splice: our head, a donor frame's tail
      if (!bytes.empty() && !donor.empty()) {
        const std::size_t head = pos(bytes.size());
        const std::size_t tail = pos(donor.size());
        bytes.resize(head);
        bytes.insert(bytes.end(), donor.begin() + static_cast<std::ptrdiff_t>(tail),
                     donor.end());
      }
      return "splice";
    }
    case 4: {  // zero a span
      if (!bytes.empty()) {
        std::size_t at = pos(bytes.size());
        const std::size_t len = 1 + pos(bytes.size());
        for (std::size_t i = 0; i < len && at + i < bytes.size(); ++i) {
          bytes[at + i] = 0;
        }
      }
      return "zero-span";
    }
    default: {  // randomize a span
      if (!bytes.empty()) {
        std::size_t at = pos(bytes.size());
        const std::size_t len = 1 + pos(bytes.size());
        for (std::size_t i = 0; i < len && at + i < bytes.size(); ++i) {
          bytes[at + i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
      }
      return "rand-span";
    }
  }
}

/// Recompute the trailing FCS so the mutant passes the CRC gate and the
/// structural / value validation behind it gets exercised.
void fix_crc(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 1 + frame::kFcsBytes) return;
  const auto body =
      std::span<const std::uint8_t>{bytes}.first(bytes.size() - frame::kFcsBytes);
  const std::uint16_t fcs = phy::crc16_ccitt(body);
  bytes[bytes.size() - 2] = static_cast<std::uint8_t>(fcs);
  bytes[bytes.size() - 1] = static_cast<std::uint8_t>(fcs >> 8);
}

/// Inflate the length/count field of an encoded frame so it declares more
/// payload (or more list entries) than the buffer holds, then repair the
/// FCS.  The mutant passes the CRC gate *by construction* — the checksum
/// covers the bytes that arrived, not the bytes the length field promises —
/// so the decoder's structural length check is the only thing between this
/// datagram and an out-of-bounds parse.  Returns nullptr when the drawn
/// kind carries no length/count field.
const char* inflate_length(std::vector<std::uint8_t>& bytes,
                           RandomStream& rng) {
  if (bytes.size() < 1 + frame::kFcsBytes) return nullptr;
  auto bump_u16 = [&](std::size_t at) {
    const auto old = static_cast<std::uint16_t>(bytes[at] | (bytes[at + 1] << 8));
    const auto delta = static_cast<std::uint16_t>(
        rng.uniform_int(1, std::min<std::int64_t>(0xFFFF - old, 1 << 12)));
    const auto inflated = static_cast<std::uint16_t>(old + delta);
    bytes[at] = static_cast<std::uint8_t>(inflated);
    bytes[at + 1] = static_cast<std::uint8_t>(inflated >> 8);
  };
  auto bump_u32 = [&](std::size_t at) {
    std::uint32_t old = 0;
    for (int i = 3; i >= 0; --i) old = (old << 8) | bytes[at + static_cast<std::size_t>(i)];
    const auto inflated =
        old + static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 16));
    for (std::size_t i = 0; i < 4; ++i) {
      bytes[at + i] = static_cast<std::uint8_t>(inflated >> (8 * i));
    }
  };
  const char* kind = nullptr;
  switch (bytes[0]) {
    case 1:  // IFrame: u32 payload_bytes at offset 5
      if (bytes.size() < 9 + frame::kFcsBytes) return nullptr;
      bump_u32(5);
      kind = "len-iframe";
      break;
    case 2:  // Checkpoint: u16 nak count at offset 22
      if (bytes.size() < 24 + frame::kFcsBytes) return nullptr;
      bump_u16(22);
      kind = "len-cp-naks";
      break;
    case 4:  // HdlcI: u32 payload_bytes at offset 10
      if (bytes.size() < 14 + frame::kFcsBytes) return nullptr;
      bump_u32(10);
      kind = "len-hdlci";
      break;
    case 5:  // HdlcS: u16 srej count at offset 6
      if (bytes.size() < 8 + frame::kFcsBytes) return nullptr;
      bump_u16(6);
      kind = "len-srej";
      break;
    case 7:  // SelectiveAck: u16 missing count at offset 10
      if (bytes.size() < 12 + frame::kFcsBytes) return nullptr;
      bump_u16(10);
      kind = "len-sack";
      break;
    default:  // RequestNak / Session / Resync carry no length field
      return nullptr;
  }
  fix_crc(bytes);
  return kind;
}

/// One envelope mutation.  Every class except "env-bitflip" produces a
/// datagram `decode_envelope` is *guaranteed* to refuse — the caller treats
/// acceptance of those as a property failure.  The first three are the
/// length-disagreement family the envelope's self-check exists for: the
/// declared payload_len and the received byte count are pushed apart in one
/// direction or the other without touching the (still CRC-clean) frame
/// inside.
const char* mutate_envelope(std::vector<std::uint8_t>& bytes,
                            RandomStream& rng) {
  auto pos = [&](std::size_t size) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
  };
  switch (rng.uniform_int(0, 6)) {
    case 0: {  // shear: fewer bytes arrive than the header declares
      if (bytes.size() > 1) {
        bytes.resize(pos(bytes.size()));
      } else {
        bytes.clear();
      }
      return "env-shear";
    }
    case 5: {  // inflate the declared payload_len past the received bytes
      if (bytes.size() >= 10) {
        const auto old =
            static_cast<std::uint16_t>(bytes[8] | (bytes[9] << 8));
        const auto inflated = static_cast<std::uint16_t>(
            old == 0xFFFF ? old - 1
                          : old + 1 + rng.uniform_int(
                                          0, std::min<std::int64_t>(
                                                 0xFFFF - old - 1, 255)));
        bytes[8] = static_cast<std::uint8_t>(inflated);
        bytes[9] = static_cast<std::uint8_t>(inflated >> 8);
      }
      return "env-len-up";
    }
    case 1: {  // pad: trailing junk after the declared payload
      const auto n = 1 + rng.uniform_int(0, 7);
      for (std::int64_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      return "env-pad";
    }
    case 2: {  // rewrite the declared payload_len, leaving the bytes alone
      if (bytes.size() >= 10) {
        bytes[8 + pos(2)] ^= static_cast<std::uint8_t>(
            1u + rng.uniform_int(0, 254));
      }
      return "env-len";
    }
    case 3: {  // set a reserved flag bit (bit1 is the direction bit: legal)
      bytes[3] |= static_cast<std::uint8_t>(
          1u << rng.uniform_int(2, 7));
      return "env-flag";
    }
    case 4: {  // damage magic or version
      bytes[pos(3)] ^= static_cast<std::uint8_t>(
          1u + rng.uniform_int(0, 254));
      return "env-magic";
    }
    default: {  // arbitrary bit flips: rejection not guaranteed
      const auto flips = 1 + rng.uniform_int(0, 15);
      for (std::int64_t i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[pos(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      return "env-bitflip";
    }
  }
}

/// True when every sequence-carrying field of \p f is below \p m.
bool obeys_limits(const Frame& f, std::uint32_t m) {
  if (m == 0) return true;
  if (const auto* i = std::get_if<frame::IFrame>(&f.body)) return i->seq < m;
  if (const auto* c = std::get_if<frame::CheckpointFrame>(&f.body)) {
    if (c->highest_seen >= m) return false;
    for (const Seq s : c->naks) {
      if (s >= m) return false;
    }
    return true;
  }
  if (const auto* i = std::get_if<frame::HdlcIFrame>(&f.body)) {
    return i->ns < m && i->nr < m;
  }
  if (const auto* s = std::get_if<frame::HdlcSFrame>(&f.body)) {
    if (s->nr >= m) return false;
    for (const Seq q : s->srej_list) {
      if (q >= m) return false;
    }
    return true;
  }
  return true;
}

}  // namespace

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzz: " << cases << " cases, " << decode_ok << " accepted, "
     << decode_rejected << " rejected (" << limit_rejections
     << " by seq limits, " << envelope_rejections << " by envelope, "
     << length_rejections << " by length overrun), "
     << failures.size() << " property failures";
  for (const std::string& f : failures) os << "\n  FAIL " << f;
  return os.str();
}

FuzzReport fuzz_codec(const FuzzOptions& opts) {
  RandomStream rng{opts.seed, "verif.fuzz"};
  const frame::DecodeLimits limits{opts.seq_modulus};
  FuzzReport rep;

  auto fail = [&](std::uint64_t case_idx, const char* mutation,
                  const char* what) {
    std::ostringstream os;
    os << "seed=" << opts.seed << " case=" << case_idx << " (" << mutation
       << "): " << what;
    rep.failures.push_back(os.str());
  };

  /// Canonical-form check: whatever decode accepted must survive an
  /// encode→decode→encode round trip byte-identically.  A divergence means
  /// the parser built a frame the encoder cannot represent — state the rest
  /// of the stack would silently mangle.
  auto check_canonical = [&](std::uint64_t case_idx, const char* mutation,
                             const Frame& accepted) {
    const std::vector<std::uint8_t> e2 = frame::encode(accepted);
    const auto d2 = frame::decode(e2, limits);
    if (!d2.has_value()) {
      fail(case_idx, mutation, "re-encoded accepted frame failed to decode");
      return;
    }
    if (frame::encode(*d2) != e2) {
      fail(case_idx, mutation, "re-encode of accepted frame is not canonical");
    }
  };

  for (std::uint64_t i = 0; i < opts.iterations; ++i) {
    const double leg = rng.uniform();
    if (leg < 0.1) {
      // Lawful frame, no mutation: must decode and re-encode identically.
      const Frame f = random_frame(rng, opts.seq_modulus);
      const std::vector<std::uint8_t> bytes = frame::encode(f);
      ++rep.cases;
      const auto d = frame::decode(bytes, limits);
      if (!d.has_value()) {
        fail(i, "none", "valid in-range encoding was rejected");
        continue;
      }
      ++rep.decode_ok;
      if (frame::encode(*d) != bytes) {
        fail(i, "none", "decode(encode(f)) re-encoded differently");
      }
      continue;
    }
    if (leg < 0.2 && opts.seq_modulus != 0) {
      // One field deliberately >= m: the unlimited decode must accept it
      // (the bytes are pristine), the limited decode must refuse it.
      Frame f = random_frame(rng, opts.seq_modulus);
      if (!poison_one_seq(f, rng, opts.seq_modulus)) continue;
      const std::vector<std::uint8_t> bytes = frame::encode(f);
      ++rep.cases;
      if (!frame::decode(bytes).has_value()) {
        fail(i, "poison", "structurally valid frame rejected without limits");
        continue;
      }
      if (frame::decode(bytes, limits).has_value()) {
        fail(i, "poison", "out-of-range seq accepted despite DecodeLimits");
        continue;
      }
      ++rep.decode_rejected;
      ++rep.limit_rejections;
      continue;
    }

    if (leg < 0.3) {
      // Length-inflation leg: a lawful frame whose length/count field is
      // rewritten to claim bytes past the buffer end, FCS repaired.  This is
      // the hostile-declaration class the batched byte path would otherwise
      // parse out of bounds; the decoder must refuse it, and must report
      // kLengthOverrun specifically so the reject is *counted* by cause.
      const Frame f = random_frame(rng, opts.seq_modulus);
      std::vector<std::uint8_t> bytes = frame::encode(f);
      const char* mutation = inflate_length(bytes, rng);
      if (mutation == nullptr) continue;  // drawn kind has no length field
      ++rep.cases;
      frame::DecodeReject why = frame::DecodeReject::kNone;
      const auto d = frame::decode(bytes, limits, &why);
      if (d.has_value()) {
        fail(i, mutation, "length-inflated CRC-clean frame was accepted");
        continue;
      }
      ++rep.decode_rejected;
      if (why != frame::DecodeReject::kLengthOverrun) {
        fail(i, mutation,
             "length-inflated frame rejected with the wrong reason code");
        continue;
      }
      ++rep.length_rejections;
      continue;
    }

    if (leg < 0.45) {
      // Envelope leg: a lawful frame wrapped in a datagram envelope, then
      // attacked at the envelope layer.  This is the exact parse order of
      // the live runtime (decode_envelope first, frame::decode second), so
      // the properties here are the ones a hostile datagram meets first.
      Frame f = random_frame(rng, opts.seq_modulus);
      frame::Envelope env;
      env.session_id =
          static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFF));
      env.has_packet_id = std::holds_alternative<frame::IFrame>(f.body);
      env.to_receiver = rng.bernoulli(0.5);
      if (env.has_packet_id) {
        env.packet_id = static_cast<frame::PacketId>(
            rng.uniform_int(0, static_cast<std::int64_t>(1) << 40));
      }
      env.payload = frame::encode(f);
      std::vector<std::uint8_t> bytes = frame::encode_envelope(env);
      ++rep.cases;
      if (rng.bernoulli(0.15)) {
        // Unmutated: must round-trip field-for-field.
        const auto d = frame::decode_envelope(bytes);
        if (!d.has_value()) {
          fail(i, "env-none", "valid envelope was rejected");
          continue;
        }
        ++rep.decode_ok;
        if (d->session_id != env.session_id ||
            d->has_packet_id != env.has_packet_id ||
            d->to_receiver != env.to_receiver ||
            d->packet_id != env.packet_id || d->payload != env.payload) {
          fail(i, "env-none", "envelope round-trip changed fields");
        }
        continue;
      }
      const char* mutation = mutate_envelope(bytes, rng);
      const std::string_view mu{mutation};
      const bool must_reject = mu != "env-bitflip";
      frame::EnvelopeReject env_why = frame::EnvelopeReject::kNone;
      const auto d = frame::decode_envelope(bytes, &env_why);
      if (!d.has_value()) {
        ++rep.decode_rejected;
        ++rep.envelope_rejections;
        // The length-disagreement family must be refused *as* a length
        // mismatch — the counted reject the envelope self-check exists for.
        if ((mu == "env-pad" || mu == "env-len" || mu == "env-len-up") &&
            env_why != frame::EnvelopeReject::kLengthMismatch) {
          fail(i, mutation,
               "length-family envelope mutant rejected with the wrong reason");
        }
        continue;
      }
      ++rep.decode_ok;
      if (must_reject) {
        fail(i, mutation, "guaranteed-invalid envelope was accepted");
        continue;
      }
      // Canonical form: the envelope has no redundancy beyond its checked
      // fields, so anything accepted must re-encode byte-identically.
      if (frame::encode_envelope(*d) != bytes) {
        fail(i, mutation, "accepted envelope is not canonical");
      }
      continue;
    }

    // Mutation leg: arbitrary frame, mutated bytes, often with a repaired
    // FCS so validation behind the CRC gate is reached.
    const Frame f = random_frame(rng, rng.bernoulli(0.5) ? opts.seq_modulus : 0);
    const Frame donor_frame = random_frame(rng, 0);
    const std::vector<std::uint8_t> donor = frame::encode(donor_frame);
    std::vector<std::uint8_t> bytes = frame::encode(f);
    const char* mutation = mutate(bytes, rng, donor);
    if (rng.bernoulli(0.5)) fix_crc(bytes);
    ++rep.cases;
    const auto d = frame::decode(bytes, limits);
    if (!d.has_value()) {
      ++rep.decode_rejected;
      if (opts.seq_modulus != 0 && frame::decode(bytes).has_value()) {
        ++rep.limit_rejections;
      }
      continue;
    }
    ++rep.decode_ok;
    if (!obeys_limits(*d, opts.seq_modulus)) {
      fail(i, mutation, "accepted frame violates DecodeLimits");
      continue;
    }
    check_canonical(i, mutation, *d);
  }
  return rep;
}

}  // namespace lamsdlc::verif
