#include "lamsdlc/verif/corrupt.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/sim/invariants.hpp"
#include "lamsdlc/sim/sweep.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::verif {

const char* to_string(CorruptionClass c) noexcept {
  switch (c) {
    case CorruptionClass::kSenderCtrWarp: return "sender_ctr_warp";
    case CorruptionClass::kSenderSlotDrop: return "sender_slot_drop";
    case CorruptionClass::kSenderSlotArrivalWarp: return "sender_slot_arrival_warp";
    case CorruptionClass::kSenderCpTrackingWarp: return "sender_cp_tracking_warp";
    case CorruptionClass::kSenderPacingStall: return "sender_pacing_stall";
    case CorruptionClass::kReceiverHighestWarp: return "receiver_highest_warp";
    case CorruptionClass::kReceiverAnchorWarp: return "receiver_anchor_warp";
    case CorruptionClass::kReceiverNakInject: return "receiver_nak_inject";
    case CorruptionClass::kReceiverNakClear: return "receiver_nak_clear";
    case CorruptionClass::kReceiverCpSeqWarp: return "receiver_cp_seq_warp";
    case CorruptionClass::kReceiverCadenceStall: return "receiver_cadence_stall";
  }
  return "?";
}

namespace {

bool targets_receiver(CorruptionClass c) {
  return static_cast<std::uint8_t>(c) >=
         static_cast<std::uint8_t>(CorruptionClass::kReceiverHighestWarp);
}

/// Magnitude scaled for shrinking, floored at 1 so an injection never
/// silently degenerates into a no-op.
std::int64_t scaled(std::int64_t raw, double scale) {
  const auto s = static_cast<std::int64_t>(static_cast<double>(raw) * scale);
  return s < 1 ? 1 : s;
}

}  // namespace

// ------------------------------------------------------- StateCorruptor --

StateCorruptor::StateCorruptor(sim::Scenario& s, Plan plan)
    : scenario_{s}, plan_{plan} {
  const auto m =
      static_cast<std::int64_t>(scenario_.config().lams.modulus);
  std::vector<CorruptionClass> classes;
  for (std::size_t i = 0; i < kCorruptionClassCount; ++i) {
    const auto c = static_cast<CorruptionClass>(i);
    if (targets_receiver(c) ? !plan_.allow_receiver : !plan_.allow_sender) {
      continue;
    }
    if (c == CorruptionClass::kSenderSlotDrop && !plan_.allow_state_loss) {
      continue;
    }
    classes.push_back(c);
  }

  RandomStream rng{plan_.seed, "corrupt.plan"};
  for (std::uint32_t i = 0; i < plan_.injections && !classes.empty(); ++i) {
    Drawn d;
    d.at = plan_.first + plan_.span * rng.uniform(0.0, 1.0);
    d.cls = classes[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(classes.size()) - 1))];
    // One fixed draw tuple per injection keeps the schedule shape stable
    // when only the class set changes.
    const bool negative = rng.bernoulli(0.5);
    const std::int64_t half = rng.uniform_int(1, m / 2 > 1 ? m / 2 : 1);
    const std::int64_t full = rng.uniform_int(1, m);
    const std::int64_t idx = rng.uniform_int(0, 63);
    const std::int64_t big = rng.uniform_int(1, 1000);
    const std::int64_t stall_ms = rng.uniform_int(60, 300);
    const std::int64_t warp_ms = rng.uniform_int(1, 50);
    switch (d.cls) {
      case CorruptionClass::kSenderCtrWarp:
      case CorruptionClass::kReceiverHighestWarp:
        d.a = scaled(half, plan_.scale) * (negative ? -1 : 1);
        break;
      case CorruptionClass::kReceiverAnchorWarp:
        d.a = scaled(full, plan_.scale) * (negative ? -1 : 1);
        break;
      case CorruptionClass::kSenderSlotDrop:
      case CorruptionClass::kSenderSlotArrivalWarp:
        d.a = scaled(warp_ms, plan_.scale) * (negative ? -1 : 1);
        d.b = static_cast<std::uint64_t>(idx);
        break;
      case CorruptionClass::kSenderCpTrackingWarp:
        d.b = static_cast<std::uint64_t>(scaled(big, plan_.scale));
        break;
      case CorruptionClass::kSenderPacingStall:
        d.a = scaled(stall_ms, plan_.scale);
        break;
      case CorruptionClass::kReceiverNakInject:
        d.b = static_cast<std::uint64_t>(rng.uniform_int(0, 2 * m));
        break;
      case CorruptionClass::kReceiverCpSeqWarp:
        d.a = scaled(big, plan_.scale) * (negative ? -1 : 1);
        break;
      case CorruptionClass::kReceiverNakClear:
      case CorruptionClass::kReceiverCadenceStall:
        break;
    }
    drawn_.push_back(d);
  }
  for (std::size_t i = 0; i < drawn_.size(); ++i) {
    scenario_.simulator().schedule_at(drawn_[i].at,
                                      [this, i] { inject(drawn_[i]); });
  }
  sub_ = scenario_.events().subscribe(
      [this](const obs::Event& e) { on_event(e); });
}

StateCorruptor::~StateCorruptor() { scenario_.events().unsubscribe(sub_); }

void StateCorruptor::inject(const Drawn& d) {
  lams::LamsSender* tx = scenario_.lams_sender();
  lams::LamsReceiver* rx = scenario_.lams_receiver();
  if (tx == nullptr || rx == nullptr) return;
  if (tx->mode() == lams::LamsSender::Mode::kFailed) return;

  InjectionRecord rec;
  rec.cls = d.cls;
  rec.receiver = targets_receiver(d.cls);
  rec.at = scenario_.simulator().now();
  rec.a = d.a;
  rec.b = d.b;

  switch (d.cls) {
    case CorruptionClass::kSenderCtrWarp:
      tx->corrupt_warp_next_ctr(d.a);
      break;
    case CorruptionClass::kSenderSlotDrop:
      rec.destroyed = tx->corrupt_drop_slot(static_cast<std::size_t>(d.b));
      break;
    case CorruptionClass::kSenderSlotArrivalWarp:
      tx->corrupt_warp_slot_arrival(static_cast<std::size_t>(d.b),
                                    Time::milliseconds(d.a));
      break;
    case CorruptionClass::kSenderCpTrackingWarp:
      tx->corrupt_cp_tracking(d.b, true);
      break;
    case CorruptionClass::kSenderPacingStall:
      tx->corrupt_pacing_gate(rec.at + Time::milliseconds(d.a));
      break;
    case CorruptionClass::kReceiverHighestWarp:
      rx->corrupt_warp_highest(d.a);
      break;
    case CorruptionClass::kReceiverAnchorWarp:
      rx->corrupt_warp_anchor(d.a);
      break;
    case CorruptionClass::kReceiverNakInject:
      rx->corrupt_inject_nak(d.b);
      break;
    case CorruptionClass::kReceiverNakClear:
      rx->corrupt_clear_nak_state();
      break;
    case CorruptionClass::kReceiverCpSeqWarp:
      rx->corrupt_warp_cp_seq(d.a);
      break;
    case CorruptionClass::kReceiverCadenceStall:
      rx->corrupt_stall_cadence();
      break;
  }

  // Every in-flight frame is now at risk: a warped endpoint may swallow it
  // as a duplicate or wrongly release it, and no later audit can conjure
  // the payload back — self-stabilization promises bounded loss during
  // convergence, not zero loss.
  for (const frame::PacketId id : tx->outstanding_ids()) note_at_risk(id);
  if (rec.destroyed != 0) note_at_risk(rec.destroyed);
  risk_open_ = true;
  last_at_ = rec.at;
  done_.push_back(rec);

  obs::Event e;
  e.at = rec.at;
  e.source =
      rec.receiver ? obs::Source::kLamsReceiver : obs::Source::kLamsSender;
  e.kind = obs::EventKind::kStateCorrupted;
  e.p.corruption = {static_cast<std::uint8_t>(d.cls),
                    static_cast<std::uint8_t>(rec.receiver ? 1 : 0),
                    static_cast<std::uint64_t>(d.a), d.b};
  scenario_.events().emit(e);
}

void StateCorruptor::on_event(const obs::Event& e) {
  if (e.kind == obs::EventKind::kResyncCompleted &&
      e.source == obs::Source::kLamsSender) {
    // The pipe is re-anchored and everything unresolved was requeued under
    // the fresh numbering; frames sent from here on must all deliver.
    if (!done_.empty() && e.at >= last_at_) risk_open_ = false;
    return;
  }
  if (risk_open_ && e.kind == obs::EventKind::kFrameSent &&
      e.source == obs::Source::kLamsSender && e.p.frame.control == 0 &&
      e.p.frame.packet_id != 0) {
    // Benign corruptions may never need a RESYNC; the horizon closes the
    // window once the detection + recovery budget has lapsed.
    if (plan_.risk_horizon.is_zero() ||
        e.at <= last_at_ + plan_.risk_horizon) {
      note_at_risk(e.p.frame.packet_id);
    }
  }
}

void StateCorruptor::note_at_risk(frame::PacketId id) {
  at_risk_.insert(id);
  // Excuse live, not just at finish(): a RESYNC re-delivers copies of
  // at-risk frames, and the duplicate audit must already know they are
  // lawful when the copy lands.
  if (checker_ != nullptr) checker_->excuse(id);
}

std::string StateCorruptor::describe_plan() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < drawn_.size(); ++i) {
    const Drawn& d = drawn_[i];
    os << "  corrupt " << i << ": " << to_string(d.cls) << " t="
       << d.at.ms() << "ms a=" << d.a << " b=" << d.b << "\n";
  }
  return os.str();
}

// ----------------------------------------------------------- run_corrupt --

std::string CorruptVerdict::repro_command() const {
  std::ostringstream os;
  os << "lamsdlc_cli verify --corrupt-state --seed " << knobs.seed
     << " --packets " << knobs.packets << " --injections "
     << knobs.injections;
  if (!knobs.allow_sender) os << " --no-sender";
  if (!knobs.allow_receiver) os << " --no-receiver";
  if (!knobs.allow_state_loss) os << " --no-state-loss";
  if (!knobs.background_noise) os << " --no-noise";
  if (!knobs.self_heal) os << " --no-self-heal";
  if (knobs.scale != 1.0) os << " --fault-scale " << knobs.scale;
  return os.str();
}

std::string CorruptVerdict::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATED")
     << (converged ? " (converged)"
                   : torn_down ? " (clean teardown)" : " (diverged)")
     << " resyncs=" << resyncs << " audit_trips=" << audit_trips
     << " excused=" << excused << "\n";
  for (const std::string& v : violations) os << "  violation: " << v << "\n";
  os << schedule;
  if (!ok) os << "  repro: " << repro_command() << "\n";
  return os.str();
}

CorruptVerdict run_corrupt(const CorruptKnobs& knobs) {
  RandomStream rng{knobs.seed, "corrupt.base"};
  std::ostringstream sched;
  sched << "corrupt seed=" << knobs.seed << " packets=" << knobs.packets
        << "\n";

  constexpr std::uint32_t kFrameBytes = 256;

  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.metrics = true;
  cfg.data_rate_bps = 100e6;
  cfg.prop_delay = Time::milliseconds(5);
  cfg.frame_bytes = kFrameBytes;
  cfg.seed = knobs.seed;
  cfg.lams.checkpoint_interval = Time::milliseconds(5);
  cfg.lams.cumulation_depth = 4;
  cfg.lams.max_rtt = Time::milliseconds(15);
  // Small enough that drawn warps are a meaningful fraction of the number
  // space, large enough that the lawful in-flight population (paced
  // workload, ~40 frames) stays under the numbering window of modulus/2.
  cfg.lams.modulus = 128;
  cfg.lams.release_margin = Time::microseconds(300);
  // The layer under test: periodic self-audit, progress watchdog (beyond
  // the enforced-recovery budget so that machinery gets the first try),
  // implausible-ack streak detection, RESYNC recovery.  The self_heal
  // ablation keeps every derived time bound identical and turns only the
  // layer itself off.
  const Time watchdog = cfg.lams.failure_timeout() * 2;
  if (knobs.self_heal) {
    cfg.lams.self_audit_period = Time::milliseconds(2);
    cfg.lams.resync_enabled = true;
    cfg.lams.resync_watchdog = watchdog;
    cfg.lams.implausible_ack_threshold = 2;
  } else {
    sched << "  ablation: self-heal OFF\n";
  }

  if (knobs.background_noise && rng.bernoulli(0.5)) {
    cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.forward_error.p_frame = rng.uniform(0.0, 0.10);
    cfg.forward_error.p_control = rng.uniform(0.0, 0.08);
    cfg.reverse_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.reverse_error.p_frame = rng.uniform(0.0, 0.08);
    cfg.reverse_error.p_control = cfg.reverse_error.p_frame;
    sched << "  base noise: pf=" << cfg.forward_error.p_frame
          << " pc_fwd=" << cfg.forward_error.p_control
          << " p_rev=" << cfg.reverse_error.p_frame << "\n";
  }

  // Paced workload spreads traffic across the injection window so every
  // corruption lands on a live pipe.
  const Time gap = Time::microseconds(rng.uniform_int(300, 800));
  const Time traffic_span = gap * static_cast<std::int64_t>(knobs.packets);
  sched << "  workload: rate gap=" << gap.us() << "us\n";

  StateCorruptor::Plan plan;
  plan.seed = knobs.seed;
  plan.injections = knobs.injections != 0
                        ? knobs.injections
                        : static_cast<std::uint32_t>(1 + rng.uniform_int(0, 3));
  plan.allow_sender = knobs.allow_sender;
  plan.allow_receiver = knobs.allow_receiver;
  plan.allow_state_loss = knobs.allow_state_loss;
  plan.scale = knobs.scale;
  plan.first = Time::milliseconds(2);
  plan.span = traffic_span * 0.9;
  // Detection + recovery budget: worst-case watchdog latency (two periods —
  // one to arm the baseline, one to observe the stall), a full bounded-retry
  // RESYNC episode, then one resolving period to drain the requeued pipe.
  plan.risk_horizon = watchdog * 2 + cfg.lams.resync_budget() +
                      cfg.lams.resolving_period_bound() +
                      Time::milliseconds(50);

  sim::Scenario s{cfg};
  if (knobs.tap) knobs.tap(s);
  StateCorruptor corruptor{s, plan};

  // The convergence boundary: everything after the end of the injection
  // window plus the recovery budget must be invariant-clean steady state.
  const Time converge_after = plan.first + plan.span + plan.risk_horizon;
  Time horizon = knobs.horizon;
  if (horizon.is_zero()) {
    horizon = converge_after + traffic_span +
              cfg.lams.resolving_period_bound() * 4 + Time::seconds_int(1);
  }

  // Steady-state probe: a fresh batch submitted after the convergence
  // boundary.  These packets are sent after the risk window closed, so
  // nothing excuses them — a still-warped endpoint that swallows or strands
  // even one fails the run.  Without this the excused set (which lawfully
  // covers everything in flight during convergence) could mask a pipe that
  // never actually re-anchored.
  const std::uint64_t probe = std::max<std::uint64_t>(20, knobs.packets / 4);
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         probe, kFrameBytes, converge_after);
  const std::uint64_t total = knobs.packets + probe;
  sched << "  probe: " << probe << " packets at t=" << converge_after.ms()
        << "ms (post-convergence, none excusable)\n";

  sim::InvariantLimits limits;
  limits.max_outstanding = total;
  limits.max_holding = cfg.lams.resolving_period_bound();
  limits.grace = Time::milliseconds(500);
  limits.converge_after = converge_after;
  limits.seed = knobs.seed;
  sim::InvariantChecker checker{s, limits};
  corruptor.set_checker(&checker);

  auto source = std::make_unique<workload::RateSource>(
      s.simulator(), s.sender(), s.tracker(), s.ids(),
      workload::RateSource::Config{gap, knobs.packets, kFrameBytes, Time{},
                                   false});
  source->start();

  // Custom completion pump: `Scenario::run_to_completion` insists on *every*
  // packet delivered, but packets the corruption destroyed inside the
  // endpoint never can be — steady state is reached when the sender is idle
  // and everything missing is excused by the fault plan.
  bool completed = false;
  const Time check_every = Time::milliseconds(1);
  while (s.simulator().now() < horizon) {
    const Time next = std::min(horizon, s.simulator().now() + check_every);
    s.simulator().run_until(next);
    if (s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed) break;
    if (s.tracker().submitted() >= total && s.sender().idle()) {
      bool residue_excused = true;
      for (const frame::PacketId id : s.tracker().missing()) {
        if (corruptor.at_risk().find(id) == corruptor.at_risk().end()) {
          residue_excused = false;
          break;
        }
      }
      if (residue_excused) {
        completed = true;
        break;
      }
    }
  }
  const bool failed =
      s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;

  for (const frame::PacketId id : corruptor.at_risk()) checker.excuse(id);
  checker.finish(completed);

  CorruptVerdict v;
  v.ok = checker.ok();
  v.converged = completed;
  v.torn_down = failed;
  v.resyncs = s.lams_sender()->resyncs_completed();
  v.audit_trips = s.lams_sender()->self_audit_trips() +
                  s.lams_receiver()->self_audit_trips();
  v.injections = corruptor.injections().size();
  v.excused = corruptor.at_risk().size();
  v.violations = checker.violations();
  v.transients = checker.transients();
  v.schedule = sched.str() + corruptor.describe_plan();
  v.knobs = knobs;
  v.knobs.injections = plan.injections;

  obs::Registry& reg = s.metrics();
  if (const obs::LogHistogram* h = reg.find_histogram("recovery.time_ms")) {
    v.recovery_episodes = h->count();
    v.recovery_ms_max = h->max();
  }
  reg.counter("verif.at_risk_packets").add(v.excused);
  v.metrics_json = reg.json();
  return v;
}

CorruptVerdict shrink_corrupt(const CorruptKnobs& failing, int budget) {
  CorruptVerdict best = run_corrupt(failing);
  int spent = 1;
  if (best.ok) return best;  // precondition violated; nothing to shrink
  CorruptKnobs cur = best.knobs;

  // 1. One injection reproduces most single-cause failures.
  if (spent < budget && cur.injections > 1) {
    CorruptKnobs cand = cur;
    cand.injections = 1;
    CorruptVerdict r = run_corrupt(cand);
    ++spent;
    if (!r.ok) {
      cur = r.knobs;
      best = std::move(r);
    }
  }

  // 2. Halve the workload while the failure survives.
  while (spent < budget && cur.packets > 16) {
    CorruptKnobs cand = cur;
    cand.packets = std::max<std::uint64_t>(16, cur.packets / 2);
    if (cand.packets == cur.packets) break;
    CorruptVerdict r = run_corrupt(cand);
    ++spent;
    if (r.ok) break;
    cur = r.knobs;
    best = std::move(r);
  }

  // 3. Drop dimensions one at a time (cheapest-to-lose first).  Never turn
  // off both endpoint surfaces at once.
  static constexpr bool CorruptKnobs::* kFlags[] = {
      &CorruptKnobs::background_noise, &CorruptKnobs::allow_state_loss,
      &CorruptKnobs::allow_receiver, &CorruptKnobs::allow_sender};
  for (const auto flag : kFlags) {
    if (spent >= budget || !(cur.*flag)) continue;
    CorruptKnobs cand = cur;
    cand.*flag = false;
    if (!cand.allow_sender && !cand.allow_receiver) continue;
    CorruptVerdict r = run_corrupt(cand);
    ++spent;
    if (!r.ok) {
      cur = r.knobs;
      best = std::move(r);
    }
  }

  // 4. Shrink the warp magnitudes toward the smallest that still fails.
  for (int i = 0; i < 2 && spent < budget; ++i) {
    CorruptKnobs cand = cur;
    cand.scale = cur.scale * 0.5;
    CorruptVerdict r = run_corrupt(cand);
    ++spent;
    if (!r.ok) {
      cur = r.knobs;
      best = std::move(r);
    }
  }
  return best;
}

std::vector<CorruptVerdict> run_corrupt_sweep(const CorruptKnobs& base,
                                              std::uint64_t first_seed,
                                              std::uint64_t count,
                                              unsigned threads) {
  sim::ParallelSweep pool{threads};
  return pool.map<CorruptVerdict>(
      static_cast<std::size_t>(count), [&base, first_seed](std::size_t i) {
        CorruptKnobs k = base;
        k.seed = first_seed + i;
        return run_corrupt(k);
      });
}

}  // namespace lamsdlc::verif
