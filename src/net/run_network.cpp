#include "lamsdlc/sim/run_network.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/net/contact_schedule.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/capture.hpp"
#include "lamsdlc/obs/collector.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/orbit/constellation.hpp"

namespace lamsdlc::sim {

namespace {

/// One channel's (or ingress's) private event stream.  Exactly one partition
/// ever writes into it: a channel emits at send time in its TX partition, an
/// ingress at sweep time in its RX partition — so per-buffer recording needs
/// no locks, and each buffer's internal order is partition-invariant.
struct EventBuffer {
  obs::EventBus bus;
  std::vector<obs::Event> events;

  EventBuffer() { bus.subscribe(obs::EventBus::record_into(events)); }
};

}  // namespace

NetworkRunResult run_network(const NetworkRunConfig& cfg) {
  const auto wall0 = std::chrono::steady_clock::now();
  const bool observe = cfg.observe || cfg.sample_period.ps() > 0;

  // Buffer storage outlives the network (components may hold bus pointers
  // through teardown).  Buffer *creation order* is the canonical tiebreak
  // for equal-time events, and every creation happens either before the run
  // or inside a barrier-ordered global op — partition-invariant both ways.
  std::vector<std::unique_ptr<EventBuffer>> buffers;
  std::map<std::uint64_t, EventBuffer*> flow_buffers;

  Simulator sim;
  net::Network net{sim, cfg.seed};
  net.enable_pdes(cfg.partitions == 0 ? 1 : cfg.partitions, cfg.satellites);

  orbit::WalkerParams wp;
  wp.total = cfg.satellites;
  wp.planes = cfg.planes;
  wp.phasing = cfg.phasing;
  wp.altitude_m = cfg.altitude_m;
  wp.inclination_rad = cfg.inclination_rad;
  const orbit::Constellation constellation{wp};

  for (std::size_t i = 0; i < constellation.size(); ++i) {
    net.add_node("sat" + std::to_string(i));
  }

  const std::vector<orbit::Contact> plan =
      orbit::contact_plan(constellation, cfg.horizon, cfg.contact_step,
                          cfg.max_range_m, cfg.min_contact);

  net::LinkSpec proto;
  proto.data_rate_bps = cfg.data_rate_bps;
  proto.lams.checkpoint_interval = cfg.checkpoint_interval;
  proto.lams.cumulation_depth = cfg.cumulation_depth;
  proto.lams.max_rtt = cfg.max_rtt;
  if (cfg.p_frame > 0 || cfg.p_control > 0) {
    ErrorConfig err;
    err.kind = ErrorConfig::Kind::kFixedFrameProb;
    err.p_frame = cfg.p_frame;
    err.p_control = cfg.p_control;
    proto.a_to_b_error = err;
    proto.b_to_a_error = err;
  }
  if (observe) {
    // One persistent buffer per (flow, side): each is written from exactly
    // one partition, and link re-acquisitions (contact churn rebuilds the
    // flows) keep feeding the same buffer.
    proto.bus_for = [&buffers, &flow_buffers](
                        net::NodeId from, net::NodeId to,
                        bool sender_side) -> obs::EventBus* {
      const std::uint64_t key = (static_cast<std::uint64_t>(from) << 33) |
                                (static_cast<std::uint64_t>(to) << 1) |
                                (sender_side ? 1 : 0);
      auto it = flow_buffers.find(key);
      if (it == flow_buffers.end()) {
        buffers.push_back(std::make_unique<EventBuffer>());
        it = flow_buffers.emplace(key, buffers.back().get()).first;
      }
      return &it->second->bus;
    };
  }
  const auto link_map = net::build_contact_network(net, constellation, plan,
                                                   proto, cfg.max_range_m);

  // Observability: endpoint buffers (above) plus four wire-level buffers per
  // link (TX channel and RX ingress of each direction), merged post-run by
  // (time, buffer id, buffer order) — a canonical total order that no
  // partitioning can perturb.
  if (observe) {
    const auto attach = [&buffers](auto& component, obs::Source src) {
      buffers.push_back(std::make_unique<EventBuffer>());
      component.set_event_bus(&buffers.back()->bus, src);
    };
    for (const auto& [pair_ids, id] : link_map) {
      attach(net.link_channels(id).forward(), obs::Source::kLinkForward);
      attach(net.link_ingress(id, /*forward=*/true),
             obs::Source::kLinkForward);
      attach(net.link_channels(id).reverse(), obs::Source::kLinkReverse);
      attach(net.link_ingress(id, /*forward=*/false),
             obs::Source::kLinkReverse);
    }
  }

  // Traffic schedule: drawn up-front from one seeded stream, so the exact
  // same (time, src, dst) sequence is injected at every partition count.
  RandomStream traffic{cfg.seed, "netrun.traffic"};
  const auto node_count = static_cast<std::int64_t>(constellation.size());
  for (std::uint32_t w = 0; w < cfg.waves; ++w) {
    struct Draw {
      net::NodeId src, dst;
    };
    std::vector<Draw> draws;
    draws.reserve(cfg.packets_per_wave);
    for (std::uint32_t k = 0; k < cfg.packets_per_wave; ++k) {
      const auto src =
          static_cast<net::NodeId>(traffic.uniform_int(0, node_count - 1));
      auto dst =
          static_cast<net::NodeId>(traffic.uniform_int(0, node_count - 2));
      if (dst >= src) ++dst;
      draws.push_back({src, dst});
    }
    Draw msg{0, 0};
    if (cfg.message_segments > 0) {
      msg.src =
          static_cast<net::NodeId>(traffic.uniform_int(0, node_count - 1));
      msg.dst =
          static_cast<net::NodeId>(traffic.uniform_int(0, node_count - 2));
      if (msg.dst >= msg.src) ++msg.dst;
    }
    const Time at = Time::picoseconds(cfg.wave_interval.ps() *
                                      (static_cast<std::int64_t>(w) + 1));
    net.at(at, [&net, &cfg, draws = std::move(draws), msg] {
      for (const auto& d : draws) {
        net.send_packet(d.src, d.dst, cfg.packet_bytes);
      }
      if (cfg.message_segments > 0) {
        net.send_message(msg.src, msg.dst, cfg.message_segments,
                         cfg.packet_bytes);
      }
    });
  }

  NetworkRunResult out;
  out.completed = net.run_parallel_to_completion(cfg.horizon);
  out.report = net.report();
  out.nodes = constellation.size();
  out.links = link_map.size();
  out.contacts = plan.size();

  if (observe) {
    struct Tagged {
      std::int64_t at_ps;
      std::uint32_t uid;
      std::uint32_t seq;
      const obs::Event* e;
    };
    std::vector<Tagged> merged;
    std::size_t total = 0;
    for (const auto& b : buffers) total += b->events.size();
    merged.reserve(total);
    for (std::uint32_t uid = 0; uid < buffers.size(); ++uid) {
      const auto& evs = buffers[uid]->events;
      for (std::uint32_t seq = 0; seq < evs.size(); ++seq) {
        merged.push_back({evs[seq].at.ps(), uid, seq, &evs[seq]});
      }
    }
    std::sort(merged.begin(), merged.end(), [](const Tagged& a,
                                               const Tagged& b) {
      if (a.at_ps != b.at_ps) return a.at_ps < b.at_ps;
      if (a.uid != b.uid) return a.uid < b.uid;
      return a.seq < b.seq;
    });

    obs::EventBus final_bus;
    obs::Registry registry;
    obs::MetricsCollector collector{final_bus, registry};
    std::ostringstream cap;
    obs::CaptureWriter writer{cap};
    final_bus.subscribe(writer.subscriber());

    // Timeline sampling: synthesize the kMetricSample ticks a live
    // obs::Sampler would emit, interleaved into the canonical merged
    // stream.  A tick at T snapshots the registry after all events strictly
    // before T; registry iteration is lexicographic, so the rows — like
    // everything else here — are partition-invariant.
    std::uint64_t samples = 0;
    std::int64_t next_tick_ps =
        cfg.sample_period.ps() > 0 ? cfg.sample_period.ps() : 0;
    const auto emit_ticks_through = [&](std::int64_t limit_ps) {
      if (next_tick_ps <= 0) return;
      while (next_tick_ps <= limit_ps) {
        obs::Event s;
        s.at = Time::picoseconds(next_tick_ps);
        s.source = obs::Source::kOther;
        s.kind = obs::EventKind::kMetricSample;
        for (const auto& [name, c] : registry.counters()) {
          s.p.sample = obs::MetricSamplePayload{};
          s.p.sample.set_name(name);
          s.p.sample.value = static_cast<double>(c.value());
          s.p.sample.is_counter = 1;
          final_bus.emit(s);
          ++samples;
        }
        for (const auto& [name, g] : registry.gauges()) {
          s.p.sample = obs::MetricSamplePayload{};
          s.p.sample.set_name(name);
          s.p.sample.value = g.value();
          s.p.sample.is_counter = 0;
          final_bus.emit(s);
          ++samples;
        }
        next_tick_ps += cfg.sample_period.ps();
      }
    };
    for (const Tagged& t : merged) {
      if (t.at_ps > 0) emit_ticks_through(t.at_ps - 1);
      final_bus.emit(*t.e);
    }
    emit_ticks_through(cfg.horizon.ps());

    out.events = merged.size() + samples;
    out.metrics_json = registry.json();
    out.capture = cap.str();
  }

  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();
  return out;
}

}  // namespace lamsdlc::sim
