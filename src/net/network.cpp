#include "lamsdlc/net/network.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iterator>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace lamsdlc::net {
namespace {

/// Splits a channel's arrivals between the two protocol flows sharing it:
/// information frames (and the sender-issued Request-NAK poll) belong to the
/// *incoming* data flow's receiver; checkpoint-class commands belong to the
/// *outgoing* data flow's sender, whose acknowledgements ride this channel.
class DemuxSink final : public link::FrameSink {
 public:
  DemuxSink(link::FrameSink* to_receiver, link::FrameSink* to_sender)
      : to_receiver_{to_receiver}, to_sender_{to_sender} {}

  void on_frame(frame::Frame f) override {
    const bool for_receiver =
        std::holds_alternative<frame::IFrame>(f.body) ||
        std::holds_alternative<frame::HdlcIFrame>(f.body) ||
        std::holds_alternative<frame::RequestNakFrame>(f.body);
    link::FrameSink* sink = for_receiver ? to_receiver_ : to_sender_;
    if (sink != nullptr) sink->on_frame(std::move(f));
  }

 private:
  link::FrameSink* to_receiver_;
  link::FrameSink* to_sender_;
};

}  // namespace

// ------------------------------------------------------------- PdesState --

/// Everything the parallel engine owns: one kernel per partition, a worker
/// pool advancing them in lockstep windows, the cross-partition staging
/// buffers, the delivery/failure journals replayed at barriers, and the
/// global-operation queue.  Within a window the partitions share no mutable
/// state: channels and protocol endpoints live with their owning partition,
/// the staging/journal vectors are written only by their own partition's
/// thread, and everything cross-cutting (routing tables, tracker,
/// resequencers, link toggles) is touched only at barriers while the
/// workers are parked on the condition variable.
struct Network::PdesState {
  std::size_t partitions = 1;
  std::size_t nodes_hint = 0;
  std::vector<std::unique_ptr<Simulator>> sims;

  /// Cross-partition global operation, run at a window barrier.
  struct GlobalOp {
    Time at;
    std::uint64_t seq;  ///< Registration order: the tie-break among equals.
    std::function<void()> fn;
    bool blocks_completion;  ///< May inject traffic (see `Network::at`).
  };
  std::vector<GlobalOp> ops;  ///< Min-heap by (at, seq) under `op_later`.
  std::uint64_t next_op_seq = 0;
  static bool op_later(const GlobalOp& x, const GlobalOp& y) noexcept {
    if (x.at != y.at) return x.at > y.at;
    return x.seq > y.seq;
  }

  /// A frame crossing partitions: staged by the *source* partition during
  /// its window, pushed into the receiver-side ingress at the barrier.
  /// Keyed by source partition so equal-arrival frames of one channel (one
  /// source partition by construction) keep their send order at every
  /// partition count.
  struct StagedFrame {
    link::ChannelIngress* ingress;
    Time arrival;
    std::uint64_t epoch;
    frame::Frame f;
  };
  std::vector<std::vector<StagedFrame>> staged;

  /// End-to-end delivery recorded during a window, replayed into the shared
  /// resequencer/tracker at the barrier in (time, node) order.  Same-key
  /// entries always come from one partition (a node lives in exactly one),
  /// so a stable sort over the partition-ordered concatenation is canonical.
  struct Delivery {
    Time at;
    NodeId node;
    sim::Packet p;
  };
  std::vector<std::vector<Delivery>> journal;

  /// A LAMS sender declared failure during a window; the network-layer
  /// reaction (reroute + residue handoff) is global, so it is deferred to
  /// the barrier and processed in (time, link, from) order.
  struct Failure {
    Time at;
    Flow* flow;
  };
  std::vector<std::vector<Failure>> failures;

  // Persistent worker pool: one thread per partition, woken per window.
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t round = 0;
  std::size_t pending = 0;
  Time window_end{};
  bool shutdown = false;
  std::vector<std::exception_ptr> errors;

  ~PdesState() { stop_pool(); }

  void worker_main(std::size_t idx) {
    std::uint64_t seen = 0;
    for (;;) {
      Time end{};
      {
        std::unique_lock lk{m};
        cv_start.wait(lk, [&] { return shutdown || round != seen; });
        if (shutdown) return;
        seen = round;
        end = window_end;
      }
      try {
        sims[idx]->run_before(end);
      } catch (...) {
        std::lock_guard lk{m};
        errors[idx] = std::current_exception();
      }
      {
        std::lock_guard lk{m};
        if (--pending == 0) cv_done.notify_one();
      }
    }
  }

  void ensure_pool() {
    if (sims.size() <= 1 || !workers.empty()) return;
    workers.reserve(sims.size());
    for (std::size_t i = 0; i < sims.size(); ++i) {
      workers.emplace_back([this, i] { worker_main(i); });
    }
  }

  /// Advance every partition kernel through [now, end) — the parallel heart
  /// of a window.  Rethrows the first worker exception (e.g. an ingress
  /// lookahead violation) on the coordinator thread.
  void run_window(Time end) {
    if (sims.size() == 1) {  // the serial reference: no threads, same path
      sims[0]->run_before(end);
      return;
    }
    ensure_pool();
    {
      std::lock_guard lk{m};
      window_end = end;
      pending = sims.size();
      ++round;
    }
    cv_start.notify_all();
    {
      std::unique_lock lk{m};
      cv_done.wait(lk, [&] { return pending == 0; });
    }
    for (auto& e : errors) {
      if (e) {
        std::exception_ptr ep = e;
        e = nullptr;
        std::rethrow_exception(ep);
      }
    }
  }

  void stop_pool() {
    {
      std::lock_guard lk{m};
      shutdown = true;
    }
    cv_start.notify_all();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
    workers.clear();
  }
};

// ------------------------------------------------------------------ Flow --

Flow::Flow(Simulator& tx_sim, Simulator& rx_sim, Network& net, LinkId link,
           NodeId from, NodeId to, link::SimplexChannel& data,
           link::SimplexChannel& control, const LinkSpec& spec, Tracer tracer)
    : link_{link}, from_{from}, to_{to} {
  // Two-kernel flows split the stats so the receiver partition never writes
  // into the sender partition's block mid-window.
  sim::DlcStats* rx_stats = (&tx_sim == &rx_sim) ? &stats_ : &rx_stats_;
  switch (spec.protocol) {
    case sim::Protocol::kLams:
      lams_tx_ = std::make_unique<lams::LamsSender>(
          tx_sim, data, spec.lams, &stats_, tracer,
          spec.bus_for ? spec.bus_for(from, to, /*sender_side=*/true)
                       : nullptr);
      lams_rx_ = std::make_unique<lams::LamsReceiver>(
          rx_sim, control, spec.lams, &net.node(to), rx_stats,
          std::move(tracer),
          spec.bus_for ? spec.bus_for(from, to, /*sender_side=*/false)
                       : nullptr);
      lams_rx_->start();
      dlc_sender_ = lams_tx_.get();
      receiver_sink_ = lams_rx_.get();
      sender_sink_ = lams_tx_.get();
      break;
    case sim::Protocol::kSrHdlc:
      sr_tx_ = std::make_unique<hdlc::SrSender>(tx_sim, data, spec.hdlc,
                                                &stats_, tracer);
      sr_rx_ = std::make_unique<hdlc::SrReceiver>(rx_sim, control, spec.hdlc,
                                                  &net.node(to), rx_stats,
                                                  std::move(tracer));
      dlc_sender_ = sr_tx_.get();
      receiver_sink_ = sr_rx_.get();
      sender_sink_ = sr_tx_.get();
      break;
    case sim::Protocol::kGbnHdlc:
      gbn_tx_ = std::make_unique<hdlc::GbnSender>(tx_sim, data, spec.hdlc,
                                                  &stats_, tracer);
      gbn_rx_ = std::make_unique<hdlc::GbnReceiver>(rx_sim, control, spec.hdlc,
                                                    &net.node(to), rx_stats,
                                                    std::move(tracer));
      dlc_sender_ = gbn_tx_.get();
      receiver_sink_ = gbn_rx_.get();
      sender_sink_ = gbn_tx_.get();
      break;
    case sim::Protocol::kNbdt:
      // The NBDT baseline exists for single-link comparisons (bench E16);
      // its selective-status demux is not wired into the network module.
      throw std::invalid_argument(
          "net::Network does not support NBDT flows; use kLams or an HDLC "
          "variant");
  }
}

// ------------------------------------------------------------------ Node --

void Node::on_packet(const sim::Packet& p, Time at) {
  const PacketHeader* h = net_.header(p.id);
  if (h == nullptr) return;  // not network traffic (protocol-level test rig)
  if (h->dst == id_) {
    net_.deliver_local(*this, p, at);
  } else {
    ++forwarded_;
    net_.forward(*this, p, h->dst);
  }
}

// --------------------------------------------------------------- Network --

Network::Network(Simulator& sim, std::uint64_t seed, Tracer tracer)
    : sim_{sim}, seed_{seed}, tracer_{std::move(tracer)}, tracker_{sim} {}

Network::~Network() {
  // Flows and ingresses cancel timers on their partition kernels as they
  // die; `pdes_` owns those kernels and, as the last-declared member, would
  // be destroyed first — tear the topology down before the kernels.
  links_.clear();
  nodes_.clear();
}

void Network::enable_pdes(std::size_t partitions, std::size_t nodes_hint) {
  if (!nodes_.empty() || !links_.empty()) {
    // Channels and endpoints bind their kernel at construction, so the
    // partition map must exist before the first node or link.
    throw std::logic_error(
        "Network::enable_pdes must be called before any topology is added");
  }
  if (partitions == 0) {
    throw std::invalid_argument("Network::enable_pdes: zero partitions");
  }
  if (tracer_.enabled()) {
    throw std::logic_error(
        "Network::enable_pdes: the text tracer is a global sequential log "
        "and cannot be produced by partitioned execution");
  }
  pdes_ = std::make_unique<PdesState>();
  pdes_->partitions = partitions;
  pdes_->nodes_hint = nodes_hint;
  pdes_->sims.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    pdes_->sims.push_back(std::make_unique<Simulator>());
  }
  pdes_->staged.resize(partitions);
  pdes_->journal.resize(partitions);
  pdes_->failures.resize(partitions);
  pdes_->errors.resize(partitions);
}

std::size_t Network::partition_of(NodeId id) const noexcept {
  if (!pdes_) return 0;
  const std::size_t p = pdes_->partitions;
  if (pdes_->nodes_hint > 0) {
    // Contiguous blocks: neighbours in id space (Walker planes) co-locate.
    const std::size_t part = static_cast<std::size_t>(id) * p / pdes_->nodes_hint;
    return std::min(part, p - 1);
  }
  return static_cast<std::size_t>(id) % p;
}

Simulator& Network::sim_for(NodeId id) noexcept {
  return pdes_ ? *pdes_->sims[partition_of(id)] : sim_;
}

void Network::at(Time when, std::function<void()> op, bool blocks_completion) {
  if (!op) throw std::invalid_argument("Network::at: empty operation");
  if (blocks_completion) ++pending_blocking_ops_;
  if (!pdes_) {
    sim_.schedule_at(when, [this, blocks_completion, op = std::move(op)] {
      if (blocks_completion) --pending_blocking_ops_;
      op();
    });
    return;
  }
  if (when < sim_.now()) {
    throw std::invalid_argument("Network::at: time is in the past");
  }
  pdes_->ops.push_back(PdesState::GlobalOp{when, pdes_->next_op_seq++,
                                           std::move(op), blocks_completion});
  std::push_heap(pdes_->ops.begin(), pdes_->ops.end(), PdesState::op_later);
}

link::ChannelIngress& Network::link_ingress(LinkId id, bool forward) {
  LinkState& ls = *links_.at(id);
  link::ChannelIngress* ing =
      forward ? ls.ingress_at_b.get() : ls.ingress_at_a.get();
  if (ing == nullptr) {
    throw std::logic_error("Network::link_ingress: PDES is not enabled");
  }
  return *ing;
}

NodeId Network::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, std::move(name)));
  routes_valid_ = false;
  return id;
}

LinkId Network::add_link(const LinkSpec& spec) {
  const auto id = static_cast<LinkId>(links_.size());
  auto ls = std::make_unique<LinkState>();
  ls->spec = spec;

  auto channel_cfg = [&](bool forward) {
    link::SimplexChannel::Config c;
    c.data_rate_bps = spec.data_rate_bps;
    c.propagation = spec.propagation
                        ? spec.propagation
                        : [d = spec.prop_delay](Time) { return d; };
    c.byte_level = spec.byte_level;
    c.byte_level_seed = seed_ ^ (0x1000u * (id + 1)) ^ (forward ? 1u : 2u);
    c.batched_delivery = spec.batched_delivery;
    return c;
  };
  const std::string tag = "link" + std::to_string(id);
  // Each direction's transmitter lives in the sending node's kernel (serial
  // mode: both are `sim_`).
  ls->duplex = std::make_unique<link::FullDuplexLink>(
      sim_for(spec.a), sim_for(spec.b), channel_cfg(true),
      sim::make_error_model(spec.a_to_b_error, seed_, tag + ".ab"),
      channel_cfg(false),
      sim::make_error_model(spec.b_to_a_error, seed_, tag + ".ba"));
  if (spec.a_to_b_error.kind == sim::ErrorConfig::Kind::kFixedFrameProb) {
    ls->duplex->forward().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            spec.a_to_b_error.p_control, RandomStream{seed_, tag + ".abc"}));
  }
  if (spec.b_to_a_error.kind == sim::ErrorConfig::Kind::kFixedFrameProb) {
    ls->duplex->reverse().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            spec.b_to_a_error.p_control, RandomStream{seed_, tag + ".bac"}));
  }

  if (pdes_) {
    // Sweep priorities sit below the kernel default (0x8000), one distinct
    // value per channel, so same-instant sweep-vs-timer ordering is a fixed
    // property of the objects involved at every partition count.
    if (id >= 0x4000) {
      throw std::logic_error("PDES supports at most 16384 links");
    }
    ls->ingress_at_b = std::make_unique<link::ChannelIngress>(
        sim_for(spec.b), static_cast<Simulator::Priority>(2 * id));
    ls->ingress_at_a = std::make_unique<link::ChannelIngress>(
        sim_for(spec.a), static_cast<Simulator::Priority>(2 * id + 1));
    // Every channel hands its finished (frame, arrival, epoch) triples to
    // the receiver-side ingress: directly when both endpoints share a
    // partition, via the barrier staging buffer when they do not.  Using the
    // ingress path for local traffic too keeps the delivery machinery — and
    // hence every tie-break — identical at every partition count.
    auto route = [this](std::size_t src_part, std::size_t dst_part,
                        link::ChannelIngress* ing) {
      if (src_part == dst_part) {
        return link::SimplexChannel::Egress{
            [ing](Time arrival, std::uint64_t epoch, frame::Frame f) {
              ing->push(arrival, epoch, std::move(f));
            }};
      }
      return link::SimplexChannel::Egress{
          [this, src_part, ing](Time arrival, std::uint64_t epoch,
                                frame::Frame f) {
            pdes_->staged[src_part].push_back(
                PdesState::StagedFrame{ing, arrival, epoch, std::move(f)});
          }};
    };
    const std::size_t pa = partition_of(spec.a);
    const std::size_t pb = partition_of(spec.b);
    ls->duplex->forward().set_egress(route(pa, pb, ls->ingress_at_b.get()));
    ls->duplex->reverse().set_egress(route(pb, pa, ls->ingress_at_a.get()));
  }

  links_.push_back(std::move(ls));
  build_flows(*links_.back(), id);
  routes_valid_ = false;
  // New topology may give parked traffic a path (a contact opening).
  bool any_parked = false;
  for (const auto& n : nodes_) any_parked |= n->parked() > 0;
  if (any_parked) compute_routes();
  return id;
}

void Network::build_flows(LinkState& ls, LinkId id) {
  const LinkSpec& spec = ls.spec;
  // Flow a→b: data on the forward channel, acknowledgements on reverse.
  ls.ab = std::make_unique<Flow>(sim_for(spec.a), sim_for(spec.b), *this, id,
                                 spec.a, spec.b, ls.duplex->forward(),
                                 ls.duplex->reverse(), spec, tracer_);
  // Flow b→a: data on the reverse channel, acknowledgements on forward.
  ls.ba = std::make_unique<Flow>(sim_for(spec.b), sim_for(spec.a), *this, id,
                                 spec.b, spec.a, ls.duplex->reverse(),
                                 ls.duplex->forward(), spec, tracer_);

  // Arrivals at b (forward channel): a→b data plus b→a acknowledgements.
  ls.sink_at_b = std::make_unique<DemuxSink>(&ls.ab->receiver_sink(),
                                             &ls.ba->sender_sink());
  // Arrivals at a (reverse channel): b→a data plus a→b acknowledgements.
  ls.sink_at_a = std::make_unique<DemuxSink>(&ls.ba->receiver_sink(),
                                             &ls.ab->sender_sink());
  if (pdes_) {
    // Parallel mode delivers through the receiver-side ingresses; a rebuild
    // (link re-up) must re-point them at the fresh demux sinks or they would
    // keep feeding the dead protocol instances.
    ls.ingress_at_b->set_sink(ls.sink_at_b.get());
    ls.ingress_at_a->set_sink(ls.sink_at_a.get());
  } else {
    ls.duplex->forward().set_sink(ls.sink_at_b.get());
    ls.duplex->reverse().set_sink(ls.sink_at_a.get());
  }

  // Link failure is a *global* event (reroute, residue handoff across
  // nodes): parallel mode only notes it during the window and lets the
  // barrier process all of a window's failures in canonical order.
  auto arm_failure = [this](Flow* flow) {
    if (auto* tx = flow->lams_sender()) {
      tx->set_failure_callback([this, flow] {
        if (pdes_) {
          const std::size_t part = partition_of(flow->from());
          pdes_->failures[part].push_back(
              PdesState::Failure{pdes_->sims[part]->now(), flow});
        } else {
          on_flow_failed(*flow);
        }
      });
    }
  };
  arm_failure(ls.ab.get());
  arm_failure(ls.ba.get());

  // Direct writes outside compute_routes (a link added after the tables
  // were sized): grow to cover the neighbour id.
  auto set_flow = [this](NodeId at, NodeId neighbour, Flow* f) {
    auto& table = node(at).flow_to_;
    if (table.size() <= neighbour) table.resize(nodes_.size(), nullptr);
    table[neighbour] = f;
  };
  set_flow(spec.a, spec.b, ls.ab.get());
  set_flow(spec.b, spec.a, ls.ba.get());
}

Flow& Network::flow(LinkId link, NodeId from) {
  LinkState& ls = *links_.at(link);
  if (ls.ab->from() == from) return *ls.ab;
  return *ls.ba;
}

const PacketHeader* Network::header(frame::PacketId id) const {
  // Entry 0 is padding (the allocator starts at 1), never a real header.
  if (id == 0 || id >= headers_.size()) return nullptr;
  return &headers_[id];
}

void Network::record_header(frame::PacketId id, NodeId src, NodeId dst) {
  if (headers_.size() <= id) headers_.resize(id + 1);
  headers_[id] = PacketHeader{src, dst};
}

void Network::compute_routes() {
  // Directed usable edges: flow operational and its link up.
  struct Edge {
    NodeId from, to;
    Flow* flow;
  };
  std::vector<Edge> edges;
  for (const auto& ls : links_) {
    if (!ls->up) continue;
    if (!ls->ab->failed()) edges.push_back({ls->ab->from(), ls->ab->to(), ls->ab.get()});
    if (!ls->ba->failed()) edges.push_back({ls->ba->from(), ls->ba->to(), ls->ba.get()});
  }
  // Incoming-edge lists for reverse BFS from each destination.
  std::vector<std::vector<const Edge*>> incoming(nodes_.size());
  for (const Edge& e : edges) incoming[e.to].push_back(&e);

  for (auto& n : nodes_) {
    n->next_hop_.assign(nodes_.size(), Node::kNoRoute);
    n->flow_to_.assign(nodes_.size(), nullptr);
  }
  for (const Edge& e : edges) {
    node(e.from).flow_to_[e.to] = e.flow;
  }

  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
    std::vector<std::uint32_t> dist(nodes_.size(), kInf);
    std::deque<NodeId> queue;
    dist[dst] = 0;
    queue.push_back(dst);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const Edge* e : incoming[v]) {
        if (dist[e->from] != kInf) continue;
        dist[e->from] = dist[v] + 1;
        node(e->from).next_hop_[dst] = v;
        queue.push_back(e->from);
      }
    }
  }
  routes_valid_ = true;
  flush_parked();
}

void Network::flush_parked() {
  for (auto& n : nodes_) {
    if (n->parked_.empty()) continue;
    std::map<NodeId, std::deque<sim::Packet>> parked;
    parked.swap(n->parked_);
    n->parked_count_ = 0;
    for (auto& [dst, q] : parked) {
      for (const sim::Packet& p : q) forward(*n, p, dst);
    }
  }
}

void Network::ensure_routes() {
  if (!routes_valid_) compute_routes();
}

void Network::set_route(NodeId at, NodeId dst, NodeId next_hop) {
  ensure_routes();
  auto& table = node(at).next_hop_;
  if (table.size() <= dst) table.resize(nodes_.size(), Node::kNoRoute);
  table[dst] = next_hop;
}

frame::PacketId Network::send_packet(NodeId src, NodeId dst,
                                     std::uint32_t bytes) {
  sim::Packet p;
  p.id = ids_.next();
  p.bytes = bytes;
  p.created_at = sim_.now();
  record_header(p.id, src, dst);
  tracker_.note_submitted(p);
  if (src == dst) {
    deliver_local(node(src), p, sim_.now());
  } else {
    forward(node(src), p, dst);
  }
  return p.id;
}

std::uint64_t Network::send_message(NodeId src, NodeId dst,
                                    std::uint32_t segments,
                                    std::uint32_t bytes) {
  const std::uint64_t mid = ++next_message_;
  for (std::uint32_t i = 0; i < segments; ++i) {
    sim::Packet p;
    p.id = ids_.next();
    p.bytes = bytes;
    p.created_at = sim_.now();
    p.message_id = mid;
    p.msg_index = i;
    p.msg_count = segments;
    record_header(p.id, src, dst);
    message_registry_.record(p);
    tracker_.note_submitted(p);
    forward(node(src), p, dst);
  }
  return mid;
}

void Network::forward(Node& at, const sim::Packet& p, NodeId dst) {
  ensure_routes();
  Flow* flow = nullptr;
  if (dst < at.next_hop_.size()) {
    const NodeId hop = at.next_hop_[dst];
    if (hop != Node::kNoRoute && hop < at.flow_to_.size()) {
      Flow* candidate = at.flow_to_[hop];
      if (candidate != nullptr && !candidate->failed()) flow = candidate;
    }
  }
  if (flow == nullptr) {
    // Store and forward: the node parks the packet until the topology
    // offers a route again (a future contact, a restored link).
    at.parked_[dst].push_back(p);
    ++at.parked_count_;
    if (tracer_.enabled()) {
      tracer_.emit(sim_.now(), "net." + at.name(),
                   "no route to node " + std::to_string(dst) + "; parked");
    }
    return;
  }
  flow->dlc().submit(p);
}

void Network::deliver_local(Node& at, const sim::Packet& p, Time at_time) {
  if (pdes_) {
    // The resequencer map and tracker are shared across partitions: journal
    // the delivery (timestamped) and let the barrier replay every
    // partition's journal in one canonical (time, node) order.
    pdes_->journal[partition_of(at.id())].push_back(
        PdesState::Delivery{at_time, at.id(), p});
    return;
  }
  deliver_local_now(at.id(), p, at_time);
}

void Network::deliver_local_now(NodeId nid, const sim::Packet& p,
                                Time at_time) {
  auto it = resequencers_.find(nid);
  if (it == resequencers_.end()) {
    auto reseq = std::make_unique<workload::Resequencer>(
        message_registry_,
        [this, dst = nid](std::uint64_t mid, Time when) {
          if (on_message_) on_message_(dst, mid, when);
        },
        &tracker_);
    it = resequencers_.emplace(nid, std::move(reseq)).first;
  }
  it->second->on_packet(p, at_time);
}

void Network::on_flow_failed(Flow& flow) {
  flow.failed_ = true;
  routes_valid_ = false;
  auto residue = flow.lams_sender() != nullptr
                     ? flow.lams_sender()->take_unresolved()
                     : std::vector<sim::Packet>{};
  if (tracer_.enabled()) {
    tracer_.emit(sim_.now(), "net",
                 "flow " + std::to_string(flow.from()) + "->" +
                     std::to_string(flow.to()) + " failed; rerouting " +
                     std::to_string(residue.size()) + " packets");
  }
  Node& origin = node(flow.from());
  for (const sim::Packet& p : residue) {
    const PacketHeader* h = header(p.id);
    if (h == nullptr) continue;
    if (h->dst == origin.id()) {
      deliver_local(origin, p, sim_.now());
    } else {
      forward(origin, p, h->dst);
    }
  }
}

void Network::set_link_up(LinkId id, bool up) {
  LinkState& ls = *links_.at(id);
  if (ls.up == up) return;
  ls.up = up;
  ls.duplex->set_up(up);
  if (!up && pdes_) {
    // The ingresses mirror the channels' down-epochs; bumping both here (at
    // a barrier, kernels parked) strands every in-flight frame on its stale
    // epoch — the same fate the serial channel gives photons in flight.
    ls.ingress_at_b->bump_epoch();
    ls.ingress_at_a->bump_epoch();
  }
  routes_valid_ = false;
  if (up) {
    // A re-acquired laser link starts a fresh protocol instance on both
    // flows (the old ones are dead once failure was declared).
    build_flows(ls, id);
  }
  // Reroute immediately: parked traffic may now have a path (or traffic
  // headed into the dead link needs to divert).
  compute_routes();
}

bool Network::run_to_completion(Time horizon, Time check_every) {
  while (sim_.now() < horizon) {
    const Time next = std::min(horizon, sim_.now() + check_every);
    sim_.run_until(next);
    if (pending_blocking_ops_ == 0 && tracker_.submitted() > 0 &&
        tracker_.all_delivered()) {
      return true;
    }
  }
  return tracker_.submitted() > 0 && tracker_.all_delivered();
}

Time Network::pdes_lookahead() const {
  // The lookahead is computed over *all* links, not just the cross-partition
  // ones, so the window sequence — and with it every barrier instant — is
  // identical at every partition count.  That invariance is load-bearing:
  // global operations and journal replays fire at window ends, so the
  // window grid must be a function of the topology alone.
  Time lookahead = Time::max();
  for (const auto& ls : links_) {
    const LinkSpec& s = ls->spec;
    Time bound = s.min_propagation;
    if (bound.ps() == 0) {
      if (s.propagation) {
        throw std::logic_error(
            "PDES: link " + std::to_string(ls->ab->link()) +
            " has a custom propagation function but no min_propagation "
            "lower bound");
      }
      bound = s.prop_delay;
    }
    if (bound.ps() <= 0) {
      throw std::logic_error(
          "PDES: link propagation lower bound must be positive (zero "
          "lookahead cannot make window progress)");
    }
    lookahead = std::min(lookahead, bound);
  }
  // A linkless network has no frame exchange at all; any positive window
  // pitch is correct.
  return lookahead == Time::max() ? Time::milliseconds(1) : lookahead;
}

void Network::drain_delivery_journal() {
  std::vector<PdesState::Delivery> all;
  for (auto& part : pdes_->journal) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
    part.clear();
  }
  if (all.empty()) return;
  std::stable_sort(all.begin(), all.end(),
                   [](const PdesState::Delivery& x,
                      const PdesState::Delivery& y) {
                     if (x.at != y.at) return x.at < y.at;
                     return x.node < y.node;
                   });
  for (const auto& d : all) deliver_local_now(d.node, d.p, d.at);
}

void Network::pdes_barrier(Time window_end) {
  // Workers are parked; everything below runs on the coordinator with
  // exclusive access to all partition state.
  //
  // 1. Advance the coordinator clock (it carries no events of its own in
  //    parallel mode, but `now()` must be right for ops and injections).
  sim_.run_before(window_end);
  // 2. Hand staged cross-partition frames to their ingresses, in source-
  //    partition order.  Equal-arrival frames of one channel sit in one
  //    staging vector in send order, so this order is canonical.
  for (auto& vec : pdes_->staged) {
    for (auto& s : vec) s.ingress->push(s.arrival, s.epoch, std::move(s.f));
    vec.clear();
  }
  // 3. Replay the window's end-to-end deliveries into the shared
  //    resequencers/tracker in (time, node) order.
  drain_delivery_journal();
  // 4. Process deferred link-failure declarations in (time, link, from)
  //    order — the reroute + residue handoff is a global mutation.
  {
    std::vector<PdesState::Failure> fails;
    for (auto& part : pdes_->failures) {
      fails.insert(fails.end(), part.begin(), part.end());
      part.clear();
    }
    std::stable_sort(fails.begin(), fails.end(),
                     [](const PdesState::Failure& x,
                        const PdesState::Failure& y) {
                       if (x.at != y.at) return x.at < y.at;
                       if (x.flow->link() != y.flow->link()) {
                         return x.flow->link() < y.flow->link();
                       }
                       return x.flow->from() < y.flow->from();
                     });
    for (const auto& f : fails) on_flow_failed(*f.flow);
  }
  // 5. Run every global operation due exactly now, in registration order
  //    among equals.  `run_before`'s exclusive bound means these fire
  //    *before* any same-instant kernel event — one canonical interleaving.
  while (!pdes_->ops.empty() && pdes_->ops.front().at == window_end) {
    std::pop_heap(pdes_->ops.begin(), pdes_->ops.end(), PdesState::op_later);
    PdesState::GlobalOp op = std::move(pdes_->ops.back());
    pdes_->ops.pop_back();
    if (op.blocks_completion) --pending_blocking_ops_;
    op.fn();
  }
  // 6. Failures/ops may have invalidated routing; windows must never see a
  //    stale table (ensure_routes inside a window would be a global
  //    mutation).
  if (!routes_valid_) compute_routes();
  // 7. Failures and ops can themselves deliver (src==dst injection, residue
  //    arriving home); replay those too so completion checks see them.
  drain_delivery_journal();
}

bool Network::run_parallel_to_completion(Time horizon, Time check_every) {
  if (!pdes_) return run_to_completion(horizon, check_every);
  (void)check_every;  // completion can only change at barriers
  ensure_routes();
  const Time lookahead = pdes_lookahead();
  while (sim_.now() < horizon) {
    // Pending traffic-injecting ops mean more packets are coming, so an
    // all-delivered lull between waves is not completion.
    if (pending_blocking_ops_ == 0 && tracker_.submitted() > 0 &&
        tracker_.all_delivered()) {
      return true;
    }
    // Conservative window bound: no event executing at or after T_min can
    // cause a cross-partition arrival before T_min + lookahead, so every
    // kernel may safely run through [now, W_end) in isolation.  Global
    // operations cap the window so they fire at exactly their instant.
    Time t_min = Time::max();
    for (const auto& s : pdes_->sims) {
      t_min = std::min(t_min, s->next_event_time());
    }
    Time window_end = horizon;
    if (t_min < horizon) {
      window_end = std::min(window_end, t_min + lookahead);
    }
    if (!pdes_->ops.empty()) {
      window_end = std::min(window_end, pdes_->ops.front().at);
    }
    pdes_->run_window(window_end);
    pdes_barrier(window_end);
  }
  return tracker_.submitted() > 0 && tracker_.all_delivered();
}

NetworkReport Network::report() const {
  NetworkReport r;
  r.packets_sent = tracker_.submitted();
  r.packets_delivered = tracker_.unique_delivered();
  r.duplicate_deliveries = tracker_.duplicates();
  r.packets_lost = r.packets_sent - r.packets_delivered;
  for (const auto& n : nodes_) {
    r.packets_forwarded += n->forwarded();
    r.packets_parked += n->parked();
  }
  for (const auto& [id, reseq] : resequencers_) {
    r.messages_completed += reseq->messages_completed();
  }
  r.mean_delay_s = tracker_.delay().mean();
  r.max_delay_s = tracker_.delay().max();
  return r;
}

}  // namespace lamsdlc::net
