#include "lamsdlc/net/network.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <limits>
#include <string>
#include <utility>

namespace lamsdlc::net {
namespace {

/// Splits a channel's arrivals between the two protocol flows sharing it:
/// information frames (and the sender-issued Request-NAK poll) belong to the
/// *incoming* data flow's receiver; checkpoint-class commands belong to the
/// *outgoing* data flow's sender, whose acknowledgements ride this channel.
class DemuxSink final : public link::FrameSink {
 public:
  DemuxSink(link::FrameSink* to_receiver, link::FrameSink* to_sender)
      : to_receiver_{to_receiver}, to_sender_{to_sender} {}

  void on_frame(frame::Frame f) override {
    const bool for_receiver =
        std::holds_alternative<frame::IFrame>(f.body) ||
        std::holds_alternative<frame::HdlcIFrame>(f.body) ||
        std::holds_alternative<frame::RequestNakFrame>(f.body);
    link::FrameSink* sink = for_receiver ? to_receiver_ : to_sender_;
    if (sink != nullptr) sink->on_frame(std::move(f));
  }

 private:
  link::FrameSink* to_receiver_;
  link::FrameSink* to_sender_;
};

}  // namespace

// ------------------------------------------------------------------ Flow --

Flow::Flow(Simulator& sim, Network& net, LinkId link, NodeId from, NodeId to,
           link::SimplexChannel& data, link::SimplexChannel& control,
           const LinkSpec& spec, Tracer tracer)
    : link_{link}, from_{from}, to_{to} {
  switch (spec.protocol) {
    case sim::Protocol::kLams:
      lams_tx_ = std::make_unique<lams::LamsSender>(sim, data, spec.lams,
                                                    &stats_, tracer);
      lams_rx_ = std::make_unique<lams::LamsReceiver>(
          sim, control, spec.lams, &net.node(to), &stats_, std::move(tracer));
      lams_rx_->start();
      dlc_sender_ = lams_tx_.get();
      receiver_sink_ = lams_rx_.get();
      sender_sink_ = lams_tx_.get();
      break;
    case sim::Protocol::kSrHdlc:
      sr_tx_ = std::make_unique<hdlc::SrSender>(sim, data, spec.hdlc, &stats_,
                                                tracer);
      sr_rx_ = std::make_unique<hdlc::SrReceiver>(
          sim, control, spec.hdlc, &net.node(to), &stats_, std::move(tracer));
      dlc_sender_ = sr_tx_.get();
      receiver_sink_ = sr_rx_.get();
      sender_sink_ = sr_tx_.get();
      break;
    case sim::Protocol::kGbnHdlc:
      gbn_tx_ = std::make_unique<hdlc::GbnSender>(sim, data, spec.hdlc,
                                                  &stats_, tracer);
      gbn_rx_ = std::make_unique<hdlc::GbnReceiver>(
          sim, control, spec.hdlc, &net.node(to), &stats_, std::move(tracer));
      dlc_sender_ = gbn_tx_.get();
      receiver_sink_ = gbn_rx_.get();
      sender_sink_ = gbn_tx_.get();
      break;
    case sim::Protocol::kNbdt:
      // The NBDT baseline exists for single-link comparisons (bench E16);
      // its selective-status demux is not wired into the network module.
      throw std::invalid_argument(
          "net::Network does not support NBDT flows; use kLams or an HDLC "
          "variant");
  }
}

// ------------------------------------------------------------------ Node --

void Node::on_packet(const sim::Packet& p, Time at) {
  const PacketHeader* h = net_.header(p.id);
  if (h == nullptr) return;  // not network traffic (protocol-level test rig)
  if (h->dst == id_) {
    net_.deliver_local(*this, p, at);
  } else {
    ++forwarded_;
    net_.forward(*this, p, h->dst);
  }
}

// --------------------------------------------------------------- Network --

Network::Network(Simulator& sim, std::uint64_t seed, Tracer tracer)
    : sim_{sim}, seed_{seed}, tracer_{std::move(tracer)}, tracker_{sim} {}

Network::~Network() = default;

NodeId Network::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, std::move(name)));
  routes_valid_ = false;
  return id;
}

LinkId Network::add_link(const LinkSpec& spec) {
  const auto id = static_cast<LinkId>(links_.size());
  auto ls = std::make_unique<LinkState>();
  ls->spec = spec;

  auto channel_cfg = [&](bool forward) {
    link::SimplexChannel::Config c;
    c.data_rate_bps = spec.data_rate_bps;
    c.propagation = spec.propagation
                        ? spec.propagation
                        : [d = spec.prop_delay](Time) { return d; };
    c.byte_level = spec.byte_level;
    c.byte_level_seed = seed_ ^ (0x1000u * (id + 1)) ^ (forward ? 1u : 2u);
    c.batched_delivery = spec.batched_delivery;
    return c;
  };
  const std::string tag = "link" + std::to_string(id);
  ls->duplex = std::make_unique<link::FullDuplexLink>(
      sim_, channel_cfg(true),
      sim::make_error_model(spec.a_to_b_error, seed_, tag + ".ab"),
      channel_cfg(false),
      sim::make_error_model(spec.b_to_a_error, seed_, tag + ".ba"));
  if (spec.a_to_b_error.kind == sim::ErrorConfig::Kind::kFixedFrameProb) {
    ls->duplex->forward().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            spec.a_to_b_error.p_control, RandomStream{seed_, tag + ".abc"}));
  }
  if (spec.b_to_a_error.kind == sim::ErrorConfig::Kind::kFixedFrameProb) {
    ls->duplex->reverse().set_control_error_model(
        std::make_unique<phy::FixedFrameErrorModel>(
            spec.b_to_a_error.p_control, RandomStream{seed_, tag + ".bac"}));
  }

  links_.push_back(std::move(ls));
  build_flows(*links_.back(), id);
  routes_valid_ = false;
  // New topology may give parked traffic a path (a contact opening).
  bool any_parked = false;
  for (const auto& n : nodes_) any_parked |= n->parked() > 0;
  if (any_parked) compute_routes();
  return id;
}

void Network::build_flows(LinkState& ls, LinkId id) {
  const LinkSpec& spec = ls.spec;
  // Flow a→b: data on the forward channel, acknowledgements on reverse.
  ls.ab = std::make_unique<Flow>(sim_, *this, id, spec.a, spec.b,
                                 ls.duplex->forward(), ls.duplex->reverse(),
                                 spec, tracer_);
  // Flow b→a: data on the reverse channel, acknowledgements on forward.
  ls.ba = std::make_unique<Flow>(sim_, *this, id, spec.b, spec.a,
                                 ls.duplex->reverse(), ls.duplex->forward(),
                                 spec, tracer_);

  // Arrivals at b (forward channel): a→b data plus b→a acknowledgements.
  ls.sink_at_b = std::make_unique<DemuxSink>(&ls.ab->receiver_sink(),
                                             &ls.ba->sender_sink());
  ls.duplex->forward().set_sink(ls.sink_at_b.get());
  // Arrivals at a (reverse channel): b→a data plus a→b acknowledgements.
  ls.sink_at_a = std::make_unique<DemuxSink>(&ls.ba->receiver_sink(),
                                             &ls.ab->sender_sink());
  ls.duplex->reverse().set_sink(ls.sink_at_a.get());

  if (auto* tx = ls.ab->lams_sender()) {
    tx->set_failure_callback(
        [this, flow = ls.ab.get()] { on_flow_failed(*flow); });
  }
  if (auto* tx = ls.ba->lams_sender()) {
    tx->set_failure_callback(
        [this, flow = ls.ba.get()] { on_flow_failed(*flow); });
  }

  // Direct writes outside compute_routes (a link added after the tables
  // were sized): grow to cover the neighbour id.
  auto set_flow = [this](NodeId at, NodeId neighbour, Flow* f) {
    auto& table = node(at).flow_to_;
    if (table.size() <= neighbour) table.resize(nodes_.size(), nullptr);
    table[neighbour] = f;
  };
  set_flow(spec.a, spec.b, ls.ab.get());
  set_flow(spec.b, spec.a, ls.ba.get());
}

Flow& Network::flow(LinkId link, NodeId from) {
  LinkState& ls = *links_.at(link);
  if (ls.ab->from() == from) return *ls.ab;
  return *ls.ba;
}

const PacketHeader* Network::header(frame::PacketId id) const {
  // Entry 0 is padding (the allocator starts at 1), never a real header.
  if (id == 0 || id >= headers_.size()) return nullptr;
  return &headers_[id];
}

void Network::record_header(frame::PacketId id, NodeId src, NodeId dst) {
  if (headers_.size() <= id) headers_.resize(id + 1);
  headers_[id] = PacketHeader{src, dst};
}

void Network::compute_routes() {
  // Directed usable edges: flow operational and its link up.
  struct Edge {
    NodeId from, to;
    Flow* flow;
  };
  std::vector<Edge> edges;
  for (const auto& ls : links_) {
    if (!ls->up) continue;
    if (!ls->ab->failed()) edges.push_back({ls->ab->from(), ls->ab->to(), ls->ab.get()});
    if (!ls->ba->failed()) edges.push_back({ls->ba->from(), ls->ba->to(), ls->ba.get()});
  }
  // Incoming-edge lists for reverse BFS from each destination.
  std::vector<std::vector<const Edge*>> incoming(nodes_.size());
  for (const Edge& e : edges) incoming[e.to].push_back(&e);

  for (auto& n : nodes_) {
    n->next_hop_.assign(nodes_.size(), Node::kNoRoute);
    n->flow_to_.assign(nodes_.size(), nullptr);
  }
  for (const Edge& e : edges) {
    node(e.from).flow_to_[e.to] = e.flow;
  }

  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
    std::vector<std::uint32_t> dist(nodes_.size(), kInf);
    std::deque<NodeId> queue;
    dist[dst] = 0;
    queue.push_back(dst);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const Edge* e : incoming[v]) {
        if (dist[e->from] != kInf) continue;
        dist[e->from] = dist[v] + 1;
        node(e->from).next_hop_[dst] = v;
        queue.push_back(e->from);
      }
    }
  }
  routes_valid_ = true;
  flush_parked();
}

void Network::flush_parked() {
  for (auto& n : nodes_) {
    if (n->parked_.empty()) continue;
    std::map<NodeId, std::deque<sim::Packet>> parked;
    parked.swap(n->parked_);
    n->parked_count_ = 0;
    for (auto& [dst, q] : parked) {
      for (const sim::Packet& p : q) forward(*n, p, dst);
    }
  }
}

void Network::ensure_routes() {
  if (!routes_valid_) compute_routes();
}

void Network::set_route(NodeId at, NodeId dst, NodeId next_hop) {
  ensure_routes();
  auto& table = node(at).next_hop_;
  if (table.size() <= dst) table.resize(nodes_.size(), Node::kNoRoute);
  table[dst] = next_hop;
}

frame::PacketId Network::send_packet(NodeId src, NodeId dst,
                                     std::uint32_t bytes) {
  sim::Packet p;
  p.id = ids_.next();
  p.bytes = bytes;
  p.created_at = sim_.now();
  record_header(p.id, src, dst);
  tracker_.note_submitted(p);
  if (src == dst) {
    deliver_local(node(src), p, sim_.now());
  } else {
    forward(node(src), p, dst);
  }
  return p.id;
}

std::uint64_t Network::send_message(NodeId src, NodeId dst,
                                    std::uint32_t segments,
                                    std::uint32_t bytes) {
  const std::uint64_t mid = ++next_message_;
  for (std::uint32_t i = 0; i < segments; ++i) {
    sim::Packet p;
    p.id = ids_.next();
    p.bytes = bytes;
    p.created_at = sim_.now();
    p.message_id = mid;
    p.msg_index = i;
    p.msg_count = segments;
    record_header(p.id, src, dst);
    message_registry_.record(p);
    tracker_.note_submitted(p);
    forward(node(src), p, dst);
  }
  return mid;
}

void Network::forward(Node& at, const sim::Packet& p, NodeId dst) {
  ensure_routes();
  Flow* flow = nullptr;
  if (dst < at.next_hop_.size()) {
    const NodeId hop = at.next_hop_[dst];
    if (hop != Node::kNoRoute && hop < at.flow_to_.size()) {
      Flow* candidate = at.flow_to_[hop];
      if (candidate != nullptr && !candidate->failed()) flow = candidate;
    }
  }
  if (flow == nullptr) {
    // Store and forward: the node parks the packet until the topology
    // offers a route again (a future contact, a restored link).
    at.parked_[dst].push_back(p);
    ++at.parked_count_;
    if (tracer_.enabled()) {
      tracer_.emit(sim_.now(), "net." + at.name(),
                   "no route to node " + std::to_string(dst) + "; parked");
    }
    return;
  }
  flow->dlc().submit(p);
}

void Network::deliver_local(Node& at, const sim::Packet& p, Time at_time) {
  auto it = resequencers_.find(at.id());
  if (it == resequencers_.end()) {
    auto reseq = std::make_unique<workload::Resequencer>(
        message_registry_,
        [this, dst = at.id()](std::uint64_t mid, Time when) {
          if (on_message_) on_message_(dst, mid, when);
        },
        &tracker_);
    it = resequencers_.emplace(at.id(), std::move(reseq)).first;
  }
  it->second->on_packet(p, at_time);
}

void Network::on_flow_failed(Flow& flow) {
  flow.failed_ = true;
  routes_valid_ = false;
  auto residue = flow.lams_sender() != nullptr
                     ? flow.lams_sender()->take_unresolved()
                     : std::vector<sim::Packet>{};
  if (tracer_.enabled()) {
    tracer_.emit(sim_.now(), "net",
                 "flow " + std::to_string(flow.from()) + "->" +
                     std::to_string(flow.to()) + " failed; rerouting " +
                     std::to_string(residue.size()) + " packets");
  }
  Node& origin = node(flow.from());
  for (const sim::Packet& p : residue) {
    const PacketHeader* h = header(p.id);
    if (h == nullptr) continue;
    if (h->dst == origin.id()) {
      deliver_local(origin, p, sim_.now());
    } else {
      forward(origin, p, h->dst);
    }
  }
}

void Network::set_link_up(LinkId id, bool up) {
  LinkState& ls = *links_.at(id);
  if (ls.up == up) return;
  ls.up = up;
  ls.duplex->set_up(up);
  routes_valid_ = false;
  if (up) {
    // A re-acquired laser link starts a fresh protocol instance on both
    // flows (the old ones are dead once failure was declared).
    build_flows(ls, id);
  }
  // Reroute immediately: parked traffic may now have a path (or traffic
  // headed into the dead link needs to divert).
  compute_routes();
}

bool Network::run_to_completion(Time horizon, Time check_every) {
  while (sim_.now() < horizon) {
    const Time next = std::min(horizon, sim_.now() + check_every);
    sim_.run_until(next);
    if (tracker_.submitted() > 0 && tracker_.all_delivered()) return true;
  }
  return tracker_.submitted() > 0 && tracker_.all_delivered();
}

NetworkReport Network::report() const {
  NetworkReport r;
  r.packets_sent = tracker_.submitted();
  r.packets_delivered = tracker_.unique_delivered();
  r.duplicate_deliveries = tracker_.duplicates();
  r.packets_lost = r.packets_sent - r.packets_delivered;
  for (const auto& n : nodes_) {
    r.packets_forwarded += n->forwarded();
    r.packets_parked += n->parked();
  }
  for (const auto& [id, reseq] : resequencers_) {
    r.messages_completed += reseq->messages_completed();
  }
  r.mean_delay_s = tracker_.delay().mean();
  r.max_delay_s = tracker_.delay().max();
  return r;
}

}  // namespace lamsdlc::net
