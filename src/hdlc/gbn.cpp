#include "lamsdlc/hdlc/gbn.hpp"

#include <string>
#include <utility>

namespace lamsdlc::hdlc {

// ---------------------------------------------------------------- sender --

GbnSender::GbnSender(Simulator& sim, link::SimplexChannel& data_out,
                     HdlcConfig cfg, sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{data_out},
      cfg_{cfg},
      stats_{stats},
      tracer_{std::move(tracer)},
      seqspace_{cfg.modulus} {
  out_.set_idle_callback([this] { try_send(); });
}

GbnSender::~GbnSender() { sim_.cancel(timeout_timer_); }

void GbnSender::trace(std::string what) const {
  tracer_.emit(sim_.now(), "hdlc.gbn.sender", std::move(what));
}

void GbnSender::submit(sim::Packet p) {
  if (stats_) ++stats_->packets_submitted;
  queue_.push_back(p);
  if (stats_) {
    stats_->send_buffer.update(sim_.now(),
                               static_cast<double>(sending_buffer_depth()));
  }
  try_send();
}

std::size_t GbnSender::sending_buffer_depth() const {
  return queue_.size() + window_.size();
}

bool GbnSender::idle() const { return queue_.empty() && window_.empty(); }

void GbnSender::try_send() {
  if (out_.busy() || !out_.up()) return;

  // Retransmission pass: the cursor rewinds to base on REJ/timeout and
  // walks forward over already-windowed frames before admitting new ones.
  if (resend_cursor_ < next_ctr_) {
    auto it = window_.find(resend_cursor_);
    if (it == window_.end()) {
      ++resend_cursor_;
      try_send();
      return;
    }
    Pending& p = it->second;
    ++p.attempts;
    if (p.attempts == 1) p.first_tx = sim_.now();
    frame::Frame f;
    f.body = frame::HdlcIFrame{seqspace_.wrap(resend_cursor_), 0, false,
                               p.packet.id, p.packet.bytes, {}};
    if (stats_) {
      ++stats_->iframe_tx;
      if (p.attempts > 1) ++stats_->iframe_retx;
    }
    ++resend_cursor_;
    if (!sim_.pending(timeout_timer_)) arm_timeout();
    out_.send(std::move(f));
    return;
  }

  // Admit a new frame if the window has room.
  if (queue_.empty() || next_ctr_ >= base_ctr_ + cfg_.window) return;
  const std::uint64_t ctr = next_ctr_++;
  resend_cursor_ = next_ctr_;
  auto it = window_.emplace(ctr, Pending{queue_.front(), sim_.now(), 1}).first;
  queue_.pop_front();
  frame::Frame f;
  f.body = frame::HdlcIFrame{seqspace_.wrap(ctr), 0, false,
                             it->second.packet.id, it->second.packet.bytes, {}};
  if (stats_) ++stats_->iframe_tx;
  if (!sim_.pending(timeout_timer_)) arm_timeout();
  out_.send(std::move(f));
}

void GbnSender::release_below(std::uint64_t ctr) {
  bool advanced = false;
  while (!window_.empty() && window_.begin()->first < ctr) {
    auto it = window_.begin();
    if (stats_) {
      stats_->holding_time_s.add((sim_.now() - it->second.first_tx).sec());
    }
    window_.erase(it);
    advanced = true;
  }
  base_ctr_ = window_.empty() ? next_ctr_ : window_.begin()->first;
  if (advanced) {
    // Progress: restart the timer for the new base (or clear it).
    sim_.cancel(timeout_timer_);
    timeout_timer_ = 0;
    if (!window_.empty() || resend_cursor_ < next_ctr_) arm_timeout();
    if (stats_) {
      stats_->send_buffer.update(sim_.now(),
                                 static_cast<double>(sending_buffer_depth()));
    }
  }
}

void GbnSender::go_back_to(std::uint64_t ctr) {
  if (ctr < resend_cursor_) {
    trace("go-back to ctr=" + std::to_string(ctr));
    resend_cursor_ = ctr;
  }
}

void GbnSender::on_frame(frame::Frame f) {
  if (f.corrupted) {
    if (stats_) ++stats_->control_corrupted_rx;
    return;
  }
  const auto* s = std::get_if<frame::HdlcSFrame>(&f.body);
  if (s == nullptr) return;
  // Window-based acknowledgement arithmetic: N(R) in [base, base+W] moves
  // the window; anything else is a stale re-ack.
  const std::uint32_t d = seqspace_.forward(seqspace_.wrap(base_ctr_), s->nr);
  const std::uint64_t nr = d <= cfg_.window ? base_ctr_ + d : base_ctr_;
  switch (s->type) {
    case frame::HdlcSFrame::Type::RR:
      release_below(nr);
      break;
    case frame::HdlcSFrame::Type::REJ:
      release_below(nr);
      go_back_to(nr);
      break;
    default:
      break;
  }
  try_send();
}

void GbnSender::arm_timeout() {
  sim_.cancel(timeout_timer_);
  timeout_timer_ = sim_.schedule_in(cfg_.timeout, [this] { on_timeout(); });
}

void GbnSender::on_timeout() {
  timeout_timer_ = 0;
  if (window_.empty()) return;
  ++timeouts_;
  trace("t_out expired: going back to base");
  resend_cursor_ = base_ctr_;
  arm_timeout();
  try_send();
}

// -------------------------------------------------------------- receiver --

GbnReceiver::GbnReceiver(Simulator& sim, link::SimplexChannel& control_out,
                         HdlcConfig cfg, sim::PacketListener* listener,
                         sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{control_out},
      cfg_{cfg},
      listener_{listener},
      stats_{stats},
      tracer_{std::move(tracer)},
      seqspace_{cfg.modulus} {}

void GbnReceiver::trace(std::string what) const {
  tracer_.emit(sim_.now(), "hdlc.gbn.receiver", std::move(what));
}

void GbnReceiver::on_frame(frame::Frame f) {
  const auto* in = std::get_if<frame::HdlcIFrame>(&f.body);
  if (in == nullptr) {
    if (f.corrupted && stats_) ++stats_->control_corrupted_rx;
    return;
  }
  if (f.corrupted) {
    if (stats_) ++stats_->iframe_corrupted_rx;
    return;  // unreadable; the gap is caught on the next good frame
  }
  const std::uint32_t d = seqspace_.forward(seqspace_.wrap(vr_), in->ns);
  const bool in_receive_window = d < cfg_.window;
  const std::uint64_t ctr = vr_ + d;  // meaningful only when in window

  frame::Frame resp;
  if (in_receive_window && ctr == vr_) {
    ++vr_;
    rej_outstanding_ = false;
    const sim::Packet p{in->packet_id, in->payload_bytes, Time{},
                        0,             0,                 1,
                        in->payload};
    sim_.schedule_in(cfg_.t_proc, [this, p] {
      if (listener_) listener_->on_packet(p, sim_.now());
    });
    resp.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::RR,
                                  seqspace_.wrap(vr_), false, {}};
  } else {
    // Out of sequence: discard (no receive buffer in GBN) and reject once
    // per gap.
    ++discarded_;
    if (!in_receive_window) {
      // Duplicate of something delivered: re-acknowledge so the sender can
      // advance if the earlier RR was lost.
      resp.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::RR,
                                    seqspace_.wrap(vr_), false, {}};
    } else if (!rej_outstanding_) {
      rej_outstanding_ = true;
      resp.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::REJ,
                                    seqspace_.wrap(vr_), false, {}};
      if (tracer_.enabled()) trace("REJ nr=" + std::to_string(vr_));
    } else {
      return;  // already rejected this gap
    }
  }
  if (stats_) ++stats_->control_tx;
  out_.send(std::move(resp));
}

}  // namespace lamsdlc::hdlc
