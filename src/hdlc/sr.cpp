#include "lamsdlc/hdlc/sr.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace lamsdlc::hdlc {

// ---------------------------------------------------------------- sender --

SrSender::SrSender(Simulator& sim, link::SimplexChannel& data_out,
                   HdlcConfig cfg, sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{data_out},
      cfg_{cfg},
      stats_{stats},
      tracer_{std::move(tracer)},
      seqspace_{cfg.modulus} {
  out_.set_idle_callback([this] { try_send(); });
}

SrSender::~SrSender() { sim_.cancel(timeout_timer_); }

void SrSender::trace(std::string what) const {
  tracer_.emit(sim_.now(), "hdlc.sr.sender", std::move(what));
}

void SrSender::submit(sim::Packet p) {
  if (stats_) ++stats_->packets_submitted;
  queue_.push_back(p);
  note_buffer_change();
  // Defer the transmission kick by one zero-delay event so that a burst of
  // same-instant submissions is seen whole: the P bit must mark the true end
  // of the burst, not the first frame of an unfinished arrival loop.
  if (!kick_pending_) {
    kick_pending_ = true;
    sim_.schedule_in(Time{}, [this] {
      kick_pending_ = false;
      try_send();
    });
  }
}

std::size_t SrSender::sending_buffer_depth() const {
  return queue_.size() + window_.size();
}

bool SrSender::accepting() const {
  // The paper's point: SR-HDLC has no transparent buffer size — the sending
  // buffer grows without bound under sustained load.  We never push back.
  return true;
}

bool SrSender::idle() const {
  return queue_.empty() && window_.empty() && retx_queue_.empty();
}

void SrSender::note_buffer_change() {
  if (stats_) {
    stats_->send_buffer.update(sim_.now(),
                               static_cast<double>(sending_buffer_depth()));
  }
}

void SrSender::try_send() {
  if (out_.busy() || !out_.up()) return;

  // Retransmission period: resend rejected/timed-out frames, P on the last.
  while (!retx_queue_.empty() && !window_.contains(retx_queue_.front())) {
    retx_queue_.pop_front();  // acknowledged meanwhile
  }
  if (!retx_queue_.empty()) {
    const std::uint64_t ctr = retx_queue_.front();
    retx_queue_.pop_front();
    while (!retx_queue_.empty() && !window_.contains(retx_queue_.front())) {
      retx_queue_.pop_front();
    }
    const bool poll = retx_queue_.empty();
    send_iframe(ctr, poll);
    if (poll) {
      awaiting_response_ = true;
      arm_timeout();
    }
    return;
  }

  // Stutter (SR+ST): instead of idling while awaiting the response, walk
  // the unacknowledged frames and re-send them, re-polling once per cycle.
  // Duplicates are absorbed by the receiver's acceptance window; the RR or
  // SREJ that eventually lands supersedes the churn.
  if (cfg_.stutter && awaiting_response_ && !window_.empty()) {
    auto it = window_.lower_bound(stutter_cursor_);
    const bool wrapped = it == window_.end();
    if (wrapped) it = window_.begin();
    const std::uint64_t ctr = it->first;
    stutter_cursor_ = ctr + 1;
    const bool poll = std::next(it) == window_.end();
    ++stutter_retx_;
    send_iframe(ctr, poll);
    if (poll) arm_timeout();
    return;
  }

  // Transmission period: fill the window, P on the last frame of the burst.
  if (awaiting_response_ || queue_.empty()) return;
  if (next_ctr_ >= base_ctr_ + cfg_.window) return;

  const std::uint64_t ctr = next_ctr_++;
  window_.emplace(ctr, Pending{queue_.front(), Time{}, 0});
  queue_.pop_front();
  const bool poll = queue_.empty() || next_ctr_ == base_ctr_ + cfg_.window;
  send_iframe(ctr, poll);
  if (poll) {
    awaiting_response_ = true;
    arm_timeout();
  }
}

void SrSender::send_iframe(std::uint64_t ctr, bool poll) {
  Pending& p = window_.at(ctr);
  ++p.attempts;
  if (p.attempts == 1) p.first_tx = sim_.now();

  frame::Frame f;
  f.body = frame::HdlcIFrame{seqspace_.wrap(ctr), 0, poll, p.packet.id,
                             p.packet.bytes, {}};
  if (stats_) {
    ++stats_->iframe_tx;
    if (p.attempts > 1) ++stats_->iframe_retx;
  }
  if (tracer_.enabled()) {
    trace("I-frame ctr=" + std::to_string(ctr) +
          " attempt=" + std::to_string(p.attempts) + (poll ? " [P]" : ""));
  }
  out_.send(std::move(f));
}

void SrSender::on_frame(frame::Frame f) {
  if (f.corrupted) {
    if (stats_) ++stats_->control_corrupted_rx;
    trace("corrupted response discarded");
    return;
  }
  const auto* s = std::get_if<frame::HdlcSFrame>(&f.body);
  if (s == nullptr) return;
  switch (s->type) {
    case frame::HdlcSFrame::Type::RR:
      handle_rr(*s);
      break;
    case frame::HdlcSFrame::Type::SREJ:
      handle_srej(*s);
      break;
    case frame::HdlcSFrame::Type::RNR:
      // Receiver not ready: take the cumulative acknowledgement, stay in
      // the response-wait state, and let timeout recovery re-offer the
      // missing head at t_out pace.
      release_below(ack_counter(s->nr));
      arm_timeout();
      break;
    default:
      break;  // REJ is a GBN-side frame
  }
}

void SrSender::release_below(std::uint64_t ctr) {
  while (!window_.empty() && window_.begin()->first < ctr) {
    auto it = window_.begin();
    if (stats_) {
      stats_->holding_time_s.add((sim_.now() - it->second.first_tx).sec());
    }
    window_.erase(it);
  }
  base_ctr_ = window_.empty() ? next_ctr_ : window_.begin()->first;
  note_buffer_change();
}

std::uint64_t SrSender::ack_counter(frame::Seq nr) const {
  // N(R) acknowledges up to base+W; anything outside that window is a stale
  // re-acknowledgement and must not move the window (classic HDLC window
  // arithmetic — nearest-counter unwrapping is ambiguous at W = M/2).
  const std::uint32_t d = seqspace_.forward(seqspace_.wrap(base_ctr_), nr);
  return d <= cfg_.window ? base_ctr_ + d : base_ctr_;
}

void SrSender::handle_rr(const frame::HdlcSFrame& s) {
  const std::uint64_t nr = ack_counter(s.nr);
  if (tracer_.enabled()) trace("RR nr=" + std::to_string(nr));
  sim_.cancel(timeout_timer_);
  timeout_timer_ = 0;
  release_below(nr);
  if (window_.empty()) {
    // Final positive acknowledgement: the window closes (Section 4).
    awaiting_response_ = false;
    ++windows_closed_;
  } else {
    // Defensive: an RR that leaves frames unacknowledged means our model of
    // the receiver is out of sync; resend the remainder rather than stall.
    retx_queue_.clear();
    for (const auto& [ctr, p] : window_) retx_queue_.push_back(ctr);
  }
  try_send();
}

void SrSender::handle_srej(const frame::HdlcSFrame& s) {
  const std::uint64_t nr = ack_counter(s.nr);
  sim_.cancel(timeout_timer_);
  timeout_timer_ = 0;
  std::size_t queued = 0;
  auto reject = [&](frame::Seq wire) {
    // Rejected frames lie in [base, base+W).
    const std::uint32_t d = seqspace_.forward(seqspace_.wrap(base_ctr_), wire);
    if (d >= cfg_.window) return;  // stale
    const std::uint64_t ctr = base_ctr_ + d;
    if (!window_.contains(ctr)) return;
    if (std::find(retx_queue_.begin(), retx_queue_.end(), ctr) !=
        retx_queue_.end()) {
      return;
    }
    retx_queue_.emplace_back(ctr);
    ++queued;
  };
  if (s.srej_list.empty()) {
    reject(s.nr);  // single-SREJ form
  } else {
    for (const frame::Seq wire : s.srej_list) reject(wire);
  }
  release_below(nr);
  if (tracer_.enabled()) {
    trace("SREJ nr=" + std::to_string(nr) + " rejected=" + std::to_string(queued));
  }
  if (retx_queue_.empty() && !window_.empty()) {
    // Everything listed was already acknowledged; poll again via timeout
    // path to avoid deadlock.
    for (const auto& [ctr, p] : window_) retx_queue_.push_back(ctr);
  }
  try_send();
}

void SrSender::arm_timeout() {
  sim_.cancel(timeout_timer_);
  timeout_timer_ = sim_.schedule_in(cfg_.timeout, [this] { on_timeout(); });
}

void SrSender::on_timeout() {
  timeout_timer_ = 0;
  if (window_.empty()) return;
  ++timeouts_;
  trace("t_out expired: retransmitting window remainder");
  // Timeout recovery (retransmission period): resend every unacknowledged
  // frame, P on the last.
  retx_queue_.clear();
  for (const auto& [ctr, p] : window_) retx_queue_.push_back(ctr);
  try_send();
}

// -------------------------------------------------------------- receiver --

SrReceiver::SrReceiver(Simulator& sim, link::SimplexChannel& control_out,
                       HdlcConfig cfg, sim::PacketListener* listener,
                       sim::DlcStats* stats, Tracer tracer)
    : sim_{sim},
      out_{control_out},
      cfg_{cfg},
      listener_{listener},
      stats_{stats},
      tracer_{std::move(tracer)},
      seqspace_{cfg.modulus} {}

void SrReceiver::trace(std::string what) const {
  tracer_.emit(sim_.now(), "hdlc.sr.receiver", std::move(what));
}

void SrReceiver::on_frame(frame::Frame f) {
  const auto* in = std::get_if<frame::HdlcIFrame>(&f.body);
  if (in == nullptr) {
    if (f.corrupted && stats_) ++stats_->control_corrupted_rx;
    return;
  }
  handle_iframe(*in, f.corrupted);
}

void SrReceiver::handle_iframe(const frame::HdlcIFrame& in, bool corrupted) {
  if (corrupted) {
    // Unreadable: neither N(S) nor the P bit survives.  A lost poll is
    // recovered by the sender's t_out.
    if (stats_) ++stats_->iframe_corrupted_rx;
    return;
  }
  // Classic receive-window acceptance: frames with forward distance from
  // V(R) inside [0, W) are new; everything else is an old duplicate (e.g. a
  // timeout resend of frames whose RR was lost).
  const std::uint32_t d = seqspace_.forward(seqspace_.wrap(vr_), in.ns);
  if (d < cfg_.window) {
    const std::uint64_t ctr = vr_ + d;
    if (!held_.contains(ctr)) {
      if (ctr != vr_ && held_.size() >= cfg_.recv_capacity) {
        // Resequencing buffer exhausted: discard the out-of-order frame
        // (the limited-buffering secondary); the sender learns through RNR
        // and timeout recovery re-supplies it later.
        ++busy_discards_;
      } else {
        held_.emplace(ctr, sim::Packet{in.packet_id, in.payload_bytes, Time{},
                                       0, 0, 1, in.payload});
        if (stats_) {
          stats_->recv_buffer.update(sim_.now(),
                                     static_cast<double>(held_.size()));
        }
      }
    }
    highest_plus1_ = std::max(highest_plus1_, ctr + 1);
    deliver_ready();
  }

  if (in.poll) {
    // Respond once this frame has been processed.
    sim_.schedule_in(cfg_.t_proc, [this] { respond(); });
  }
}

void SrReceiver::deliver_ready() {
  // In-sequence constraint: only the consecutive prefix leaves the receiver.
  while (!held_.empty() && held_.begin()->first == vr_) {
    const sim::Packet p = held_.begin()->second;
    held_.erase(held_.begin());
    ++vr_;
    sim_.schedule_in(cfg_.t_proc, [this, p] {
      if (listener_) listener_->on_packet(p, sim_.now());
    });
  }
  if (stats_) {
    stats_->recv_buffer.update(sim_.now(), static_cast<double>(held_.size()));
  }
}

void SrReceiver::respond() {
  frame::Frame f;
  if (held_.size() >= cfg_.recv_capacity && !held_.contains(vr_)) {
    // Buffer full and blocked on the missing head: declare not-ready.  The
    // cumulative N(R) still releases the sender's acknowledged prefix; the
    // head arrives via timeout recovery.
    f.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::RNR,
                               seqspace_.wrap(vr_), true, {}};
    if (tracer_.enabled()) trace("RNR nr=" + std::to_string(vr_));
    if (stats_) ++stats_->control_tx;
    out_.send(std::move(f));
    return;
  }
  if (vr_ == highest_plus1_) {
    f.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::RR, seqspace_.wrap(vr_),
                               true, {}};
    if (tracer_.enabled()) trace("RR nr=" + std::to_string(vr_));
  } else {
    std::vector<frame::Seq> missing;
    for (std::uint64_t c = vr_; c < highest_plus1_; ++c) {
      if (!held_.contains(c)) missing.push_back(seqspace_.wrap(c));
    }
    if (tracer_.enabled()) {
      trace("SREJ nr=" + std::to_string(vr_) +
            " missing=" + std::to_string(missing.size()));
    }
    f.body = frame::HdlcSFrame{frame::HdlcSFrame::Type::SREJ,
                               seqspace_.wrap(vr_), true, std::move(missing)};
  }
  if (stats_) ++stats_->control_tx;
  out_.send(std::move(f));
}

}  // namespace lamsdlc::hdlc
