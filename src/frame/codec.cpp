#include "lamsdlc/frame/codec.hpp"

#include <cstring>
#include <utility>

#include "lamsdlc/phy/crc.hpp"

namespace lamsdlc::frame {
namespace {

enum Kind : std::uint8_t {
  kIFrame = 1,
  kCheckpoint = 2,
  kRequestNak = 3,
  kHdlcI = 4,
  kHdlcS = 5,
  kSession = 6,
  kSelectiveAck = 7,
  kResync = 8,
  kResyncAck = 9,
};

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& buf) : buf_{buf} { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void i64(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    u32(static_cast<std::uint32_t>(u));
    u32(static_cast<std::uint32_t>(u >> 32));
  }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void zeros(std::size_t n) { buf_.resize(buf_.size() + n, 0); }

  void finish() {
    const std::uint16_t fcs = phy::crc16_ccitt(buf_);
    u16(fcs);
  }

 private:
  std::vector<std::uint8_t>& buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> b) : b_{b} {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > b_.size()) return false;
    v = b_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t lo, hi;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo, hi;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint32_t lo, hi;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) |
                                  (static_cast<std::uint64_t>(hi) << 32));
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos_ + n > b_.size()) return false;
    out.assign(b_.begin() + static_cast<std::ptrdiff_t>(pos_),
               b_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return b_.size() - pos_; }

 private:
  std::span<const std::uint8_t> b_;
  std::size_t pos_{0};
};

}  // namespace

std::size_t encoded_size(const Frame& f) noexcept {
  struct Sizer {
    std::size_t operator()(const IFrame& i) const {
      return 1 + 4 + 4 + i.payload_bytes + kFcsBytes;
    }
    std::size_t operator()(const CheckpointFrame& c) const {
      return 1 + 4 + 8 + 4 + 1 + 4 + 2 + 4 * c.naks.size() + kFcsBytes;
    }
    std::size_t operator()(const RequestNakFrame&) const {
      return 1 + 4 + kFcsBytes;
    }
    std::size_t operator()(const HdlcIFrame& i) const {
      return 1 + 4 + 4 + 1 + 4 + i.payload_bytes + kFcsBytes;
    }
    std::size_t operator()(const HdlcSFrame& s) const {
      return 1 + 1 + 4 + 2 + 4 * s.srej_list.size() + kFcsBytes;
    }
    std::size_t operator()(const SessionFrame&) const {
      return 1 + 1 + 4 + kFcsBytes;
    }
    std::size_t operator()(const SelectiveAckFrame& a) const {
      return 1 + 4 + 4 + 1 + 2 + 4 * a.missing.size() + kFcsBytes;
    }
    std::size_t operator()(const ResyncFrame&) const {
      return 1 + 4 + 4 + kFcsBytes;
    }
    std::size_t operator()(const ResyncAckFrame&) const {
      return 1 + 4 + 4 + kFcsBytes;
    }
  };
  return std::visit(Sizer{}, f.body);
}

std::size_t wire_bits(const Frame& f) noexcept { return 8 * encoded_size(f); }

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_into(f, out);
  return out;
}

void encode_into(const Frame& f, std::vector<std::uint8_t>& out) {
  out.reserve(encoded_size(f));
  Writer w{out};
  struct Enc {
    Writer& w;
    void operator()(const IFrame& i) const {
      w.u8(kIFrame);
      w.u32(i.seq);
      w.u32(i.payload_bytes);
      if (!i.payload.empty()) {
        w.bytes(i.payload);
        if (i.payload.size() < i.payload_bytes) {
          w.zeros(i.payload_bytes - i.payload.size());
        }
      } else {
        w.zeros(i.payload_bytes);
      }
    }
    void operator()(const CheckpointFrame& c) const {
      w.u8(kCheckpoint);
      w.u32(c.cp_seq);
      w.i64(c.generated_at.ps());
      w.u32(c.highest_seen);
      w.u8(static_cast<std::uint8_t>((c.any_seen ? 1 : 0) |
                                     (c.enforced ? 2 : 0) |
                                     (c.stop_go ? 4 : 0) |
                                     (c.resync_req ? 8 : 0)));
      w.u32(c.epoch);
      w.u16(static_cast<std::uint16_t>(c.naks.size()));
      for (Seq s : c.naks) w.u32(s);
    }
    void operator()(const RequestNakFrame& r) const {
      w.u8(kRequestNak);
      w.u32(r.token);
    }
    void operator()(const HdlcIFrame& i) const {
      w.u8(kHdlcI);
      w.u32(i.ns);
      w.u32(i.nr);
      w.u8(i.poll ? 1 : 0);
      w.u32(i.payload_bytes);
      if (!i.payload.empty()) {
        w.bytes(i.payload);
        if (i.payload.size() < i.payload_bytes) {
          w.zeros(i.payload_bytes - i.payload.size());
        }
      } else {
        w.zeros(i.payload_bytes);
      }
    }
    void operator()(const SessionFrame& s) const {
      w.u8(kSession);
      w.u8(static_cast<std::uint8_t>(s.kind));
      w.u32(s.epoch);
    }
    void operator()(const SelectiveAckFrame& a) const {
      w.u8(kSelectiveAck);
      w.u32(a.base);
      w.u32(a.highest);
      w.u8(a.any_seen ? 1 : 0);
      w.u16(static_cast<std::uint16_t>(a.missing.size()));
      for (Seq m : a.missing) w.u32(m);
    }
    void operator()(const ResyncFrame& r) const {
      w.u8(kResync);
      w.u32(r.token);
      w.u32(r.epoch);
    }
    void operator()(const ResyncAckFrame& r) const {
      w.u8(kResyncAck);
      w.u32(r.token);
      w.u32(r.epoch);
    }
    void operator()(const HdlcSFrame& s) const {
      w.u8(kHdlcS);
      w.u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(s.type) |
                                     (s.poll_final ? 0x80 : 0)));
      w.u32(s.nr);
      w.u16(static_cast<std::uint16_t>(s.srej_list.size()));
      for (Seq q : s.srej_list) w.u32(q);
    }
  };
  std::visit(Enc{w}, f.body);
  w.finish();
}

namespace {

/// Post-parse value validation (see DecodeLimits in the header).
bool within_limits(const Frame& f, const DecodeLimits& limits) {
  if (limits.seq_modulus == 0) return true;
  const std::uint32_t m = limits.seq_modulus;
  struct Check {
    std::uint32_t m;
    bool operator()(const IFrame& i) const { return i.seq < m; }
    bool operator()(const CheckpointFrame& c) const {
      if (c.highest_seen >= m) return false;
      for (const Seq s : c.naks) {
        if (s >= m) return false;
      }
      return true;
    }
    bool operator()(const RequestNakFrame&) const { return true; }
    bool operator()(const HdlcIFrame& i) const { return i.ns < m && i.nr < m; }
    bool operator()(const HdlcSFrame& s) const {
      if (s.nr >= m) return false;
      for (const Seq q : s.srej_list) {
        if (q >= m) return false;
      }
      return true;
    }
    bool operator()(const SessionFrame&) const { return true; }
    bool operator()(const SelectiveAckFrame&) const {
      // NBDT numbering is absolute (32-bit), not cyclic — no modulus applies.
      return true;
    }
    bool operator()(const ResyncFrame& r) const {
      // Epoch 0 means "no session"; a RESYNC always opens a fresh epoch.
      return r.epoch != 0;
    }
    bool operator()(const ResyncAckFrame& r) const { return r.epoch != 0; }
  };
  return std::visit(Check{m}, f.body);
}

}  // namespace

void DecodeRejectCounts::count(DecodeReject r) noexcept {
  switch (r) {
    case DecodeReject::kNone: break;
    case DecodeReject::kTruncated: ++truncated; break;
    case DecodeReject::kBadFcs: ++bad_fcs; break;
    case DecodeReject::kLengthOverrun: ++length_overrun; break;
    case DecodeReject::kTrailingBytes: ++trailing_bytes; break;
    case DecodeReject::kUnknownKind: ++unknown_kind; break;
    case DecodeReject::kLimits: ++limits; break;
  }
}

std::optional<Frame> decode(std::span<const std::uint8_t> bytes,
                            DecodeLimits limits, DecodeReject* why) {
  if (why != nullptr) *why = DecodeReject::kNone;
  auto reject = [why](DecodeReject r) -> std::optional<Frame> {
    if (why != nullptr) *why = r;
    return std::nullopt;
  };
  auto checked = [&limits, &reject](Frame&& f) -> std::optional<Frame> {
    if (!within_limits(f, limits)) return reject(DecodeReject::kLimits);
    return std::move(f);
  };
  if (bytes.size() < 1 + kFcsBytes) return reject(DecodeReject::kTruncated);
  // Verify FCS over everything but the trailing two bytes.
  const auto body = bytes.first(bytes.size() - kFcsBytes);
  const std::uint16_t want = phy::crc16_ccitt(body);
  const std::uint16_t got =
      static_cast<std::uint16_t>(bytes[bytes.size() - 2] |
                                 (bytes[bytes.size() - 1] << 8));
  if (want != got) return reject(DecodeReject::kBadFcs);

  Reader r{body};
  std::uint8_t kind;
  if (!r.u8(kind)) return reject(DecodeReject::kTruncated);
  Frame f;
  switch (kind) {
    case kIFrame: {
      IFrame i;
      if (!r.u32(i.seq) || !r.u32(i.payload_bytes)) {
        return reject(DecodeReject::kTruncated);
      }
      if (!r.bytes(i.payload, i.payload_bytes)) {
        return reject(DecodeReject::kLengthOverrun);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = std::move(i);
      return checked(std::move(f));
    }
    case kCheckpoint: {
      CheckpointFrame c;
      std::int64_t ps;
      std::uint8_t flags;
      std::uint16_t n;
      if (!r.u32(c.cp_seq) || !r.i64(ps) || !r.u32(c.highest_seen) ||
          !r.u8(flags) || !r.u32(c.epoch) || !r.u16(n)) {
        return reject(DecodeReject::kTruncated);
      }
      c.generated_at = Time::picoseconds(ps);
      c.any_seen = flags & 1;
      c.enforced = flags & 2;
      c.stop_go = flags & 4;
      c.resync_req = flags & 8;
      // The declared count must fit the bytes that actually arrived before
      // any allocation happens — a hostile count field otherwise sizes the
      // vector from attacker-controlled input.
      if (r.remaining() < 4u * n) return reject(DecodeReject::kLengthOverrun);
      c.naks.resize(n);
      for (auto& s : c.naks) {
        if (!r.u32(s)) return reject(DecodeReject::kLengthOverrun);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = std::move(c);
      return checked(std::move(f));
    }
    case kRequestNak: {
      RequestNakFrame q;
      if (!r.u32(q.token)) return reject(DecodeReject::kTruncated);
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = q;
      return checked(std::move(f));
    }
    case kHdlcI: {
      HdlcIFrame i;
      std::uint8_t flags;
      if (!r.u32(i.ns) || !r.u32(i.nr) || !r.u8(flags) ||
          !r.u32(i.payload_bytes)) {
        return reject(DecodeReject::kTruncated);
      }
      i.poll = flags & 1;
      if (!r.bytes(i.payload, i.payload_bytes)) {
        return reject(DecodeReject::kLengthOverrun);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = std::move(i);
      return checked(std::move(f));
    }
    case kHdlcS: {
      HdlcSFrame s;
      std::uint8_t tf;
      std::uint16_t n;
      if (!r.u8(tf)) return reject(DecodeReject::kTruncated);
      const std::uint8_t t = tf & 0x3;
      s.type = static_cast<HdlcSFrame::Type>(t);
      s.poll_final = tf & 0x80;
      if (!r.u32(s.nr) || !r.u16(n)) return reject(DecodeReject::kTruncated);
      if (r.remaining() < 4u * n) return reject(DecodeReject::kLengthOverrun);
      s.srej_list.resize(n);
      for (auto& q : s.srej_list) {
        if (!r.u32(q)) return reject(DecodeReject::kLengthOverrun);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = std::move(s);
      return checked(std::move(f));
    }
    case kSelectiveAck: {
      SelectiveAckFrame a;
      std::uint8_t flags;
      std::uint16_t n;
      if (!r.u32(a.base) || !r.u32(a.highest) || !r.u8(flags) || !r.u16(n)) {
        return reject(DecodeReject::kTruncated);
      }
      a.any_seen = flags & 1;
      if (r.remaining() < 4u * n) return reject(DecodeReject::kLengthOverrun);
      a.missing.resize(n);
      for (auto& m : a.missing) {
        if (!r.u32(m)) return reject(DecodeReject::kLengthOverrun);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = std::move(a);
      return checked(std::move(f));
    }
    case kResync: {
      ResyncFrame q;
      if (!r.u32(q.token) || !r.u32(q.epoch)) {
        return reject(DecodeReject::kTruncated);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = q;
      return checked(std::move(f));
    }
    case kResyncAck: {
      ResyncAckFrame q;
      if (!r.u32(q.token) || !r.u32(q.epoch)) {
        return reject(DecodeReject::kTruncated);
      }
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      f.body = q;
      return checked(std::move(f));
    }
    case kSession: {
      SessionFrame s;
      std::uint8_t k;
      if (!r.u8(k)) return reject(DecodeReject::kTruncated);
      if (k > 3) return reject(DecodeReject::kUnknownKind);
      if (!r.u32(s.epoch)) return reject(DecodeReject::kTruncated);
      if (r.remaining() != 0) return reject(DecodeReject::kTrailingBytes);
      s.kind = static_cast<SessionFrame::Kind>(k);
      f.body = s;
      return checked(std::move(f));
    }
    default:
      return reject(DecodeReject::kUnknownKind);
  }
}

}  // namespace lamsdlc::frame
