#include "lamsdlc/frame/envelope.hpp"

#include <cassert>

namespace lamsdlc::frame {
namespace {

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>(b[at] | (b[at + 1] << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint32_t>(get_u16(b, at)) |
         (static_cast<std::uint32_t>(get_u16(b, at + 2)) << 16);
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(b, at)) |
         (static_cast<std::uint64_t>(get_u32(b, at + 4)) << 32);
}

constexpr std::size_t kBaseHeader = 2 + 1 + 1 + 4 + 2;  // magic..payload_len

}  // namespace

std::size_t envelope_encoded_size(const Envelope& e) noexcept {
  return kBaseHeader + (e.has_packet_id ? 8 : 0) + e.payload.size();
}

void encode_envelope_into(const Envelope& e, std::vector<std::uint8_t>& out) {
  assert(e.payload.size() <= 0xFFFF && "envelope payload exceeds u16 length");
  out.clear();
  out.reserve(envelope_encoded_size(e));
  put_u16(out, kEnvelopeMagic);
  out.push_back(kEnvelopeVersion);
  out.push_back(static_cast<std::uint8_t>(
      (e.has_packet_id ? kEnvFlagData : 0) |
      (e.to_receiver ? kEnvFlagToReceiver : 0)));
  put_u32(out, e.session_id);
  put_u16(out, static_cast<std::uint16_t>(e.payload.size()));
  if (e.has_packet_id) put_u64(out, e.packet_id);
  out.insert(out.end(), e.payload.begin(), e.payload.end());
}

std::vector<std::uint8_t> encode_envelope(const Envelope& e) {
  std::vector<std::uint8_t> out;
  encode_envelope_into(e, out);
  return out;
}

void EnvelopeRejectCounts::count(EnvelopeReject r) noexcept {
  switch (r) {
    case EnvelopeReject::kNone: break;
    case EnvelopeReject::kRuntHeader: ++runt_header; break;
    case EnvelopeReject::kBadMagic: ++bad_magic; break;
    case EnvelopeReject::kBadVersion: ++bad_version; break;
    case EnvelopeReject::kReservedFlags: ++reserved_flags; break;
    case EnvelopeReject::kTruncatedId: ++truncated_id; break;
    case EnvelopeReject::kLengthMismatch: ++length_mismatch; break;
    case EnvelopeReject::kEmptyPayload: ++empty_payload; break;
  }
}

std::optional<Envelope> decode_envelope(std::span<const std::uint8_t> bytes,
                                        EnvelopeReject* why) {
  if (why != nullptr) *why = EnvelopeReject::kNone;
  auto reject = [why](EnvelopeReject r) -> std::optional<Envelope> {
    if (why != nullptr) *why = r;
    return std::nullopt;
  };
  if (bytes.size() < kBaseHeader) return reject(EnvelopeReject::kRuntHeader);
  if (get_u16(bytes, 0) != kEnvelopeMagic) {
    return reject(EnvelopeReject::kBadMagic);
  }
  if (bytes[2] != kEnvelopeVersion) return reject(EnvelopeReject::kBadVersion);
  const std::uint8_t flags = bytes[3];
  if ((flags & ~(kEnvFlagData | kEnvFlagToReceiver)) != 0) {
    return reject(EnvelopeReject::kReservedFlags);
  }
  Envelope e;
  e.session_id = get_u32(bytes, 4);
  e.has_packet_id = (flags & kEnvFlagData) != 0;
  e.to_receiver = (flags & kEnvFlagToReceiver) != 0;
  const std::size_t declared = get_u16(bytes, 8);
  std::size_t pos = kBaseHeader;
  if (e.has_packet_id) {
    if (bytes.size() < pos + 8) return reject(EnvelopeReject::kTruncatedId);
    e.packet_id = get_u64(bytes, pos);
    pos += 8;
  }
  // The load-bearing check: the declared length must equal the bytes that
  // actually arrived.  A shorter datagram is truncation; a longer one is
  // padding or a splice — both mean the envelope cannot be trusted, even if
  // the inner frame's FCS would happen to pass over a prefix.
  if (bytes.size() - pos != declared) {
    return reject(EnvelopeReject::kLengthMismatch);
  }
  if (declared == 0) {
    return reject(EnvelopeReject::kEmptyPayload);  // always carries a frame
  }
  e.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                   bytes.end());
  return e;
}

}  // namespace lamsdlc::frame
