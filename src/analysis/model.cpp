#include "lamsdlc/analysis/model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lamsdlc::analysis {

double p_r_lams(const Params& p) noexcept { return p.p_f; }

double p_r_hdlc(const Params& p) noexcept {
  return p.p_f + p.p_c - p.p_f * p.p_c;
}

double s_bar(double p_r) noexcept { return 1.0 / (1.0 - p_r); }

double s_bar_lams(const Params& p) noexcept { return s_bar(p_r_lams(p)); }

double s_bar_hdlc(const Params& p) noexcept { return s_bar(p_r_hdlc(p)); }

double n_cp_bar(const Params& p) noexcept { return 1.0 / (1.0 - p.p_c); }

double d_trans_lams(const Params& p, double n_frames) noexcept {
  return n_frames * p.t_f + p.t_c + p.t_proc + p.rtt +
         (n_cp_bar(p) - 0.5) * p.i_cp;
}

double d_retrn_lams(const Params& p) noexcept { return d_trans_lams(p, 1.0); }

double d_trans_hdlc(const Params& p, double n_frames) noexcept {
  const double t_out = p.rtt + p.alpha;
  return n_frames * p.t_f +
         (1.0 - p.p_c) * (p.rtt + 2.0 * p.t_proc + p.t_c) + p.p_c * t_out;
}

double d_retrn_hdlc(const Params& p) noexcept {
  const double q = (1.0 - p.p_f) * (1.0 - p.p_c);  // period resolves
  const double d_resol = p.rtt + 2.0 * p.t_proc + p.t_c;
  const double d_retrn = p.rtt + p.alpha;  // t_out
  return p.t_f + q * d_resol + (1.0 - q) * d_retrn;
}

double d_low_lams(const Params& p, double n_frames) noexcept {
  return d_trans_lams(p, n_frames) + (s_bar_lams(p) - 1.0) * d_retrn_lams(p);
}

double d_low_lams_approx(const Params& p, double n_frames) noexcept {
  const double s = s_bar_lams(p);
  return n_frames * p.t_f + s * p.rtt + s * (n_cp_bar(p) - 0.5) * p.i_cp;
}

double d_low_hdlc(const Params& p, double n_frames) noexcept {
  return d_trans_hdlc(p, n_frames) + (s_bar_hdlc(p) - 1.0) * d_retrn_hdlc(p);
}

double d_low_hdlc_approx(const Params& p, double n_frames) noexcept {
  const double s = s_bar_hdlc(p);
  const double q = 1.0 - p.p_f - p.p_c + p.p_f * p.p_c;
  return n_frames * p.t_f + s * p.rtt + ((s - 1.0) * q - p.p_c) * p.alpha;
}

double h_frame_lams(const Params& p) noexcept {
  return s_bar_lams(p) * (p.rtt + p.t_f + p.t_c + p.t_proc +
                          (n_cp_bar(p) - 0.5) * p.i_cp);
}

double b_lams(const Params& p) noexcept {
  return h_frame_lams(p) / p.t_f + p.t_proc / p.t_f;
}

double resolving_period(const Params& p) noexcept {
  return p.rtt + 0.5 * p.i_cp + static_cast<double>(p.c_depth) * p.i_cp;
}

double numbering_size(const Params& p) noexcept {
  return resolving_period(p) / p.t_f;
}

double p_nak_blackout(const Params& p) noexcept {
  return std::pow(p.p_c, static_cast<double>(p.c_depth));
}

double inconsistency_gap_bound(const Params& p) noexcept {
  const double normal_response =
      p.rtt + p.t_c + p.t_proc + 0.5 * p.i_cp;  // mean cp phase
  return normal_response + static_cast<double>(p.c_depth) * p.i_cp;
}

double failure_detection_bound(const Params& p) noexcept {
  const double silence = static_cast<double>(p.c_depth) * p.i_cp;
  const double failure_timer =
      p.rtt + p.i_cp + static_cast<double>(p.c_depth) * p.i_cp;
  return silence + failure_timer + p.i_cp;  // + one cadence of slack
}

double n_total(double n_new, double h, double p_r) noexcept {
  if (n_new <= 0.0) return 0.0;
  if (h <= 1.0) h = 1.0;
  // Subperiod recursion (Section 4): each subperiod carries h frames of
  // which the expected retransmissions of earlier subperiods displace new
  // ones.  We run it literally, then account for the tail retransmissions
  // of the final partial subperiod.
  std::vector<double> fresh;  // N_i: new frames introduced in subperiod i
  double remaining = n_new;
  double total = 0.0;
  while (remaining > 0.0) {
    double retx = 0.0;
    double decay = p_r;
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      retx += *it * decay;
      decay *= p_r;
      if (decay < 1e-15) break;
    }
    const double capacity = std::max(0.0, h - retx);
    const double introduced = std::min(capacity, remaining);
    fresh.push_back(introduced);
    remaining -= introduced;
    total += introduced + retx;
    if (fresh.size() > 1000000) break;  // degenerate p_r -> saturate
  }
  // Tail: the last subperiods' frames still fail geometrically after the
  // final new frame enters; each outstanding frame costs s̄ - attempts so
  // far.  The dominant term is the geometric residue of the final batch.
  double tail = 0.0;
  double decay = p_r;
  for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
    tail += *it * decay / (1.0 - p_r);
    decay *= p_r;
    if (decay < 1e-15) break;
  }
  return total + tail;
}

double n_total_geometric(double n_new, double p_r) noexcept {
  return n_new / (1.0 - p_r);
}

double d_high_lams(const Params& p, double n_frames) noexcept {
  const double h = h_frame_lams(p) / p.t_f;
  const double nt = n_total(n_frames, h, p_r_lams(p));
  return d_low_lams(p, nt);
}

double d_high_hdlc(const Params& p, double n_frames) noexcept {
  const double w = static_cast<double>(p.window);
  const double m = std::floor(n_frames / w);
  const double r_w = n_frames - m * w;
  const double n_win = n_total_geometric(w, p_r_hdlc(p));
  double d = m * d_low_hdlc(p, n_win);
  if (r_w > 0.0) {
    d += d_low_hdlc(p, n_total_geometric(r_w, p_r_hdlc(p)));
  }
  return d;
}

double eta_lams(const Params& p, double n_frames) noexcept {
  return n_frames / d_high_lams(p, n_frames);
}

double eta_hdlc(const Params& p, double n_frames) noexcept {
  return n_frames / d_high_hdlc(p, n_frames);
}

double efficiency_lams(const Params& p, double n_frames) noexcept {
  return eta_lams(p, n_frames) * p.t_f;
}

double efficiency_hdlc(const Params& p, double n_frames) noexcept {
  return eta_hdlc(p, n_frames) * p.t_f;
}

}  // namespace lamsdlc::analysis
