/// E11 (extension) — store-and-forward scaling across hops.
///
/// Beyond the paper's single-link analysis: its Section 2.3 argument says
/// relaxing the in-sequence constraint lets every intermediate node forward
/// immediately, so end-to-end delay should grow by one link latency per hop
/// with no resequencing amplification, and relay receive buffers should stay
/// at the processing-pipeline depth regardless of loss.  This harness runs
/// LAMS-DLC chains of increasing length under per-hop loss and measures it.

#include "bench_common.hpp"
#include "lamsdlc/net/network.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E11 (extension)", "LAMS-DLC chain: hops sweep at P_F = 0.1/hop",
         "per-hop forwarding without resequencing: delay grows ~linearly "
         "per hop, relay receive buffers stay transparent");

  struct HopResult {
    net::NetworkReport report;
    double relay_recv_peak = 0;
    bool done = false;
  };
  auto run_chain = [](sim::Protocol proto, int hops) {
    Simulator sim;
    net::Network net{sim};
    std::vector<net::NodeId> nodes;
    for (int i = 0; i <= hops; ++i) {
      nodes.push_back(net.add_node("n" + std::to_string(i)));
    }
    std::vector<net::LinkId> links;
    for (int i = 0; i < hops; ++i) {
      net::LinkSpec s;
      s.a = nodes[static_cast<std::size_t>(i)];
      s.b = nodes[static_cast<std::size_t>(i + 1)];
      s.data_rate_bps = 100e6;
      s.prop_delay = 5_ms;
      s.protocol = proto;
      s.lams.checkpoint_interval = 5_ms;
      s.lams.cumulation_depth = 4;
      s.lams.max_rtt = 15_ms;
      s.hdlc.window = 64;
      s.hdlc.modulus = 256;
      s.hdlc.timeout = 50_ms;
      s.a_to_b_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
      s.a_to_b_error.p_frame = 0.1;
      s.b_to_a_error = s.a_to_b_error;
      links.push_back(net.add_link(s));
    }

    const std::uint64_t n = 2000;
    for (std::uint64_t i = 0; i < n; ++i) {
      net.send_packet(nodes.front(), nodes.back(), 1024);
    }
    HopResult out;
    out.done = net.run_to_completion(600_s);
    out.report = net.report();
    for (int i = 0; i < hops; ++i) {
      auto& f = net.flow(links[static_cast<std::size_t>(i)],
                         nodes[static_cast<std::size_t>(i)]);
      f.stats().recv_buffer.finish(sim.now());
      out.relay_recv_peak =
          std::max(out.relay_recv_peak, f.stats().recv_buffer.peak());
    }
    return out;
  };

  Table t{{"hops", "lams:lost", "lams:dup", "lams:delay", "lams:recvpk",
           "sr:delay", "sr:recvpk"}, 12};
  for (int hops = 1; hops <= 6; ++hops) {
    const HopResult lams = run_chain(sim::Protocol::kLams, hops);
    const HopResult sr = run_chain(sim::Protocol::kSrHdlc, hops);
    if (!lams.done || !sr.done) {
      std::fprintf(stderr, "  [warn] hops=%d did not complete\n", hops);
    }
    t.cell(static_cast<std::uint64_t>(hops))
        .cell(lams.report.packets_lost)
        .cell(lams.report.duplicate_deliveries)
        .cell(1e3 * lams.report.mean_delay_s)
        .cell(lams.relay_recv_peak)
        .cell(1e3 * sr.report.mean_delay_s)
        .cell(sr.relay_recv_peak);
  }
  std::printf(
      "\nLAMS relay receive peaks stay at the t_proc pipeline depth (~1\n"
      "frame) at every chain length, while each SR-HDLC relay parks a large\n"
      "fraction of its window for resequencing — the per-hop buffer cost of\n"
      "the in-sequence constraint, multiplied by the route length.  Delay\n"
      "per added hop is one link latency for LAMS; SR adds window-resolution\n"
      "stalls per hop on top.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
