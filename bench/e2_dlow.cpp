/// E2 — Low-traffic delivery time D_low(N).
///
/// Regenerates the Section 4 comparison
///   D_low^LAMS(N) ≈ N·t_f + s̄·R + s̄·(n̄_cp − ½)·I_cp
///   D_low^HDLC(N) ≈ N·t_f + s̄·R + ((s̄−1)(1−P_F−P_C+P_F·P_C) − P_C)·α
/// across batch size N and the timeout slack α.  The paper's conclusion:
/// nearly equivalent at small α, HDLC worse once α ≫ (high-mobility links).

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E2", "low-traffic total delivery time D_low(N) [ms]",
         "LAMS ~= HDLC when alpha is small; D_low^HDLC grows with alpha in "
         "a highly mobile network while LAMS-DLC is insensitive to it");

  const double p_f = 0.05;
  const double p_c = 0.01;

  for (const std::int64_t alpha_ms : {10, 40, 160}) {
    std::printf("\n-- alpha = %lld ms (t_out = R + alpha) --\n",
                static_cast<long long>(alpha_ms));
    Table t{{"N", "lams:analysis", "lams:sim", "hdlc:analysis", "hdlc:sim"}};
    for (const std::uint64_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
      auto lams_cfg = default_config(sim::Protocol::kLams);
      set_fixed_errors(lams_cfg, p_f, p_c);
      sim::Scenario probe{lams_cfg};
      auto params = probe.analysis_params();
      params.alpha = static_cast<double>(alpha_ms) * 1e-3;

      auto hdlc_cfg = default_config(sim::Protocol::kSrHdlc);
      set_fixed_errors(hdlc_cfg, p_f, p_c);
      hdlc_cfg.hdlc.window = 512;  // N <= W: the paper's low-traffic regime
      hdlc_cfg.hdlc.modulus = 2048;
      hdlc_cfg.hdlc.timeout =
          10_ms + Time::milliseconds(alpha_ms);  // R + alpha

      // Measured: completion time of one batch.
      sim::Scenario lams{lams_cfg};
      workload::submit_batch(lams.simulator(), lams.sender(), lams.tracker(),
                             lams.ids(), n, lams_cfg.frame_bytes);
      lams.run_to_completion(600_s);

      sim::Scenario hdlc{hdlc_cfg};
      workload::submit_batch(hdlc.simulator(), hdlc.sender(), hdlc.tracker(),
                             hdlc.ids(), n, hdlc_cfg.frame_bytes);
      hdlc.run_to_completion(600_s);

      t.cell(n)
          .cell(1e3 * analysis::d_low_lams(params, static_cast<double>(n)))
          .cell(1e3 * lams.simulator().now().sec())
          .cell(1e3 * analysis::d_low_hdlc(params, static_cast<double>(n)))
          .cell(1e3 * hdlc.simulator().now().sec());
    }
  }
}

}  // namespace

int main() {
  run();
  return 0;
}
