/// E15 (extension) — hybrid ARQ: how much FEC should sit under the DLC?
///
/// Section 1 reviews Type-I hybrid ARQ (FEC under an ARQ protocol) and
/// Section 2.1 concludes that on a laser link "some form of FEC technique
/// [must] be an integral component" yet "it is unlikely that a simple CODEC
/// will correct all burst errors", so LAMS-DLC supplies the ARQ on top.
/// This harness quantifies the split on a raw channel: sweep the code
/// strength t of an RS(255, 255−2t) I-frame codec, derive the residual
/// frame error probability, and run LAMS-DLC over it.  Too little code and
/// retransmissions dominate; too much and the code-rate overhead does —
/// the optimum is interior, which is the design argument for combining a
/// moderate codec with a cheap ARQ.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E15 (extension)",
         "Type-I hybrid ARQ: RS(255,255-2t) strength sweep under LAMS-DLC",
         "goodput = code rate x (1 - retransmission share): weak codes pay "
         "in retransmissions, strong codes in rate overhead; the optimum "
         "is in between");

  for (const double raw_ber : {1e-4, 3e-4}) {
    std::printf("\n-- raw channel BER = %g --\n", raw_ber);
    Table t{{"t", "code-rate", "P_F(residual)", "tx/frame", "goodput"}};
    for (const std::uint32_t tcorr : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
      auto cfg = default_config(sim::Protocol::kLams);

      double p_f;
      double rate;
      if (tcorr == 0) {
        // No code: the raw bits hit the frame directly.
        p_f = phy::frame_error_probability(raw_ber, 8 * (cfg.frame_bytes + 11));
        rate = 1.0;
      } else {
        const phy::FecCodec codec{
            phy::FecParams{255, 255 - 2 * tcorr, tcorr, 8, true}};
        p_f = codec.frame_error_prob(raw_ber, 8 * (cfg.frame_bytes + 11));
        rate = codec.rate();
        cfg.iframe_fec = codec.params();  // wire expansion
      }
      cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
      cfg.forward_error.p_frame = std::min(p_f, 0.999);
      // Control frames keep a strong fixed code in all rows (assumption 4).
      cfg.forward_error.p_control = 1e-6;
      cfg.reverse_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
      cfg.reverse_error.p_frame = 1e-6;
      cfg.reverse_error.p_control = 1e-6;

      if (cfg.forward_error.p_frame > 0.95) {
        // The channel is unusable without coding; report and skip the run.
        t.cell(static_cast<std::uint64_t>(tcorr))
            .cell(rate)
            .cell(cfg.forward_error.p_frame)
            .cell(std::string("-"))
            .cell(0.0);
        continue;
      }

      const auto r = run_batch(cfg, 4000);
      // Goodput: payload bits delivered per raw channel bit (the report's
      // `efficiency` normalizes by the *coded* frame time, which would hide
      // the code-rate overhead we are sweeping).
      const double goodput =
          static_cast<double>(r.unique_delivered) * cfg.frame_bytes * 8.0 /
          (r.elapsed_s * cfg.data_rate_bps);
      t.cell(static_cast<std::uint64_t>(tcorr))
          .cell(rate)
          .cell(cfg.forward_error.p_frame)
          .cell(r.tx_per_frame)
          .cell(goodput);
    }
  }
  std::printf(
      "\nThe goodput column peaks at a moderate t: exactly the paper's\n"
      "position that the codec should be kept simple and the residual\n"
      "errors (and all burst leakage) left to the NAK-based ARQ above it.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
