/// Kernel microbenchmarks (google-benchmark): raw speed of the simulation
/// substrate.  These are engineering benchmarks, not paper experiments —
/// they bound how large a constellation-scale study the library supports.
///
/// `bench_kernel --json [ops]` bypasses google-benchmark and times the three
/// canonical kernel workloads from bench/kernel_workloads.hpp, printing one
/// machine-readable JSON object (ops/sec per workload).  That mode is what
/// scripts/bench_baseline.sh records into BENCH_kernel.json and what
/// scripts/ci.sh runs as the non-gating perf smoke; because the workloads
/// live in a standalone header, the same code can be compiled against any
/// kernel revision for honest before/after comparisons.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernel_workloads.hpp"
#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/phy/crc.hpp"
#include "lamsdlc/phy/error_model.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::literals;

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(Time::microseconds(i), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventDispatch)->Arg(1000)->Arg(100000);

void BM_TimerCancelChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      const EventId id = sim.schedule_at(Time::milliseconds(1), [] {});
      sim.cancel(id);
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TimerCancelChurn);

void BM_Crc16(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::crc16_ccitt(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc16)->Arg(64)->Arg(1024)->Arg(8192);

void BM_CodecRoundTrip(benchmark::State& state) {
  frame::Frame f;
  f.body = frame::IFrame{42, 7, static_cast<std::uint32_t>(state.range(0)), {}};
  for (auto _ : state) {
    const auto bytes = frame::encode(f);
    auto out = frame::decode(bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame::encoded_size(f)));
}
BENCHMARK(BM_CodecRoundTrip)->Arg(64)->Arg(1024);

void BM_GilbertElliottSampling(benchmark::State& state) {
  phy::GilbertElliottModel m{{1e-7, 1e-2, 50_ms, 5_ms},
                             RandomStream{1, "bench"}};
  std::int64_t i = 0;
  for (auto _ : state) {
    const Time start = Time::microseconds(i * 30);
    benchmark::DoNotOptimize(m.corrupts(start, start + 27_us, 8192));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GilbertElliottSampling);

/// End-to-end simulation speed: how many protocol frames per wall second.
void BM_LamsScenarioFrames(benchmark::State& state) {
  for (auto _ : state) {
    sim::ScenarioConfig cfg;
    cfg.protocol = sim::Protocol::kLams;
    cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.forward_error.p_frame = 0.1;
    sim::Scenario s{cfg};
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           static_cast<std::uint64_t>(state.range(0)), 1024);
    s.run_to_completion(Time::seconds_int(600));
    benchmark::DoNotOptimize(s.report().unique_delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LamsScenarioFrames)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SrHdlcScenarioFrames(benchmark::State& state) {
  for (auto _ : state) {
    sim::ScenarioConfig cfg;
    cfg.protocol = sim::Protocol::kSrHdlc;
    cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    cfg.forward_error.p_frame = 0.1;
    sim::Scenario s{cfg};
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           static_cast<std::uint64_t>(state.range(0)), 1024);
    s.run_to_completion(Time::seconds_int(600));
    benchmark::DoNotOptimize(s.report().unique_delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SrHdlcScenarioFrames)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Best-of-three ops/sec, like any careful manual timing run.
double best_rate(bench::WorkloadResult (*wl)(std::uint64_t),
                 std::uint64_t ops) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    best = std::max(best, wl(ops).ops_per_sec());
  }
  return best;
}

int run_json_mode(std::uint64_t ops) {
  const double schedule_fire = best_rate(bench::wl_schedule_fire, ops);
  const double cancel_heavy = best_rate(bench::wl_cancel_heavy, ops);
  const double timer_rearm = best_rate(bench::wl_timer_rearm, ops);
  std::printf("{\n");
  std::printf("  \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
  std::printf("  \"schedule_fire_ops_per_sec\": %.0f,\n", schedule_fire);
  std::printf("  \"cancel_heavy_ops_per_sec\": %.0f,\n", cancel_heavy);
  std::printf("  \"timer_rearm_ops_per_sec\": %.0f\n", timer_rearm);
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--json") == 0) {
    std::uint64_t ops = 2'000'000;
    if (argc >= 3) ops = std::strtoull(argv[2], nullptr, 10);
    return run_json_mode(ops);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
