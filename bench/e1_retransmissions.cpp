/// E1 — Retransmission advantage of NAK-only ARQ.
///
/// Regenerates the paper's s̄ comparison (Section 4):
///   s̄_LAMS = 1/(1-P_F)     vs     s̄_HDLC = 1/(1-(P_F+P_C-P_F·P_C))
/// as both a closed form and a measured mean-transmissions-per-frame from
/// the simulator, across an error-rate sweep.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E1", "mean transmissions per delivered I-frame (s-bar)",
         "P_R^LAMS = P_F while P_R^HDLC = P_F + P_C - P_F*P_C: the "
         "NAK-only scheme always retransmits less");

  Table t{{"P_F", "P_C", "lams:analysis", "lams:sim", "hdlc:analysis",
           "hdlc:sim"}};
  for (const double p_f : {1e-3, 0.01, 0.05, 0.1, 0.2, 0.3}) {
    const double p_c = p_f / 2.0;

    auto lams_cfg = default_config(sim::Protocol::kLams);
    set_fixed_errors(lams_cfg, p_f, p_c);
    const auto lams = run_batch(lams_cfg, 4000);

    auto hdlc_cfg = default_config(sim::Protocol::kSrHdlc);
    set_fixed_errors(hdlc_cfg, p_f, p_c);
    const auto hdlc = run_batch(hdlc_cfg, 4000);

    analysis::Params p;
    p.p_f = p_f;
    p.p_c = p_c;
    t.cell(p_f)
        .cell(p_c)
        .cell(analysis::s_bar_lams(p))
        .cell(lams.tx_per_frame)
        .cell(analysis::s_bar_hdlc(p))
        .cell(hdlc.tx_per_frame);
  }
  std::printf(
      "\nNote: hdlc:sim exceeds the closed form at high P_C because a lost\n"
      "response retransmits the *whole* unacknowledged residue of a window\n"
      "(timeout recovery), which the per-frame geometric model charges as a\n"
      "single period.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
