/// E5 — The headline result: high-traffic throughput efficiency.
///
/// Regenerates the paper's final comparison:
///   η_LAMS = N / D_high^LAMS(N)      with the transparent buffer B_LAMS
///   η_HDLC = N / D_high^HDLC(N)      with W = B_LAMS, B_HDLC = 2·B_LAMS
/// "As the channel traffic increases, the throughput efficiency of LAMS-DLC
/// will be much better than that of SR-HDLC."

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E5", "high-traffic throughput efficiency (eta * t_f)",
         "LAMS-DLC's efficiency rises with N (fixed costs amortize) and "
         "beats SR-HDLC everywhere; the gap widens with P_F");

  const std::vector<std::uint64_t> ns = {1000, 5000, 20000, 50000};
  for (const double p_f : {0.01, 0.1}) {
    const double p_c = p_f / 10.0;
    std::printf("\n-- P_F = %.2f, P_C = %.3f, W = B_LAMS --\n", p_f, p_c);

    // Build every (protocol, N) point up front, run them all in parallel,
    // then print: the sweep returns reports in job order, so the table is
    // the same as the old serial loop.
    std::vector<BatchJob> jobs;
    std::vector<analysis::Params> point_params;
    for (const std::uint64_t n : ns) {
      auto lams_cfg = default_config(sim::Protocol::kLams);
      set_fixed_errors(lams_cfg, p_f, p_c);
      sim::Scenario probe{lams_cfg};
      auto params = probe.analysis_params();
      params.window = std::max(
          2u, static_cast<std::uint32_t>(analysis::b_lams(params)));

      auto hdlc_cfg = default_config(sim::Protocol::kSrHdlc);
      set_fixed_errors(hdlc_cfg, p_f, p_c);
      hdlc_cfg.hdlc.window = params.window;
      hdlc_cfg.hdlc.modulus = 2 * params.window;

      jobs.push_back({std::move(lams_cfg), n});
      jobs.push_back({std::move(hdlc_cfg), n});
      point_params.push_back(params);
    }
    const auto reports = run_batch_sweep(jobs);

    Table t{{"N", "lams:analysis", "lams:sim", "hdlc:analysis", "hdlc:sim",
             "ratio:sim"}};
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const std::uint64_t n = ns[i];
      const analysis::Params& params = point_params[i];
      const auto& lams = reports[2 * i];
      const auto& hdlc = reports[2 * i + 1];
      const double nn = static_cast<double>(n);
      t.cell(n)
          .cell(analysis::efficiency_lams(params, nn))
          .cell(lams.efficiency)
          .cell(analysis::efficiency_hdlc(params, nn))
          .cell(hdlc.efficiency)
          .cell(hdlc.efficiency > 0 ? lams.efficiency / hdlc.efficiency : 0.0);
    }
  }
}

}  // namespace

int main() {
  run();
  return 0;
}
