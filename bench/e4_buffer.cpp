/// E4 — Transparent buffer size: B_LAMS bounded, B_HDLC unbounded.
///
/// Regenerates the Section 4 buffer analysis as a time series: under
/// sustained arrivals, LAMS-DLC's sending buffer stabilizes near
///   B_LAMS = (1/t_f)·s̄·(R + (n̄_cp − ½)·I_cp) (+ small terms)
/// while SR-HDLC's sending buffer grows without bound ("there is no
/// transparent sending buffer size in SR-HDLC"), and its *receiving* buffer
/// must hold up to a full window.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E4", "sending-buffer occupancy under sustained load [frames]",
         "B_LAMS is finite (transparent); B_HDLC = infinity: the SR-HDLC "
         "backlog grows linearly for as long as the load lasts");

  const double p_f = 0.1;

  auto lams_cfg = default_config(sim::Protocol::kLams);
  set_fixed_errors(lams_cfg, p_f, 0.01);
  sim::Scenario lams{lams_cfg};

  auto hdlc_cfg = default_config(sim::Protocol::kSrHdlc);
  set_fixed_errors(hdlc_cfg, p_f, 0.01);
  sim::Scenario hdlc{hdlc_cfg};

  // Arrivals at the sustainable service rate (1-P_F)/t_f for both.
  const Time t_f = lams.frame_tx_time();
  const Time interarrival = t_f * (1.0 / (1.0 - p_f));
  workload::RateSource lams_src{
      lams.simulator(), lams.sender(), lams.tracker(), lams.ids(),
      {.interarrival = interarrival, .count = 0,
       .bytes = lams_cfg.frame_bytes, .start = Time{},
       .respect_backpressure = false}};
  workload::RateSource hdlc_src{
      hdlc.simulator(), hdlc.sender(), hdlc.tracker(), hdlc.ids(),
      {.interarrival = interarrival, .count = 0,
       .bytes = hdlc_cfg.frame_bytes, .start = Time{},
       .respect_backpressure = false}};
  lams_src.start();
  hdlc_src.start();

  Table t{{"time[ms]", "lams:send", "hdlc:send", "lams:recv", "hdlc:recv"}};
  for (int ms = 100; ms <= 2000; ms += 100) {
    lams.simulator().run_until(Time::milliseconds(ms));
    hdlc.simulator().run_until(Time::milliseconds(ms));
    t.cell(static_cast<std::uint64_t>(ms))
        .cell(static_cast<double>(lams.sender().sending_buffer_depth()))
        .cell(static_cast<double>(hdlc.sender().sending_buffer_depth()))
        .cell(lams.stats().recv_buffer.current())
        .cell(hdlc.stats().recv_buffer.current());
  }

  const double b = analysis::b_lams(lams.analysis_params());
  std::printf("\nAnalysis: B_LAMS = %.1f frames (the lams:send column should"
              " hover there);\nSR-HDLC's column keeps climbing — the paper's"
              " B_HDLC = infinity.\n", b);
}

}  // namespace

int main() {
  run();
  return 0;
}
