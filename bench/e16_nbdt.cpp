/// E16 (extension) — the related-work ladder: GBN, SR, NBDT, LAMS-DLC.
///
/// The paper's introduction positions LAMS-DLC against the whole lineage:
/// GBN discards in-transit frames, SR stalls per window, NBDT (absolute
/// numbering + completely selective status) fixes the throughput but pays
/// with "huge memory" and positive-acknowledgement semantics, and LAMS-DLC
/// keeps NBDT's continuous throughput while bounding every resource.  This
/// harness runs all four on the same link and prints the ledger: goodput,
/// retransmissions, sender holding time, and both buffers.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E16 (extension)", "four-protocol ledger on one link (5000 frames)",
         "NBDT matches LAMS-DLC's throughput (both are continuous) but its "
         "in-sequence receiver buffer scales with loss x bandwidth-delay "
         "and its numbering is unbounded; GBN and SR trail on throughput");

  for (const double p_f : {0.02, 0.1, 0.2}) {
    std::printf("\n-- P_F = %.2f, P_C = %.3f --\n", p_f, p_f / 10.0);
    Table t{{"protocol", "eff", "tx/frame", "hold[ms]", "sendbuf", "recvbuf:pk",
             "ctl/frame"}, 12};
    struct RowSpec {
      sim::Protocol proto;
      bool multiphase;
      const char* name;
    };
    const RowSpec rows[] = {
        {sim::Protocol::kGbnHdlc, false, "GBN-HDLC"},
        {sim::Protocol::kSrHdlc, false, "SR-HDLC"},
        {sim::Protocol::kNbdt, true, "NBDT-multi"},
        {sim::Protocol::kNbdt, false, "NBDT-cont"},
        {sim::Protocol::kLams, false, "LAMS-DLC"},
    };
    for (const RowSpec& row : rows) {
      auto cfg = default_config(row.proto);
      cfg.nbdt.multiphase = row.multiphase;
      set_fixed_errors(cfg, p_f, p_f / 10.0);
      const auto r = run_batch(cfg, 5000);
      const char* name = row.name;
      t.cell(std::string(name))
          .cell(r.efficiency)
          .cell(r.tx_per_frame)
          .cell(1e3 * r.mean_holding_s)
          .cell(r.mean_send_buffer)
          .cell(r.peak_recv_buffer)
          .cell(static_cast<double>(r.control_tx) /
                static_cast<double>(r.unique_delivered));
    }
  }
  std::printf(
      "\nThe recvbuf:pk column is the paper's NBDT criticism in one number:\n"
      "in-sequence delivery parks frames behind every hole, and the park\n"
      "grows with P_F, while LAMS-DLC's receiver forwards immediately.  Add\n"
      "the unbounded absolute numbering (vs LAMS's resolving-period bound)\n"
      "and the case for relaxing the in-sequence constraint is complete.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
