/// \file bench_network.cpp
/// \brief Constellation-scale network runs: serial throughput and the price
/// (or payoff) of intra-run PDES.
///
/// Three workloads over the default 112-satellite / 8-plane Walker delta
/// (224 ISLs, every packet store-and-forwarded over multiple LAMS hops):
///
///   serial_throughput  — partitions=1 (the serial reference: same code
///                        path, no threads), a million-packet wave load.
///                        Headline rates: packets and hop-forwards per
///                        wall-second through the full LAMS stack.
///   pdes_partitions    — the identical workload at several partition
///                        counts.  Reports wall-clock ratio vs serial and
///                        checks the delivery report matches the serial run
///                        exactly (the cheap half of the identity contract;
///                        the byte-level half lives in
///                        tests/integration/test_pdes_identity.cpp).  On a
///                        single-core host the ratio prices pure PDES
///                        coordination overhead; on a multi-core host it
///                        becomes the speedup.
///   contact_churn      — a 3000 s horizon at 5000 km acquisition range,
///                        where cross-plane ISLs drop and re-acquire
///                        mid-run (contacts > links) and traffic waves ride
///                        through the transitions: LAMS failover, residue
///                        reroute and parking all on the hot path.
///
/// `bench_network --json [scale]` prints one JSON object (the shape stored
/// in BENCH_network.json); with no flags it prints a table.  `scale`
/// multiplies the packet load (default 1.0; use ~0.02 for a smoke run).
/// Absolute rates are host-dependent; the reproduction targets are the
/// *shape*: parallel reports identical to serial at every partition count,
/// churn runs completing despite link loss, and a PDES wall-clock ratio
/// near 1 when coordination is amortized by real traffic.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lamsdlc/sim/run_network.hpp"

namespace {

using namespace lamsdlc;

struct Measured {
  sim::NetworkRunResult r;
  double packets_per_sec = 0;
  double hops_per_sec = 0;
};

Measured run(const sim::NetworkRunConfig& cfg) {
  Measured m;
  m.r = sim::run_network(cfg);
  if (m.r.elapsed_s > 0) {
    const auto& rep = m.r.report;
    m.packets_per_sec = static_cast<double>(rep.packets_sent) / m.r.elapsed_s;
    // Each forward is one full LAMS link traversal (frame, checkpoints,
    // acks); delivered packets count their final hop too.
    m.hops_per_sec = static_cast<double>(rep.packets_forwarded +
                                         rep.packets_delivered) /
                     m.r.elapsed_s;
  }
  return m;
}

sim::NetworkRunConfig throughput_config(double scale) {
  sim::NetworkRunConfig cfg;  // 112 sats / 8 planes by default
  cfg.waves = 20;
  cfg.packets_per_wave =
      static_cast<std::uint32_t>(50000 * scale < 1 ? 1 : 50000 * scale);
  cfg.wave_interval = Time::seconds_int(2);
  cfg.horizon = Time::seconds_int(300);
  cfg.seed = 1;
  return cfg;
}

sim::NetworkRunConfig churn_config(double scale) {
  sim::NetworkRunConfig cfg;
  cfg.max_range_m = 5.0e6;  // tighter acquisition range => windows churn
  cfg.waves = 25;
  cfg.packets_per_wave =
      static_cast<std::uint32_t>(400 * scale < 1 ? 1 : 400 * scale);
  cfg.wave_interval = Time::seconds_int(100);  // traffic rides the churn
  cfg.horizon = Time::seconds_int(3000);       // ~half an orbital period
  cfg.seed = 1;
  return cfg;
}

bool report_equal(const net::NetworkReport& a, const net::NetworkReport& b) {
  return a.packets_sent == b.packets_sent &&
         a.packets_delivered == b.packets_delivered &&
         a.duplicate_deliveries == b.duplicate_deliveries &&
         a.packets_forwarded == b.packets_forwarded &&
         a.packets_parked == b.packets_parked &&
         a.messages_completed == b.messages_completed &&
         a.mean_delay_s == b.mean_delay_s && a.max_delay_s == b.max_delay_s;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0) scale = 1.0;
    }
  }

  const std::vector<std::size_t> kPartitions{2, 4, 7};

  // --- serial reference -----------------------------------------------
  sim::NetworkRunConfig tcfg = throughput_config(scale);
  tcfg.partitions = 1;
  const Measured serial = run(tcfg);

  // --- same workload, partitioned -------------------------------------
  struct PartRun {
    std::size_t partitions;
    Measured m;
    bool report_matches;
  };
  std::vector<PartRun> parts;
  for (const std::size_t p : kPartitions) {
    tcfg.partitions = p;
    PartRun pr{p, run(tcfg), false};
    pr.report_matches = report_equal(pr.m.r.report, serial.r.report);
    parts.push_back(pr);
  }

  // --- contact churn with failover -------------------------------------
  sim::NetworkRunConfig ccfg = churn_config(scale);
  ccfg.partitions = 1;
  const Measured churn_serial = run(ccfg);
  ccfg.partitions = 7;
  const Measured churn_par = run(ccfg);
  const bool churn_matches =
      report_equal(churn_par.r.report, churn_serial.r.report);

  const auto& sr = serial.r.report;
  const auto& cr = churn_serial.r.report;
  if (json) {
    std::printf("{\n");
    std::printf("  \"scale\": %g,\n", scale);
    std::printf("  \"serial_throughput\": {\n");
    std::printf("    \"nodes\": %zu, \"links\": %zu,\n", serial.r.nodes,
                serial.r.links);
    std::printf("    \"packets_sent\": %llu,\n",
                static_cast<unsigned long long>(sr.packets_sent));
    std::printf("    \"packets_delivered\": %llu,\n",
                static_cast<unsigned long long>(sr.packets_delivered));
    std::printf("    \"completed\": %s,\n",
                serial.r.completed ? "true" : "false");
    std::printf("    \"wall_seconds\": %.3f,\n", serial.r.elapsed_s);
    std::printf("    \"packets_per_sec\": %.0f,\n", serial.packets_per_sec);
    std::printf("    \"hop_forwards_per_sec\": %.0f\n", serial.hops_per_sec);
    std::printf("  },\n");
    std::printf("  \"pdes_partitions\": [\n");
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const auto& pr = parts[i];
      std::printf("    {\"partitions\": %zu, \"wall_seconds\": %.3f, "
                  "\"wall_vs_serial\": %.2f, \"report_identical\": %s}%s\n",
                  pr.partitions, pr.m.r.elapsed_s,
                  serial.r.elapsed_s > 0
                      ? pr.m.r.elapsed_s / serial.r.elapsed_s
                      : 0.0,
                  pr.report_matches ? "true" : "false",
                  i + 1 < parts.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"contact_churn\": {\n");
    std::printf("    \"links\": %zu, \"contact_windows\": %zu,\n",
                churn_serial.r.links, churn_serial.r.contacts);
    std::printf("    \"packets_sent\": %llu,\n",
                static_cast<unsigned long long>(cr.packets_sent));
    std::printf("    \"packets_delivered\": %llu,\n",
                static_cast<unsigned long long>(cr.packets_delivered));
    std::printf("    \"completed\": %s,\n",
                churn_serial.r.completed ? "true" : "false");
    std::printf("    \"serial_wall_seconds\": %.3f,\n",
                churn_serial.r.elapsed_s);
    std::printf("    \"pdes7_wall_seconds\": %.3f,\n", churn_par.r.elapsed_s);
    std::printf("    \"pdes7_report_identical\": %s\n",
                churn_matches ? "true" : "false");
    std::printf("  }\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("constellation: %zu nodes, %zu links (Walker 112/8)\n",
              serial.r.nodes, serial.r.links);
  std::printf("\nserial throughput (partitions=1):\n");
  std::printf("  %llu packets sent, %llu delivered, completed=%s\n",
              static_cast<unsigned long long>(sr.packets_sent),
              static_cast<unsigned long long>(sr.packets_delivered),
              serial.r.completed ? "yes" : "NO");
  std::printf("  %.1f s wall  |  %.0f packets/s  |  %.0f hop-forwards/s\n",
              serial.r.elapsed_s, serial.packets_per_sec, serial.hops_per_sec);
  std::printf("\npdes partitions (same workload):\n");
  std::printf("  %-12s %-10s %-14s %s\n", "partitions", "wall (s)",
              "vs serial", "report identical");
  for (const auto& pr : parts) {
    std::printf("  %-12zu %-10.3f %-14.2f %s\n", pr.partitions,
                pr.m.r.elapsed_s,
                serial.r.elapsed_s > 0 ? pr.m.r.elapsed_s / serial.r.elapsed_s
                                       : 0.0,
                pr.report_matches ? "yes" : "NO");
  }
  std::printf("\ncontact churn (range 5000 km, horizon 3000 s):\n");
  std::printf("  %zu links, %zu contact windows (churn: %s)\n",
              churn_serial.r.links, churn_serial.r.contacts,
              churn_serial.r.contacts > churn_serial.r.links ? "yes" : "NO");
  std::printf("  %llu sent, %llu delivered, completed=%s\n",
              static_cast<unsigned long long>(cr.packets_sent),
              static_cast<unsigned long long>(cr.packets_delivered),
              churn_serial.r.completed ? "yes" : "NO");
  std::printf("  serial %.1f s, pdes@7 %.1f s, report identical: %s\n",
              churn_serial.r.elapsed_s, churn_par.r.elapsed_s,
              churn_matches ? "yes" : "NO");
  return 0;
}
