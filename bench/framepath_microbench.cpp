/// Frame-path benchmark: end-to-end frames per wall second, simulated Gbps
/// vs. wall clock, and the per-stage costs underneath (CRC, codec round
/// trip, fast-wire scenario, byte-accurate scenario, multi-hop transit).
///
/// `bench_framepath --json [scale]` bypasses google-benchmark and times the
/// canonical workloads from bench/framepath_workloads.hpp (best of 3),
/// printing one machine-readable JSON object.  `scale` multiplies every
/// workload's frame count (default 1); scripts/bench_baseline.sh records the
/// scale-1 output into BENCH_framepath.json and scripts/ci.sh runs a smaller
/// scale as the non-gating framepath perf smoke.
///
/// The default google-benchmark mode exposes the same workloads for
/// interactive runs (`./bench_framepath --benchmark_filter=...`).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "framepath_workloads.hpp"
#include "lamsdlc/phy/crc.hpp"

namespace {

using namespace lamsdlc;

void BM_Crc16_64K(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::wl_crc16(16));
  }
  state.SetBytesProcessed(state.iterations() * 16 * 65536);
}
BENCHMARK(BM_Crc16_64K);

void BM_Crc32_64K(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::wl_crc32(16));
  }
  state.SetBytesProcessed(state.iterations() * 16 * 65536);
}
BENCHMARK(BM_Crc32_64K);

void BM_CodecRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::wl_codec_roundtrip(static_cast<std::uint32_t>(state.range(0)),
                                  1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CodecRoundTrip)->Arg(256)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_SingleLinkFast(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::wl_singlelink(1024, 20000, false));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SingleLinkFast)->Unit(benchmark::kMillisecond);

void BM_SingleLinkByte(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::wl_singlelink(
        static_cast<std::uint32_t>(state.range(0)), 10000, true));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SingleLinkByte)->Arg(256)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_MultihopTransit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::wl_multihop(5000, 1024));
  }
  state.SetItemsProcessed(state.iterations() * 5000 * 4);
}
BENCHMARK(BM_MultihopTransit)->Unit(benchmark::kMillisecond);

/// Best-of-three over a workload thunk; keeps the best frames/sec run.
template <typename Fn>
bench::FramepathResult best_of3(Fn&& fn) {
  bench::FramepathResult best;
  for (int rep = 0; rep < 3; ++rep) {
    bench::FramepathResult r = fn();
    if (best.wall_s == 0 || r.frames_per_sec() > best.frames_per_sec()) {
      best = r;
    }
  }
  return best;
}

int run_json_mode(std::uint64_t scale) {
  const auto crc16 = best_of3([&] { return bench::wl_crc16(2000 * scale); });
  const auto crc32 = best_of3([&] { return bench::wl_crc32(2000 * scale); });
  const auto codec_small =
      best_of3([&] { return bench::wl_codec_roundtrip(256, 200000 * scale); });
  const auto codec_large =
      best_of3([&] { return bench::wl_codec_roundtrip(8192, 50000 * scale); });
  const auto fast =
      best_of3([&] { return bench::wl_singlelink(1024, 40000 * scale, false); });
  const auto byte_small =
      best_of3([&] { return bench::wl_singlelink(256, 40000 * scale, true); });
  const auto byte_large =
      best_of3([&] { return bench::wl_singlelink(8192, 20000 * scale, true); });
  const auto multihop =
      best_of3([&] { return bench::wl_multihop(10000 * scale, 1024); });

  std::printf("{\n");
  std::printf("  \"scale\": %llu,\n", static_cast<unsigned long long>(scale));
  std::printf("  \"crc_backend\": \"%s\",\n", phy::crc_backend());
  std::printf("  \"crc16_64k_mb_per_sec\": %.0f,\n",
              crc16.wall_gbps() * 1000.0 / 8.0);
  std::printf("  \"crc32_64k_mb_per_sec\": %.0f,\n",
              crc32.wall_gbps() * 1000.0 / 8.0);
  std::printf("  \"codec_roundtrip_256B_frames_per_sec\": %.0f,\n",
              codec_small.frames_per_sec());
  std::printf("  \"codec_roundtrip_8KB_frames_per_sec\": %.0f,\n",
              codec_large.frames_per_sec());
  std::printf("  \"singlelink_fast_1KB_frames_per_sec\": %.0f,\n",
              fast.frames_per_sec());
  std::printf("  \"singlelink_fast_1KB_sim_gbps_per_wall_sec\": %.2f,\n",
              fast.wall_gbps());
  std::printf("  \"singlelink_byte_256B_frames_per_sec\": %.0f,\n",
              byte_small.frames_per_sec());
  std::printf("  \"singlelink_byte_8KB_frames_per_sec\": %.0f,\n",
              byte_large.frames_per_sec());
  std::printf("  \"singlelink_byte_8KB_sim_gbps_per_wall_sec\": %.2f,\n",
              byte_large.wall_gbps());
  std::printf("  \"multihop_4hop_1KB_hopframes_per_sec\": %.0f\n",
              multihop.frames_per_sec());
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--json") == 0) {
    std::uint64_t scale = 1;
    if (argc >= 3) scale = std::strtoull(argv[2], nullptr, 10);
    if (scale == 0) scale = 1;
    return run_json_mode(scale);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
