#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the experiment harnesses (E1..E10).
///
/// Every bench binary regenerates one quantitative result of the paper's
/// Section 4 analysis as a table: the closed-form prediction printed next to
/// the discrete-event measurement.  Absolute values depend on the simulated
/// link parameters; the *shape* (who wins, by what factor, where crossovers
/// fall) is the reproduction target (see EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

#include "lamsdlc/analysis/model.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/sim/sweep.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::bench {

using namespace lamsdlc::literals;

/// The default operating point used across experiments: a 100 Mbps laser
/// link at ~1500 km (5 ms one-way), 1 KiB frames — inside the paper's LAMS
/// envelope while keeping simulated runs fast.
inline sim::ScenarioConfig default_config(sim::Protocol proto) {
  sim::ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.data_rate_bps = 100e6;
  cfg.prop_delay = 5_ms;
  cfg.frame_bytes = 1024;
  cfg.lams.checkpoint_interval = 5_ms;
  cfg.lams.cumulation_depth = 4;
  cfg.lams.t_proc = 10_us;
  cfg.lams.max_rtt = 15_ms;
  cfg.hdlc.window = 64;
  cfg.hdlc.modulus = 256;
  cfg.hdlc.t_proc = 10_us;
  cfg.hdlc.timeout = 50_ms;  // R=10ms + alpha=40ms
  return cfg;
}

inline void set_fixed_errors(sim::ScenarioConfig& cfg, double p_f, double p_c) {
  cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
  cfg.forward_error.p_frame = p_f;
  cfg.forward_error.p_control = p_c;
  cfg.reverse_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
  cfg.reverse_error.p_frame = p_c;
  cfg.reverse_error.p_control = p_c;
}

/// Run a batch of \p n frames to completion and return the report.
inline sim::ScenarioReport run_batch(const sim::ScenarioConfig& cfg,
                                     std::uint64_t n,
                                     Time horizon = Time::seconds_int(600)) {
  sim::Scenario s{cfg};
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(), n,
                         cfg.frame_bytes);
  const bool done = s.run_to_completion(horizon);
  auto r = s.report();
  if (!done) {
    std::fprintf(stderr, "  [warn] run did not complete within horizon\n");
  }
  return r;
}

/// One point of an experiment sweep: a scenario plus its workload size.
struct BatchJob {
  sim::ScenarioConfig cfg;
  std::uint64_t frames = 0;
};

/// Run every job as an independent scenario, spread over the machine, and
/// return the reports in job order — a table printed from them is
/// byte-identical to the serial `run_batch` loop, only faster on multi-core
/// hosts.  Scenarios share nothing, so this is safe for any config.
inline std::vector<sim::ScenarioReport> run_batch_sweep(
    const std::vector<BatchJob>& jobs, Time horizon = Time::seconds_int(600)) {
  sim::ParallelSweep pool;
  return pool.map<sim::ScenarioReport>(jobs.size(), [&](std::size_t i) {
    return run_batch(jobs[i].cfg, jobs[i].frames, horizon);
  });
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : cols_{headers.size()}, width_{width} {
    std::printf("\n");
    for (const auto& h : headers) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols_ * static_cast<std::size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  Table& cell(double v, const char* fmt = "%*.4g") {
    std::printf(fmt, width_, v);
    return next();
  }
  Table& cell(std::uint64_t v) {
    std::printf("%*llu", width_, static_cast<unsigned long long>(v));
    return next();
  }
  Table& cell(const std::string& s) {
    std::printf("%*s", width_, s.c_str());
    return next();
  }

 private:
  Table& next() {
    if (++at_ % cols_ == 0) std::printf("\n");
    return *this;
  }
  std::size_t cols_;
  int width_;
  std::size_t at_{0};
};

inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace lamsdlc::bench
