/// E8 — Reliability guarantees under adversarial control loss and failures.
///
/// Regenerates the Section 3.2/3.3 claims:
///  - zero I-frame loss at any control-frame loss rate (cumulative NAK +
///    enforced recovery);
///  - the inconsistency gap / per-attempt holding time stays within the
///    resolving period R + ½·W_cp + C_depth·W_cp;
///  - a dead link is detected within the checkpoint timeout plus the
///    failure timer.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void control_loss_grid() {
  std::printf("\n[A] adversarial control-loss grid (P_F = 0.1, 2000 frames)\n");
  Table t{{"P_C", "state", "lost", "dups", "delivered", "reqnaks",
           "maxhold[ms]", "bound[ms]"}, 12};
  for (const double p_c : {0.0, 0.1, 0.3, 0.5, 0.7}) {
    auto cfg = default_config(sim::Protocol::kLams);
    set_fixed_errors(cfg, 0.1, p_c);
    sim::Scenario s{cfg};
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           2000, cfg.frame_bytes);
    s.run_to_completion(600_s);
    const auto r = s.report();
    const bool failed =
        s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;
    // Per-attempt bound: holding of a frame that needed k attempts is at
    // most k resolving periods; report max measured vs single-attempt bound.
    const double bound =
        analysis::resolving_period(s.analysis_params());
    t.cell(p_c)
        .cell(std::string(failed ? "LINK-FAILED" : "ok"))
        .cell(failed ? std::uint64_t{0} : r.lost)
        .cell(r.duplicates)
        .cell(r.unique_delivered)
        .cell(s.lams_sender()->request_naks_sent())
        .cell(1e3 * s.stats().holding_time_s.max())
        .cell(1e3 * bound);
  }
  std::printf(
      "maxhold may exceed the single-attempt bound by one resolving period\n"
      "per extra attempt.  Zero lost / zero dups is the invariant under\n"
      "test; beyond P_C ~ 0.3 the P_C^C_depth << 1 assumption (Section 3.2)\n"
      "no longer holds, enforced recovery itself cannot complete inside the\n"
      "failure budget, and the sender correctly declares the link failed —\n"
      "undelivered frames stay buffered for rerouting rather than lost.\n");
}

void failure_detection() {
  std::printf("\n[B] link-failure detection latency\n");
  Table t{{"kill_at[ms]", "detected[ms]", "latency[ms]", "budget[ms]"}};
  for (const std::int64_t kill_ms : {10, 25, 50, 100}) {
    auto cfg = default_config(sim::Protocol::kLams);
    sim::Scenario s{cfg};
    Time failed_at{};
    s.lams_sender()->set_failure_callback(
        [&] { failed_at = s.simulator().now(); });
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           200, cfg.frame_bytes);
    s.simulator().schedule_at(Time::milliseconds(kill_ms),
                              [&] { s.link().set_up(false); });
    s.simulator().run_until(2_s);
    const double budget_ms =
        (cfg.lams.checkpoint_timeout() + cfg.lams.failure_timeout() +
         cfg.lams.checkpoint_interval * 2)
            .ms();
    t.cell(static_cast<std::uint64_t>(kill_ms))
        .cell(failed_at.ms())
        .cell(failed_at.ms() - static_cast<double>(kill_ms))
        .cell(budget_ms);
  }
}

void numbering_size() {
  std::printf("\n[C] bounded numbering size (Section 3.3)\n");
  Table t{{"I_cp[ms]", "C_depth", "analysis[frames]", "modulus-needed"}};
  for (const std::int64_t icp : {2, 5, 10}) {
    for (const std::uint32_t depth : {2u, 4u, 8u}) {
      auto cfg = default_config(sim::Protocol::kLams);
      cfg.lams.checkpoint_interval = Time::milliseconds(icp);
      cfg.lams.cumulation_depth = depth;
      sim::Scenario probe{cfg};
      const auto params = probe.analysis_params();
      const double need = analysis::numbering_size(params);
      t.cell(static_cast<std::uint64_t>(icp))
          .cell(static_cast<std::uint64_t>(depth))
          .cell(need)
          .cell(static_cast<double>(2.0 * need));  // unwrap needs 2x margin
    }
  }
  std::printf("HDLC's H_frame is unbounded (same number reused across\n"
              "retransmissions), so no finite numbering size suffices for\n"
              "continuous operation — the contrast the paper draws.\n");
}

}  // namespace

int main() {
  lamsdlc::bench::banner(
      "E8", "reliability: zero loss, bounded gap, failure detection",
      "cumulative NAK + enforced recovery give zero packet loss; the "
      "inconsistency gap and numbering size are bounded by the resolving "
      "period");
  control_loss_grid();
  failure_detection();
  numbering_size();
  return 0;
}
