/// E14 — the piggybacking argument of Section 2.
///
/// "Using piggyback acknowledgments, P_C = P_F, therefore
///  P_R = 2·P_F − P_F²."
///
/// LAMS-DLC forbids piggybacking so its control commands can ride a
/// stronger FEC (link-model assumption 4), making P_C ≪ P_F.  This harness
/// quantifies the choice: SR-HDLC with piggyback-class acknowledgements
/// (control frames sharing the I-frame error probability) versus SR-HDLC
/// with a dedicated low-P_C control path versus LAMS-DLC — closed forms
/// next to simulation.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E14", "acknowledgement transport: piggyback-class vs dedicated FEC",
         "piggybacked acks inherit the I-frame error rate (P_C = P_F), "
         "inflating P_R to 2 P_F - P_F^2; a dedicated stronger-FEC control "
         "path keeps P_C << P_F, which is why LAMS-DLC forbids piggybacking");

  Table t{{"P_F", "an:2pf-pf2", "hdlc:pig", "an:pf+pc", "hdlc:ded",
           "lams:ded"}, 12};
  for (const double p_f : {0.01, 0.05, 0.1, 0.2}) {
    const double p_c_dedicated = p_f / 20.0;  // the stronger control code

    // SR-HDLC, piggyback-class acks: responses fail like I-frames.
    auto pig = default_config(sim::Protocol::kSrHdlc);
    set_fixed_errors(pig, p_f, p_f);
    pig.reverse_error.p_frame = p_f;
    pig.reverse_error.p_control = p_f;
    const auto r_pig = run_batch(pig, 4000);

    // SR-HDLC, dedicated control path.
    auto ded = default_config(sim::Protocol::kSrHdlc);
    set_fixed_errors(ded, p_f, p_c_dedicated);
    const auto r_ded = run_batch(ded, 4000);

    // LAMS-DLC on the same dedicated control path.
    auto lams = default_config(sim::Protocol::kLams);
    set_fixed_errors(lams, p_f, p_c_dedicated);
    const auto r_lams = run_batch(lams, 4000);

    analysis::Params a_pig;
    a_pig.p_f = p_f;
    a_pig.p_c = p_f;
    analysis::Params a_ded = a_pig;
    a_ded.p_c = p_c_dedicated;

    t.cell(p_f)
        .cell(analysis::s_bar_hdlc(a_pig))  // 1/(1-(2pf-pf^2))
        .cell(r_pig.tx_per_frame)
        .cell(analysis::s_bar_hdlc(a_ded))
        .cell(r_ded.tx_per_frame)
        .cell(r_lams.tx_per_frame);
  }
  std::printf(
      "\nColumns: the closed-form s-bar for P_C = P_F (piggyback) and for a\n"
      "dedicated P_C = P_F/20 path, with the measured transmissions per\n"
      "frame beside each.  The piggyback penalty compounds in simulation\n"
      "(every lost response retransmits a window residue); LAMS-DLC's\n"
      "NAK-only column stays at 1/(1-P_F), the floor.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
