/// E17 — feedback-error asymmetry: how fragile is LAMS-DLC's soft spot?
///
/// Every reliability mechanism in LAMS-DLC rides the reverse channel:
/// checkpoints carry the implicit acks, NAK lists, and Stop-Go bits, and an
/// Enforced-NAK is the only way out of a missed-checkpoint hole.  The paper
/// assumes a strongly-coded control path (P_C ≪ P_F, link-model assumption
/// 4) and never quantifies what happens when the *feedback* direction is
/// the lossy one — the regime Khosravirad & Viswanathan (arXiv:1710.00649)
/// study for cellular ACK channels, and ROADMAP item 5(b) here.
///
/// This harness pins the forward channel at a benign P_F and sweeps the
/// reverse error probability P_rev across two decades, reporting holding
/// time (the bound that checkpoint loss stretches first), retransmissions
/// per frame (NAK loss converts into enforced-recovery residue), and
/// throughput, with the closed-form H_frame(P_C) beside the measurement.
/// The final rows flip the asymmetry (lossy forward, clean reverse) so the
/// two directions' damage can be compared at equal raw error rates.

#include "bench_common.hpp"

#include "lamsdlc/analysis/model.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E17", "feedback-error asymmetry: reverse-channel BER sensitivity",
         "checkpoints and Enforced-NAKs are the protocol's soft spot; "
         "reverse loss stretches holding time toward the enforced-recovery "
         "budget long before it dents delivery, while the same error rate "
         "on the forward channel only costs ~1/(1-P_F) retransmissions");

  constexpr double kForward = 0.02;
  constexpr std::uint64_t kFrames = 3000;

  Table t{{"direction", "P_err", "an:H_frame_ms", "sim:hold_ms", "retx/frame",
           "eff"}, 13};
  for (const double p_rev : {0.0, 0.02, 0.1, 0.2, 0.4}) {
    auto cfg = default_config(sim::Protocol::kLams);
    set_fixed_errors(cfg, kForward, kForward / 20.0);
    cfg.reverse_error.p_frame = p_rev;
    cfg.reverse_error.p_control = p_rev;
    const auto r = run_batch(cfg, kFrames);

    analysis::Params a;
    a.p_f = kForward;
    a.p_c = p_rev;
    a.rtt = 2 * cfg.prop_delay.sec();
    a.i_cp = cfg.lams.checkpoint_interval.sec();
    a.t_proc = cfg.lams.t_proc.sec();

    t.cell(std::string("reverse"))
        .cell(p_rev)
        .cell(analysis::h_frame_lams(a) * 1e3)
        .cell(r.mean_holding_s * 1e3)
        .cell(r.iframe_tx > 0
                  ? static_cast<double>(r.iframe_retx) / r.unique_delivered
                  : 0.0)
        .cell(r.efficiency);
  }

  // The mirror image: the same error rates applied to the forward channel
  // with a clean reverse path.
  for (const double p_fwd : {0.1, 0.2, 0.4}) {
    auto cfg = default_config(sim::Protocol::kLams);
    set_fixed_errors(cfg, p_fwd, p_fwd / 20.0);
    const auto r = run_batch(cfg, kFrames);

    analysis::Params a;
    a.p_f = p_fwd;
    a.p_c = p_fwd / 20.0;
    a.rtt = 2 * cfg.prop_delay.sec();
    a.i_cp = cfg.lams.checkpoint_interval.sec();
    a.t_proc = cfg.lams.t_proc.sec();

    t.cell(std::string("forward"))
        .cell(p_fwd)
        .cell(analysis::h_frame_lams(a) * 1e3)
        .cell(r.mean_holding_s * 1e3)
        .cell(r.iframe_tx > 0
                  ? static_cast<double>(r.iframe_retx) / r.unique_delivered
                  : 0.0)
        .cell(r.efficiency);
  }

  std::printf(
      "\nReverse loss leaves retx/frame near the 1/(1-P_F) floor but drags\n"
      "holding time toward the checkpoint-timeout + enforced-recovery\n"
      "budget: frames are *delivered* on time yet sit unreleased in the\n"
      "transparent buffer until a checkpoint survives.  Forward loss at the\n"
      "same raw rate costs retransmissions instead, and holding follows the\n"
      "closed form.  This is the quantified version of the paper's\n"
      "assumption 4: invest the FEC budget in the control path.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
