/// \file bench_runtime.cpp
/// \brief Live runtime vs simulator: the cost of being real.
///
/// Pushes the same byte stream through the same `SessionMux` protocol stack
/// three ways and reports wall-clock throughput plus wire efficiency:
///
///   sim_loopback   — SimClock + LoopbackTransport.  No wall time passes
///                    between events; the measured rate is pure protocol +
///                    kernel processing speed (an upper bound).
///   live_loopback  — WallClock + two real kernel UDP sockets on loopback
///                    (the daemon's data plane).  Not lossless in practice:
///                    at full rate the kernel's socket buffer overflows and
///                    drops datagrams, which the ARQ recovers — the nonzero
///                    retx count here is real-world loss, not a bug.
///   live_impaired  — the same, plus 5% injected datagram loss; the gap to
///                    live_loopback prices the *additional* checkpoint-
///                    driven recovery in wall time and goodput.
///
/// Goodput = payload bytes delivered / total I-frame payload bytes sent
/// (retransmissions included) — wire efficiency, not wall speed.
///
/// `bench_runtime --json [bytes]` prints one JSON object (the shape stored
/// in BENCH_runtime.json); with no flags it prints a table.  Absolute
/// numbers are host-dependent; the reproduction target is the *shape*:
/// sim >> live, and impairment costing goodput roughly in proportion to the
/// loss rate, not collapsing it.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "lamsdlc/rt/daemon.hpp"
#include "lamsdlc/rt/event_loop.hpp"
#include "lamsdlc/rt/session_mux.hpp"
#include "lamsdlc/rt/transport.hpp"

namespace {

using namespace lamsdlc;

struct RunResult {
  double wall_seconds = 0;
  double throughput_mbps = 0;  ///< delivered payload bits / wall second
  double goodput = 0;          ///< delivered / sent payload bytes (<= 1)
  std::uint64_t iframe_tx = 0;
  std::uint64_t iframe_retx = 0;
  bool ok = false;
};

std::vector<std::uint8_t> make_payload(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return v;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// SimClock + LoopbackTransport: the whole transfer in simulated time,
/// measured in wall time (events per wall-second is what costs money here).
RunResult run_sim(std::size_t bytes) {
  rt::SimClock loop;
  auto [ta, tb] = rt::LoopbackTransport::make_pair(loop, Time::microseconds(100));
  rt::SessionMux::Config mc;
  mc.chunk_bytes = 1024;
  mc.max_one_way = Time::milliseconds(5);
  rt::SessionMux ma{loop, *ta, mc};
  rt::SessionMux mb{loop, *tb, mc};

  std::uint64_t delivered = 0;
  bool clean = false, closed = false;
  mb.set_inbound_data_handler(
      [&](rt::PeerId, std::uint32_t, std::span<const std::uint8_t> b) {
        delivered += b.size();
      });
  mb.set_inbound_end_handler(
      [&](rt::PeerId, std::uint32_t, bool c) { clean = c; });
  ma.set_stream_state_handler([&](std::uint32_t,
                                  lams::SessionSender::State s) {
    if (s == lams::SessionSender::State::kClosed) closed = true;
  });

  const auto payload = make_payload(bytes);
  const double t0 = now_seconds();
  ma.open_stream(0, 1);
  ma.stream_write(1, payload);
  ma.stream_close(1);
  loop.sim().run_until(Time::seconds(600));
  const double dt = now_seconds() - t0;

  RunResult r;
  r.wall_seconds = dt;
  r.throughput_mbps = static_cast<double>(delivered) * 8 / dt / 1e6;
  if (const auto* s = ma.stream_stats(1)) {
    r.iframe_tx = s->iframe_tx;
    r.iframe_retx = s->iframe_retx;
    r.goodput = s->iframe_tx != 0
                    ? static_cast<double>(s->iframe_tx - s->iframe_retx) /
                          static_cast<double>(s->iframe_tx)
                    : 0;
  }
  r.ok = closed && clean && delivered == bytes;
  return r;
}

/// WallClock + two real kernel UDP sockets on loopback, optional injected
/// loss on the forward path — the daemon's data plane without the daemon.
RunResult run_live(std::size_t bytes, bool impair) {
  rt::WallClock loop;
  rt::UdpTransport ua{loop, {}};
  rt::UdpTransport ub{loop, {}};
  ua.add_peer("127.0.0.1", ub.local_port());

  phy::FaultInjector::Config fc;
  fc.p_drop = 0.05;
  phy::FaultInjector injector{fc, RandomStream{13, "bench.fault"}};
  rt::ImpairedTransport impaired{loop, ua, injector,
                                 RandomStream{13, "bench.damage"}};
  rt::Transport& forward = impair ? static_cast<rt::Transport&>(impaired)
                                  : static_cast<rt::Transport&>(ua);

  rt::SessionMux::Config mc;
  mc.chunk_bytes = 1024;
  mc.max_one_way = Time::milliseconds(5);
  rt::SessionMux ma{loop, forward, mc};
  rt::SessionMux mb{loop, ub, mc};

  std::uint64_t delivered = 0;
  bool clean = false, closed = false, ended = false;
  auto maybe_stop = [&] {
    if (closed && ended) loop.stop();
  };
  mb.set_inbound_data_handler(
      [&](rt::PeerId, std::uint32_t, std::span<const std::uint8_t> b) {
        delivered += b.size();
      });
  mb.set_inbound_end_handler([&](rt::PeerId, std::uint32_t, bool c) {
    clean = c;
    ended = true;
    maybe_stop();
  });
  ma.set_stream_state_handler([&](std::uint32_t,
                                  lams::SessionSender::State s) {
    if (s == lams::SessionSender::State::kClosed) {
      closed = true;
      maybe_stop();
    }
  });

  const auto payload = make_payload(bytes);
  const double t0 = now_seconds();
  loop.sim().schedule_in(Time{}, [&] {
    ma.open_stream(0, 1);
    ma.stream_write(1, payload);
    ma.stream_close(1);
  });
  loop.sim().schedule_in(Time::seconds(120), [&] { loop.stop(); });
  loop.run();
  const double dt = now_seconds() - t0;

  RunResult r;
  r.wall_seconds = dt;
  r.throughput_mbps = static_cast<double>(delivered) * 8 / dt / 1e6;
  if (const auto* s = ma.stream_stats(1)) {
    r.iframe_tx = s->iframe_tx;
    r.iframe_retx = s->iframe_retx;
    r.goodput = s->iframe_tx != 0
                    ? static_cast<double>(s->iframe_tx - s->iframe_retx) /
                          static_cast<double>(s->iframe_tx)
                    : 0;
  }
  r.ok = closed && clean && delivered == bytes;
  return r;
}

void print_json(std::size_t bytes, const RunResult& sim, const RunResult& live,
                const RunResult& impaired) {
  auto one = [](const char* name, const RunResult& r, bool last) {
    std::printf(
        "  \"%s\": {\n"
        "    \"ok\": %s,\n"
        "    \"wall_seconds\": %.4f,\n"
        "    \"throughput_mbps\": %.2f,\n"
        "    \"iframe_tx\": %llu,\n"
        "    \"iframe_retx\": %llu,\n"
        "    \"goodput\": %.4f\n"
        "  }%s\n",
        name, r.ok ? "true" : "false", r.wall_seconds, r.throughput_mbps,
        static_cast<unsigned long long>(r.iframe_tx),
        static_cast<unsigned long long>(r.iframe_retx), r.goodput,
        last ? "" : ",");
  };
  std::printf("{\n  \"transfer_bytes\": %zu,\n", bytes);
  one("sim_loopback", sim, false);
  one("live_loopback", live, false);
  one("live_impaired", impaired, true);
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t bytes = 4 * 1024 * 1024;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] != '-') {
      bytes = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }

  const RunResult sim = run_sim(bytes);
  const RunResult live = run_live(bytes, /*impair=*/false);
  const RunResult impaired = run_live(bytes, /*impair=*/true);

  if (json) {
    print_json(bytes, sim, live, impaired);
  } else {
    std::printf("runtime bench, %zu-byte transfer (1 KiB chunks)\n\n", bytes);
    std::printf("%-15s %6s %12s %14s %10s %8s\n", "mode", "ok", "wall [s]",
                "rate [Mbps]", "retx", "goodput");
    auto row = [](const char* name, const RunResult& r) {
      std::printf("%-15s %6s %12.3f %14.1f %10llu %8.3f\n", name,
                  r.ok ? "yes" : "NO", r.wall_seconds, r.throughput_mbps,
                  static_cast<unsigned long long>(r.iframe_retx), r.goodput);
    };
    row("sim_loopback", sim);
    row("live_loopback", live);
    row("live_impaired", impaired);
  }
  return (sim.ok && live.ok && impaired.ok) ? 0 : 1;
}
