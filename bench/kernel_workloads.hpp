#pragma once
/// \file kernel_workloads.hpp
/// \brief The three canonical event-kernel workloads timed by
/// `bench_kernel --json` and recorded in BENCH_kernel.json.
///
/// They are defined here (header-only, against the public Simulator API
/// only) so the exact same code can be timed against any kernel revision:
/// the baseline numbers in BENCH_kernel.json were produced by building this
/// file against the pre-overhaul `std::priority_queue` + `unordered_map`
/// kernel.
///
///  - schedule_fire : N one-shot events scheduled up front, then drained.
///    Measures the pure schedule+dispatch path (one op = one event).
///  - cancel_heavy  : schedule/cancel churn with a live event population,
///    the ARQ timer pattern (one op = one schedule+cancel pair).
///  - timer_rearm   : a small set of protocol timers each re-armed far in
///    the future over and over (cancel + re-schedule), then drained; the
///    tombstone-accumulation worst case (one op = one re-arm).

#include <chrono>
#include <cstdint>

#include "lamsdlc/core/simulator.hpp"

namespace lamsdlc::bench {

struct WorkloadResult {
  std::uint64_t ops = 0;
  double seconds = 0;
  [[nodiscard]] double ops_per_sec() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  }
};

template <typename Fn>
WorkloadResult time_workload(std::uint64_t ops, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return {ops, std::chrono::duration<double>(t1 - t0).count()};
}

inline WorkloadResult wl_schedule_fire(std::uint64_t n) {
  return time_workload(n, [n] {
    Simulator sim;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sim.schedule_at(Time::microseconds(static_cast<std::int64_t>(i % 1000)),
                      [&fired] { ++fired; });
    }
    sim.run();
  });
}

inline WorkloadResult wl_cancel_heavy(std::uint64_t n) {
  return time_workload(n, [n] {
    Simulator sim;
    // Keep a live population of 64 events so cancellation works against a
    // realistically loaded heap, as in a window of outstanding ARQ timers.
    constexpr std::uint64_t kLive = 64;
    EventId ring[kLive] = {};
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto slot = i % kLive;
      if (ring[slot] != 0) sim.cancel(ring[slot]);
      ring[slot] =
          sim.schedule_in(Time::milliseconds(1 + static_cast<std::int64_t>(slot)),
                          [] {});
    }
    sim.run();
  });
}

inline WorkloadResult wl_timer_rearm(std::uint64_t n) {
  return time_workload(n, [n] {
    Simulator sim;
    // 8 failure-style timers, each parked far in the future and re-armed
    // round-robin: every re-arm is a cancel that leaves (pre-overhaul) a
    // tombstone near the bottom of the heap.
    constexpr std::uint64_t kTimers = 8;
    EventId timers[kTimers] = {};
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto t = i % kTimers;
      if (timers[t] != 0) sim.cancel(timers[t]);
      timers[t] = sim.schedule_in(
          Time::seconds_int(3600 + static_cast<std::int64_t>(i % 60)), [] {});
    }
    sim.run();
  });
}

}  // namespace lamsdlc::bench
