#pragma once
/// \file framepath_workloads.hpp
/// \brief Canonical frame-path workloads for BENCH_framepath.json.
///
/// Like bench/kernel_workloads.hpp for the event kernel, this header is the
/// single source of truth for the frame-path timing rows: every workload uses
/// only public library API, so the identical code compiles against any
/// revision of the CRC/codec/channel/sender internals for honest before/after
/// comparisons.  `bench_framepath --json` times these and prints one JSON
/// object; scripts/bench_baseline.sh records it into BENCH_framepath.json.
///
/// Stages measured (coarse to fine):
///   - crc16 / crc32 over a 64 KB buffer          (pure checksum stage)
///   - codec encode+decode round trip             (serialization stage)
///   - single-link LAMS scenario, fast wire       (kernel + endpoint stage)
///   - single-link LAMS scenario, byte-accurate   (full frame path: every
///     frame is encoded, CRC'd, decoded and CRC-checked on the wire)
///   - 4-hop net::Network relay chain             (multi-hop transit stage)
///
/// Scenario workloads report wall-clock frames/sec and the simulated goodput
/// they sustain, so the headline ratio "simulated Gbps per wall second" is
/// read straight off the row.

#include <chrono>
#include <cstdint>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/net/network.hpp"
#include "lamsdlc/phy/crc.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace lamsdlc::bench {

struct FramepathResult {
  std::uint64_t frames = 0;   ///< Frames (or buffers) processed.
  double wall_s = 0;          ///< Wall-clock seconds spent.
  double sim_s = 0;           ///< Simulated seconds covered (0 = no sim).
  std::uint64_t bits = 0;     ///< Payload bits moved end to end.

  [[nodiscard]] double frames_per_sec() const {
    return wall_s > 0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
  [[nodiscard]] double wall_gbps() const {
    return wall_s > 0 ? static_cast<double>(bits) / wall_s / 1e9 : 0.0;
  }
  [[nodiscard]] double sim_gbps() const {
    return sim_s > 0 ? static_cast<double>(bits) / sim_s / 1e9 : 0.0;
  }
};

namespace detail {

class WallTimer {
 public:
  WallTimer() : t0_{std::chrono::steady_clock::now()} {}
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace detail

/// CRC-16/CCITT over a 64 KB buffer, `reps` times.
inline FramepathResult wl_crc16(std::uint64_t reps) {
  std::vector<std::uint8_t> buf(65536);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 31u);
  }
  FramepathResult r;
  detail::WallTimer t;
  std::uint16_t acc = 0;
  for (std::uint64_t i = 0; i < reps; ++i) {
    buf[0] = static_cast<std::uint8_t>(acc);  // defeat CSE across reps
    acc ^= phy::crc16_ccitt(buf);
  }
  r.wall_s = t.elapsed_s();
  r.frames = reps;
  r.bits = reps * buf.size() * 8;
  // Keep the accumulator observable so the loop cannot be elided.
  if (acc == 0xBEEF) r.frames += 1;
  return r;
}

/// CRC-32/IEEE over a 64 KB buffer, `reps` times.
inline FramepathResult wl_crc32(std::uint64_t reps) {
  std::vector<std::uint8_t> buf(65536);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 17u);
  }
  FramepathResult r;
  detail::WallTimer t;
  std::uint32_t acc = 0;
  for (std::uint64_t i = 0; i < reps; ++i) {
    buf[0] = static_cast<std::uint8_t>(acc);
    acc ^= phy::crc32_ieee(buf);
  }
  r.wall_s = t.elapsed_s();
  r.frames = reps;
  r.bits = reps * buf.size() * 8;
  if (acc == 0xDEADBEEF) r.frames += 1;
  return r;
}

/// Codec round trip: encode one I-frame of \p frame_bytes into a reused
/// buffer, then decode and FCS-check it — the per-frame serialization cost of
/// the byte-accurate wire.
inline FramepathResult wl_codec_roundtrip(std::uint32_t frame_bytes,
                                          std::uint64_t reps) {
  frame::Frame f;
  f.body = frame::IFrame{42, 7, frame_bytes, {}};
  std::vector<std::uint8_t> wire;
  FramepathResult r;
  detail::WallTimer t;
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < reps; ++i) {
    frame::encode_into(f, wire);
    auto out = frame::decode(wire);
    ok += out.has_value() ? 1 : 0;
  }
  r.wall_s = t.elapsed_s();
  r.frames = ok;
  r.bits = reps * static_cast<std::uint64_t>(frame::encoded_size(f)) * 8;
  return r;
}

/// Single-link LAMS scenario on a clean channel: saturating batch of
/// \p packets frames of \p frame_bytes each, run to completion.  With
/// \p byte_level every frame serializes through the real codec + CRC on the
/// wire; without it the channel models the same timing without touching
/// bytes (kernel + endpoint bookkeeping dominate).
inline FramepathResult wl_singlelink(std::uint32_t frame_bytes,
                                     std::uint64_t packets, bool byte_level) {
  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = 1e9;
  cfg.frame_bytes = frame_bytes;
  cfg.byte_level_wire = byte_level;
  sim::Scenario s{cfg};
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         packets, frame_bytes);
  FramepathResult r;
  detail::WallTimer t;
  s.run_to_completion(Time::seconds_int(3600));
  r.wall_s = t.elapsed_s();
  const auto rep = s.report();
  r.frames = rep.unique_delivered;
  r.sim_s = rep.elapsed_s;
  r.bits = rep.unique_delivered * static_cast<std::uint64_t>(frame_bytes) * 8;
  return r;
}

/// Multi-hop transit: a 4-link relay chain (5 nodes), every packet crossing
/// all hops — the store-and-forward path of net::Network, LAMS on each link.
inline FramepathResult wl_multihop(std::uint64_t packets,
                                   std::uint32_t frame_bytes) {
  Simulator sim;
  net::Network net{sim, /*seed=*/1};
  constexpr std::uint32_t kHops = 4;
  std::vector<net::NodeId> nodes;
  for (std::uint32_t i = 0; i <= kHops; ++i) {
    nodes.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (std::uint32_t i = 0; i < kHops; ++i) {
    net::LinkSpec spec;
    spec.a = nodes[i];
    spec.b = nodes[i + 1];
    spec.data_rate_bps = 1e9;
    spec.prop_delay = Time::milliseconds(5);
    spec.lams.checkpoint_interval = Time::milliseconds(5);
    spec.lams.cumulation_depth = 4;
    spec.lams.max_rtt = Time::milliseconds(15);
    net.add_link(spec);
  }
  for (std::uint64_t i = 0; i < packets; ++i) {
    net.send_packet(nodes.front(), nodes.back(), frame_bytes);
  }
  FramepathResult r;
  detail::WallTimer t;
  net.run_to_completion(Time::seconds_int(3600));
  r.wall_s = t.elapsed_s();
  const auto rep = net.report();
  // Count per-hop frame deliveries: each delivered packet crossed kHops DLC
  // hops, each a full send/fly/deliver/release frame lifecycle.
  r.frames = rep.packets_delivered * kHops;
  r.sim_s = sim.now().sec();
  r.bits = rep.packets_delivered * static_cast<std::uint64_t>(frame_bytes) * 8;
  return r;
}

}  // namespace lamsdlc::bench
