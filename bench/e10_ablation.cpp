/// E10 — Design-choice ablation: checkpoint interval × cumulation depth.
///
/// The paper's two tunables trade off against each other:
///   smaller I_cp  → shorter holding time / smaller buffer, more control
///                   overhead;
///   larger C_depth → more NAK-loss tolerance (loss prob ~ P_C^C_depth),
///                   longer failure-detection latency and bigger commands.
/// This harness maps the trade-off surface the paper argues qualitatively.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E10", "ablation: I_cp x C_depth under P_F = 0.1, P_C = 0.2",
         "buffer control improves with smaller I_cp at the cost of control "
         "overhead; larger C_depth buys NAK-loss immunity at the cost of "
         "recovery latency");

  Table t{{"I_cp[ms]", "C_depth", "state", "eff", "hold[ms]", "buf:mean",
           "ctl/frame", "reqnaks"}, 12};
  for (const std::int64_t icp : {1, 2, 5, 10, 20}) {
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      auto cfg = default_config(sim::Protocol::kLams);
      cfg.lams.checkpoint_interval = Time::milliseconds(icp);
      cfg.lams.cumulation_depth = depth;
      set_fixed_errors(cfg, 0.1, 0.2);

      sim::Scenario s{cfg};
      workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                             3000, cfg.frame_bytes);
      s.run_to_completion(600_s);
      const auto r = s.report();
      const bool failed =
          s.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;
      t.cell(static_cast<std::uint64_t>(icp))
          .cell(static_cast<std::uint64_t>(depth))
          .cell(std::string(failed ? "LINK-FAILED" : "ok"))
          .cell(r.efficiency)
          .cell(1e3 * r.mean_holding_s)
          .cell(r.mean_send_buffer)
          .cell(static_cast<double>(r.control_tx) /
                static_cast<double>(std::max<std::uint64_t>(
                    1, r.unique_delivered)))
          .cell(s.lams_sender()->request_naks_sent());
    }
  }
  std::printf(
      "\nRows marked LINK-FAILED: at P_C = 0.2 a cumulation depth of 1-2\n"
      "leaves P_C^C_depth non-negligible, enforced recovery fires often and\n"
      "eventually misses its failure budget — the ablation shows why the\n"
      "paper's cumulative NAK depth matters.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
