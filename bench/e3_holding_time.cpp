/// E3 — Mean sender holding time H_frame.
///
/// Regenerates the recursive derivation of Section 4:
///   H_frame = s̄ · (R + t_f + t_c + t_proc + (n̄_cp − ½)·I_cp)
/// across error rate and checkpoint interval.  The holding time is what
/// buffer control bounds (and what SR-HDLC leaves unbounded).

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E3", "mean sender holding time H_frame [ms]",
         "H_frame = s-bar * (R + t_f + t_c + t_proc + (n_cp - 1/2) I_cp): "
         "linear in I_cp, geometric in P_F, bounded by the resolving period "
         "per attempt");

  for (const std::int64_t icp_ms : {2, 5, 10}) {
    std::printf("\n-- checkpoint interval I_cp = %lld ms --\n",
                static_cast<long long>(icp_ms));
    Table t{{"P_F", "analysis", "sim-mean", "sim-p50", "sim-p99",
             "resolve-bound", "B_LAMS[frames]"}};
    for (const double p_f : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      auto cfg = default_config(sim::Protocol::kLams);
      cfg.lams.checkpoint_interval = Time::milliseconds(icp_ms);
      cfg.metrics = true;  // distribution comes from the obs registry
      set_fixed_errors(cfg, p_f, 0.01);

      sim::Scenario s{cfg};
      workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                             3000, cfg.frame_bytes);
      s.run_to_completion(600_s);
      const auto params = s.analysis_params();

      // The mean comes from DlcStats; the shape (p50/p99) from the metric
      // registry's log histogram — the paper's H_frame is a mean, but the
      // tail is what sizes the transparent buffer in practice.
      const obs::LogHistogram* hold =
          s.metrics().find_histogram("lams.sender.holding_time_ms");
      t.cell(p_f)
          .cell(1e3 * analysis::h_frame_lams(params))
          .cell(1e3 * s.stats().holding_time_s.mean())
          .cell(hold ? hold->p50() : 0.0)
          .cell(hold ? hold->p99() : 0.0)
          .cell(1e3 * analysis::resolving_period(params))
          .cell(analysis::b_lams(params));
    }
  }
}

}  // namespace

int main() {
  run();
  return 0;
}
