/// E9 — Timeout sensitivity: t_out = R + α on a moving constellation.
///
/// Regenerates the Section 4 timeout discussion: in a LAMS network var(R_t)
/// is large, so α must cover R_max − R; every millisecond of α is paid on
/// each lost response, degrading SR-HDLC while LAMS-DLC (no response
/// timeout in its steady state) is insensitive.  The orbit module supplies
/// a real R_t profile and the α lower bound.

#include "bench_common.hpp"
#include "lamsdlc/orbit/orbit.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E9", "HDLC t_out = R + alpha sensitivity on an orbit-driven link",
         "alpha must exceed R_max - R from orbit geometry; HDLC efficiency "
         "falls as alpha grows, LAMS-DLC does not use t_out at all");

  // Two satellites at 1000 km altitude in slightly different planes.
  orbit::CircularOrbit a;
  a.altitude_m = 1.0e6;
  orbit::CircularOrbit b = a;
  b.phase_rad = 0.35;
  b.inclination_rad = 0.3;
  auto pair = std::make_shared<orbit::SatellitePair>(a, b);

  const auto windows = orbit::find_windows(*pair, Time::seconds_int(7000),
                                           Time::seconds_int(5));
  if (windows.empty()) {
    std::printf("no visibility window found\n");
    return;
  }
  const auto st = orbit::range_stats(*pair, windows.front(),
                                     Time::seconds_int(5));
  std::printf("\nlink window: %.0f s, range %.0f-%.0f km, mean RTT %.2f ms, "
              "min alpha %.2f ms\n",
              windows.front().duration().sec(), st.r_min_m / 1e3,
              st.r_max_m / 1e3, st.round_trip().ms(), st.min_alpha().ms());

  const double p_f = 0.08;
  const double p_c = 0.02;

  // LAMS reference on the same orbit-driven link.
  auto lams_cfg = default_config(sim::Protocol::kLams);
  lams_cfg.propagation = [pair](Time t) { return pair->propagation_delay(t); };
  lams_cfg.lams.max_rtt = st.round_trip() + st.min_alpha() + 5_ms;
  set_fixed_errors(lams_cfg, p_f, p_c);
  const auto lams = run_batch(lams_cfg, 5000);
  std::printf("LAMS-DLC reference efficiency (alpha-independent): %.3f\n",
              lams.efficiency);

  Table t{{"alpha[ms]", "hdlc:analysis", "hdlc:sim", "hdlc:timeouts"}};
  for (const std::int64_t alpha_ms : {5, 20, 40, 80, 160, 320}) {
    auto cfg = default_config(sim::Protocol::kSrHdlc);
    cfg.propagation = [pair](Time t) { return pair->propagation_delay(t); };
    cfg.hdlc.timeout = st.round_trip() + Time::milliseconds(alpha_ms);
    set_fixed_errors(cfg, p_f, p_c);

    sim::Scenario s{cfg};
    auto params = s.analysis_params();
    params.rtt = st.round_trip().sec();
    params.alpha = static_cast<double>(alpha_ms) * 1e-3;
    workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                           5000, cfg.frame_bytes);
    s.run_to_completion(600_s);
    const auto r = s.report();
    t.cell(static_cast<std::uint64_t>(alpha_ms))
        .cell(analysis::efficiency_hdlc(params, 5000.0))
        .cell(r.efficiency)
        .cell(s.sr_sender()->timeouts());
  }
}

}  // namespace

int main() {
  run();
  return 0;
}
