/// E12 (extension) — idle-time ARQ variants: SR vs SR+ST vs LAMS-DLC.
///
/// The paper's introduction motivates LAMS-DLC against the idle-time
/// variants of classic ARQ (Stutter GBN, Miller & Lin's SR+ST): those
/// schemes burn the window-response idle time on redundant copies, while
/// LAMS-DLC removes the window entirely.  This harness quantifies all
/// three on a long LAMS link: completion time of small batches (the regime
/// stutter targets) and the bandwidth each pays for it.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

struct Row {
  double done_ms;
  std::uint64_t tx;
};

Row run_one(sim::Protocol proto, bool stutter, double p_f, std::uint64_t n) {
  auto cfg = default_config(proto);
  cfg.prop_delay = 10_ms;
  cfg.hdlc.timeout = 60_ms;
  cfg.hdlc.stutter = stutter;
  cfg.lams.max_rtt = 25_ms;
  set_fixed_errors(cfg, p_f, p_f / 10.0);
  sim::Scenario s{cfg};
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(), n,
                         cfg.frame_bytes);
  s.run_to_completion(600_s);
  return {1e3 * s.simulator().now().sec(), s.report().iframe_tx};
}

void run() {
  banner("E12 (extension)",
         "idle-time variants on a 20 ms-RTT link: batch completion [ms] "
         "and I-frame transmissions",
         "SR+ST converts idle time into redundant copies; LAMS-DLC has no "
         "idle time to recover and still resolves faster per bit sent");

  for (const double p_f : {0.05, 0.15}) {
    std::printf("\n-- P_F = %.2f --\n", p_f);
    Table t{{"N", "sr:ms", "sr:tx", "srst:ms", "srst:tx", "lams:ms",
             "lams:tx"}, 11};
    for (const std::uint64_t n : {16u, 32u, 64u, 128u}) {
      const Row sr = run_one(sim::Protocol::kSrHdlc, false, p_f, n);
      const Row st = run_one(sim::Protocol::kSrHdlc, true, p_f, n);
      const Row lm = run_one(sim::Protocol::kLams, false, p_f, n);
      t.cell(n)
          .cell(sr.done_ms)
          .cell(sr.tx)
          .cell(st.done_ms)
          .cell(st.tx)
          .cell(lm.done_ms)
          .cell(lm.tx);
    }
  }
  std::printf(
      "\nReading: SR+ST buys the best small-batch latency but multiplies the\n"
      "transmission count ~10-20x (hostile on a shared power budget).  Plain\n"
      "SR pays SREJ/timeout round trips per error.  LAMS-DLC's latency is\n"
      "pinned near one checkpoint cycle regardless of N or P_F and its\n"
      "transmission count stays at ~N*s-bar — flat where the others scale,\n"
      "which is the introduction's efficiency argument; its sustained-load\n"
      "advantage is E5's story.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
