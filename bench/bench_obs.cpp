/// Telemetry-cost benchmark: what the live observability plane adds to the
/// frame path, measured honestly against the same byte-accurate single-link
/// workload BENCH_framepath.json uses.
///
/// Three telemetry configurations, A/B/C:
///   A  "off"       no bus subscriber — every emit site pays one dead branch
///   B  "recorder"  an obs::FlightRecorder ring (the daemon's always-on
///                  black box: one event copy per emit, no allocation)
///   C  "full"      recorder + obs::MetricsCollector into a Registry —
///                  exactly what `lamsdlcd` attaches per session by default
///
/// plus the introspection endpoint under scrape load: an in-process
/// self-peer daemon moves a stream over real kernel UDP while this process
/// hammers the status port with back-to-back `status` requests, reporting
/// sustained scrapes/sec and whether the transfer stayed clean.
///
/// `bench_obs --json [scale]` bypasses google-benchmark, times each
/// configuration best-of-5 interleaved, and prints one machine-readable
/// JSON object; scripts/bench_baseline.sh records the scale-1 output into
/// BENCH_obs.json and scripts/ci.sh runs it as the non-gating perf smoke.
/// The headline acceptance number is `overhead_recorder_byte_8KB_pct` — the
/// cost of the always-on black box on the byte-accurate frame path; the
/// `full` rows record what the daemon's default per-session telemetry
/// (recorder + metrics collector) adds on top.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "framepath_workloads.hpp"
#include "lamsdlc/obs/collector.hpp"
#include "lamsdlc/obs/flight_recorder.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/rt/daemon.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace {

using namespace lamsdlc;

enum class Telemetry { kOff, kRecorder, kFull };

/// The byte-accurate single-link workload of framepath_workloads.hpp with
/// the daemon's telemetry chain subscribed to the scenario bus.
bench::FramepathResult wl_obs_singlelink(std::uint32_t frame_bytes,
                                         std::uint64_t packets,
                                         Telemetry mode) {
  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = 1e9;
  cfg.frame_bytes = frame_bytes;
  cfg.byte_level_wire = true;
  sim::Scenario s{cfg};

  obs::FlightRecorder::Config rc;  // empty dump_prefix: ring only, no I/O
  obs::FlightRecorder recorder{rc};
  obs::Registry registry;
  std::unique_ptr<obs::MetricsCollector> collector;
  if (mode != Telemetry::kOff) {
    s.events().subscribe(recorder.subscriber());
  }
  if (mode == Telemetry::kFull) {
    collector =
        std::make_unique<obs::MetricsCollector>(s.events(), registry);
  }

  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         packets, frame_bytes);
  bench::FramepathResult r;
  bench::detail::WallTimer t;
  s.run_to_completion(Time::seconds_int(3600));
  r.wall_s = t.elapsed_s();
  const auto rep = s.report();
  r.frames = rep.unique_delivered;
  r.sim_s = rep.elapsed_s;
  r.bits = rep.unique_delivered * static_cast<std::uint64_t>(frame_bytes) * 8;
  return r;
}

void BM_SingleLinkByteTelemetry(benchmark::State& state) {
  const auto mode = static_cast<Telemetry>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl_obs_singlelink(8192, 5000, mode));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_SingleLinkByteTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

struct ScrapeResult {
  std::uint64_t scrapes = 0;
  double wall_s = 0;
  bool transfer_clean = false;
  bool json_sane = false;
};

/// One request/response round trip against the status port.  A 2 s receive
/// timeout bounds the final scrape: the in-process daemon's listener stays
/// in the kernel backlog until the Daemon object is destroyed, so a scrape
/// racing the loop's exit would otherwise block forever.
std::string scrape_once(std::uint16_t port, const char* verb) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string out;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    const std::string req = std::string{verb} + "\n";
    (void)!::write(fd, req.data(), req.size());
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

/// Endpoint under scrape load: a self-peer daemon moves `bytes` over real
/// UDP while we issue back-to-back `status` scrapes until the stream (both
/// halves) finishes.  The daemon is real-time paced, so the honest numbers
/// are sustained scrapes/sec and a clean transfer — not wall-time deltas.
ScrapeResult run_scrape_load(std::size_t bytes) {
  rt::DaemonConfig cfg;
  cfg.self_peer = true;
  cfg.status = true;
  cfg.session_base = 4200;
  cfg.exit_after_streams = 2;  // one self-peer transfer = both halves
  cfg.data_rate_bps = 100e6;
  cfg.status_sample_period = Time::milliseconds(100);
  cfg.recorder_dir = "/tmp";

  ScrapeResult out;
  rt::Daemon daemon{cfg};
  daemon.start();
  const std::uint16_t port = daemon.status_port();

  std::vector<std::uint8_t> payload(bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  daemon.loop().sim().schedule_in(Time{}, [&] {
    daemon.mux().open_stream(0, 4200);
    daemon.mux().stream_write(4200, payload);
    daemon.mux().stream_close(4200);
  });
  daemon.loop().sim().schedule_in(Time::seconds(60), [&] { daemon.stop(); });

  std::atomic<bool> done{false};
  std::thread loop{[&] {
    daemon.run();
    done.store(true);
  }};
  bench::detail::WallTimer t;
  std::string last;
  while (!done.load()) {
    std::string got = scrape_once(port, "status");
    if (got.empty()) continue;  // raced the loop's exit
    last = std::move(got);
    ++out.scrapes;
  }
  out.wall_s = t.elapsed_s();
  loop.join();
  out.transfer_clean =
      daemon.streams_completed() == 2 && daemon.streams_failed() == 0;
  out.json_sane = last.find("\"daemon\"") != std::string::npos &&
                  last.find("\"registry\"") != std::string::npos;
  return out;
}

/// Interleaved best-of-N: every round runs each configuration once before
/// any configuration's second run, so all three A/B/C legs see the same
/// machine conditions — a drifted machine skews everything equally instead
/// of whichever leg happened to run last.
struct Abc {
  bench::FramepathResult off, recorder, full;
};
Abc best_abc(std::uint32_t frame_bytes, std::uint64_t packets, int rounds) {
  Abc best;
  const auto keep = [](bench::FramepathResult& b,
                       const bench::FramepathResult& r) {
    if (b.wall_s == 0 || r.frames_per_sec() > b.frames_per_sec()) b = r;
  };
  for (int i = 0; i < rounds; ++i) {
    keep(best.off, wl_obs_singlelink(frame_bytes, packets, Telemetry::kOff));
    keep(best.recorder,
         wl_obs_singlelink(frame_bytes, packets, Telemetry::kRecorder));
    keep(best.full, wl_obs_singlelink(frame_bytes, packets, Telemetry::kFull));
  }
  return best;
}

double overhead_pct(const bench::FramepathResult& base,
                    const bench::FramepathResult& with) {
  if (base.frames_per_sec() <= 0) return 0;
  return (base.frames_per_sec() / with.frames_per_sec() - 1.0) * 100.0;
}

int run_json_mode(std::uint64_t scale) {
  const Abc small = best_abc(256, 400000 * scale, 5);
  const Abc large = best_abc(8192, 60000 * scale, 5);
  const ScrapeResult scrape = run_scrape_load(2 * 1024 * 1024);

  std::printf("{\n");
  std::printf("  \"scale\": %llu,\n", static_cast<unsigned long long>(scale));
  std::printf("  \"byte_256B_off_frames_per_sec\": %.0f,\n",
              small.off.frames_per_sec());
  std::printf("  \"byte_256B_recorder_frames_per_sec\": %.0f,\n",
              small.recorder.frames_per_sec());
  std::printf("  \"byte_256B_full_frames_per_sec\": %.0f,\n",
              small.full.frames_per_sec());
  std::printf("  \"overhead_recorder_byte_256B_pct\": %.2f,\n",
              overhead_pct(small.off, small.recorder));
  std::printf("  \"overhead_full_byte_256B_pct\": %.2f,\n",
              overhead_pct(small.off, small.full));
  std::printf("  \"byte_8KB_off_frames_per_sec\": %.0f,\n",
              large.off.frames_per_sec());
  std::printf("  \"byte_8KB_recorder_frames_per_sec\": %.0f,\n",
              large.recorder.frames_per_sec());
  std::printf("  \"byte_8KB_full_frames_per_sec\": %.0f,\n",
              large.full.frames_per_sec());
  std::printf("  \"overhead_recorder_byte_8KB_pct\": %.2f,\n",
              overhead_pct(large.off, large.recorder));
  std::printf("  \"overhead_full_byte_8KB_pct\": %.2f,\n",
              overhead_pct(large.off, large.full));
  std::printf("  \"status_scrapes_per_sec\": %.0f,\n",
              scrape.wall_s > 0
                  ? static_cast<double>(scrape.scrapes) / scrape.wall_s
                  : 0.0);
  std::printf("  \"status_scrapes_during_transfer\": %llu,\n",
              static_cast<unsigned long long>(scrape.scrapes));
  std::printf("  \"transfer_clean_under_scrape_load\": %s,\n",
              scrape.transfer_clean ? "true" : "false");
  std::printf("  \"status_json_sane\": %s\n",
              scrape.json_sane ? "true" : "false");
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--json") == 0) {
    std::uint64_t scale = 1;
    if (argc >= 3) scale = std::strtoull(argv[2], nullptr, 10);
    if (scale == 0) scale = 1;
    return run_json_mode(scale);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
