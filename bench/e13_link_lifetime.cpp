/// E13 (extension) — link-lifetime utilization with session overhead.
///
/// The paper's first design observation (Section 1): each LAMS link is
/// active for a short period, so the DLC "should be designed to minimize
/// the impact of idle time due to link initialization and link
/// (re)synchronization" and maximize efficiency inside the window.  This
/// harness runs a complete session lifecycle — INIT handshake, saturated
/// data phase, drain, CLOSE exchange — inside link lifetimes from 2 s down
/// to 100 ms and reports the achieved utilization, separating the fixed
/// lifecycle overhead (which shrinks proportionally as lifetimes grow)
/// from the protocol's steady-state efficiency.

#include "bench_common.hpp"
#include "lamsdlc/lams/session.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

struct LifetimeResult {
  double established_ms = 0;  ///< INIT handshake duration.
  double utilization = 0;     ///< Delivered payload bits / (lifetime*rate).
  std::uint64_t delivered = 0;
  bool closed_in_time = false;
};

LifetimeResult run_lifetime(Time lifetime, double p_f) {
  Simulator sim;
  link::SimplexChannel::Config ccfg;
  ccfg.data_rate_bps = 100e6;
  ccfg.propagation = [](Time) { return 5_ms; };
  link::FullDuplexLink link{
      sim, ccfg,
      std::make_unique<phy::FixedFrameErrorModel>(p_f,
                                                  RandomStream{1, "fwd"}),
      ccfg, std::make_unique<phy::PerfectChannel>()};

  lams::SessionConfig scfg;
  scfg.lams.checkpoint_interval = 5_ms;
  scfg.lams.cumulation_depth = 4;
  scfg.lams.max_rtt = 15_ms;
  scfg.init_retry = 15_ms;

  sim::DlcStats stats;
  workload::DeliveryTracker tracker{sim, &stats};
  lams::SessionSender tx{sim, link.forward(), scfg, &stats};
  lams::SessionReceiver rx{sim, link.reverse(), scfg, &tracker, &stats};
  link.reverse().set_sink(&tx);
  link.forward().set_sink(&rx);

  LifetimeResult out;
  tx.set_state_callback([&](lams::SessionSender::State s) {
    if (s == lams::SessionSender::State::kEstablished &&
        out.established_ms == 0) {
      out.established_ms = sim.now().ms();
    }
    if (s == lams::SessionSender::State::kClosed) {
      out.closed_in_time = sim.now() <= lifetime;
    }
  });

  // Saturating source with ids; stop submitting in time to drain + close.
  // A clean close needs the retransmission tail of the last frames to
  // resolve: a couple of resolving periods (32.5 ms each here) plus the
  // CLOSE exchange.  Short windows cannot afford that much — the floor the
  // paper's resolving-period bound imposes on usable link lifetimes.
  const Time drain_margin = std::min(lifetime * 0.5, Time::milliseconds(150));
  workload::PacketIdAllocator ids;
  constexpr std::uint32_t kBytes = 1024;
  frame::Frame probe;
  probe.body = frame::IFrame{0, 0, kBytes, {}};
  const Time t_f = link.forward().tx_time(probe);
  // Offer traffic at the sustainable goodput (1-P_F)/t_f: retransmissions
  // consume the rest of the serializer, so feeding faster only bloats the
  // buffer and stretches the final drain.
  const Time feed_interval = t_f * (1.0 / (1.0 - p_f));

  std::function<void()> feed = [&] {
    if (sim.now() + drain_margin >= lifetime) {
      tx.close();
      return;
    }
    if (tx.accepting() && tx.sending_buffer_depth() < 2000) {
      sim::Packet p;
      p.id = ids.next();
      p.bytes = kBytes;
      p.created_at = sim.now();
      tracker.note_submitted(p);
      tx.submit(p);
    }
    sim.schedule_in(feed_interval, feed);
  };
  tx.open();
  sim.schedule_in(Time{}, feed);
  sim.run_until(lifetime);

  out.delivered = tracker.unique_delivered();
  out.utilization = static_cast<double>(out.delivered) * kBytes * 8.0 /
                    (lifetime.sec() * ccfg.data_rate_bps);
  return out;
}

void run() {
  banner("E13 (extension)",
         "session lifecycle inside a finite link lifetime (100 Mbps)",
         "initialization/close overhead is one round trip + drain margin; "
         "its cost fades as the link lifetime grows, so even minute-scale "
         "LAMS windows reach the protocol's steady-state efficiency");

  for (const double p_f : {0.0, 0.1}) {
    std::printf("\n-- P_F = %.2f --\n", p_f);
    Table t{{"lifetime[ms]", "init[ms]", "delivered", "utilization",
             "closed-ok"}};
    for (const std::int64_t ms : {100, 250, 500, 1000, 2000, 5000}) {
      const auto r = run_lifetime(Time::milliseconds(ms), p_f);
      t.cell(static_cast<std::uint64_t>(ms))
          .cell(r.established_ms)
          .cell(r.delivered)
          .cell(r.utilization)
          .cell(std::string(r.closed_in_time ? "yes" : "NO"));
    }
  }
  std::printf(
      "\nutilization = delivered payload bits / (lifetime * rate); the gap\n"
      "to 1.0 at long lifetimes is header+control overhead and (at P_F>0)\n"
      "retransmissions, while the extra gap at short lifetimes is the fixed\n"
      "handshake + drain cost the paper says must be minimized.  A NO in\n"
      "closed-ok marks windows too short for the last retransmission tail\n"
      "to resolve before the light goes out — the resolving-period floor on\n"
      "usable link lifetimes.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
