/// E7 — Burst-error resilience of cumulative NAKs.
///
/// Regenerates the Section 3.3 claim: during a beam-mispointing burst, the
/// I-frames *and* the NAKs they trigger are corrupted together; cumulative
/// NAKs keep information alive for C_depth·W_cp, so no frame is lost and no
/// resynchronization stall occurs "provided C_depth·W_cp > L_burst".
/// SR-HDLC survives on timeouts and loses throughput instead.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E7", "Gilbert-Elliott burst channel, burst-length sweep",
         "zero loss for LAMS whenever C_depth*W_cp (20 ms) > L_burst; "
         "efficiency degrades gracefully while SR-HDLC pays timeout stalls");

  for (const std::uint32_t c_depth : {4u, 8u}) {
    std::printf("\n-- C_depth = %u  (NAK survival window C_depth*W_cp = %u ms)"
                " --\n", c_depth, 5 * c_depth);
    Table t{{"L_burst[ms]", "lams:state", "lams:lost", "lams:eff",
             "lams:reqnak", "hdlc:eff", "hdlc:timeouts"}};
    for (const std::int64_t burst_ms : {1, 2, 5, 10, 15, 30}) {
      auto ge = [&](sim::ScenarioConfig& cfg) {
        cfg.forward_error.kind = sim::ErrorConfig::Kind::kGilbertElliott;
        cfg.forward_error.gilbert.good_ber = 1e-8;
        cfg.forward_error.gilbert.bad_ber = 1e-2;
        cfg.forward_error.gilbert.mean_good = 60_ms;
        cfg.forward_error.gilbert.mean_bad = Time::milliseconds(burst_ms);
        cfg.reverse_error = cfg.forward_error;  // NAKs die in the same bursts
      };

      auto lams_cfg = default_config(sim::Protocol::kLams);
      lams_cfg.lams.cumulation_depth = c_depth;
      ge(lams_cfg);
      sim::Scenario lams{lams_cfg};
      workload::submit_batch(lams.simulator(), lams.sender(), lams.tracker(),
                             lams.ids(), 5000, lams_cfg.frame_bytes);
      lams.run_to_completion(600_s);
      const auto lr = lams.report();
      const bool failed =
          lams.lams_sender()->mode() == lams::LamsSender::Mode::kFailed;

      auto hdlc_cfg = default_config(sim::Protocol::kSrHdlc);
      ge(hdlc_cfg);
      sim::Scenario hdlc{hdlc_cfg};
      workload::submit_batch(hdlc.simulator(), hdlc.sender(), hdlc.tracker(),
                             hdlc.ids(), 5000, hdlc_cfg.frame_bytes);
      hdlc.run_to_completion(600_s);
      const auto hr = hdlc.report();

      t.cell(static_cast<std::uint64_t>(burst_ms))
          .cell(std::string(failed ? "LINK-FAILED" : "ok"))
          .cell(failed ? std::uint64_t{0} : lr.lost)
          .cell(lr.efficiency)
          .cell(lams.lams_sender()->request_naks_sent())
          .cell(hr.efficiency)
          .cell(hdlc.sr_sender()->timeouts());
    }
  }
  std::printf(
      "\nWhen L_burst exceeds the NAK survival window the sender legitimately\n"
      "declares the link failed (the paper's resynchronization case) and the\n"
      "undelivered residue stays in the sending buffer: still zero *loss*.\n"
      "Raising C_depth to cover L_burst (second table) restores completion,\n"
      "exactly the paper's provisioning rule C_depth*W_cp > L_burst.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
