/// E6 — The N_total retransmission-inflation recursion.
///
/// Regenerates the Section 4 subperiod recursion: under sustained load the
/// expected total number of I-frame transmissions needed to introduce N new
/// frames, N_total(N), versus the geometric closed form N/(1−P_R) and the
/// simulator's actual transmission count.

#include "bench_common.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::bench;

void run() {
  banner("E6", "total I-frame transmissions N_total(N) for N = 10,000",
         "the subperiod recursion converges to N/(1-P_R); the simulator's "
         "transmission count matches both");

  const std::uint64_t n = 10'000;
  Table t{{"P_R(=P_F)", "recursion", "geometric", "sim", "sim/geo"}};
  for (const double p_f : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    auto cfg = default_config(sim::Protocol::kLams);
    set_fixed_errors(cfg, p_f, 0.005);
    sim::Scenario probe{cfg};
    const auto params = probe.analysis_params();
    const double h = analysis::h_frame_lams(params) / params.t_f;

    const auto r = run_batch(cfg, n);

    const double rec = analysis::n_total(static_cast<double>(n), h, p_f);
    const double geo = analysis::n_total_geometric(static_cast<double>(n), p_f);
    t.cell(p_f)
        .cell(rec)
        .cell(geo)
        .cell(r.iframe_tx)
        .cell(static_cast<double>(r.iframe_tx) / geo);
  }
}

}  // namespace

int main() {
  run();
  return 0;
}
