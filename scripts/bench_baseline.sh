#!/usr/bin/env bash
# Refresh the checked-in performance records at the repo root:
#
#   BENCH_kernel.json  — event-kernel workload rates (bench_kernel --json)
#                        next to the frozen pre-overhaul baseline, which was
#                        measured by compiling bench/kernel_workloads.hpp
#                        against the old std::priority_queue kernel with the
#                        same -O3 flags on the same host.
#   BENCH_framepath.json — end-to-end frame-path rates (bench_framepath
#                        --json): CRC throughput, codec round-trips, and
#                        frames/sec through the full channel/network stack,
#                        next to the frozen pre-optimization baseline
#                        (bytewise CRC, per-frame kernel events, map-backed
#                        forwarding, AoS in-flight table) measured by
#                        compiling bench/framepath_workloads.hpp against the
#                        pre-PR sources with the same -O3 flags.
#   BENCH_sweep.json   — wall-clock of the 250-seed chaos soak, serial vs
#                        `lamsdlc_cli chaos --jobs $(nproc)`, plus a check
#                        that both produce identical output.
#   BENCH_network.json — constellation-scale network runs (bench_network
#                        --json): million-packet serial throughput over the
#                        112-sat Walker, the same workload at several PDES
#                        partition counts (wall ratio + report identity),
#                        and a 3000 s contact-churn run with LAMS failover.
#                        The partitions=1 run IS the frozen serial baseline
#                        (identical code path, no threads); the recorded
#                        host core count frames the PDES ratios honestly —
#                        on one core they price coordination overhead, not
#                        speedup.
#   BENCH_obs.json     — live-telemetry cost (bench_obs --json): the
#                        always-on flight recorder and the full daemon
#                        telemetry chain A/B'd on the byte-accurate frame
#                        path, plus the status endpoint under scrape load.
#
# Run after any kernel or frame-path change, on an otherwise idle machine.
#
# Usage: scripts/bench_baseline.sh [build-dir]     (default build/)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_kernel"
FRAMEPATH="$BUILD_DIR/bench/bench_framepath"
CLI="$BUILD_DIR/tools/lamsdlc_cli"
OPS=2000000
SOAK_SEEDS=250

[ -x "$BENCH" ] && [ -x "$FRAMEPATH" ] && [ -x "$CLI" ] || {
  echo "build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
}

echo "== kernel workloads ($OPS ops, best of 3) =="
CURRENT_JSON="$("$BENCH" --json "$OPS")"
echo "$CURRENT_JSON"

# The baseline block is frozen: these numbers reproduce only against the
# pre-overhaul kernel sources and are kept for honest before/after context.
python3 - "$CURRENT_JSON" > BENCH_kernel.json <<'EOF'
import json, sys

current = json.loads(sys.argv[1])
baseline = {
    "kernel": "std::priority_queue + per-event heap std::function + "
              "unordered_map registry (pre-overhaul)",
    "schedule_fire_ops_per_sec": 634923,
    "cancel_heavy_ops_per_sec": 1151920,
    "timer_rearm_ops_per_sec": 1002718,
}
keys = ["schedule_fire_ops_per_sec", "cancel_heavy_ops_per_sec",
        "timer_rearm_ops_per_sec"]
out = {
    "workload_ops": current["ops"],
    "flags": "g++ -O3 -DNDEBUG (CMake Release)",
    "workloads": "bench/kernel_workloads.hpp (identical code for both kernels)",
    "baseline": baseline,
    "current": {
        "kernel": "inline binary heap (24-byte entries) + slot-table "
                  "callbacks (core::InlineFunction, 48-byte SBO) + "
                  "generation-tagged ids with tombstone compaction",
        **{k: current[k] for k in keys},
    },
    "speedup": {k: round(current[k] / baseline[k], 2) for k in keys},
}
json.dump(out, sys.stdout, indent=2)
print()
EOF
echo "wrote BENCH_kernel.json"

echo "== frame-path workloads (best of 3) =="
FRAMEPATH_JSON="$("$FRAMEPATH" --json)"
echo "$FRAMEPATH_JSON"

# The baseline block is frozen: measured by compiling the identical
# bench/framepath_workloads.hpp against the pre-optimization frame path
# (bytewise CRC loops, one kernel event per in-flight frame, std::map packet
# headers / next-hop tables, unordered_map in-flight slots) with the same
# flags on the same host.
python3 - "$FRAMEPATH_JSON" > BENCH_framepath.json <<'EOF'
import json, sys

current = json.loads(sys.argv[1])
baseline = {
    "frame_path": "bytewise CRC + one kernel event per in-flight frame + "
                  "std::map forwarding tables + unordered_map in-flight "
                  "slots (pre-optimization)",
    "crc_backend": "bytewise (reference)",
    "crc16_64k_mb_per_sec": 346,
    "crc32_64k_mb_per_sec": 381,
    "codec_roundtrip_256B_frames_per_sec": 634760,
    "codec_roundtrip_8KB_frames_per_sec": 19550,
    "singlelink_fast_1KB_frames_per_sec": 1610719,
    "singlelink_fast_1KB_sim_gbps_per_wall_sec": 13.20,
    "singlelink_byte_256B_frames_per_sec": 380494,
    "singlelink_byte_8KB_frames_per_sec": 20239,
    "singlelink_byte_8KB_sim_gbps_per_wall_sec": 1.33,
    "multihop_4hop_1KB_hopframes_per_sec": 923193,
}
keys = [k for k in baseline if isinstance(baseline[k], (int, float))]
out = {
    "scale": current["scale"],
    "flags": "g++ -O3 -DNDEBUG (CMake Release)",
    "workloads": "bench/framepath_workloads.hpp (identical code for both "
                 "frame paths; public API only)",
    "baseline": baseline,
    "current": {
        "frame_path": "slice-by-8 CRC (hw crc32 where compiled in) + "
                      "batched transit-queue delivery + flat arena "
                      "forwarding tables + SoA in-flight table",
        "crc_backend": current["crc_backend"],
        **{k: current[k] for k in keys},
    },
    "speedup": {k: round(current[k] / baseline[k], 2) for k in keys},
}
json.dump(out, sys.stdout, indent=2)
print()
EOF
echo "wrote BENCH_framepath.json"

echo "== chaos soak wall-clock ($SOAK_SEEDS seeds) =="
JOBS="$(nproc)"
t0=$(date +%s%N)
"$CLI" chaos --seed 1 --seeds "$SOAK_SEEDS" --jobs 1 > /tmp/bench_sweep_serial.txt
t1=$(date +%s%N)
"$CLI" chaos --seed 1 --seeds "$SOAK_SEEDS" --jobs "$JOBS" > /tmp/bench_sweep_par.txt
t2=$(date +%s%N)
SERIAL_MS=$(( (t1 - t0) / 1000000 ))
PAR_MS=$(( (t2 - t1) / 1000000 ))
diff /tmp/bench_sweep_serial.txt /tmp/bench_sweep_par.txt > /dev/null ||
  { echo "FATAL: parallel sweep output differs from serial" >&2; exit 1; }
echo "serial ${SERIAL_MS} ms, --jobs $JOBS ${PAR_MS} ms (outputs identical)"

python3 - "$SOAK_SEEDS" "$JOBS" "$SERIAL_MS" "$PAR_MS" > BENCH_sweep.json <<'EOF'
import json, sys

seeds, jobs, serial_ms, par_ms = (int(a) for a in sys.argv[1:5])
json.dump({
    "workload": f"lamsdlc_cli chaos --seed 1 --seeds {seeds}",
    "cores": jobs,
    "serial_wall_ms": serial_ms,
    "parallel_wall_ms": par_ms,
    "speedup": round(serial_ms / par_ms, 2) if par_ms else None,
    "outputs_identical": True,
}, sys.stdout, indent=2)
print()
EOF
echo "wrote BENCH_sweep.json"

echo "== constellation network runs (bench_network, full scale) =="
NETWORK="$BUILD_DIR/bench/bench_network"
[ -x "$NETWORK" ] || { echo "missing $NETWORK" >&2; exit 1; }
NETWORK_JSON="$("$NETWORK" --json)"
echo "$NETWORK_JSON"

python3 - "$NETWORK_JSON" "$(nproc)" > BENCH_network.json <<'EOF'
import json, sys

current = json.loads(sys.argv[1])
json.dump({
    "workload": "bench_network --json (Walker 112/8, 224 ISLs; see "
                "bench/bench_network.cpp)",
    "flags": "g++ -O3 -DNDEBUG (CMake Release)",
    "host_cores": int(sys.argv[2]),
    "note": "partitions=1 is the frozen serial baseline (same code path, "
            "no threads); wall_vs_serial on a single-core host measures "
            "PDES coordination overhead, on a multi-core host it becomes "
            "speedup.  report_identical must always be true.",
    **current,
}, sys.stdout, indent=2)
print()
EOF
echo "wrote BENCH_network.json"

echo "== live telemetry cost (bench_obs, best of 5 interleaved) =="
OBS="$BUILD_DIR/bench/bench_obs"
[ -x "$OBS" ] || { echo "missing $OBS" >&2; exit 1; }
OBS_JSON="$("$OBS" --json)"
echo "$OBS_JSON"

python3 - "$OBS_JSON" > BENCH_obs.json <<'EOF'
import json, sys

current = json.loads(sys.argv[1])
json.dump({
    "workload": "bench_obs --json (byte-accurate single-link A/B/C + "
                "status endpoint under scrape load; see bench/bench_obs.cpp)",
    "flags": "g++ -O3 -DNDEBUG (CMake Release)",
    "note": "headline is overhead_recorder_byte_8KB_pct — the always-on "
            "flight-recorder ring on the byte-level frame path (acceptance "
            "bar: <= 3%).  The 'full' rows add the metrics collector "
            "(string-keyed registry updates per event), which is what "
            "lamsdlcd attaches per session by default; its cost is "
            "recorded honestly, not hidden.  256B rows stress per-event "
            "cost (tiny frames, extreme event rate per byte).",
    **current,
}, sys.stdout, indent=2)
print()
EOF
echo "wrote BENCH_obs.json"
