#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to find:
#
#   1. tier-1: regular build + the whole ctest suite
#   2. sanitizers: ASan/UBSan build + full suite (scripts/check_sanitize.sh)
#   3. chaos smoke: 25 seeded fault schedules under the invariant checker,
#      with event capture enabled — every run must also produce an .ldlcap
#      file that `lamsdlc_cli inspect` decodes cleanly.
#   4. trace smoke (non-gating): one sampled chaos capture pushed through
#      `lamsdlc_cli trace --perfetto` and scripts/check_perfetto.py.
#   5. verify smoke: the property-fuzzing + differential-oracle harness
#      (docs/VERIFICATION.md) over LAMSDLC_VERIFY_SEEDS hostile seeds and
#      LAMSDLC_VERIFY_FUZZ codec mutants — gating; any invariant violation,
#      oracle divergence or fuzz property failure fails the build and
#      prints a shrunk `lamsdlc_cli verify --repro` command line.
#   6. corrupt-state smoke: LAMSDLC_CORRUPT_SEEDS seeded state-corruption
#      schedules (docs/VERIFICATION.md, self-stabilization oracle) run
#      against the *sanitized* CLI from step 2 — gating; endpoint-state
#      mutation plus recovery is exactly where a stray read/UB would hide.
#   7. perf smoke (non-gating): kernel workload rates, printed for trend
#      watching; compare against BENCH_kernel.json by hand or with
#      scripts/bench_baseline.sh.
#
# Usage: scripts/ci.sh [build-dir]       (default build/)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier-1: build + tests =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== sanitized build + tests =="
scripts/check_sanitize.sh

echo "== chaos smoke (25 seeds, capture enabled) =="
CLI="$BUILD_DIR/tools/lamsdlc_cli"
CAPDIR="$(mktemp -d)"
trap 'rm -rf "$CAPDIR"' EXIT
for seed in $(seq 1 25); do
  cap="$CAPDIR/chaos-seed-$seed.ldlcap"
  "$CLI" capture --seed "$seed" --out "$cap" >/dev/null
  "$CLI" inspect "$cap" --summary >/dev/null
done
echo "25 chaos seeds OK, captures decode cleanly"

echo "== trace smoke (non-gating) =="
# Span-tree reconstruction + Perfetto export over one sampled chaos seed.
# The trace tooling is young; report breakage loudly but do not gate on it.
(
  set -e
  cap="$CAPDIR/trace-smoke.ldlcap"
  "$CLI" capture --seed 7 --sample-ms 5 --out "$cap" >/dev/null
  "$CLI" trace "$cap" --perfetto "$CAPDIR/trace-smoke.json" >/dev/null
  python3 scripts/check_perfetto.py "$CAPDIR/trace-smoke.json"
) || echo "[warn] trace smoke failed (non-gating)"

echo "== verify smoke (${LAMSDLC_VERIFY_SEEDS:-40} seeds, ${LAMSDLC_VERIFY_FUZZ:-4000} fuzz iters) =="
"$CLI" verify --seeds "${LAMSDLC_VERIFY_SEEDS:-40}" \
              --fuzz "${LAMSDLC_VERIFY_FUZZ:-4000}" --jobs 0

echo "== corrupt-state smoke (${LAMSDLC_CORRUPT_SEEDS:-40} seeds, ASan/UBSan) =="
# Run the self-stabilization sweep on the instrumented binary from step 2:
# live endpoint-state mutation + RESYNC recovery is the code most likely to
# harbour a latent out-of-bounds read or UB, so sanitize exactly this path.
ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
"build-asan/tools/lamsdlc_cli" verify --corrupt-state \
    --seeds "${LAMSDLC_CORRUPT_SEEDS:-40}" --jobs 0

echo "== perf smoke (non-gating) =="
# Timings on shared CI hosts are too noisy to gate on; print them so a
# regression shows up in the log, but never fail the build over them.
"$BUILD_DIR/bench/bench_kernel" --json 500000 ||
  echo "[warn] perf smoke failed (non-gating)"

echo "ci green"
