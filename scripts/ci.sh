#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to find:
#
#   1. tier-1: regular build + the whole ctest suite
#   2. sanitizers: ASan/UBSan build + full suite (scripts/check_sanitize.sh)
#   3. chaos smoke: 25 seeded fault schedules under the invariant checker,
#      with event capture enabled — every run must also produce an .ldlcap
#      file that `lamsdlc_cli inspect` decodes cleanly.
#   4. trace smoke (non-gating): one sampled chaos capture pushed through
#      `lamsdlc_cli trace --perfetto` and scripts/check_perfetto.py.
#   5. verify smoke: the property-fuzzing + differential-oracle harness
#      (docs/VERIFICATION.md) over LAMSDLC_VERIFY_SEEDS hostile seeds and
#      LAMSDLC_VERIFY_FUZZ codec mutants — gating; any invariant violation,
#      oracle divergence or fuzz property failure fails the build and
#      prints a shrunk `lamsdlc_cli verify --repro` command line.
#   6. corrupt-state smoke: LAMSDLC_CORRUPT_SEEDS seeded state-corruption
#      schedules (docs/VERIFICATION.md, self-stabilization oracle) run
#      against the *sanitized* CLI from step 2 — gating; endpoint-state
#      mutation plus recovery is exactly where a stray read/UB would hide.
#   7. PDES identity smoke: one constellation run serial vs 4-way
#      partitioned through the CLI — metrics JSON and capture bytes must be
#      identical (gating).
#   8. perf smoke (non-gating): kernel + frame-path + constellation network
#      + live-telemetry workload rates, printed for trend watching; compare
#      against BENCH_*.json by hand or with scripts/bench_baseline.sh.
#
#   The live interop smoke (between 6 and 7) additionally gates on the
#   daemon's introspection endpoint: a mid-transfer `status` query must
#   parse as JSON with nonzero session counters.
#
# Usage: scripts/ci.sh [build-dir]       (default build/)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier-1: build + tests =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== sanitized build + tests =="
scripts/check_sanitize.sh

echo "== chaos smoke (25 seeds, capture enabled) =="
CLI="$BUILD_DIR/tools/lamsdlc_cli"
CAPDIR="$(mktemp -d)"
trap 'rm -rf "$CAPDIR"' EXIT
for seed in $(seq 1 25); do
  cap="$CAPDIR/chaos-seed-$seed.ldlcap"
  "$CLI" capture --seed "$seed" --out "$cap" >/dev/null
  "$CLI" inspect "$cap" --summary >/dev/null
done
echo "25 chaos seeds OK, captures decode cleanly"

echo "== trace smoke (non-gating) =="
# Span-tree reconstruction + Perfetto export over one sampled chaos seed.
# The trace tooling is young; report breakage loudly but do not gate on it.
(
  set -e
  cap="$CAPDIR/trace-smoke.ldlcap"
  "$CLI" capture --seed 7 --sample-ms 5 --out "$cap" >/dev/null
  "$CLI" trace "$cap" --perfetto "$CAPDIR/trace-smoke.json" >/dev/null
  python3 scripts/check_perfetto.py "$CAPDIR/trace-smoke.json"
) || echo "[warn] trace smoke failed (non-gating)"

echo "== verify smoke (${LAMSDLC_VERIFY_SEEDS:-40} seeds, ${LAMSDLC_VERIFY_FUZZ:-4000} fuzz iters) =="
"$CLI" verify --seeds "${LAMSDLC_VERIFY_SEEDS:-40}" \
              --fuzz "${LAMSDLC_VERIFY_FUZZ:-4000}" --jobs 0

echo "== corrupt-state smoke (${LAMSDLC_CORRUPT_SEEDS:-40} seeds, ASan/UBSan) =="
# Run the self-stabilization sweep on the instrumented binary from step 2:
# live endpoint-state mutation + RESYNC recovery is the code most likely to
# harbour a latent out-of-bounds read or UB, so sanitize exactly this path.
ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
"build-asan/tools/lamsdlc_cli" verify --corrupt-state \
    --seeds "${LAMSDLC_CORRUPT_SEEDS:-40}" --jobs 0

echo "== live loopback interop smoke (gating) =="
# Two daemons over real UDP loopback, impaired forward link, two concurrent
# client streams pushed through the bridge.  Gates on: byte-exact delivery
# of both streams, clean session teardown on both ends (daemon exit status),
# and a bounded wall-clock budget (timeout).  docs/RUNTIME.md describes the
# setup.
DAEMON="$BUILD_DIR/tools/lamsdlcd"
LIVEDIR="$CAPDIR/live"
mkdir -p "$LIVEDIR"
timeout 60 "$DAEMON" --deliver-dir "$LIVEDIR" --exit-after-streams 2 \
  > "$LIVEDIR/recv.log" &
RECV_PID=$!
for _ in $(seq 100); do
  grep -q '^ready' "$LIVEDIR/recv.log" 2>/dev/null && break; sleep 0.1
done
RPORT="$(awk '/^udp /{print $2}' "$LIVEDIR/recv.log")"
# --status on the sender so the introspection port can be queried live;
# --rate slows the modeled serialization enough that "mid-transfer" is an
# observable window rather than a race (the ARQ gate below is rate-blind).
timeout 60 "$DAEMON" --peer "127.0.0.1:$RPORT" --bridge --session-base 41 \
  --impair --p-drop 0.05 --p-corrupt 0.02 --fault-seed 9 --rate 4e6 \
  --status --exit-after-streams 2 > "$LIVEDIR/send.log" &
SEND_PID=$!
for _ in $(seq 100); do
  grep -q '^ready' "$LIVEDIR/send.log" 2>/dev/null && break; sleep 0.1
done
BPORT="$(awk '/^bridge /{print $2}' "$LIVEDIR/send.log")"
STPORT="$(awk '/^status /{print $2}' "$LIVEDIR/send.log")"
# Gating status check: the snapshot must parse as JSON and show live
# protocol work (nonzero lams.sender.iframe_tx) while the transfer runs.
cat > "$CAPDIR/status_check.py" <<'PY'
import json, socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5) as s:
    s.sendall(b"status\n")
    buf = b""
    while True:
        d = s.recv(65536)
        if not d:
            break
        buf += d
doc = json.loads(buf)
assert doc["daemon"]["pid"] > 0
assert "sessions_out" in doc and "recorder" in doc
sys.exit(0 if doc["registry"]["counters"].get("lams.sender.iframe_tx", 0) > 0
         else 1)
PY
head -c 262144 /dev/urandom > "$LIVEDIR/in1.bin"
head -c 393216 /dev/urandom > "$LIVEDIR/in2.bin"
"$CLI" connect --port "$BPORT" --in "$LIVEDIR/in1.bin" >/dev/null &
C1_PID=$!
"$CLI" connect --port "$BPORT" --in "$LIVEDIR/in2.bin" >/dev/null &
C2_PID=$!
STATUS_OK=0
for _ in $(seq 80); do
  if python3 "$CAPDIR/status_check.py" "$STPORT" 2>/dev/null; then
    STATUS_OK=1; break
  fi
  sleep 0.05
done
[ "$STATUS_OK" = 1 ]
echo "mid-transfer status snapshot OK (port $STPORT)"
wait "$C1_PID"; wait "$C2_PID"   # each exits 0 iff its stream got "OK <n>"
wait "$SEND_PID"; wait "$RECV_PID"  # exit 0 iff no stream failed either end
# Byte-exactness: which bridge connection got which session id is a race,
# so match the two delivered files against the two inputs as multisets.
in_sums="$(cat "$LIVEDIR"/in1.bin "$LIVEDIR"/in2.bin | wc -c):$(md5sum "$LIVEDIR"/in?.bin | awk '{print $1}' | sort | md5sum | awk '{print $1}')"
out_sums="$(cat "$LIVEDIR"/stream-*.bin | wc -c):$(md5sum "$LIVEDIR"/stream-*.bin | awk '{print $1}' | sort | md5sum | awk '{print $1}')"
[ "$(ls "$LIVEDIR"/stream-*.bin | wc -l)" = 2 ]
[ "$in_sums" = "$out_sums" ]
echo "two-daemon interop OK ($in_sums)"
# Self-peer run (both endpoints in-process, real kernel round trip) gives a
# capture holding the full span tree; `trace` gates on zero incomplete
# delivered spans.
timeout 60 "$DAEMON" --self-peer --bridge --deliver-dir "$LIVEDIR" \
  --session-base 71 --impair --p-drop 0.05 --fault-seed 3 \
  --capture "$LIVEDIR/cap" --exit-after-streams 2 > "$LIVEDIR/self.log" &
SELF_PID=$!
for _ in $(seq 100); do
  grep -q '^ready' "$LIVEDIR/self.log" 2>/dev/null && break; sleep 0.1
done
SPORT="$(awk '/^bridge /{print $2}' "$LIVEDIR/self.log")"
"$CLI" connect --port "$SPORT" --in "$LIVEDIR/in1.bin" >/dev/null
wait "$SELF_PID"
cmp "$LIVEDIR/in1.bin" "$LIVEDIR/stream-p0-s71.bin"
"$CLI" trace "$LIVEDIR/cap-s71.ldlcap" >/dev/null
echo "self-peer capture traces clean"

echo "== PDES identity smoke (gating) =="
# One constellation run, serial vs 4-way partitioned: the metrics registry
# JSON and the raw capture bytes must be identical — any event reordered
# anywhere between partitions diverges the capture stream.  (The exhaustive
# version, including chaos and contact churn, is
# tests/integration/test_pdes_identity.cpp; this re-checks the contract on
# the installed CLI binary.)
PDESDIR="$CAPDIR/pdes"
mkdir -p "$PDESDIR"
for parts in 1 4; do
  "$CLI" network --sats 16 --planes 1 --waves 4 --packets-per-wave 15 \
    --horizon-s 60 --seed 11 --partitions "$parts" \
    --metrics-out "$PDESDIR/m$parts.json" \
    --capture-out "$PDESDIR/c$parts.ldlcap" > "$PDESDIR/r$parts.txt"
done
cmp "$PDESDIR/m1.json" "$PDESDIR/m4.json"
cmp "$PDESDIR/c1.ldlcap" "$PDESDIR/c4.ldlcap"
diff <(grep -v '^partitions' "$PDESDIR/r1.txt") \
     <(grep -v '^partitions' "$PDESDIR/r4.txt")
echo "PDES@4 byte-identical to serial (metrics + capture + report)"

echo "== perf smoke (non-gating) =="
# Timings on shared CI hosts are too noisy to gate on; print them so a
# regression shows up in the log, but never fail the build over them.
"$BUILD_DIR/bench/bench_kernel" --json 500000 ||
  echo "[warn] perf smoke failed (non-gating)"
# Frame-path rates (CRC, codec, channel, multi-hop); compare against
# BENCH_framepath.json by hand or with scripts/bench_baseline.sh.
"$BUILD_DIR/bench/bench_framepath" --json ||
  echo "[warn] framepath perf smoke failed (non-gating)"
# Constellation network rates at 2% load; compare against
# BENCH_network.json (full scale) by hand or with scripts/bench_baseline.sh.
"$BUILD_DIR/bench/bench_network" --json 0.02 ||
  echo "[warn] network perf smoke failed (non-gating)"
# Live-telemetry cost: flight-recorder / collector overhead on the frame
# path plus endpoint scrape throughput; compare against BENCH_obs.json.
"$BUILD_DIR/bench/bench_obs" --json ||
  echo "[warn] obs perf smoke failed (non-gating)"

echo "ci green"
