#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# experiment table (E1..E16), and capture the outputs at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_e*; do
    "$b"
    echo
  done
  ./build/bench/bench_kernel --benchmark_min_time=0.1
} 2>&1 | tee bench_output.txt

echo "Done: see test_output.txt and bench_output.txt"
