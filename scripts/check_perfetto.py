#!/usr/bin/env python3
"""Schema-check a Chrome trace-event JSON file produced by `lamsdlc_cli trace
--perfetto`.

Validates the subset of the trace-event format the exporter emits, i.e. what
ui.perfetto.dev / chrome://tracing need to load the file:

  * top level is an object with "traceEvents" (non-empty array)
  * every event is an object with string "ph" and integer "pid"
  * non-metadata events carry a numeric "ts"
  * async begin/end ("b"/"e") are balanced per (cat, id, name) and nest
    in nondecreasing time order
  * flow steps ("s"/"f") are paired per id
  * counter events ("C") carry a numeric-valued "args" object

Exit 0 when the file passes, 1 with a diagnostic when it does not.

Usage: scripts/check_perfetto.py trace.json
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_perfetto: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail('"traceEvents" must be a non-empty array')

    async_open = {}   # (cat, id, name) -> open count
    flow_starts = set()
    flow_ends = set()
    counts = {}

    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        ph = e.get("ph")
        if not isinstance(ph, str) or not ph:
            fail(f'{where} has no "ph"')
        if not isinstance(e.get("pid"), int):
            fail(f'{where} (ph={ph}) has no integer "pid"')
        counts[ph] = counts.get(ph, 0) + 1
        if ph != "M" and not isinstance(e.get("ts"), (int, float)):
            fail(f'{where} (ph={ph}) has no numeric "ts"')

        if ph in ("b", "e"):
            key = (e.get("cat"), e.get("id"), e.get("name"))
            if key[1] is None:
                fail(f'{where} async event has no "id"')
            open_count = async_open.get(key, 0)
            if ph == "b":
                async_open[key] = open_count + 1
            else:
                if open_count == 0:
                    fail(f"{where} async end without matching begin: {key}")
                async_open[key] = open_count - 1
        elif ph == "s":
            fid = e.get("id")
            if fid is None:
                fail(f'{where} flow start has no "id"')
            flow_starts.add(fid)
        elif ph == "f":
            fid = e.get("id")
            if fid is None:
                fail(f'{where} flow end has no "id"')
            if e.get("bp") != "e":
                fail(f'{where} flow end must carry bp:"e"')
            flow_ends.add(fid)
        elif ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                fail(f'{where} counter has no "args"')
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    fail(f"{where} counter series {k!r} is not numeric")

    dangling = {k: n for k, n in async_open.items() if n != 0}
    if dangling:
        fail(f"unbalanced async begin/end: {sorted(dangling)[:5]}")
    if flow_starts != flow_ends:
        fail(
            "unpaired flow ids: starts-only="
            f"{sorted(flow_starts - flow_ends)[:5]} "
            f"ends-only={sorted(flow_ends - flow_starts)[:5]}"
        )

    summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"check_perfetto: OK ({len(events)} events: {summary})")


if __name__ == "__main__":
    main()
