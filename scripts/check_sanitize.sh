#!/usr/bin/env bash
# Build the whole tree with ASan + UBSan and run the full test suite.
#
# Usage: scripts/check_sanitize.sh [build-dir]
#
# A separate build directory (default build-asan/) keeps the instrumented
# artifacts out of the regular build.  Sanitizers are configured to abort on
# the first finding (-fno-sanitize-recover=all), so a clean exit means a
# clean run.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLAMSDLC_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes ASan leaks and UBSan reports fail the test that
# triggered them instead of scrolling past.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "sanitized test run clean"
