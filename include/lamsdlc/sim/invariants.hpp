#pragma once
/// \file invariants.hpp
/// \brief Continuous protocol-invariant checking for a running scenario.
///
/// The paper's robustness claims are properties of *every* execution, not of
/// the happy path: zero-loss delivery, no duplicate client delivery despite
/// wire-level duplication, sending-buffer occupancy within the transparent
/// buffer bound, per-frame holding time within the resolving-period bound,
/// and a clean terminal state (all delivered, or a declared unrecoverable
/// failure — never a silent hang).  `InvariantChecker` turns those claims
/// into machine-checked assertions that run *during* the simulation, so a
/// violation is caught at the instant it happens with the simulated clock
/// attached, not post-mortem.
///
/// Usage:
/// \code
///   sim::Scenario s{cfg};
///   sim::InvariantChecker check{s, limits};   // chains into the delivery path
///   ... drive traffic, run the simulator ...
///   check.finish(horizon_reached);            // terminal-state verdict
///   ASSERT_TRUE(check.ok()) << check.summary();
/// \endcode
///
/// Bounds are supplied by the caller because they depend on the fault
/// schedule: in fault-free operation the paper's tight bounds apply, while a
/// scheduled outage lawfully extends holding times by up to the outage length
/// plus the enforced-recovery budget (`InvariantLimits::grace`).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/sim/packet.hpp"
#include "lamsdlc/sim/scenario.hpp"

namespace lamsdlc::sim {

/// Caller-supplied bounds; zero/absent disables the corresponding check.
struct InvariantLimits {
  /// Upper bound on frames held awaiting release (the transparent sending
  /// buffer).  0 = unchecked.
  std::size_t max_outstanding = 0;

  /// Upper bound on any single frame's holding time (first transmission to
  /// release).  Zero = unchecked.  `grace` is added on top.
  Time max_holding{};

  /// Upper bound on the receiving buffer (frames inside the t_proc
  /// pipeline).  The receiver's congestion discard should make this
  /// unreachable whenever `recv_hard_capacity` is finite, so harnesses set
  /// it to that capacity.  0 = unchecked.
  std::size_t max_recv_buffer = 0;

  /// Lawful extension of the time bounds while faults are active: total
  /// scheduled fault/outage span plus the enforced-recovery budget.
  Time grace{};

  /// Duplicate client deliveries are a violation (true for any recoverable
  /// run; a declared link failure with network-layer reroute may lawfully
  /// re-deliver, so failover harnesses turn this off).
  bool expect_no_duplicates = true;

  /// Sampling cadence of the continuous checks.
  Time check_every = Time::milliseconds(1);

  /// "Converges-after" mode (the state-corruption tier's oracle): violations
  /// observed at or before this instant are recorded as *transients* — the
  /// self-stabilization literature's convergence phase, where arbitrary
  /// corrupted state lawfully misbehaves — and do not fail `ok()`.  At the
  /// boundary the one-report latches and baselines re-arm so the steady
  /// state is audited from scratch.  Zero = every violation counts (default).
  Time converge_after{};

  /// Packet ids whose delivery is excused: state corruption destroyed them
  /// (or put them at risk) *inside the endpoint*, which no ARQ can undo —
  /// self-stabilizing ARQ guarantees bounded loss during convergence, not
  /// zero loss.  `finish()` skips these when auditing completeness.
  std::unordered_set<frame::PacketId> excused;

  /// Reproduction seed stamped into every violation message (0 = none).
  std::uint64_t seed = 0;
};

/// Chains between the DLC receiver and the scenario's delivery tracker and
/// audits every delivery plus periodically sampled state.  Violations
/// accumulate with timestamps; the checker never throws or asserts itself so
/// harnesses can report the seed/schedule that reproduces the failure.
class InvariantChecker final : public PacketListener {
 public:
  InvariantChecker(Scenario& s, InvariantLimits limits);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// PacketListener: audits and forwards to the scenario's tracker.
  void on_packet(const Packet& p, Time delivered_at) override;

  /// Terminal-state audit; call exactly once after the run.  \p completed is
  /// the value `run_to_completion` returned.  A run must end either with
  /// every packet delivered and the sender idle, or with the sender having
  /// *declared* failure and every undelivered packet accounted for in its
  /// residue (`take_unresolved`) — anything else is a silent hang or loss.
  void finish(bool completed);

  /// Excuse \p id's delivery after construction — the corruption harness
  /// discovers at-risk packets only as it injects (see
  /// `InvariantLimits::excused`).  No effect once `finish()` ran.
  void excuse(frame::PacketId id) { limits_.excused.insert(id); }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

  /// Violations observed at or before `converge_after` (lawful convergence
  /// transients; informational — they never fail `ok()`).
  [[nodiscard]] const std::vector<std::string>& transients() const noexcept {
    return transients_;
  }

  /// All violations joined into one printable block (empty string when ok).
  [[nodiscard]] std::string summary() const;

 private:
  void periodic_check();
  /// \p terminal: a finish()-time verdict, never excusable as a convergence
  /// transient no matter when the run ended.
  void violate(std::string what, bool terminal = false);
  void rearm_latches();
  void note_event(const obs::Event& e);

  Scenario& scenario_;
  InvariantLimits limits_;
  EventId timer_{0};
  obs::EventBus::SubscriptionId sub_{0};
  std::uint64_t last_duplicates_{0};
  std::uint64_t last_unknown_{0};
  bool finished_{false};
  bool converged_rearm_done_{false};
  // One report per category: a violated bound would otherwise flood the log
  // on every sample until the run ends.
  bool reported_outstanding_{false};
  bool reported_recv_buffer_{false};
  bool reported_holding_{false};
  bool reported_codec_{false};
  bool reported_unknown_{false};
  double holding_baseline_s_{0.0};  ///< Holding max to ignore (pre-boundary).
  std::vector<std::string> violations_;
  std::vector<std::string> transients_;
  /// Last few protocol events (noise kinds skipped) — appended to every
  /// violation so a failing seed's report carries the immediate history.
  std::deque<obs::Event> recent_;
};

}  // namespace lamsdlc::sim
