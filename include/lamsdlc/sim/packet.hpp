#pragma once
/// \file packet.hpp
/// \brief User packets exchanged across a DLC, and the listener interface.

#include <cstdint>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/frame/frame.hpp"

namespace lamsdlc::sim {

/// A network-layer packet handed to a DLC sender for delivery over one link.
///
/// `id` is globally unique; `message_id`/`msg_index`/`msg_count` tie the
/// packet to a segmented message so the destination resequencer (workload
/// module) can reassemble — the responsibility Section 2.3 moves out of the
/// link layer when the in-sequence constraint is relaxed.
struct Packet {
  frame::PacketId id = 0;
  std::uint32_t bytes = 0;
  Time created_at{};
  std::uint64_t message_id = 0;
  std::uint32_t msg_index = 0;
  std::uint32_t msg_count = 1;
  /// Literal payload bytes.  Simulated workloads carry only lengths and
  /// leave this empty (the wire encoder pads with zeros); the live runtime
  /// (rt::SessionMux) fills it so real application bytes ride the I-frame,
  /// and the receiving DLC hands the decoded bytes back up through
  /// `PacketListener`.  When non-empty, `bytes == data.size()`.
  std::vector<std::uint8_t> data;
};

/// Upward delivery interface of a DLC receiver.
class PacketListener {
 public:
  virtual ~PacketListener() = default;
  /// A packet crossed the link.  LAMS-DLC may deliver out of order and (after
  /// an unrecoverable failure) in duplicate; HDLC delivers strictly in order.
  virtual void on_packet(const Packet& p, Time delivered_at) = 0;
};

}  // namespace lamsdlc::sim
