#pragma once
/// \file scenario.hpp
/// \brief One-stop wiring of a protocol pair over a simulated link.
///
/// A `Scenario` owns the simulator, the full-duplex link, a protocol
/// sender/receiver pair (LAMS-DLC, SR-HDLC or GBN-HDLC), and the delivery
/// tracker, so examples/tests/benches can express an experiment in a few
/// lines:
///
/// \code
///   sim::ScenarioConfig cfg;
///   cfg.protocol = sim::Protocol::kLams;
///   cfg.error.p_frame = 0.05;
///   sim::Scenario s{cfg};
///   workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
///                          1000, cfg.frame_bytes);
///   s.run_to_completion(Time::seconds_int(60));
///   auto r = s.report();
/// \endcode

#include <functional>
#include <memory>
#include <optional>

#include "lamsdlc/analysis/model.hpp"
#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/hdlc/gbn.hpp"
#include "lamsdlc/hdlc/sr.hpp"
#include "lamsdlc/lams/config.hpp"
#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/nbdt/nbdt.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/collector.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/error_config.hpp"
#include "lamsdlc/workload/sources.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::sim {

enum class Protocol { kLams, kSrHdlc, kGbnHdlc, kNbdt };

struct ScenarioConfig {
  Protocol protocol = Protocol::kLams;

  /// \name Link
  /// @{
  double data_rate_bps = 300e6;
  Time prop_delay = Time::milliseconds(10);  ///< Fixed one-way delay…
  std::function<Time(Time)> propagation;     ///< …or a range profile override.
  std::uint32_t frame_bytes = 1024;
  std::optional<phy::FecParams> iframe_fec;
  std::optional<phy::FecParams> control_fec;
  /// Serialize every frame through the real byte codec (see
  /// link::SimplexChannel::Config::byte_level).
  bool byte_level_wire = false;
  /// Single armed delivery event per channel instead of one per in-flight
  /// frame (see link::SimplexChannel::Config::batched_delivery); `false`
  /// restores per-frame scheduling for A/B identity tests.
  bool batched_delivery = true;
  /// @}

  ErrorConfig forward_error;  ///< Sender → receiver.
  ErrorConfig reverse_error;  ///< Receiver → sender (control traffic).

  std::uint64_t seed = 1;

  lams::LamsConfig lams;
  hdlc::HdlcConfig hdlc;
  nbdt::NbdtConfig nbdt;

  Tracer tracer;  ///< Optional protocol tracing.

  /// Collect metrics (obs::Registry) from the typed event stream.  Off by
  /// default: with no subscriber the event bus costs one branch per site.
  bool metrics = false;
};

/// End-of-run summary in the paper's terms.
struct ScenarioReport {
  std::uint64_t submitted = 0;
  std::uint64_t unique_delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t lost = 0;  ///< Submitted, never delivered (should be 0!).

  double elapsed_s = 0;            ///< First submit → last unique delivery.
  double throughput_frames_s = 0;  ///< N / D (the paper's eta numerator).
  double efficiency = 0;           ///< (N · t_f) / D in [0, 1].

  double mean_delay_s = 0;
  double mean_holding_s = 0;   ///< Paper's H_frame.
  double mean_send_buffer = 0; ///< Paper's transparent buffer size.
  double peak_send_buffer = 0;
  double mean_recv_buffer = 0;
  double peak_recv_buffer = 0;

  std::uint64_t iframe_tx = 0;
  std::uint64_t iframe_retx = 0;
  std::uint64_t control_tx = 0;

  /// Mean transmissions per delivered frame — the measured counterpart of
  /// the paper's s̄ (mean number of periods per successful delivery).
  double tx_per_frame = 0;
};

/// Owns and wires one complete protocol-over-link simulation.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] DlcSender& sender() noexcept { return *sender_; }
  [[nodiscard]] workload::DeliveryTracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] workload::PacketIdAllocator& ids() noexcept { return ids_; }
  [[nodiscard]] link::FullDuplexLink& link() noexcept { return *link_; }
  [[nodiscard]] DlcStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ScenarioConfig& config() const noexcept { return cfg_; }

  /// Typed protocol event bus; both link directions and the LAMS endpoints
  /// publish here.  Subscribe a capture writer, a recording vector, or rely
  /// on `metrics()` (populated when config().metrics is set).
  [[nodiscard]] obs::EventBus& events() noexcept { return bus_; }
  [[nodiscard]] obs::Registry& metrics() noexcept { return registry_; }

  /// The LAMS receiver when protocol == kLams (else nullptr) — for tests
  /// poking at checkpoint internals.
  [[nodiscard]] lams::LamsReceiver* lams_receiver() noexcept { return lams_rx_.get(); }
  [[nodiscard]] lams::LamsSender* lams_sender() noexcept { return lams_tx_.get(); }
  [[nodiscard]] hdlc::SrSender* sr_sender() noexcept { return sr_tx_.get(); }
  [[nodiscard]] hdlc::SrReceiver* sr_receiver() noexcept { return sr_rx_.get(); }
  [[nodiscard]] hdlc::GbnSender* gbn_sender() noexcept { return gbn_tx_.get(); }
  [[nodiscard]] hdlc::GbnReceiver* gbn_receiver() noexcept { return gbn_rx_.get(); }
  [[nodiscard]] nbdt::NbdtSender* nbdt_sender() noexcept { return nbdt_tx_.get(); }
  [[nodiscard]] nbdt::NbdtReceiver* nbdt_receiver() noexcept { return nbdt_rx_.get(); }

  /// Replace the listener the receiver delivers into (default: the tracker).
  /// Call before traffic starts; the new listener usually chains to the
  /// tracker (see workload::Resequencer).
  void set_listener(PacketListener* l);

  /// Serialization time of a full-size I-frame on the forward channel (t_f).
  [[nodiscard]] Time frame_tx_time() const;

  /// Serialization time of an empty checkpoint on the reverse channel (t_c).
  [[nodiscard]] Time control_tx_time() const;

  /// Advance until every submitted packet is delivered and the sender is
  /// idle, or until \p horizon.  Returns true when completion was reached.
  bool run_to_completion(Time horizon, Time check_every = Time::milliseconds(1));

  [[nodiscard]] ScenarioReport report() const;

  /// The Section 4 closed-form parameters corresponding to this scenario's
  /// configuration — the bridge between simulation and analysis: benches put
  /// `analysis::eta_lams(s.analysis_params(), N)` next to the measured rate.
  [[nodiscard]] analysis::Params analysis_params() const;

 private:
  [[nodiscard]] std::unique_ptr<phy::ErrorModel> make_error(
      const ErrorConfig& e, std::string_view stream) const;

  ScenarioConfig cfg_;
  Simulator sim_;
  DlcStats stats_;
  obs::EventBus bus_;
  obs::Registry registry_;
  std::unique_ptr<obs::MetricsCollector> collector_;
  workload::PacketIdAllocator ids_;
  workload::DeliveryTracker tracker_;

  std::unique_ptr<link::FullDuplexLink> link_;

  std::unique_ptr<lams::LamsSender> lams_tx_;
  std::unique_ptr<lams::LamsReceiver> lams_rx_;
  std::unique_ptr<hdlc::SrSender> sr_tx_;
  std::unique_ptr<hdlc::SrReceiver> sr_rx_;
  std::unique_ptr<hdlc::GbnSender> gbn_tx_;
  std::unique_ptr<hdlc::GbnReceiver> gbn_rx_;
  std::unique_ptr<nbdt::NbdtSender> nbdt_tx_;
  std::unique_ptr<nbdt::NbdtReceiver> nbdt_rx_;

  DlcSender* sender_{nullptr};
};

}  // namespace lamsdlc::sim
