#pragma once
/// \file chaos.hpp
/// \brief Seeded randomized fault-schedule harness ("chaos runs").
///
/// One chaos run builds a LAMS-DLC scenario, draws a random fault schedule
/// from a seed — fault-stage episodes (drop / duplicate / reorder / truncate
/// / corrupt, forward or reverse, windowed), optional full link outages,
/// optional congestion (small receiving buffers + slow processing, forcing
/// Stop-Go and congestion discards), random background channel noise and a
/// random workload shape — then runs it under a `sim::InvariantChecker`.
///
/// Everything is derived deterministically from the seed, so a failing run
/// reproduces from the single number printed in the verdict.  The soak test
/// (`tests/integration/test_chaos_soak.cpp`) sweeps hundreds of seeds; the
/// `chaos` subcommand of `tools/lamsdlc_cli` replays one.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/sim/scenario.hpp"

namespace lamsdlc::sim {

/// What a chaos schedule may contain.  Disabling classes narrows the attack
/// (e.g. reverse-only faults for the feedback-channel experiments).
struct ChaosKnobs {
  std::uint64_t seed = 1;
  std::uint64_t packets = 200;
  std::uint32_t frame_bytes = 1024;
  Time horizon = Time::seconds_int(30);

  /// \name Fault-fate classes a schedule may draw
  /// @{
  bool allow_drop = true;
  bool allow_duplicate = true;
  bool allow_reorder = true;
  bool allow_truncate = true;
  bool allow_corrupt = true;
  /// @}

  /// \name Attack surfaces
  /// @{
  bool allow_forward_faults = true;  ///< I-frame direction episodes.
  bool allow_reverse_faults = true;  ///< Checkpoint direction episodes.
  bool allow_link_outage = true;     ///< Full two-way outages (may exceed the
                                     ///< failure budget → declared failure).
  bool allow_congestion = true;      ///< Small receive buffers + slow t_proc.
  bool allow_base_noise = true;      ///< Random background error models.
  /// @}

  /// \name Feedback-error asymmetry (ROADMAP 5(b))
  /// The paper's E-series fixes the forward channel and sweeps the feedback
  /// error rate; these knobs pin the reverse channel independently of the
  /// seed-drawn schedule so a sensitivity sweep varies *only* the feedback
  /// quality.
  /// @{
  /// >= 0: pin the reverse-channel per-frame error probability to exactly
  /// this value (applied after — and overriding — any drawn base noise).
  /// Negative (default) leaves the drawn schedule alone.
  double reverse_noise = -1.0;
  /// Non-zero length: a reverse-only outage window (the forward channel
  /// stays up — checkpoints silently vanish, the sender's silence detector
  /// must carry the run).
  Time reverse_outage_from{};
  Time reverse_outage_len{};
  /// @}

  /// Enable the self-stabilization layer (periodic self-audit, progress
  /// watchdog, RESYNC recovery) in the endpoint config.  Off by default so
  /// existing chaos behavior is bit-identical.
  bool self_heal = false;

  /// Ablation: wire the receiver's duplicate suppression off to prove the
  /// invariant checker catches duplicate client delivery.  Tests only.
  bool suppress_duplicates = true;

  /// Forwarded to ScenarioConfig::batched_delivery; `false` restores
  /// one-kernel-event-per-frame channel scheduling.  Exists so the
  /// byte-identity regression test can A/B the same chaos schedule both
  /// ways and assert nothing observable moved.
  bool batched_delivery = true;

  /// Non-zero: run an obs::Sampler at this cadence, so the event stream (and
  /// any capture the tap attaches) carries periodic registry snapshots for
  /// `lamsdlc_cli inspect --timeline`.
  Time sample_period{};

  /// Invoked on the freshly built scenario before any traffic starts —
  /// the hook for attaching observers (e.g. an obs::CaptureWriter
  /// subscription on `scenario.events()` for `lamsdlc_cli capture`).
  std::function<void(Scenario&)> tap;
};

/// Outcome of one chaos run.
struct ChaosVerdict {
  bool ok = false;               ///< Every invariant held.
  bool completed = false;        ///< All packets delivered, sender idle.
  bool declared_failed = false;  ///< Sender declared unrecoverable failure.
  std::vector<std::string> violations;
  /// Printable reproduction recipe: the seed plus the full drawn schedule.
  std::string schedule;
  ScenarioReport report;

  /// \name Fault/link counters (both directions summed)
  /// @{
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_truncated = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t reverse_faulted = 0;  ///< Fault events on the reverse channel.
  std::uint64_t congestion_discards = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t request_naks = 0;
  std::uint64_t checkpoints_sent = 0;
  /// @}

  /// Full obs::Registry snapshot of the run (chaos always enables metrics);
  /// the counters above are read back from the same registry.
  std::string metrics_json;

  /// Verdict + violations + schedule in one printable block.
  [[nodiscard]] std::string to_string() const;
};

/// Run one seeded chaos scenario to termination and audit it.
[[nodiscard]] ChaosVerdict run_chaos(const ChaosKnobs& knobs);

}  // namespace lamsdlc::sim
