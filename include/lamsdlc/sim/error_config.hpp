#pragma once
/// \file error_config.hpp
/// \brief Declarative channel-error configuration shared by the scenario
/// harness and the multi-hop network builder.

#include <memory>
#include <string_view>

#include "lamsdlc/phy/error_model.hpp"

namespace lamsdlc::sim {

/// Channel error configuration, one per direction.
struct ErrorConfig {
  enum class Kind { kPerfect, kBernoulliBer, kFixedFrameProb, kGilbertElliott };
  Kind kind = Kind::kPerfect;
  double ber = 1e-7;        ///< For kBernoulliBer.
  double p_frame = 0.0;     ///< For kFixedFrameProb: P_F on this direction.
  double p_control = 0.0;   ///< For kFixedFrameProb: P_C on this direction.
  phy::GilbertElliottModel::Params gilbert;  ///< For kGilbertElliott.
};

/// Instantiate the error process described by \p e, seeded from
/// (\p run_seed, \p stream) so distinct channels draw independent noise.
[[nodiscard]] std::unique_ptr<phy::ErrorModel> make_error_model(
    const ErrorConfig& e, std::uint64_t run_seed, std::string_view stream);

}  // namespace lamsdlc::sim
