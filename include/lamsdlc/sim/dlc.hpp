#pragma once
/// \file dlc.hpp
/// \brief Protocol-agnostic DLC endpoint interfaces and common statistics.
///
/// Both protocol implementations (`lams`, `hdlc`) expose the same sender
/// interface so workloads, examples and benches can swap protocols freely.

#include <cstdint>

#include "lamsdlc/core/stats.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::sim {

/// Statistics every DLC sender/receiver pair maintains, in units the paper's
/// analysis uses (seconds for times, frames for buffer sizes).
struct DlcStats {
  std::uint64_t packets_submitted = 0;
  std::uint64_t packets_delivered = 0;   ///< Up-calls at the receiver.
  std::uint64_t duplicates_delivered = 0;///< Same PacketId delivered twice.
  std::uint64_t iframe_tx = 0;           ///< I-frames put on the wire.
  std::uint64_t iframe_retx = 0;         ///< Of which retransmissions.
  std::uint64_t control_tx = 0;          ///< Control frames (both directions).
  std::uint64_t control_corrupted_rx = 0;
  std::uint64_t iframe_corrupted_rx = 0;

  RunningStat packet_delay_s;    ///< Submit → delivered (per packet).
  RunningStat holding_time_s;    ///< First transmission → release from the
                                 ///< sending buffer (paper's H_frame).
  TimeWeightedStat send_buffer;  ///< Sending-buffer occupancy in frames.
  TimeWeightedStat recv_buffer;  ///< Receiving-buffer occupancy in frames.
};

/// Downward interface of a DLC sender.
class DlcSender {
 public:
  virtual ~DlcSender() = default;

  /// Enqueue a packet into the sending buffer.  The DLC transmits whenever
  /// the link is available (LAMS-DLC) or the window allows (HDLC).
  virtual void submit(Packet p) = 0;

  /// Frames currently held in the sending buffer (queued + unacknowledged).
  [[nodiscard]] virtual std::size_t sending_buffer_depth() const = 0;

  /// False while flow control (Stop-Go / RNR) asks upper layers to pause.
  [[nodiscard]] virtual bool accepting() const = 0;

  /// True once every submitted packet has been resolved (delivered and
  /// released); used by benches to detect run completion.
  [[nodiscard]] virtual bool idle() const = 0;
};

}  // namespace lamsdlc::sim
