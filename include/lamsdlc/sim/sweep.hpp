#pragma once
/// \file sweep.hpp
/// \brief Parallel execution of independent per-seed simulations.
///
/// Every `Simulator` is single-threaded and self-contained (no globals, no
/// shared RNG state), so a seed sweep — the 250-seed chaos soak, a
/// multi-point experiment table, a trace library replay — is embarrassingly
/// parallel.  `ParallelSweep` is a small work-stealing thread pool over such
/// independent tasks: each worker owns a queue of task indices and steals
/// from its neighbours when it runs dry, so a few pathologically slow seeds
/// (long outages, declared failures) cannot leave cores idle.
///
/// Determinism: task `i` writes result slot `i`, and results are returned in
/// index order — the output is bit-identical to running the same tasks in a
/// serial loop, regardless of thread count or interleaving.  The integration
/// test `tests/integration/test_parallel_determinism.cpp` pins this down
/// against `ChaosVerdict::metrics_json`.
///
/// Caveat: the task callable runs concurrently from multiple threads, so
/// anything it captures must be thread-safe (e.g. a `ChaosKnobs::tap` hook
/// must not write shared state unsynchronized).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "lamsdlc/sim/chaos.hpp"

namespace lamsdlc::sim {

/// Work-stealing thread pool for embarrassingly parallel sweeps.
class ParallelSweep {
 public:
  /// \p threads 0 picks the hardware concurrency (min 1).
  explicit ParallelSweep(unsigned threads = 0);

  /// Worker count this pool will use for large enough sweeps.
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Run `fn(i)` for every i in [0, n), spread over the pool.  Blocks until
  /// all tasks finish.  The first exception thrown by any task is rethrown
  /// here (remaining tasks still run to completion).  With one thread (or
  /// n <= 1) the tasks run inline on the calling thread, in order.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// `for_each` collecting return values; results are in index order, so the
  /// output is byte-identical to the serial `for` loop.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) const {
    std::vector<R> out(n);
    for_each(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  unsigned threads_;
};

/// Run chaos seeds `first_seed .. first_seed + count - 1` (the `seed` field
/// of \p base is overridden per run) and return the verdicts in seed order —
/// bit-identical to a serial `run_chaos` loop over the same seeds.
[[nodiscard]] std::vector<ChaosVerdict> run_chaos_sweep(
    const ChaosKnobs& base, std::uint64_t first_seed, std::uint64_t count,
    unsigned threads = 0);

}  // namespace lamsdlc::sim
