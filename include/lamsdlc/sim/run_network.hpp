#pragma once
/// \file run_network.hpp
/// \brief One-call constellation-scale network run: Walker geometry, contact
///        churn, seeded traffic, optional PDES partitioning.
///
/// `run_network` is the driver behind `lamsdlc_cli network` and
/// `bench_network`: it builds a Walker-delta constellation, derives its
/// contact plan, wires one LAMS link per grid pair (up only inside its
/// visibility windows — links fail and fail over as geometry churns), injects
/// a seeded traffic schedule through `Network::at` global operations, and
/// runs to completion — serially, or partitioned across `partitions` event
/// kernels via the conservative PDES engine (`Network::enable_pdes`).
///
/// **Identity contract.**  Every field of the result — the delivery report,
/// the metrics JSON, the raw capture bytes — is byte-identical at every
/// partition count, because `partitions == 1` runs the exact same windowed
/// code path the parallel runs use.  Observability is collected per channel
/// into private buffers (each touched by exactly one partition) and merged
/// afterwards in a canonical order, so the artifacts are deterministic
/// without any cross-partition synchronization during the run.

#include <cstddef>
#include <cstdint>
#include <string>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/net/network.hpp"

namespace lamsdlc::sim {

struct NetworkRunConfig {
  /// \name Constellation geometry (Walker delta i:t/p/f)
  /// @{
  std::uint32_t satellites = 112;
  std::uint32_t planes = 8;
  std::uint32_t phasing = 1;
  double altitude_m = 1.0e6;
  double inclination_rad = 0.9;
  double max_range_m = 8.0e6;         ///< ISL acquisition range.
  Time contact_step = Time::seconds_int(10);   ///< Plan sampling step.
  Time min_contact = Time::seconds_int(30);    ///< Shortest usable pass.
  /// @}

  /// \name Execution
  /// @{
  std::size_t partitions = 1;  ///< PDES logical processes; 1 = serial ref.
  Time horizon = Time::seconds_int(600);
  std::uint64_t seed = 1;
  /// @}

  /// \name Links
  /// @{
  double data_rate_bps = 50e6;
  Time checkpoint_interval = Time::milliseconds(20);
  std::uint32_t cumulation_depth = 4;
  Time max_rtt = Time::milliseconds(200);
  double p_frame = 0.0;   ///< Frame error probability, both directions.
  double p_control = 0.0; ///< Control (checkpoint) error probability.
  /// @}

  /// \name Traffic
  /// `waves` bursts, one every `wave_interval`, each injecting
  /// `packets_per_wave` packets between seeded random distinct node pairs
  /// (plus one segmented message per wave when `message_segments > 0`).
  /// One `Network::at` op per wave keeps the PDES barrier count low.
  /// @{
  std::uint32_t waves = 20;
  Time wave_interval = Time::seconds_int(1);
  std::uint32_t packets_per_wave = 100;
  std::uint32_t packet_bytes = 1024;
  std::uint32_t message_segments = 0;
  /// @}

  /// Collect metrics + capture artifacts (identity comparisons).  Costs
  /// memory proportional to the event count — leave off for throughput
  /// benches.
  bool observe = false;

  /// Periodic registry sampling for `inspect --timeline`: when positive,
  /// the capture carries the same `kMetricSample` ticks a live
  /// `obs::Sampler` would emit, synthesized on the canonical merged event
  /// stream — so they are byte-identical at every partition count.
  /// Implies `observe`.  Non-positive = off.
  Time sample_period{};
};

struct NetworkRunResult {
  net::NetworkReport report;
  bool completed = false;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::uint64_t contacts = 0;     ///< Plan rows driving the link windows.
  std::uint64_t events = 0;       ///< Merged observability events.
  std::string metrics_json;       ///< Empty when `observe` is off.
  std::string capture;            ///< Raw .ldlcap bytes; empty when off.
  double elapsed_s = 0;           ///< Wall-clock run time (never compared).
};

[[nodiscard]] NetworkRunResult run_network(const NetworkRunConfig& cfg);

}  // namespace lamsdlc::sim
