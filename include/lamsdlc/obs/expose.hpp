#pragma once
/// \file expose.hpp
/// \brief Prometheus text exposition of a `Registry`, plus the JSON string
/// escaping the daemon's hand-built status documents share.
///
/// The registry's native exports (`write_json`/`write_csv`) are for this
/// repo's own tooling; `write_prometheus` renders the same registry in the
/// Prometheus text exposition format (version 0.0.4) so a stock scraper can
/// pull a live `lamsdlcd` without translation:
///
///   - counters become `<prefix><name>_total` with `# TYPE ... counter`;
///   - gauges become `<prefix><name>` with `# TYPE ... gauge`;
///   - histograms become summaries: `{quantile="0.5|0.9|0.99"}` sample
///     lines (exact percentiles — the registry keeps sorted samples, not
///     sketches) plus `_sum` and `_count`.
///
/// Metric names here are dot-separated (`lams.sender.iframe_retx`);
/// Prometheus names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
/// `prometheus_name` maps every illegal byte to `_`
/// (`lamsdlc_lams_sender_iframe_retx`).  The mapping is not injective in
/// general but is for every name in the catalogue (docs/OBSERVABILITY.md).

#include <ostream>
#include <string>
#include <string_view>

#include "lamsdlc/obs/metrics.hpp"

namespace lamsdlc::obs {

/// `<prefix><name>` with every byte outside [a-zA-Z0-9_:] replaced by '_'
/// (a leading digit also gets a '_' prepended).  \p prefix is emitted as-is
/// and must itself be a legal name start.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          std::string_view prefix = "lamsdlc_");

/// Render \p reg in Prometheus text exposition format 0.0.4.  Deterministic:
/// lexicographic by metric name within each registry section.
void write_prometheus(std::ostream& os, const Registry& reg,
                      std::string_view prefix = "lamsdlc_");

/// JSON-escape \p s (no surrounding quotes): \" \\ control bytes -> \uXXXX.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace lamsdlc::obs
