#pragma once
/// \file collector.hpp
/// \brief Event-stream → metrics bridge.
///
/// `MetricsCollector` subscribes to an `EventBus` and folds the typed event
/// stream into a `Registry`: counters for frame/checkpoint/fault outcomes,
/// histograms for holding time, checkpoint RTT and buffer depth.  Components
/// stay metrics-agnostic — they emit events; this one subscriber decides
/// which become metrics and under what names (catalogue in
/// docs/OBSERVABILITY.md).

#include <cstdint>
#include <map>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/event.hpp"
#include "lamsdlc/obs/metrics.hpp"

namespace lamsdlc::obs {

/// Subscribes on construction, unsubscribes on destruction.  Both the bus
/// and the registry must outlive the collector.
class MetricsCollector {
 public:
  MetricsCollector(EventBus& bus, Registry& registry);
  ~MetricsCollector();

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return registry_; }

 private:
  void on_event(const Event& e);

  EventBus& bus_;
  Registry& registry_;
  EventBus::SubscriptionId sub_{0};
  /// Checkpoint emit instants by cp_seq, matched against the sender-side
  /// kCheckpointProcessed to produce `lams.sender.checkpoint_rtt_ms`.
  /// Entries at or below a processed cp_seq are pruned (lost checkpoints
  /// never match).
  std::map<std::uint32_t, Time> cp_emitted_;
  /// RESYNC initiation instants by token, matched against the sender-side
  /// kResyncCompleted to produce the `recovery.time_ms` histogram.
  std::map<std::uint32_t, Time> resync_started_;
};

}  // namespace lamsdlc::obs
