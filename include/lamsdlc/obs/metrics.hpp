#pragma once
/// \file metrics.hpp
/// \brief Named metric registry: counters, gauges, log-bucketed histograms.
///
/// A `Registry` is the shared aggregation surface for one run: protocol
/// instrumentation feeds it through the event collector (`collector.hpp`),
/// harness-level quantities (goodput, efficiency) are set directly, and the
/// JSON / CSV exporters give bench tables, the chaos harness and external
/// tooling one machine-readable summary instead of per-harness private
/// accumulators.
///
/// Metric name convention: dot-separated `component.quantity[_unit]`, e.g.
/// `lams.sender.iframe_retx`, `lams.sender.holding_time_ms`.  The full
/// catalogue lives in docs/OBSERVABILITY.md.

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "lamsdlc/core/stats.hpp"

namespace lamsdlc::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept { v_ += d; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }

 private:
  std::uint64_t v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_ = v; }
  [[nodiscard]] double value() const noexcept { return v_; }

 private:
  double v_{0.0};
};

/// Distribution summary: power-of-two log buckets for shape, plus exact
/// sorted-sample quantiles (`Percentiles`) for the p50/p90/p99/max the
/// exporters report.  Bucket i counts samples in [2^(i-kBucketBias),
/// 2^(i+1-kBucketBias)); non-positive samples land in bucket 0.
class LogHistogram {
 public:
  /// Bucket 0 also absorbs everything below 2^-kBucketBias.
  static constexpr int kBucketBias = 32;
  static constexpr std::size_t kBuckets = 96;  ///< Covers ~2^-32 .. 2^64.

  void observe(double x) {
    ++buckets_[bucket_of(x)];
    samples_.add(x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return samples_.count(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return samples_.count() ? sum_ / static_cast<double>(samples_.count()) : 0.0;
  }
  [[nodiscard]] double min() const { return samples_.min(); }
  [[nodiscard]] double max() const { return samples_.max(); }
  [[nodiscard]] double quantile(double q) const { return samples_.quantile(q); }
  [[nodiscard]] double p50() const { return samples_.p50(); }
  [[nodiscard]] double p90() const { return samples_.p90(); }
  [[nodiscard]] double p99() const { return samples_.p99(); }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Lower edge of bucket \p i (2^(i-kBucketBias)).
  [[nodiscard]] static double bucket_lo(std::size_t i) noexcept {
    return std::ldexp(1.0, static_cast<int>(i) - kBucketBias);
  }

  [[nodiscard]] static std::size_t bucket_of(double x) noexcept {
    if (!(x > 0.0) || !std::isfinite(x)) return 0;
    const int e = std::ilogb(x) + kBucketBias;
    if (e < 0) return 0;
    const auto i = static_cast<std::size_t>(e);
    return i >= kBuckets ? kBuckets - 1 : i;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  Percentiles samples_;
  double sum_{0.0};
};

/// Named metrics for one run.  Lookup creates on first use; references stay
/// valid for the registry's lifetime (std::map nodes are stable).  Export
/// order is deterministic (lexicographic by name).
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LogHistogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Read a counter without creating it (0 when absent).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  /// Read-only lookup; nullptr when absent.
  [[nodiscard]] const LogHistogram* find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, LogHistogram>& histograms() const noexcept {
    return histograms_;
  }

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{name:
  /// {"count":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..}}}.
  void write_json(std::ostream& os) const;

  /// One row per metric: type,name,value,count,min,mean,p50,p90,p99,max
  /// (header included; empty fields for types without the column).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::string json() const;
  [[nodiscard]] std::string csv() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace lamsdlc::obs
