#pragma once
/// \file sampler.hpp
/// \brief Periodic registry snapshots into the event stream.
///
/// End-of-run registry totals say *what* happened; they cannot say *when*.
/// `Sampler` walks the registry every `period` of simulated time and emits
/// one `kMetricSample` event per counter and gauge, so a capture file (or a
/// live subscriber) carries a time series alongside the raw event record —
/// `lamsdlc_cli inspect --timeline` renders it as time-bucketed rates.
///
/// Histograms are not sampled: their cumulative percentile state has no
/// meaningful instantaneous value, and the underlying events are already in
/// the stream.

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/time.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/event.hpp"
#include "lamsdlc/obs/metrics.hpp"

namespace lamsdlc::obs {

/// Snapshots \p registry into \p bus every \p period, starting one period
/// after `start()`.  The destructor cancels the pending tick, so a Sampler
/// constructed after the Scenario it observes is destroyed first and never
/// fires into freed state.
class Sampler {
 public:
  Sampler(Simulator& sim, const Registry& registry, EventBus& bus, Time period)
      : sim_{sim}, registry_{registry}, bus_{bus}, period_{period} {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler() { stop(); }

  /// Arm the periodic tick.  Idempotent; a non-positive period disables.
  void start();

  /// Cancel the pending tick (safe when not started).
  void stop();

  /// Snapshots emitted so far (ticks, not individual sample events).
  [[nodiscard]] std::uint64_t snapshots() const noexcept { return snapshots_; }

 private:
  void tick();

  Simulator& sim_;
  const Registry& registry_;
  EventBus& bus_;
  Time period_;
  EventId timer_{0};
  std::uint64_t snapshots_{0};
};

}  // namespace lamsdlc::obs
