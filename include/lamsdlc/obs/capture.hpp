#pragma once
/// \file capture.hpp
/// \brief Binary event capture files (`.ldlcap`): write a run's typed event
/// stream to disk, read it back losslessly.
///
/// Format (all multi-byte integers little-endian; spec in
/// docs/OBSERVABILITY.md):
///
///   header   := magic[8] version:u16 reserved:u16
///   magic    := "LDLCAP\n\0"  (4C 44 4C 43 41 50 0A 00)
///   record   := delta:svarint source:u8 kind:u8 payload
///   svarint  := zigzag-encoded LEB128 varint
///
/// `delta` is the difference in picoseconds from the previous record's
/// timestamp (from 0 for the first record); simulation timestamps are
/// nondecreasing so deltas are tiny and varint-friendly, but the zigzag
/// encoding keeps the format correct for arbitrary streams.  The payload
/// layout is fixed per `EventKind` (see capture.cpp); unknown kinds make a
/// file unreadable, which is why the kind enums are append-only and the
/// header carries a schema version.
///
/// Version history (readers accept every listed version — the kind enums are
/// append-only, so an older file simply never contains the newer kinds):
///   1  kFrameSent .. kRecoveryTransition (kinds 0-14)
///   2  adds kRetransmitMapped, kPacketAdmitted, kPacketDelivered,
///      kMetricSample (kinds 15-18) for trace reconstruction and sampled
///      metric time series
///   3  adds the self-stabilization kinds kSelfAuditFailed, kStateCorrupted,
///      kResyncInitiated, kResyncCompleted (kinds 19-22)
///
/// `CaptureWriter` is an `EventBus` subscriber in spirit: hand
/// `writer.subscriber()` to a bus (or call `write()` directly) and every
/// event becomes one record.  `CaptureReader` yields the identical `Event`
/// sequence — round-trip identity is asserted by tests/obs/test_capture.cpp.

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/event.hpp"

namespace lamsdlc::obs {

/// Magic + version constants for the `.ldlcap` container.
inline constexpr std::uint8_t kCaptureMagic[8] = {'L', 'D', 'L', 'C',
                                                  'A', 'P', '\n', '\0'};
inline constexpr std::uint16_t kCaptureVersion = 3;
inline constexpr std::uint16_t kCaptureOldestReadable = 1;
inline constexpr std::size_t kCaptureHeaderSize = 12;

/// Serializes events to an `.ldlcap` stream.  The header is written on
/// construction; each `write()` appends one record.  The writer does not own
/// the stream.
class CaptureWriter {
 public:
  explicit CaptureWriter(std::ostream& os);

  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  void write(const Event& e);

  /// Records written so far.
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

  /// Bus subscriber that forwards every event to `write()`.  The writer must
  /// outlive the subscription.
  [[nodiscard]] EventBus::Subscriber subscriber() {
    return [this](const Event& e) { write(e); };
  }

 private:
  std::ostream& os_;
  std::int64_t last_ps_{0};
  std::uint64_t written_{0};
};

/// Deserializes an `.ldlcap` stream.  Construction validates the header;
/// `next()` yields events until end-of-stream.  Any malformed byte flips
/// `ok()` to false with a diagnostic in `error()` (truncated files are an
/// error, not a silent EOF).
class CaptureReader {
 public:
  explicit CaptureReader(std::istream& is);

  CaptureReader(const CaptureReader&) = delete;
  CaptureReader& operator=(const CaptureReader&) = delete;

  /// Next event, or nullopt at clean end-of-stream / on error.
  [[nodiscard]] std::optional<Event> next();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::uint16_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t read_count() const noexcept { return read_; }

 private:
  std::istream& is_;
  std::string error_;
  std::uint16_t version_{0};
  std::int64_t last_ps_{0};
  std::uint64_t read_{0};
};

/// Read every event in \p is.  Returns nullopt (with \p error filled, if
/// given) when the stream is not a well-formed capture.
[[nodiscard]] std::optional<std::vector<Event>> read_capture(
    std::istream& is, std::string* error = nullptr);

}  // namespace lamsdlc::obs
