#pragma once
/// \file perfetto.hpp
/// \brief Chrome trace-event JSON export of a trace reconstruction, loadable
/// in ui.perfetto.dev (legacy JSON importer) and chrome://tracing.
///
/// Mapping (docs/OBSERVABILITY.md has the walkthrough):
///  - one process ("lamsdlc", pid 1) with one named track per `Source`;
///  - each logical packet is an async slice group (`cat` "pkt", id = packet
///    id): an outer admitted→released span with one nested slice per
///    transmission attempt, so renumbered copies stack under one packet;
///  - flow arrows (`s`/`f`) link a failed attempt to its renumbered
///    successor — the visual form of the kRetransmitMapped chain;
///  - NAKs, checkpoints, recoveries, deliveries and releases are instants on
///    their emitting source's track;
///  - buffer occupancy and Sampler metric snapshots become counter tracks
///    (`ph` "C").
///
/// Timestamps are microseconds (the trace-event unit); picosecond precision
/// is kept as fractional microseconds.

#include <ostream>

#include "lamsdlc/obs/trace.hpp"

namespace lamsdlc::obs {

/// Write \p tb as a single JSON object `{"displayTimeUnit":"ms",
/// "traceEvents":[...]}` to \p os.
void write_perfetto(std::ostream& os, const TraceBuilder& tb);

}  // namespace lamsdlc::obs
