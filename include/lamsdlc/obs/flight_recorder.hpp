#pragma once
/// \file flight_recorder.hpp
/// \brief Always-on black-box event ring with anomaly-triggered dumps.
///
/// Post-mortem capture (`capture.hpp`) answers "what happened" only when
/// somebody thought to enable it *before* the incident.  A `FlightRecorder`
/// closes that gap the way an aircraft black box does: it is an `EventBus`
/// subscriber that keeps the most recent events in a fixed-size ring at
/// steady-state cost of one copy per event (no allocation, no I/O), and when
/// an anomaly trigger fires it writes the ring — a valid `.ldlcap` v3 file —
/// to disk, so `lamsdlc_cli trace --explain` works on a live incident that
/// nobody was capturing.
///
/// Anomaly triggers (`is_anomaly`):
///   - `kSelfAuditFailed`       — a runtime self-audit invariant tripped;
///   - `kResyncInitiated`       — an endpoint entered RESYNC recovery;
///   - `kRecoveryTransition` to `SenderMode::kFailed` — bounded-retry
///     teardown: the link was declared dead.
///
/// Dumps are rate-limited two ways: at most `max_dumps` per recorder
/// lifetime, and at least `min_dump_gap` of event time between dumps (one
/// incident tends to fire several triggers back to back; the first dump
/// already holds them all).  Dumping is deterministic and byte-stable:
/// writing the same ring twice produces identical bytes (each dump is a
/// self-contained capture whose timestamp deltas restart from zero).
///
/// The daemon attaches one recorder per session bus (`docs/OBSERVABILITY.md`
/// "Live telemetry"); tests drive `record()`/`dump()` directly.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/event.hpp"

namespace lamsdlc::obs {

class FlightRecorder {
 public:
  struct Config {
    /// Ring capacity in events.  4096 events ≈ 360 KB resident and, at the
    /// daemon's event rates, several seconds of history around an anomaly.
    std::size_t capacity = 4096;
    /// Auto-dump file prefix; the n-th dump writes
    /// `<prefix>-<n>.ldlcap`.  Empty disables auto-dumps (ring + manual
    /// `dump()` still work).
    std::string dump_prefix;
    /// Lifetime cap on auto-dumps (a flapping link must not fill the disk).
    std::uint32_t max_dumps = 4;
    /// Minimum event-time gap between auto-dumps.
    Time min_dump_gap = Time::seconds_int(1);
  };

  explicit FlightRecorder(Config cfg);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Ring-write \p e; if it is an anomaly trigger and the rate limits
  /// allow, write the ring to `<dump_prefix>-<n>.ldlcap`.
  void record(const Event& e);

  /// Bus subscriber forwarding to `record()`.  The recorder must outlive
  /// the subscription.
  [[nodiscard]] EventBus::Subscriber subscriber() {
    return [this](const Event& e) { record(e); };
  }

  /// Write the ring, oldest to newest, as a complete `.ldlcap` stream.
  void dump(std::ostream& os) const;

  /// `dump()` to \p path (truncating).  False on I/O failure.
  bool dump_to_file(const std::string& path) const;

  /// True when \p e is one of the black-box triggers listed above.
  [[nodiscard]] static bool is_anomaly(const Event& e) noexcept;

  /// \name Introspection
  /// @{
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t held() const noexcept { return held_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return recorded_ - held_;
  }
  [[nodiscard]] std::uint32_t dumps() const noexcept { return dumps_; }
  /// Triggers that fired while rate-limited (no dump written).
  [[nodiscard]] std::uint64_t suppressed_triggers() const noexcept {
    return suppressed_;
  }
  [[nodiscard]] const std::string& last_dump_path() const noexcept {
    return last_dump_path_;
  }
  /// @}

 private:
  Config cfg_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;  ///< Ring slot the next event lands in.
  std::size_t held_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint32_t dumps_ = 0;
  std::uint64_t suppressed_ = 0;
  bool dumped_once_ = false;
  Time last_dump_at_{};
  std::string last_dump_path_;
};

}  // namespace lamsdlc::obs
