#pragma once
/// \file trace.hpp
/// \brief Packet-lifecycle trace reconstruction: stitch the typed event
/// stream back into one span tree per logical packet.
///
/// LAMS-DLC retransmissions carry *fresh* sequence numbers, so the wire never
/// links the copies of a packet — following a packet across its attempts
/// needs the sender-side `kRetransmitMapped` pairing (old ctr -> new ctr)
/// that the capture stream records immediately before each renumbered
/// `kFrameSent`.  `TraceBuilder` consumes events (from a live `EventBus`
/// subscription or a replayed `.ldlcap` file — the two reconstructions are
/// byte-identical, asserted by tests/obs/test_trace.cpp) and produces:
///
///   admission ─ attempt 1 (sent ─ [nak ─ retx-queued]) ─ attempt 2 ─ ...
///             ─ delivery ─ sender release
///
/// Stitching rules (documented in docs/OBSERVABILITY.md):
///  - only endpoint sources participate (`kLamsSender` / `kLamsReceiver`);
///    link events carry *wrapped* wire sequences and are ignored;
///  - control frames (Request-NAK, checkpoints) never join a packet span;
///  - an attempt-N send (N >= 2) must be preceded by a matching
///    `kRetransmitMapped` whose `old_ctr` is the previous attempt's counter —
///    anything else marks the chain broken (a reconstruction bug, or a
///    corrupt/foreign capture);
///  - events referencing a counter no attempt owns are counted as orphans
///    rather than dropped silently.
///
/// `attribute()` decomposes a completed packet's lifetime into the protocol's
/// latency components; by construction (telescoping, clamped boundaries) the
/// in-flight components sum *exactly* to the sender-measured holding time.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/event.hpp"
#include "lamsdlc/obs/metrics.hpp"

namespace lamsdlc::obs {

/// One transmission attempt of a logical packet (one sequence counter).
struct TraceAttempt {
  std::uint64_t ctr = 0;       ///< Unwrapped counter this copy was sent under.
  std::uint32_t number = 0;    ///< 1-based attempt index.
  Time sent{};                 ///< Sender kFrameSent instant.
  std::optional<Time> nak;     ///< Receiver detected the copy damaged (first NAK).
  std::optional<Time> retx_queued;  ///< Sender claimed it for retransmission.
  std::optional<Time> received;     ///< Receiver accepted this copy (good arrival).
};

/// The reconstructed lifecycle of one logical packet.
struct PacketTrace {
  std::uint64_t packet_id = 0;
  std::optional<Time> admitted;   ///< kPacketAdmitted (sending-buffer entry).
  std::vector<TraceAttempt> attempts;  ///< In attempt order (1..n).
  std::optional<Time> delivered;  ///< kPacketDelivered (client handoff).
  std::uint64_t delivered_ctr = 0;     ///< Counter of the delivering copy.
  std::optional<Time> released;   ///< kFrameReleased (implicit ack).
  std::int64_t holding_ps = 0;    ///< Sender-measured first-tx -> release.
  std::uint32_t extra_deliveries = 0;  ///< Duplicate client handoffs (ablations).
  std::uint32_t resync_requeues = 0;   ///< Fresh attempt chains begun by RESYNCs.
  bool chain_broken = false;      ///< Renumbering chain failed to stitch.

  /// A fully stitched span tree: admission root, contiguous attempt chain,
  /// and a delivery leaf.  (Release is not required — a packet delivered
  /// just before a link failure may never see its releasing checkpoint.)
  /// A RESYNC requeue lawfully restarts the attempt numbering at 1 — each
  /// incarnation's chain must be contiguous, and only a sender RESYNC may
  /// open a new incarnation (anything else marks the chain broken).
  [[nodiscard]] bool complete() const noexcept {
    if (!admitted || !delivered || attempts.empty() || chain_broken) return false;
    std::uint32_t prev = 0;
    for (const TraceAttempt& a : attempts) {
      if (a.number != prev + 1 && !(a.number == 1 && prev > 0)) return false;
      prev = a.number;
    }
    return true;
  }
};

/// Latency attribution of one completed packet, all in picoseconds.
/// `admission_wait` precedes the first transmission; the remaining five are
/// the in-flight decomposition.  Invariant (exact, by telescoping):
///   nak_wait + checkpoint_wait + retx_serialization + final_flight
///     + release_wait == released - first send == holding_ps.
struct LatencyBreakdown {
  std::int64_t admission_wait_ps = 0;   ///< admitted -> first send (issuance queue).
  std::int64_t nak_wait_ps = 0;         ///< failed send -> receiver NAK (detection).
  std::int64_t checkpoint_wait_ps = 0;  ///< NAK -> sender claim (checkpoint cadence).
  std::int64_t retx_serialization_ps = 0;  ///< claim -> renumbered send (queueing).
  std::int64_t final_flight_ps = 0;     ///< last send -> client delivery.
  std::int64_t release_wait_ps = 0;     ///< delivery -> sender release.

  [[nodiscard]] std::int64_t in_flight_ps() const noexcept {
    return nak_wait_ps + checkpoint_wait_ps + retx_serialization_ps +
           final_flight_ps + release_wait_ps;
  }
  [[nodiscard]] std::int64_t total_ps() const noexcept {
    return admission_wait_ps + in_flight_ps();
  }
};

/// Decompose a packet's lifetime.  Meaningful only when `t.complete()` and
/// `t.released` — callers should filter first; otherwise components the
/// missing timestamps would bound are left zero.
[[nodiscard]] LatencyBreakdown attribute(const PacketTrace& t) noexcept;

/// \name Auxiliary time series carried alongside the span trees
/// @{
struct CheckpointMark {
  Time at{};
  std::uint32_t cp_seq = 0;
  std::uint16_t nak_count = 0;
  bool enforced = false;
};
struct OccupancyPoint {
  Time at{};
  Source source = Source::kOther;
  BufferId which = BufferId::kSendBuffer;
  std::uint32_t depth = 0;
};
struct SamplePoint {
  Time at{};
  std::string name;
  double value = 0.0;
  bool is_counter = false;
};
struct RecoveryMark {
  Time at{};
  SenderMode from = SenderMode::kNormal;
  SenderMode to = SenderMode::kNormal;
  RecoveryReason reason = RecoveryReason::kCheckpointSilence;
};
/// @}

/// Aggregate counts over a reconstruction (see TraceBuilder::summarize).
struct TraceSummary {
  std::size_t packets = 0;        ///< Logical packets seen.
  std::size_t complete = 0;       ///< Packets with a complete span tree.
  std::size_t delivered = 0;      ///< Packets with a delivery leaf.
  std::size_t released = 0;       ///< Packets released by the sender.
  std::size_t broken_chains = 0;  ///< Renumbering chains that failed to stitch.
  std::uint64_t attempts = 0;     ///< Total transmission attempts.
  std::uint32_t max_attempts = 0; ///< Worst single packet.
  std::uint64_t extra_deliveries = 0;
  std::uint64_t resync_requeues = 0;  ///< Incarnations opened by RESYNCs.
  std::uint64_t orphan_events = 0;  ///< Frame events no attempt owns.
};

/// Reconstruction engine.  Feed it every event of a run — via `subscriber()`
/// on a live bus, or by iterating a `CaptureReader` — then query.
class TraceBuilder {
 public:
  void on_event(const Event& e);

  /// Bus subscriber forwarding to `on_event()`.  The builder must outlive
  /// the subscription.
  [[nodiscard]] EventBus::Subscriber subscriber() {
    return [this](const Event& e) { on_event(e); };
  }

  /// All packets, keyed (and therefore ordered) by packet id.
  [[nodiscard]] const std::map<std::uint64_t, PacketTrace>& packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] const PacketTrace* find(std::uint64_t packet_id) const;
  /// Completed packet with the largest holding time (nullptr when none).
  [[nodiscard]] const PacketTrace* worst() const;

  [[nodiscard]] const std::vector<CheckpointMark>& checkpoints() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] const std::vector<OccupancyPoint>& occupancy() const noexcept {
    return occupancy_;
  }
  [[nodiscard]] const std::vector<SamplePoint>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const std::vector<RecoveryMark>& recoveries() const noexcept {
    return recoveries_;
  }

  [[nodiscard]] TraceSummary summarize() const;

  /// Events that referenced a counter no attempt owns, by kind name.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& orphans() const noexcept {
    return orphans_;
  }

  /// Canonical deterministic text rendering of the whole reconstruction
  /// (picosecond integers, no floating point) — two reconstructions of the
  /// same run compare byte-for-byte equal iff they stitched identically.
  [[nodiscard]] std::string dump() const;

  /// Observe every completed packet's latency components into \p registry as
  /// `trace.latency.*_ms` histograms plus `trace.packets_complete`.
  void fold_latency(Registry& registry) const;

 private:
  PacketTrace& packet(std::uint64_t packet_id);
  TraceAttempt* attempt_for(std::uint64_t ctr);
  void orphan(const Event& e);

  std::map<std::uint64_t, PacketTrace> packets_;
  /// ctr -> (packet id, attempt index into its `attempts` vector).
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>> by_ctr_;
  /// RESYNC generation: bumped on each sender kResyncInitiated.  A packet's
  /// fresh attempt-1 send is a lawful requeue iff its last send belongs to
  /// an older generation.
  std::uint32_t resync_gen_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> pkt_gen_;
  /// Last kRetransmitMapped, pending until its kFrameSent arrives.
  std::optional<RetransmitMapPayload> pending_map_;
  std::vector<CheckpointMark> checkpoints_;
  std::vector<OccupancyPoint> occupancy_;
  std::vector<SamplePoint> samples_;
  std::vector<RecoveryMark> recoveries_;
  std::map<std::string, std::uint64_t> orphans_;
};

/// Multi-line human-readable causal story of one packet (the CLI's
/// `trace --explain` output).
[[nodiscard]] std::string explain(const PacketTrace& t);

}  // namespace lamsdlc::obs
