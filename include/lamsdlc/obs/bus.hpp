#pragma once
/// \file bus.hpp
/// \brief Near-zero-overhead dispatch of typed protocol events.
///
/// Instrumented components hold an `EventBus*` and emit `Event`s through it.
/// With no subscriber the cost at every instrumentation site is a single
/// branch (`enabled()` is false and no event is even constructed — sites
/// guard with `Emitter::active()`).  Subscribers are the observability
/// consumers: the metrics collector (`collector.hpp`), a capture writer
/// (`capture.hpp`), a recording vector in a test, or the legacy string
/// `Tracer` via `attach_tracer` — which is all the old free-form tracing now
/// is: one pretty-printing subscriber among others.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/obs/event.hpp"

namespace lamsdlc::obs {

/// Dispatches events to any number of subscribers, in subscription order.
///
/// Subscribing/unsubscribing from inside a callback is not supported (the
/// subscriber list must be stable during `emit`).
class EventBus {
 public:
  using Subscriber = std::function<void(const Event&)>;
  using SubscriptionId = std::uint32_t;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  SubscriptionId subscribe(Subscriber s) {
    const SubscriptionId id = next_id_++;
    subs_.emplace_back(id, std::move(s));
    return id;
  }

  /// Unknown ids are a harmless no-op (mirrors Simulator::cancel semantics).
  void unsubscribe(SubscriptionId id) {
    for (auto it = subs_.begin(); it != subs_.end(); ++it) {
      if (it->first == id) {
        subs_.erase(it);
        return;
      }
    }
  }

  /// True when at least one subscriber is attached — the one branch
  /// instrumentation sites pay when observability is off.
  [[nodiscard]] bool enabled() const noexcept { return !subs_.empty(); }

  void emit(const Event& e) {
    if (subs_.empty()) return;
    ++emitted_;
    for (auto& [id, sub] : subs_) sub(e);
  }

  /// Events delivered to at least one subscriber (diagnostic).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

  /// Subscriber that appends every event to \p out (caller keeps it alive).
  [[nodiscard]] static Subscriber record_into(std::vector<Event>& out) {
    return [&out](const Event& e) { out.push_back(e); };
  }

 private:
  std::vector<std::pair<SubscriptionId, Subscriber>> subs_;
  SubscriptionId next_id_{1};
  std::uint64_t emitted_{0};
};

/// Bridge the legacy string `Tracer` onto a bus: every event is rendered
/// with `describe()` and emitted as a classic "[time] source: what" trace
/// line.  Returns the subscription id (for `unsubscribe`).
inline EventBus::SubscriptionId attach_tracer(EventBus& bus, Tracer tracer) {
  return bus.subscribe([t = std::move(tracer)](const Event& e) {
    t.emit(e.at, to_string(e.source), describe(e));
  });
}

/// Per-component emission handle: a shared bus plus the component's own
/// legacy tracer.  Components build an `Event` only when someone is
/// listening (`active()`), then `emit` fans it out to the bus and renders it
/// for the tracer — which is how the old string tracing became a thin
/// pretty-printing consumer of the typed stream.
class Emitter {
 public:
  Emitter() = default;
  Emitter(EventBus* bus, Tracer tracer)
      : bus_{bus}, tracer_{std::move(tracer)} {}

  [[nodiscard]] bool active() const noexcept {
    return (bus_ != nullptr && bus_->enabled()) || tracer_.enabled();
  }

  void emit(const Event& e) const {
    if (bus_ != nullptr) bus_->emit(e);
    if (tracer_.enabled()) tracer_.emit(e.at, to_string(e.source), describe(e));
  }

  [[nodiscard]] EventBus* bus() const noexcept { return bus_; }

 private:
  EventBus* bus_ = nullptr;
  Tracer tracer_;
};

}  // namespace lamsdlc::obs
