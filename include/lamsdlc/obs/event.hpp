#pragma once
/// \file event.hpp
/// \brief Typed protocol events — the machine-readable counterpart of the
/// string `Tracer`.
///
/// Every observable protocol occurrence is an `Event`: a kind tag, the
/// emitting source, the simulation instant, and a small POD payload in a
/// tagged union.  Events are what the `EventBus` dispatches, what the
/// `Registry` collector aggregates into metrics, and what capture files
/// (`capture.hpp`) persist record-for-record, so the taxonomy below *is* the
/// observability schema (documented in docs/OBSERVABILITY.md; extend it only
/// by appending enumerators — capture files encode these values on disk).
///
/// Payloads are deliberately fixed-size: a checkpoint's NAK list is stored
/// as its exact count plus the first `kMaxInlineNaks` entries.  That keeps
/// `Event` trivially copyable and capture records compact while preserving
/// the quantities the analyses need (how *many* NAKs, and which frames lead
/// the list).

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc::obs {

/// Emitting component.  On-disk value; append only.
enum class Source : std::uint8_t {
  kLamsSender = 0,
  kLamsReceiver = 1,
  kLinkForward = 2,
  kLinkReverse = 3,
  kOther = 4,
};
inline constexpr std::uint8_t kSourceCount = 5;

/// What happened.  On-disk value; append only.
enum class EventKind : std::uint8_t {
  kFrameSent = 0,       ///< Endpoint put a frame on the wire (I-frame or control).
  kFrameReceived = 1,   ///< Receiver accepted a good I-frame for delivery.
  kFrameReleased = 2,   ///< Sender released a held frame (implicit ack).
  kRetransmitQueued = 3,///< Sender queued a frame for renumbered retransmission.
  kFrameCorrupted = 4,  ///< A frame was damaged in flight / arrived unreadable.
  kFrameDropped = 5,    ///< A frame will never be delivered (see DropCause).
  kFrameDuplicated = 6, ///< A fault stage injected an extra copy.
  kFrameDelayed = 7,    ///< A fault stage jittered delivery (reordering).
  kCheckpointEmitted = 8,   ///< Receiver sent a Check-Point / Enforced-NAK.
  kCheckpointProcessed = 9, ///< Sender accepted a checkpoint.
  kNakGenerated = 10,   ///< Receiver detected a sequence gap (one NAK).
  kBufferOccupancy = 11,///< A send/receive buffer changed depth.
  kTimerArmed = 12,     ///< A protocol timer was (re)armed.
  kTimerFired = 13,     ///< A protocol timer expired.
  kRecoveryTransition = 14, ///< Sender mode change (normal/enforced/failed).
  kRetransmitMapped = 15,   ///< Sender renumbered a claimed frame (old -> new ctr).
  kPacketAdmitted = 16,     ///< Sender accepted a packet into the sending buffer.
  kPacketDelivered = 17,    ///< Receiver handed a packet to the client (after t_proc).
  kMetricSample = 18,       ///< Sampler snapshot of one registry counter/gauge.
  kSelfAuditFailed = 19,    ///< A runtime self-audit invariant check tripped.
  kStateCorrupted = 20,     ///< Harness injected a state corruption (verif).
  kResyncInitiated = 21,    ///< Sender started a RESYNC handshake.
  kResyncCompleted = 22,    ///< RESYNC applied (receiver) / acknowledged (sender).
};
inline constexpr std::uint8_t kEventKindCount = 23;

/// Why a frame was dropped/corrupted.  On-disk value; append only.
enum class DropCause : std::uint8_t {
  kWireCorruption = 0,  ///< Channel error process damaged the frame.
  kFaultDrop = 1,       ///< Fault stage: silent omission.
  kFaultTruncation = 2, ///< Fault stage: header damage (unreadable husk).
  kFaultJitter = 3,     ///< Fault stage: delivery delayed (kFrameDelayed).
  kFaultDuplicate = 4,  ///< Fault stage: extra copy (kFrameDuplicated).
  kLinkDown = 5,        ///< Link was down (queued, in flight, or at send).
  kNoSink = 6,          ///< Channel had no attached receiver.
  kCongestion = 7,      ///< Receiver buffer at hard capacity (Section 3.4).
  kStaleSequence = 8,   ///< Non-monotone counter (wire dup / late reorder).
  kCorruptControl = 9,  ///< Damaged control command discarded at an endpoint.
};
inline constexpr std::uint8_t kDropCauseCount = 10;

/// Which protocol timer.  On-disk value; append only.
enum class TimerId : std::uint8_t {
  kCheckpointTimer = 0,   ///< Sender checkpoint-silence timer (C_depth · W_cp).
  kFailureTimer = 1,      ///< Sender failure timer (enforced recovery budget).
  kCheckpointCadence = 2, ///< Receiver periodic checkpoint tick.
  kResyncTimer = 3,       ///< Sender RESYNC retry (capped exponential backoff).
  kSelfAuditCadence = 4,  ///< Endpoint periodic self-audit tick.
  kWatchdogTimer = 5,     ///< Sender progress watchdog.
};
inline constexpr std::uint8_t kTimerIdCount = 6;

/// Sender mode, mirroring lams::LamsSender::Mode.  On-disk value.
enum class SenderMode : std::uint8_t {
  kNormal = 0,
  kEnforcedRecovery = 1,
  kFailed = 2,
  kResyncing = 3,
};
inline constexpr std::uint8_t kSenderModeCount = 4;

/// Why a recovery transition happened.  On-disk value; append only.
enum class RecoveryReason : std::uint8_t {
  kCheckpointSilence = 0,   ///< Checkpoint timer expired.
  kNakGapAmbiguity = 1,     ///< >= C_depth checkpoints missed: list inconclusive.
  kEnforcedNakResolved = 2, ///< Enforced-NAK ended the recovery.
  kFailureTimeout = 3,      ///< Failure timer expired: link declared failed.
  kLifetimeExhausted = 4,   ///< Remaining link lifetime below recovery budget.
  kSelfAuditFailure = 5,    ///< A local self-audit check tripped.
  kProgressWatchdog = 6,    ///< No release progress over a watchdog period.
  kResyncRequested = 7,     ///< Receiver set resync_req in a checkpoint.
  kImplausibleAck = 8,      ///< Streak of checkpoints acking unsent counters.
  kResyncExhausted = 9,     ///< RESYNC retries exhausted: link declared failed.
  kResyncCompleted = 10,    ///< RESYNC-ACK received: back to normal operation.
};
inline constexpr std::uint8_t kRecoveryReasonCount = 11;

/// Which runtime self-audit check tripped.  On-disk value; append only.
enum class AuditCheck : std::uint8_t {
  kSenderCtrCoherence = 0,      ///< In-flight slot counter >= next_ctr.
  kSenderWindowBound = 1,       ///< In-flight + retx beyond the numbering window.
  kSenderCpTracking = 2,        ///< Checkpoint-tracking flags inconsistent.
  kSenderTimerCoherence = 3,    ///< Enforced recovery without a failure timer.
  kSenderPacingStuck = 4,       ///< Pace gate implausibly far in the future.
  kReceiverAnchorCoherence = 5, ///< Cycle anchor beyond the arrival count.
  kReceiverSeqCoherence = 6,    ///< "Nothing seen" yet nonzero sequence state.
  kReceiverNakCoherence = 7,    ///< NAK record at/above the accepted highest.
  kReceiverHistoryOrder = 8,    ///< NAK history timestamps non-monotone.
  kReceiverHuskStall = 9,       ///< Unreadable-arrival burst past one modulus.
  kReceiverCadenceStall = 10,   ///< Link active but no checkpoint timer pending.
};
inline constexpr std::uint8_t kAuditCheckCount = 11;

/// Which buffer, for kBufferOccupancy.  On-disk value.
enum class BufferId : std::uint8_t {
  kSendBuffer = 0,
  kRecvBuffer = 1,
};
inline constexpr std::uint8_t kBufferIdCount = 2;

/// Checkpoint NAK entries stored inline in an event (the full count is
/// always carried; entries beyond this many are summarized by the count).
inline constexpr std::size_t kMaxInlineNaks = 8;

/// kFrameSent / kFrameReceived / kFrameReleased / kRetransmitQueued /
/// kPacketAdmitted (ctr 0, nothing transmitted yet) / kPacketDelivered.
struct FramePayload {
  std::uint64_t ctr = 0;        ///< Unwrapped sequence counter (token for control).
  std::uint64_t packet_id = 0;  ///< Simulation-side identity (0 for control).
  std::uint32_t attempt = 0;    ///< Transmission attempt, 1-based (tx only).
  std::uint8_t control = 0;     ///< 1 when the frame is a control command.
  std::int64_t holding_ps = 0;  ///< kFrameReleased: first tx → release.
};

/// kFrameCorrupted / kFrameDropped / kFrameDuplicated / kFrameDelayed.
struct DropPayload {
  DropCause cause = DropCause::kWireCorruption;
  std::uint8_t control = 0;  ///< 1 when the frame is a control command.
  std::uint64_t ctr = 0;     ///< Wire sequence if known, else 0.
};

/// kCheckpointEmitted / kCheckpointProcessed.
struct CheckpointPayload {
  std::uint32_t cp_seq = 0;
  std::uint32_t highest_seen = 0;
  std::uint32_t missed = 0;    ///< Processed only: checkpoints lost before this one.
  std::uint16_t nak_count = 0; ///< Full cumulative list length.
  std::uint8_t flags = 0;      ///< bit0 any_seen, bit1 enforced, bit2 stop_go,
                               ///< bit3 resync_req.
  std::array<std::uint32_t, kMaxInlineNaks> naks{};  ///< First entries of the list.

  [[nodiscard]] bool any_seen() const noexcept { return flags & 1u; }
  [[nodiscard]] bool enforced() const noexcept { return flags & 2u; }
  [[nodiscard]] bool stop_go() const noexcept { return flags & 4u; }
  [[nodiscard]] bool resync_req() const noexcept { return flags & 8u; }
  [[nodiscard]] std::size_t inline_naks() const noexcept {
    return nak_count < kMaxInlineNaks ? nak_count : kMaxInlineNaks;
  }
};

/// kNakGenerated.
struct NakPayload {
  std::uint64_t ctr = 0;  ///< Unwrapped counter of the damaged frame.
};

/// kBufferOccupancy.
struct BufferPayload {
  BufferId which = BufferId::kSendBuffer;
  std::uint32_t depth = 0;  ///< Occupancy in frames after the change.
};

/// kTimerArmed / kTimerFired.
struct TimerPayload {
  TimerId timer = TimerId::kCheckpointTimer;
  std::int64_t deadline_ps = 0;  ///< Armed only: absolute expiry instant.
};

/// kRecoveryTransition.
struct RecoveryPayload {
  SenderMode from = SenderMode::kNormal;
  SenderMode to = SenderMode::kNormal;
  RecoveryReason reason = RecoveryReason::kCheckpointSilence;
};

/// kRetransmitMapped: the renumbering pairing the trace reconstruction
/// follows.  Emitted immediately before the kFrameSent of the new copy, so a
/// capture file is self-describing about retransmission chains (the wire
/// itself never links old and new numbers — that is the point of the
/// protocol's relaxed in-sequence rule).
struct RetransmitMapPayload {
  std::uint64_t old_ctr = 0;   ///< Counter of the claimed (failed) copy.
  std::uint64_t new_ctr = 0;   ///< Fresh counter assigned to the retransmission.
  std::uint64_t packet_id = 0;
  std::uint32_t attempt = 0;   ///< Attempt number of the new copy (>= 2).
};

/// kSelfAuditFailed: one tripped check with two check-specific detail values
/// (e.g. the offending counter and the bound it violated).
struct AuditPayload {
  AuditCheck check = AuditCheck::kSenderCtrCoherence;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// kStateCorrupted: a harness-injected corruption (verif::StateCorruptor).
/// `cls` is the verif::CorruptionClass on-disk value; `target` is 0 for the
/// sender, 1 for the receiver; a/b carry the class-specific magnitudes.
struct CorruptionPayload {
  std::uint8_t cls = 0;
  std::uint8_t target = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// kResyncInitiated / kResyncCompleted.
struct ResyncPayload {
  std::uint32_t token = 0;
  std::uint32_t epoch = 0;
  std::uint32_t attempt = 0;  ///< RESYNC transmissions so far this episode.
  RecoveryReason reason = RecoveryReason::kSelfAuditFailure;
};

/// Metric-name capacity of a kMetricSample record; longer names truncate.
inline constexpr std::size_t kMetricNameCap = 48;

/// kMetricSample: one registry counter/gauge value snapshotted mid-run by
/// obs::Sampler, so captures carry a time series instead of only end totals.
struct MetricSamplePayload {
  std::array<char, kMetricNameCap> name{};  ///< NUL-terminated, truncated.
  double value = 0.0;
  std::uint8_t is_counter = 0;  ///< 1 = counter (monotone), 0 = gauge.

  void set_name(std::string_view n) noexcept {
    const std::size_t len = n.size() < kMetricNameCap - 1 ? n.size() : kMetricNameCap - 1;
    for (std::size_t i = 0; i < len; ++i) name[i] = n[i];
    for (std::size_t i = len; i < kMetricNameCap; ++i) name[i] = '\0';
  }
  [[nodiscard]] std::string_view name_view() const noexcept {
    std::size_t len = 0;
    while (len < kMetricNameCap && name[len] != '\0') ++len;
    return {name.data(), len};
  }
};

/// One observed protocol event.  Trivially copyable; the active union member
/// is determined by `kind` (see the per-kind comments above).
struct Event {
  Time at{};
  Source source = Source::kOther;
  EventKind kind = EventKind::kFrameSent;
  union Payload {
    FramePayload frame;
    DropPayload drop;
    CheckpointPayload checkpoint;
    NakPayload nak;
    BufferPayload buffer;
    TimerPayload timer;
    RecoveryPayload recovery;
    RetransmitMapPayload map;
    MetricSamplePayload sample;
    AuditPayload audit;
    CorruptionPayload corruption;
    ResyncPayload resync;
    constexpr Payload() noexcept : frame{} {}
  } p;
};

/// Field-wise equality of the active payload (padding-safe; never memcmp).
[[nodiscard]] bool operator==(const Event& a, const Event& b) noexcept;

/// \name Enum names (stable lowercase identifiers, used by the CLI filters)
/// @{
[[nodiscard]] const char* to_string(EventKind k) noexcept;
[[nodiscard]] const char* to_string(Source s) noexcept;
[[nodiscard]] const char* to_string(DropCause c) noexcept;
[[nodiscard]] const char* to_string(TimerId t) noexcept;
[[nodiscard]] const char* to_string(SenderMode m) noexcept;
[[nodiscard]] const char* to_string(RecoveryReason r) noexcept;
[[nodiscard]] const char* to_string(BufferId b) noexcept;
[[nodiscard]] const char* to_string(AuditCheck c) noexcept;
[[nodiscard]] std::optional<EventKind> kind_from_string(std::string_view name) noexcept;
[[nodiscard]] std::optional<Source> source_from_string(std::string_view name) noexcept;
/// @}

/// Human-readable one-liner ("I-frame ctr=17 pkt=4 attempt=2") — what the
/// legacy string `Tracer` prints when bridged onto an `EventBus`.
[[nodiscard]] std::string describe(const Event& e);

/// One JSON object (single line, no trailing newline) for external tooling.
[[nodiscard]] std::string to_json(const Event& e);

}  // namespace lamsdlc::obs
