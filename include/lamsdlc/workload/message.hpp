#pragma once
/// \file message.hpp
/// \brief Message segmentation and destination-side resequencing.
///
/// Section 2.3's argument for relaxing the in-sequence constraint: the link
/// layer forwards out-of-order I-frames immediately and the *destination*
/// takes responsibility for ordering and de-duplication.  `MessageSource`
/// segments messages into packets; `Resequencer` collects link-layer
/// deliveries (possibly out of order, possibly duplicated) and releases each
/// message exactly once, complete, to its callback — demonstrating that
/// end-to-end reliability survives the relaxed link constraint.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"
#include "lamsdlc/workload/sources.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::workload {

/// Shared lookup from packet id to message coordinates.  The DLC does not
/// carry message metadata on the wire (it is a datagram service); source and
/// destination share this registry the way a real network layer shares its
/// packet header contents.
class MessageRegistry {
 public:
  void record(const sim::Packet& p) {
    by_id_.emplace(p.id, Coord{p.message_id, p.msg_index, p.msg_count});
  }
  struct Coord {
    std::uint64_t message_id;
    std::uint32_t index;
    std::uint32_t count;
  };
  [[nodiscard]] const Coord* find(frame::PacketId id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<frame::PacketId, Coord> by_id_;
};

/// Splits messages into same-size packets and submits them to a DLC.
class MessageSource {
 public:
  MessageSource(Simulator& sim, sim::DlcSender& dlc, DeliveryTracker& tracker,
                PacketIdAllocator& ids, MessageRegistry& registry)
      : sim_{sim}, dlc_{dlc}, tracker_{tracker}, ids_{ids}, registry_{registry} {}

  /// Submit one message of \p segments packets of \p bytes each; returns the
  /// message id.
  std::uint64_t send_message(std::uint32_t segments, std::uint32_t bytes);

 private:
  Simulator& sim_;
  sim::DlcSender& dlc_;
  DeliveryTracker& tracker_;
  PacketIdAllocator& ids_;
  MessageRegistry& registry_;
  std::uint64_t next_message_{0};
};

/// Destination-side reassembly: delivers each complete message exactly once.
class Resequencer final : public sim::PacketListener {
 public:
  using MessageCallback = std::function<void(std::uint64_t message_id, Time at)>;

  Resequencer(const MessageRegistry& registry, MessageCallback on_message,
              sim::PacketListener* chain = nullptr)
      : registry_{registry}, on_message_{std::move(on_message)}, chain_{chain} {}

  void on_packet(const sim::Packet& p, Time at) override;

  /// Packets currently parked waiting for their siblings — the buffer cost
  /// Section 2.3 moves to the destination.
  [[nodiscard]] std::size_t pending_packets() const noexcept { return pending_packets_; }
  [[nodiscard]] std::uint64_t messages_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t duplicate_packets() const noexcept { return dup_packets_; }

 private:
  struct Assembly {
    std::unordered_set<std::uint32_t> have;
    std::uint32_t count = 0;
  };

  const MessageRegistry& registry_;
  MessageCallback on_message_;
  sim::PacketListener* chain_;
  std::unordered_map<std::uint64_t, Assembly> open_;
  std::unordered_set<std::uint64_t> done_;
  std::size_t pending_packets_{0};
  std::uint64_t completed_{0};
  std::uint64_t dup_packets_{0};
};

}  // namespace lamsdlc::workload
