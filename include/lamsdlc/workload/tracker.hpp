#pragma once
/// \file tracker.hpp
/// \brief End-to-end delivery accounting.
///
/// The tracker sits above the DLC on both sides: traffic sources register
/// every submitted packet, the receiving DLC delivers into `on_packet`, and
/// the tracker checks the paper's reliability claims — zero loss always,
/// zero duplicates in recoverable operation — and computes per-packet delay.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/stats.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::workload {

/// Registry of submitted packets and their delivery fate.
class DeliveryTracker final : public sim::PacketListener {
 public:
  explicit DeliveryTracker(Simulator& sim, sim::DlcStats* stats = nullptr)
      : sim_{sim}, stats_{stats} {}

  /// Record a packet about to be submitted to the DLC.
  void note_submitted(const sim::Packet& p) {
    submitted_.emplace(p.id, Entry{p.created_at, 0});
  }

  /// sim::PacketListener
  void on_packet(const sim::Packet& p, Time delivered_at) override {
    auto it = submitted_.find(p.id);
    if (it == submitted_.end()) {
      ++unknown_;  // delivered something never submitted: a protocol bug
      return;
    }
    ++it->second.deliveries;
    if (it->second.deliveries == 1) {
      ++unique_delivered_;
      last_delivery_ = delivered_at;
      const double delay = (delivered_at - it->second.submitted_at).sec();
      delay_.add(delay);
      if (stats_) {
        ++stats_->packets_delivered;
        stats_->packet_delay_s.add(delay);
      }
    } else {
      ++duplicates_;
      if (stats_) {
        ++stats_->packets_delivered;
        ++stats_->duplicates_delivered;
      }
    }
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_.size(); }
  [[nodiscard]] std::uint64_t unique_delivered() const noexcept { return unique_delivered_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }
  [[nodiscard]] std::uint64_t unknown_deliveries() const noexcept { return unknown_; }
  [[nodiscard]] Time last_delivery() const noexcept { return last_delivery_; }
  [[nodiscard]] const RunningStat& delay() const noexcept { return delay_; }
  [[nodiscard]] bool all_delivered() const noexcept {
    return unique_delivered_ == submitted_.size();
  }

  /// Packets submitted but never delivered (the loss set).
  [[nodiscard]] std::vector<frame::PacketId> missing() const {
    std::vector<frame::PacketId> out;
    for (const auto& [id, e] : submitted_) {
      if (e.deliveries == 0) out.push_back(id);
    }
    return out;
  }

 private:
  struct Entry {
    Time submitted_at;
    std::uint32_t deliveries;
  };

  Simulator& sim_;
  sim::DlcStats* stats_;
  std::unordered_map<frame::PacketId, Entry> submitted_;
  std::uint64_t unique_delivered_{0};
  std::uint64_t duplicates_{0};
  std::uint64_t unknown_{0};
  Time last_delivery_{};
  RunningStat delay_;
};

}  // namespace lamsdlc::workload
