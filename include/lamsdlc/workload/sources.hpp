#pragma once
/// \file sources.hpp
/// \brief Traffic generators matching the paper's workload models.
///
///  - `BatchSource`   — N same-size packets available at once: the low-traffic
///                      model of Section 4 ("the sender receives no I-frames
///                      until N I-frames are successfully transmitted").
///  - `RateSource`    — deterministic arrivals at a configurable rate; at
///                      one packet per t_f this is the high-traffic model
///                      ("the incoming rate into the sending buffer is always
///                      1/t_f").
///  - `PoissonSource` — memoryless arrivals for robustness experiments
///                      (explicitly *not* the paper's deterministic model).

#include <cstdint>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::workload {

/// Allocates globally unique packet ids for one simulation.
class PacketIdAllocator {
 public:
  [[nodiscard]] frame::PacketId next() noexcept { return ++last_; }

 private:
  frame::PacketId last_{0};
};

/// Submit \p count packets of \p bytes each to \p dlc at time \p at.
void submit_batch(Simulator& sim, sim::DlcSender& dlc, DeliveryTracker& tracker,
                  PacketIdAllocator& ids, std::uint64_t count,
                  std::uint32_t bytes, Time at = Time{});

/// Deterministic arrival process: one packet every `interarrival` from
/// `start`, for `count` packets (0 = unlimited until stopped).
class RateSource {
 public:
  struct Config {
    Time interarrival = Time::microseconds(30);
    std::uint64_t count = 0;  ///< 0 = unbounded.
    std::uint32_t bytes = 1024;
    Time start{};
    bool respect_backpressure = true;  ///< Pause while !dlc.accepting().
  };

  RateSource(Simulator& sim, sim::DlcSender& dlc, DeliveryTracker& tracker,
             PacketIdAllocator& ids, Config cfg);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }
  /// Arrivals skipped because the DLC was not accepting.
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }

 private:
  void tick();

  Simulator& sim_;
  sim::DlcSender& dlc_;
  DeliveryTracker& tracker_;
  PacketIdAllocator& ids_;
  Config cfg_;
  bool running_{false};
  EventId timer_{0};
  std::uint64_t generated_{0};
  std::uint64_t shed_{0};
};

/// Poisson arrival process with the given mean rate.
class PoissonSource {
 public:
  struct Config {
    double rate_pps = 1e4;  ///< Mean packets per second.
    std::uint64_t count = 0;
    std::uint32_t bytes = 1024;
    Time start{};
  };

  PoissonSource(Simulator& sim, sim::DlcSender& dlc, DeliveryTracker& tracker,
                PacketIdAllocator& ids, Config cfg, RandomStream rng);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }

 private:
  void tick();

  Simulator& sim_;
  sim::DlcSender& dlc_;
  DeliveryTracker& tracker_;
  PacketIdAllocator& ids_;
  Config cfg_;
  RandomStream rng_;
  bool running_{false};
  EventId timer_{0};
  std::uint64_t generated_{0};
};

}  // namespace lamsdlc::workload
