#pragma once
/// \file link.hpp
/// \brief Simulated point-to-point full-duplex intersatellite link.
///
/// Each direction is a `SimplexChannel`: a serializer running at the data
/// rate, a propagation delay (fixed, or time-varying via a range function for
/// orbit-driven scenarios), and an error process deciding per-frame
/// corruption.  Corrupted frames are still delivered with `corrupted = true`
/// — the paper's link model treats loss as a detectable error (assumption 9),
/// and endpoints decide what survives of a damaged frame.
///
/// An optional FEC codec expands payload bits into coded bits for the
/// serializer, so control frames can ride a stronger (lower-rate) code than
/// I-frames, exactly as link model assumption 4 prescribes.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/stats.hpp"
#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/phy/error_model.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/phy/fec.hpp"

namespace lamsdlc::link {

/// Receiving side of a channel.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// Deliver a frame (possibly with `corrupted` set).
  virtual void on_frame(frame::Frame f) = 0;
};

/// Sending side of a channel, abstracted over the backend: the surface the
/// LAMS endpoints actually use.  Two implementations exist — the simulated
/// `SimplexChannel` below and the live `rt::NetChannel` (rt/net_channel.hpp), which
/// serializes frames through the byte codec onto a real transport.  The
/// protocol state machines are written against this interface, so the
/// simulator is one backend of two rather than a hard dependency.
///
/// Timing contract: `tx_time` is the serialization time the sender budgets
/// for pacing, and `propagation_at(t)` is an *upper bound* on the one-way
/// delay of a frame sent at `t`.  The sim backend's bound is exact; a live
/// backend returns its configured worst case, which keeps the release rule
/// conservative (see docs/RUNTIME.md, "checkpoint age normalization").
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Queue a frame for transmission (FIFO at the channel's data rate).
  virtual void send(frame::Frame f) = 0;

  /// Invoked whenever the serializer finishes the last queued frame; lets a
  /// saturating sender keep the pipe full without polling.
  virtual void set_idle_callback(std::function<void()> cb) = 0;

  /// True while the serializer has work queued or in progress.
  [[nodiscard]] virtual bool busy() const = 0;

  /// Channel availability; while down, frames are destroyed.
  [[nodiscard]] virtual bool up() const = 0;

  /// Serialization time of \p f on this channel (after FEC expansion).
  [[nodiscard]] virtual Time tx_time(const frame::Frame& f) const = 0;

  /// Upper bound on the one-way delay of a frame sent at \p when.
  [[nodiscard]] virtual Time propagation_at(Time when) const = 0;
};

/// One direction of the link.
class SimplexChannel final : public FrameChannel {
 public:
  struct Config {
    double data_rate_bps = 300e6;  ///< Laser link rate (paper: 0.3–1 Gbps).
    /// One-way propagation delay as a function of the send instant.  Fixed
    /// by default; hook an orbit::SatellitePair for moving satellites.
    std::function<Time(Time)> propagation =
        [](Time) { return Time::milliseconds(10); };
    /// Distinct FEC per frame class (assumption 4).  A frame's wire length
    /// is `codec.coded_bits(frame bits)` when a codec is configured.
    std::optional<phy::FecParams> iframe_fec;
    std::optional<phy::FecParams> control_fec;

    /// Byte-accurate wire mode: every frame is serialized through the real
    /// codec on send; corruption flips actual bits in the encoded buffer;
    /// delivery decodes the damaged bytes and lets the CRC-16 FCS do the
    /// detection.  Slower, but exercises the full byte path end to end.
    /// In the default (fast) mode the `corrupted` mark models the same
    /// outcome without serializing.
    bool byte_level = false;

    /// Seed for the bit-flip positions in byte-accurate mode.
    std::uint64_t byte_level_seed = 0x5EED;

    /// Byte-accurate mode only: value limits the receiving end applies when
    /// decoding (frame::DecodeLimits).  The scenario harness fills in the
    /// protocol's sequence modulus, so a frame whose FCS survives damage but
    /// whose seq field is out of range is refused like any other unreadable
    /// husk instead of aliasing mod m inside the endpoint.
    frame::DecodeLimits decode_limits;

    /// Batched delivery: in-flight frames wait in a per-channel
    /// arrival-ordered transit queue with a single armed kernel event at the
    /// head arrival, instead of one kernel event per frame.  A saturated
    /// 1 Gbps / 10 ms link holds ~10^3 frames in flight, so this keeps the
    /// simulator's event heap a few entries deep rather than a thousand.
    /// Per-frame delivery instants and same-instant ordering are preserved
    /// exactly (the identity is gated by tests); `false` restores the
    /// original one-event-per-frame scheduling for A/B comparison.
    bool batched_delivery = true;
  };

  SimplexChannel(Simulator& sim, Config cfg,
                 std::unique_ptr<phy::ErrorModel> error_model);

  /// Replace the data-frame error process (e.g. to script a burst outage
  /// after construction).
  void set_data_error_model(std::unique_ptr<phy::ErrorModel> m) {
    error_ = std::move(m);
  }

  /// Use a distinct error process for control frames (the analysis treats
  /// P_F and P_C as independent invariants; the stronger control-frame FEC
  /// of assumption 4 justifies a separate, lower probability).  Without
  /// this, the single model applies to all frames.
  void set_control_error_model(std::unique_ptr<phy::ErrorModel> m) {
    control_error_ = std::move(m);
  }

  /// Append a fault stage (see phy::FaultInjector).  Stages compose: each
  /// frame's fate is the combination of every stage's verdict, so e.g. a
  /// control-only drop stage and an all-frames jitter stage attack the same
  /// channel independently.
  void add_fault_stage(std::unique_ptr<phy::FaultInjector> stage) {
    faults_.push_back(std::move(stage));
  }

  /// Remove every installed fault stage (the channel reverts to the plain
  /// error-model behaviour).
  void clear_fault_stages() { faults_.clear(); }

  /// Attach a typed-event bus; \p source labels this direction's events
  /// (kLinkForward / kLinkReverse).  Events mirror the channel counters
  /// one-for-one: every counter increment emits exactly one event, so the
  /// metrics collector reproduces the counters from the stream.
  void set_event_bus(obs::EventBus* bus, obs::Source source) noexcept {
    bus_ = bus;
    src_ = source;
  }

  SimplexChannel(const SimplexChannel&) = delete;
  SimplexChannel& operator=(const SimplexChannel&) = delete;

  /// Attach the receiving endpoint.  Frames sent while no sink is attached
  /// are counted and dropped.
  void set_sink(FrameSink* sink) noexcept { sink_ = sink; }

  /// Receiver-side handoff for the parallel network driver: every frame that
  /// survives the send-time fate draw (error model, fault stages, byte-level
  /// codec) is handed to \p egress with its computed arrival instant and the
  /// channel's down-epoch at send, *instead of* entering this channel's own
  /// transit queue.  All nondeterminism is resolved at send time — the
  /// handoff carries a finished (frame, arrival, epoch) triple, so delivery
  /// can run in a different partition's kernel (a `ChannelIngress` living
  /// with the receiver) without consulting sender-side state.
  using Egress = std::function<void(Time arrival, std::uint64_t epoch,
                                    frame::Frame f)>;
  void set_egress(Egress egress) { egress_ = std::move(egress); }

  /// Queue a frame for transmission.  Frames serialize back-to-back in FIFO
  /// order at the data rate.
  void send(frame::Frame f) override;

  /// Invoked whenever the serializer finishes the last queued frame; lets a
  /// saturating sender keep the pipe full without polling.
  void set_idle_callback(std::function<void()> cb) override {
    idle_cb_ = std::move(cb);
  }

  /// Instant the serializer becomes free (== now when idle).
  [[nodiscard]] Time busy_until() const noexcept;

  /// True while the serializer has work queued or in progress.
  [[nodiscard]] bool busy() const noexcept override;

  /// Link state; while down, queued and new frames are destroyed (photons
  /// have nowhere to go when pointing is lost).
  void set_up(bool up);
  [[nodiscard]] bool up() const noexcept override { return up_; }

  /// Serialization time of \p f on this channel (after FEC expansion).
  [[nodiscard]] Time tx_time(const frame::Frame& f) const noexcept override;

  /// One-way delay of a frame sent at \p when (exact in the sim model).
  [[nodiscard]] Time propagation_at(Time when) const override {
    return cfg_.propagation(when);
  }

  /// One-way delay for a frame sent now.
  [[nodiscard]] Time current_propagation() const {
    return cfg_.propagation(sim_.now());
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// \name Counters
  /// @{
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept { return frames_corrupted_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  [[nodiscard]] std::uint64_t bits_sent() const noexcept { return bits_sent_; }
  /// Byte-accurate mode only: clean frames that failed to decode, or whose
  /// decoded wire fields disagreed with what was sent despite a passing FCS.
  /// Always 0 — a nonzero value is a codec bug (surfaced for the test suite
  /// and the invariant checker to assert on).
  [[nodiscard]] std::uint64_t codec_mismatches() const noexcept { return codec_mismatches_; }
  /// Byte-accurate mode only: *damaged* frames whose bit flips happened to
  /// produce a passing FCS (CRC-16 aliasing, ~2^-16 per damaged frame).
  /// This is a modeled property of the channel, not a codec bug — the
  /// channel fails safe by still marking the frame corrupted — so it is
  /// counted separately from `codec_mismatches()`.
  [[nodiscard]] std::uint64_t codec_aliases() const noexcept { return codec_aliases_; }
  /// Byte-accurate mode only: per-reason tally of every wire buffer the
  /// frame decoder refused (bad FCS for damaged frames, length overruns and
  /// the rest for hostile input injected by the verification tiers).
  [[nodiscard]] const frame::DecodeRejectCounts& decode_rejects() const noexcept {
    return decode_rejects_;
  }
  /// Frames silently omitted by a fault stage (never delivered).
  [[nodiscard]] std::uint64_t frames_fault_dropped() const noexcept {
    return frames_fault_dropped_;
  }
  /// Extra frame copies injected by fault stages.
  [[nodiscard]] std::uint64_t frames_duplicated() const noexcept {
    return frames_duplicated_;
  }
  /// Frames whose delivery a fault stage delayed (reordering candidates).
  [[nodiscard]] std::uint64_t frames_delayed() const noexcept {
    return frames_delayed_;
  }
  /// Frames truncated into unreadable husks by a fault stage.
  [[nodiscard]] std::uint64_t frames_truncated() const noexcept {
    return frames_truncated_;
  }
  /// @}

 private:
  void start_next();
  void emit_fate(obs::EventKind kind, obs::DropCause cause,
                 const frame::Frame& f);
  [[nodiscard]] std::size_t coded_bits(const frame::Frame& f) const noexcept;
  /// Byte-accurate mode: encode, apply \p corrupt as real bit flips, decode.
  /// Moves through: the input frame is consumed, never copied, and the
  /// encode buffer is the reused channel-owned `wire_buf_`.
  [[nodiscard]] frame::Frame through_codec(frame::Frame f, bool corrupt);

  /// \name In-flight frame pool
  /// Frames between serialization and delivery park in a slot pool so the
  /// propagation-delay callback captures only `{this, epoch, slot}` — small
  /// enough for the simulator's inline callback storage.  With the pool the
  /// steady-state I-frame path schedules, flies and delivers without a
  /// single allocation (slots and payload capacity are recycled).
  /// @{
  std::uint32_t stash_inflight(frame::Frame f);
  [[nodiscard]] frame::Frame take_inflight(std::uint32_t slot);
  void deliver_inflight(std::uint64_t epoch, std::uint32_t slot);
  /// @}

  /// \name Batched delivery (Config::batched_delivery)
  /// Transit entries ordered by arrival; FIFO among equal arrivals (deque
  /// position encodes push order, so fault duplicates pushed before their
  /// original deliver first, as in the per-frame path).  On a fault-free
  /// channel arrivals are monotone and every push is an O(1) push_back; a
  /// jitter stage or shrinking orbital propagation triggers the rare sorted
  /// insert and a cancel + re-arm of the sweep event.
  /// @{
  struct Transit {
    Time arrival;
    std::uint64_t epoch;
    std::uint32_t slot;
  };
  void push_transit(Time arrival, std::uint64_t epoch, std::uint32_t slot);
  void arm_sweep();
  void sweep_transit();
  std::deque<Transit> transit_;
  EventId sweep_event_{0};
  bool sweep_armed_{false};
  Time sweep_at_{};
  /// @}

  Simulator& sim_;
  Config cfg_;
  std::unique_ptr<phy::ErrorModel> error_;
  std::unique_ptr<phy::ErrorModel> control_error_;
  std::vector<std::unique_ptr<phy::FaultInjector>> faults_;
  std::optional<phy::FecCodec> iframe_codec_;
  std::optional<phy::FecCodec> control_codec_;
  FrameSink* sink_{nullptr};
  Egress egress_;
  obs::EventBus* bus_{nullptr};
  obs::Source src_{obs::Source::kOther};
  std::function<void()> idle_cb_;
  std::deque<frame::Frame> queue_;
  std::vector<frame::Frame> inflight_;          ///< Slot pool (see above).
  std::vector<std::uint32_t> inflight_free_;    ///< Recycled slot indices.
  std::vector<std::uint8_t> wire_buf_;          ///< Reused encode buffer.
  bool transmitting_{false};
  Time tx_done_{};
  bool up_{true};
  std::uint64_t down_epoch_{0};  ///< Invalidates in-flight events on failure.
  std::uint64_t frames_sent_{0};
  std::uint64_t frames_corrupted_{0};
  std::uint64_t frames_dropped_{0};
  std::uint64_t bits_sent_{0};
  std::uint64_t codec_mismatches_{0};
  std::uint64_t codec_aliases_{0};
  frame::DecodeRejectCounts decode_rejects_;
  std::uint64_t frames_fault_dropped_{0};
  std::uint64_t frames_duplicated_{0};
  std::uint64_t frames_delayed_{0};
  std::uint64_t frames_truncated_{0};
  RandomStream flip_rng_;
};

/// Receiver-side transit queue for the parallel network driver: the mirror
/// of `SimplexChannel`'s batched delivery, living in the *receiving*
/// partition's kernel.  Frames arrive via `push` (directly for
/// partition-local traffic, at window barriers for cross-partition traffic);
/// a single armed sweep event delivers them at their arrival instants in
/// (arrival, push-order) order — exactly the channel's own transit
/// discipline.  The sweep is scheduled at a fixed below-default priority
/// unique to this ingress, so same-instant sweep-vs-endpoint-timer ordering
/// depends only on which objects are involved, never on scheduling history —
/// which is what makes execution invariant across partition counts.
///
/// Down-epochs are mirrored rather than shared: `bump_epoch` is called from
/// the same (barrier-time) link-down operation that bumps the sending
/// channel's epoch, so a stamped in-flight frame whose epoch is stale is
/// dropped here with the same observable fate the channel itself would give
/// it.
class ChannelIngress {
 public:
  ChannelIngress(Simulator& sim, Simulator::Priority sweep_priority)
      : sim_{sim}, sweep_priority_{sweep_priority} {}

  ChannelIngress(const ChannelIngress&) = delete;
  ChannelIngress& operator=(const ChannelIngress&) = delete;

  void set_sink(FrameSink* sink) noexcept { sink_ = sink; }
  void set_event_bus(obs::EventBus* bus, obs::Source source) noexcept {
    bus_ = bus;
    src_ = source;
  }

  /// Accept an in-flight frame.  \throws std::logic_error if \p arrival is
  /// before the local kernel's clock — that means the window lookahead bound
  /// was violated, and a loud failure beats a silently divergent run.
  void push(Time arrival, std::uint64_t epoch, frame::Frame f);

  /// Link went down: in-flight frames stamped with the old epoch are dropped
  /// at their arrival instants (photons in flight when pointing was lost).
  void bump_epoch() noexcept { ++epoch_; }

  [[nodiscard]] std::uint64_t frames_delivered() const noexcept {
    return frames_delivered_;
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_;
  }

 private:
  struct Transit {
    Time arrival;
    std::uint64_t epoch;
    frame::Frame f;
  };
  void arm_sweep();
  void sweep();
  void emit_drop(obs::DropCause cause, const frame::Frame& f);

  Simulator& sim_;
  Simulator::Priority sweep_priority_;
  FrameSink* sink_{nullptr};
  obs::EventBus* bus_{nullptr};
  obs::Source src_{obs::Source::kOther};
  std::deque<Transit> transit_;
  EventId sweep_event_{0};
  bool sweep_armed_{false};
  Time sweep_at_{};
  std::uint64_t epoch_{0};
  std::uint64_t frames_delivered_{0};
  std::uint64_t frames_dropped_{0};
};

/// Full-duplex link: two independent simplex channels (assumption 2).
class FullDuplexLink {
 public:
  FullDuplexLink(Simulator& sim, SimplexChannel::Config forward_cfg,
                 std::unique_ptr<phy::ErrorModel> forward_error,
                 SimplexChannel::Config reverse_cfg,
                 std::unique_ptr<phy::ErrorModel> reverse_error)
      : FullDuplexLink{sim,
                       sim,
                       std::move(forward_cfg),
                       std::move(forward_error),
                       std::move(reverse_cfg),
                       std::move(reverse_error)} {}

  /// Two-kernel form for the parallel network driver: each direction's
  /// transmit side is owned by the kernel of the node doing the sending
  /// (forward = a→b serializes in a's partition, reverse in b's).
  FullDuplexLink(Simulator& forward_sim, Simulator& reverse_sim,
                 SimplexChannel::Config forward_cfg,
                 std::unique_ptr<phy::ErrorModel> forward_error,
                 SimplexChannel::Config reverse_cfg,
                 std::unique_ptr<phy::ErrorModel> reverse_error)
      : forward_{forward_sim, std::move(forward_cfg), std::move(forward_error)},
        reverse_{reverse_sim, std::move(reverse_cfg), std::move(reverse_error)} {}

  [[nodiscard]] SimplexChannel& forward() noexcept { return forward_; }
  [[nodiscard]] SimplexChannel& reverse() noexcept { return reverse_; }

  /// Take both directions up or down together (a pointing loss kills both).
  void set_up(bool up) {
    forward_.set_up(up);
    reverse_.set_up(up);
  }

 private:
  SimplexChannel forward_;
  SimplexChannel reverse_;
};

}  // namespace lamsdlc::link
