#pragma once
/// \file nbdt.hpp
/// \brief NBDT-style continuous-mode ARQ baseline.
///
/// The introduction reviews NBDT (the NADIR Bulk Data Transfer protocol):
/// an HDLC variant for point-to-point satellite links built on *absolute*
/// 32-bit numbering (decoupling frame size from the sequence space) and
/// *completely selective acknowledgement*, with a continuous mode in which
/// new transmissions and retransmissions mix freely.  The paper's
/// criticisms: its memory demand is huge (met with secondary storage) and
/// it does not consider protocol reliability.
///
/// This implementation realizes the continuous mode as the paper describes
/// it, for comparison against LAMS-DLC:
///  - the sender transmits continuously with absolute numbers that never
///    change across retransmissions;
///  - the receiver delivers *in sequence* (buffering out-of-order frames —
///    one of the memory sinks) and emits a periodic status report: a
///    cumulative base plus the explicit missing list up to the highest
///    number received;
///  - the sender releases everything the status covers (selectively, not
///    just below base), retransmits reported holes (rate-limited so one
///    hole is not resent once per status period inside a single RTT), and
///    falls back to a timeout for silent tails.
///
/// The contrast with LAMS-DLC measured in bench E16: similar steady-state
/// throughput, but the receiver's resequencing buffer scales with loss x
/// bandwidth-delay, the status reports are positive acknowledgements (so
/// their loss costs holding time), and the absolute numbering is exactly
/// what LAMS-DLC's bounded numbering size removes.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::nbdt {

/// Parameters for an NBDT flow.
struct NbdtConfig {
  /// Period of the receiver's selective status reports.
  Time status_interval = Time::milliseconds(5);
  /// Holes are not retransmitted more often than this (a hole reported by
  /// several consecutive status frames is in flight, not lost again).
  Time retx_guard = Time::milliseconds(15);
  /// Silent-tail fallback: a frame with no status coverage for this long is
  /// retransmitted.
  Time timeout = Time::milliseconds(50);
  /// Per-frame processing time.
  Time t_proc = Time::microseconds(10);

  /// Multiphase mode (the paper's other NBDT mode): "the sender performs
  /// transmissions and retransmissions alternately" — while any
  /// retransmitted frame is still unconfirmed, no new frames enter the
  /// wire.  Continuous mode (default, false) mixes them freely.
  bool multiphase = false;
};

/// NBDT sender: continuous transmission, absolute numbering.
class NbdtSender final : public sim::DlcSender, public link::FrameSink {
 public:
  NbdtSender(Simulator& sim, link::SimplexChannel& data_out, NbdtConfig cfg,
             sim::DlcStats* stats = nullptr, Tracer tracer = {});
  ~NbdtSender() override;

  NbdtSender(const NbdtSender&) = delete;
  NbdtSender& operator=(const NbdtSender&) = delete;

  void submit(sim::Packet p) override;
  [[nodiscard]] std::size_t sending_buffer_depth() const override;
  [[nodiscard]] bool accepting() const override { return true; }
  [[nodiscard]] bool idle() const override;

  void on_frame(frame::Frame f) override;

 private:
  struct Pending {
    sim::Packet packet;
    Time first_tx{};
    Time last_tx{};
    std::uint32_t attempts = 0;
  };

  void try_send();
  void handle_status(const frame::SelectiveAckFrame& st);
  void release(std::uint64_t number);
  void queue_retx(std::uint64_t number);
  void on_tail_timer();
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  NbdtConfig cfg_;
  sim::DlcStats* stats_;
  Tracer tracer_;

  std::deque<sim::Packet> queue_;             ///< Not yet transmitted.
  std::map<std::uint64_t, Pending> window_;   ///< Unacknowledged, by number.
  std::deque<std::uint64_t> retx_queue_;
  std::uint64_t next_number_{0};
  std::uint64_t unconfirmed_retx_{0};  ///< Multiphase: open retransmissions.
  EventId tail_timer_{0};
};

/// NBDT receiver: in-sequence delivery, periodic selective status.
class NbdtReceiver final : public link::FrameSink {
 public:
  NbdtReceiver(Simulator& sim, link::SimplexChannel& control_out,
               NbdtConfig cfg, sim::PacketListener* listener,
               sim::DlcStats* stats = nullptr, Tracer tracer = {});
  ~NbdtReceiver() override;

  NbdtReceiver(const NbdtReceiver&) = delete;
  NbdtReceiver& operator=(const NbdtReceiver&) = delete;

  /// Begin the periodic status cadence.
  void start();
  void stop();

  void on_frame(frame::Frame f) override;

  void set_listener(sim::PacketListener* l) noexcept { listener_ = l; }

  /// Frames parked for in-sequence delivery (the memory sink).
  [[nodiscard]] std::size_t recv_buffer_depth() const noexcept { return held_.size(); }
  [[nodiscard]] std::uint64_t statuses_sent() const noexcept { return statuses_; }

 private:
  void status_tick();
  void deliver_ready();
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  NbdtConfig cfg_;
  sim::PacketListener* listener_;
  sim::DlcStats* stats_;
  Tracer tracer_;

  bool running_{false};
  EventId status_timer_{0};
  std::uint64_t base_{0};      ///< Everything below arrived and left.
  std::uint64_t highest_plus1_{0};
  std::map<std::uint64_t, sim::Packet> held_;
  std::uint64_t statuses_{0};
};

}  // namespace lamsdlc::nbdt
