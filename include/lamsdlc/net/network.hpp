#pragma once
/// \file network.hpp
/// \brief Multi-hop store-and-forward constellation network.
///
/// The paper's target system is not one link but a constellation of
/// store-and-forward satellites (Section 1): each node forwards incoming
/// I-frames "to the next node" immediately, which is exactly what relaxing
/// the in-sequence constraint buys (Section 2.3) — intermediate nodes hold
/// nothing for resequencing, and the *destination* carries the reordering
/// and de-duplication responsibility.
///
/// `Network` builds that system out of the single-link pieces:
///  - every link is a full-duplex pair of channels carrying two independent
///    DLC flows (data one way, its checkpoints riding the opposite
///    channel alongside the reverse flow's data);
///  - every node routes by a static next-hop table (shortest hop count by
///    default, overridable) and re-submits transit packets into the DLC
///    sender of the outgoing link;
///  - end-to-end delivery is tracked per packet and per message, with
///    exactly-once semantics at the destination;
///  - a LAMS sender that declares link failure hands its unresolved residue
///    back to the node, which reroutes it over the surviving topology — the
///    "inform the network layer" path of Section 3.2, and the zero-loss /
///    zero-duplication story of the TR's mentioned successor version.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/hdlc/gbn.hpp"
#include "lamsdlc/hdlc/sr.hpp"
#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/sim/error_config.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/message.hpp"
#include "lamsdlc/workload/tracker.hpp"

namespace lamsdlc::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// Network-layer header contents (kept off the DLC wire, like a real packet
/// header living inside the payload).
struct PacketHeader {
  NodeId src = 0;
  NodeId dst = 0;
};

/// One link between two nodes, as specified by the builder.
struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  double data_rate_bps = 100e6;
  Time prop_delay = Time::milliseconds(5);
  /// Optional time-varying propagation (orbit-driven); overrides prop_delay.
  std::function<Time(Time)> propagation;
  /// Guaranteed lower bound on the propagation delay over the whole run —
  /// the parallel driver's lookahead for this link.  Zero means "derive":
  /// fixed-delay links use `prop_delay`; links with a custom `propagation`
  /// function must set this explicitly (the contact builder does, via
  /// `min_propagation_bound`) or `enable_pdes` runs refuse to start.
  Time min_propagation{};
  sim::ErrorConfig a_to_b_error;  ///< Error process on the a→b channel.
  sim::ErrorConfig b_to_a_error;  ///< Error process on the b→a channel.
  /// DLC run on both flows of this link.  LAMS-DLC links additionally get
  /// failure detection + network-layer failover; the HDLC baselines exist
  /// for multi-hop comparisons (e.g. relay resequencing buffers).
  sim::Protocol protocol = sim::Protocol::kLams;
  lams::LamsConfig lams;  ///< Parameters when protocol == kLams.
  hdlc::HdlcConfig hdlc;  ///< Parameters when protocol is an HDLC variant.
  bool byte_level = false;
  /// Forwarded to link::SimplexChannel::Config::batched_delivery on both
  /// channels; `false` restores one-kernel-event-per-frame delivery (the
  /// byte-identity regression test A/Bs the two).
  bool batched_delivery = true;
  /// Optional event-bus factory for the link's protocol endpoints
  /// (LAMS flows only).  Called once per endpoint while the link is built;
  /// `sender_side` is true for the flow's sender.  Returned buses must
  /// outlive the network; return null for "don't observe".  Under PDES each
  /// endpoint's bus is written from exactly one partition (the sender from
  /// `partition_of(from)`, the receiver from `partition_of(to)`), so
  /// per-endpoint buffers need no locking (sim::run_network relies on this).
  std::function<obs::EventBus*(NodeId from, NodeId to, bool sender_side)>
      bus_for;
};

/// Aggregate outcome of a network run.
struct NetworkReport {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;   ///< Unique, at their destination.
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t packets_lost = 0;        ///< Sent but never delivered.
  std::uint64_t packets_forwarded = 0;   ///< Transit submissions at relays.
  std::uint64_t packets_parked = 0;      ///< Currently waiting for a route
                                         ///< (store-and-forward holding).
  std::uint64_t messages_completed = 0;
  double mean_delay_s = 0;
  double max_delay_s = 0;
};

class Network;

/// One direction of one link: a complete DLC flow (LAMS-DLC by default,
/// SR-HDLC / GBN-HDLC for baseline comparisons).
class Flow {
 public:
  Flow(Simulator& sim, Network& net, LinkId link, NodeId from, NodeId to,
       link::SimplexChannel& data, link::SimplexChannel& control,
       const LinkSpec& spec, Tracer tracer)
      : Flow{sim, sim, net, link, from, to, data, control, spec,
             std::move(tracer)} {}

  /// Two-kernel form for the parallel driver: the sender lives in \p
  /// tx_sim's partition (with the data channel's serializer), the receiver
  /// in \p rx_sim's (with the control channel's).  When the kernels differ
  /// the receiver writes into a private stats block (`rx_stats_`) so the
  /// two partitions never race on one `DlcStats`; with one kernel both
  /// endpoints share `stats_` exactly as before.
  Flow(Simulator& tx_sim, Simulator& rx_sim, Network& net, LinkId link,
       NodeId from, NodeId to, link::SimplexChannel& data,
       link::SimplexChannel& control, const LinkSpec& spec, Tracer tracer);

  /// Generic submit/buffer interface (any protocol).
  [[nodiscard]] sim::DlcSender& dlc() noexcept { return *dlc_sender_; }
  /// The frame sink consuming this flow's incoming I-frames.
  [[nodiscard]] link::FrameSink& receiver_sink() noexcept { return *receiver_sink_; }
  /// The frame sink consuming this flow's returning acknowledgements.
  [[nodiscard]] link::FrameSink& sender_sink() noexcept { return *sender_sink_; }

  /// LAMS-specific access (nullptr on HDLC flows).
  [[nodiscard]] lams::LamsSender* lams_sender() noexcept { return lams_tx_.get(); }
  [[nodiscard]] lams::LamsReceiver* lams_receiver() noexcept { return lams_rx_.get(); }
  /// Convenience kept for LAMS-heavy callers; asserts a LAMS flow.
  [[nodiscard]] lams::LamsSender& sender() noexcept { return *lams_tx_; }

  [[nodiscard]] sim::DlcStats& stats() noexcept { return stats_; }
  [[nodiscard]] NodeId from() const noexcept { return from_; }
  [[nodiscard]] NodeId to() const noexcept { return to_; }
  [[nodiscard]] LinkId link() const noexcept { return link_; }

  /// True once this flow's sender declared the link failed and its residue
  /// was rerouted; the flow no longer participates in routing.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  friend class Network;
  LinkId link_;
  NodeId from_, to_;
  bool failed_ = false;
  sim::DlcStats stats_;
  sim::DlcStats rx_stats_;  ///< Receiver-side stats in two-kernel mode.
  std::unique_ptr<lams::LamsSender> lams_tx_;
  std::unique_ptr<lams::LamsReceiver> lams_rx_;
  std::unique_ptr<hdlc::SrSender> sr_tx_;
  std::unique_ptr<hdlc::SrReceiver> sr_rx_;
  std::unique_ptr<hdlc::GbnSender> gbn_tx_;
  std::unique_ptr<hdlc::GbnReceiver> gbn_rx_;
  sim::DlcSender* dlc_sender_ = nullptr;
  link::FrameSink* receiver_sink_ = nullptr;
  link::FrameSink* sender_sink_ = nullptr;
};

/// A store-and-forward satellite node.
class Node final : public sim::PacketListener {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_{net}, id_{id}, name_{std::move(name)} {}

  /// Deliveries from every incoming flow land here; transit traffic is
  /// forwarded, local traffic is delivered upward.
  void on_packet(const sim::Packet& p, Time at) override;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  /// Packets currently parked waiting for a route (store-and-forward
  /// across contact gaps).
  [[nodiscard]] std::size_t parked() const noexcept { return parked_count_; }

 private:
  friend class Network;

  /// No next_hop_ entry for a destination.
  static constexpr NodeId kNoRoute = ~NodeId{0};

  Network& net_;
  NodeId id_;
  std::string name_;
  /// Routing tables as flat arrays indexed by NodeId (node ids are dense
  /// 0..N-1): the per-hop forwarding decision is two array loads instead of
  /// two red-black-tree walks, and steady-state transit allocates nothing.
  std::vector<NodeId> next_hop_;  ///< dst -> neighbour (kNoRoute if none).
  std::vector<Flow*> flow_to_;    ///< neighbour -> outgoing flow (nullptr).
  std::map<NodeId, std::deque<sim::Packet>> parked_;  ///< dst -> waiting.
  std::size_t parked_count_ = 0;
  std::uint64_t forwarded_ = 0;
};

/// The constellation network builder and runtime.
class Network {
 public:
  explicit Network(Simulator& sim, std::uint64_t seed = 1, Tracer tracer = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// \name Parallel execution (conservative PDES)
  /// @{
  /// Switch this network to partitioned execution *before any topology is
  /// added*: nodes are assigned to \p partitions logical processes, each
  /// with its own event kernel, and `run_parallel_to_completion` advances
  /// them in lockstep windows bounded by the minimum link propagation delay
  /// (the lookahead).  Output is bit-identical at every partition count —
  /// `partitions == 1` *is* the serial reference, same code path.
  ///
  /// \p nodes_hint, when nonzero, is the expected final node count; nodes
  /// are then assigned in contiguous blocks (keeping Walker planes
  /// together), otherwise round-robin by id.  Requires a null tracer (the
  /// text trace is inherently a global sequential log).
  void enable_pdes(std::size_t partitions, std::size_t nodes_hint = 0);
  [[nodiscard]] bool pdes_enabled() const noexcept { return pdes_ != nullptr; }
  /// Partition and kernel owning \p id (serial mode: partition 0, `simulator()`).
  [[nodiscard]] std::size_t partition_of(NodeId id) const noexcept;
  [[nodiscard]] Simulator& sim_for(NodeId id) noexcept;

  /// Schedule a *global* operation — one that touches cross-partition state
  /// (link up/down, traffic injection, route edits).  Serial mode runs it as
  /// an ordinary kernel event; parallel mode runs it at a window barrier at
  /// exactly \p when, before any same-instant kernel event, in registration
  /// order among equal times — one canonical order at every partition count.
  ///
  /// \p blocks_completion marks ops that may inject *new traffic*: the
  /// `run_to_completion` drivers refuse to declare the network complete
  /// while any such op is still pending (otherwise an all-delivered lull
  /// between traffic waves reads as completion).  Pass `false` for purely
  /// topological ops (contact up/down) so a run can finish as soon as its
  /// traffic drains instead of dwelling until the last scheduled contact.
  void at(Time when, std::function<void()> op, bool blocks_completion = true);

  /// Parallel counterpart of `run_to_completion`: windowed lockstep advance
  /// until every injected packet is delivered or \p horizon.  Completion can
  /// only change at a window barrier, so \p check_every is accepted for
  /// signature parity but the natural barrier cadence is used.  Falls back
  /// to `run_to_completion` when PDES was never enabled.
  bool run_parallel_to_completion(Time horizon,
                                  Time check_every = Time::milliseconds(1));

  /// Receiver-side ingress of one channel (parallel mode only; for tests
  /// and drivers attaching event buses).  \p forward selects the a→b
  /// channel's ingress (at b).
  [[nodiscard]] link::ChannelIngress& link_ingress(LinkId id, bool forward);
  /// @}

  /// \name Topology
  /// @{
  NodeId add_node(std::string name);
  LinkId add_link(const LinkSpec& spec);
  /// Fill every node's next-hop table by BFS hop count over live links.
  /// Called automatically by traffic entry points if never run; rerun after
  /// topology changes (e.g. a link failure) to reroute around them.
  void compute_routes();
  /// Manual route override (after compute_routes()).
  void set_route(NodeId at, NodeId dst, NodeId next_hop);
  /// @}

  /// \name Traffic
  /// @{
  /// Inject one packet at \p src destined for \p dst.  Returns its id.
  frame::PacketId send_packet(NodeId src, NodeId dst, std::uint32_t bytes);
  /// Inject a segmented message; completion is reported via the message
  /// callback when the destination has every segment (exactly once).
  std::uint64_t send_message(NodeId src, NodeId dst, std::uint32_t segments,
                             std::uint32_t bytes);
  using MessageCallback =
      std::function<void(NodeId dst, std::uint64_t message_id, Time at)>;
  void set_message_callback(MessageCallback cb) { on_message_ = std::move(cb); }
  /// @}

  /// \name Failure injection & failover
  /// @{
  /// Kill or restore both channels of a link.  Killing triggers the LAMS
  /// failure detectors on both flows; their unresolved residue is rerouted
  /// over the remaining topology (if any route exists).
  void set_link_up(LinkId id, bool up);
  /// @}

  /// Advance until every injected packet is delivered, or \p horizon.
  bool run_to_completion(Time horizon,
                         Time check_every = Time::milliseconds(1));

  [[nodiscard]] NetworkReport report() const;

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] Flow& flow(LinkId link, NodeId from);
  /// Raw channel pair of a link (to attach fault stages, event buses or
  /// captures in tests and chaos harnesses).
  [[nodiscard]] link::FullDuplexLink& link_channels(LinkId id) {
    return *links_.at(id)->duplex;
  }
  [[nodiscard]] workload::DeliveryTracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] const PacketHeader* header(frame::PacketId id) const;

 private:
  friend class Node;
  friend class Flow;

  struct LinkState {
    LinkSpec spec;
    std::unique_ptr<link::FullDuplexLink> duplex;
    std::unique_ptr<Flow> ab;  ///< Flow a→b (data on forward channel).
    std::unique_ptr<Flow> ba;  ///< Flow b→a (data on reverse channel).
    std::unique_ptr<link::FrameSink> sink_at_a;  ///< Demux on the b→a channel.
    std::unique_ptr<link::FrameSink> sink_at_b;  ///< Demux on the a→b channel.
    /// Parallel mode: receiver-side transit queues (null in serial mode).
    std::unique_ptr<link::ChannelIngress> ingress_at_b;  ///< Forward channel.
    std::unique_ptr<link::ChannelIngress> ingress_at_a;  ///< Reverse channel.
    bool up = true;
  };

  void build_flows(LinkState& ls, LinkId id);

  void record_header(frame::PacketId id, NodeId src, NodeId dst);
  void forward(Node& at, const sim::Packet& p, NodeId dst);
  void deliver_local(Node& at, const sim::Packet& p, Time at_time);
  /// The resequencer/tracker delivery proper; parallel mode journals
  /// deliveries during windows and replays them here at barriers.
  void deliver_local_now(NodeId node, const sim::Packet& p, Time at_time);
  void on_flow_failed(Flow& flow);
  void ensure_routes();
  /// Re-attempt every parked packet after a topology change.
  void flush_parked();

  // Parallel engine internals (network.cpp).
  struct PdesState;
  [[nodiscard]] Time pdes_lookahead() const;
  void pdes_barrier(Time window_end);
  void drain_delivery_journal();

  Simulator& sim_;
  std::uint64_t seed_;
  Tracer tracer_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<LinkState>> links_;
  workload::DeliveryTracker tracker_;
  workload::PacketIdAllocator ids_;
  /// Per-packet network headers, indexed directly by PacketId: the allocator
  /// hands out dense ids 1, 2, 3, ..., so the table is a flat array (entry 0
  /// unused) and the per-hop header lookup in Node::on_packet is one bounds
  /// check + one load.  Ids outside the table (protocol-level test rigs
  /// driving flows directly) resolve to nullptr exactly as before.
  std::vector<PacketHeader> headers_;
  workload::MessageRegistry message_registry_;
  std::map<NodeId, std::unique_ptr<workload::Resequencer>> resequencers_;
  MessageCallback on_message_;
  std::uint64_t next_message_{0};
  bool routes_valid_{false};
  /// `at(..., blocks_completion=true)` ops not yet run: completion gates on
  /// this reaching zero so queued traffic waves are never abandoned.
  std::size_t pending_blocking_ops_{0};
  std::unique_ptr<PdesState> pdes_;  ///< Null when running serially.
};

}  // namespace lamsdlc::net
