#pragma once
/// \file contact_schedule.hpp
/// \brief Drive network-link availability from orbital contact plans.
///
/// LAMS links live only while geometry allows (Section 1's "short link
/// lifetime").  These helpers connect the orbit module's visibility windows
/// to the network: a link exists permanently as an object but is up only
/// inside its windows; outside them traffic parks at the store-and-forward
/// nodes until the next contact.  Every up-transition starts fresh protocol
/// instances on both flows (a re-acquired laser link has no shared state
/// with its previous life).

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "lamsdlc/net/network.hpp"
#include "lamsdlc/orbit/constellation.hpp"

namespace lamsdlc::net {

/// Schedule \p link to be up exactly during \p windows (sorted, disjoint).
/// Windows already in the past are ignored; a window containing `now` takes
/// effect immediately.
inline void schedule_link_windows(
    Network& net, LinkId link,
    const std::vector<orbit::VisibilityWindow>& windows) {
  Simulator& sim = net.simulator();
  const Time now = sim.now();
  bool currently_up = false;
  for (const auto& w : windows) {
    if (w.end <= now) continue;
    if (w.start <= now) {
      currently_up = true;
    } else {
      sim.schedule_at(w.start, [&net, link] { net.set_link_up(link, true); });
    }
    sim.schedule_at(w.end, [&net, link] { net.set_link_up(link, false); });
  }
  net.set_link_up(link, currently_up);
}

/// Build one link per constellation pair appearing in \p plan, with
/// orbit-driven propagation, and schedule each link's windows.  \p proto
/// supplies everything except endpoints and propagation.  Returns the
/// pair→link mapping.
inline std::map<std::pair<std::size_t, std::size_t>, LinkId>
build_contact_network(Network& net, const orbit::Constellation& c,
                      const std::vector<orbit::Contact>& plan,
                      const LinkSpec& proto, double max_range_m = 1.0e7) {
  // Group windows per pair.
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<orbit::VisibilityWindow>>
      windows;
  for (const orbit::Contact& ct : plan) {
    windows[{ct.a, ct.b}].push_back(ct.window);
  }

  std::map<std::pair<std::size_t, std::size_t>, LinkId> out;
  for (auto& [pair_ids, w] : windows) {
    auto geometry = std::make_shared<orbit::SatellitePair>(
        c.pair(pair_ids.first, pair_ids.second, max_range_m));
    LinkSpec spec = proto;
    spec.a = static_cast<NodeId>(pair_ids.first);
    spec.b = static_cast<NodeId>(pair_ids.second);
    spec.propagation = [geometry](Time t) {
      return geometry->propagation_delay(t);
    };
    const LinkId id = net.add_link(spec);
    schedule_link_windows(net, id, w);
    out.emplace(pair_ids, id);
  }
  return out;
}

}  // namespace lamsdlc::net
