#pragma once
/// \file contact_schedule.hpp
/// \brief Drive network-link availability from orbital contact plans.
///
/// LAMS links live only while geometry allows (Section 1's "short link
/// lifetime").  These helpers connect the orbit module's visibility windows
/// to the network: a link exists permanently as an object but is up only
/// inside its windows; outside them traffic parks at the store-and-forward
/// nodes until the next contact.  Every up-transition starts fresh protocol
/// instances on both flows (a re-acquired laser link has no shared state
/// with its previous life).

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "lamsdlc/net/network.hpp"
#include "lamsdlc/orbit/constellation.hpp"

namespace lamsdlc::net {

/// Normalize a window list into the sorted, disjoint form the scheduler
/// requires: inverted (`end < start`) and zero-length windows are dropped,
/// the rest are sorted by start and coalesced whenever they overlap or
/// touch.  Raw plans routinely violate the "sorted, disjoint" contract —
/// a finder step that quantizes to the same tick produces zero-length
/// windows, and a plan combining `{a,b}` with `{b,a}` rows lists the same
/// physical contact twice — and feeding such a list to the scheduler
/// unmerged interleaves up/down transitions at the same instant, taking a
/// link down in the middle of a live contact.
[[nodiscard]] inline std::vector<orbit::VisibilityWindow> merge_contact_windows(
    std::vector<orbit::VisibilityWindow> windows) {
  std::erase_if(windows, [](const orbit::VisibilityWindow& w) {
    return w.end <= w.start;  // inverted or zero-length: no up-time to give
  });
  std::sort(windows.begin(), windows.end(),
            [](const orbit::VisibilityWindow& a,
               const orbit::VisibilityWindow& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::vector<orbit::VisibilityWindow> merged;
  for (const orbit::VisibilityWindow& w : windows) {
    // Touching windows coalesce too: an up at the very tick of a down would
    // otherwise schedule both transitions at the same instant, with the
    // link's fate decided by event-queue tie-breaking.
    if (!merged.empty() && w.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

/// Conservative lower bound on \p pair's propagation delay across the plan's
/// horizon, for the parallel driver's lookahead (`LinkSpec::min_propagation`).
/// The range function is sampled once per second — far finer than orbital
/// range dynamics — and shrunk by a 25 % safety margin; a violation cannot
/// corrupt a run silently, because the parallel delivery path asserts every
/// cross-partition arrival clears the window bound (link::ChannelIngress).
[[nodiscard]] inline Time min_propagation_bound(
    const orbit::SatellitePair& pair, const std::vector<orbit::Contact>& plan) {
  Time horizon{};
  for (const orbit::Contact& ct : plan) {
    horizon = std::max(horizon, ct.window.end);
  }
  Time best = pair.propagation_delay(Time{});
  for (Time t{}; t <= horizon; t += Time::seconds_int(1)) {
    best = std::min(best, pair.propagation_delay(t));
  }
  return Time::picoseconds(best.ps() * 3 / 4);
}

/// Schedule \p link to be up exactly during \p windows.  The list is
/// normalized first (see `merge_contact_windows`), so overlapping, touching,
/// inverted and zero-length windows are all handled; windows already in the
/// past are ignored and a window containing `now` takes effect immediately.
/// Transitions go through `Network::at`, so under the parallel (PDES) driver
/// they run at window barriers in canonical order.
inline void schedule_link_windows(
    Network& net, LinkId link,
    const std::vector<orbit::VisibilityWindow>& windows) {
  const Time now = net.simulator().now();
  bool currently_up = false;
  for (const auto& w : merge_contact_windows(windows)) {
    if (w.end <= now) continue;
    // Contact transitions are topology-only: they never inject traffic, so
    // they must not hold `run_to_completion` open after the last delivery
    // (a run would otherwise dwell until the final scheduled contact).
    if (w.start <= now) {
      currently_up = true;
    } else {
      net.at(w.start, [&net, link] { net.set_link_up(link, true); },
             /*blocks_completion=*/false);
    }
    net.at(w.end, [&net, link] { net.set_link_up(link, false); },
           /*blocks_completion=*/false);
  }
  net.set_link_up(link, currently_up);
}

/// Build one link per constellation pair appearing in \p plan, with
/// orbit-driven propagation, and schedule each link's windows.  \p proto
/// supplies everything except endpoints and propagation.  Returns the
/// pair→link mapping, keyed by the canonical (min, max) satellite pair — a
/// plan listing both `{a,b}` and `{b,a}` rows describes one physical ISL,
/// so both spellings collapse onto one link whose window list is the merge
/// of both rows' windows.
inline std::map<std::pair<std::size_t, std::size_t>, LinkId>
build_contact_network(Network& net, const orbit::Constellation& c,
                      const std::vector<orbit::Contact>& plan,
                      const LinkSpec& proto, double max_range_m = 1.0e7) {
  // Group windows per canonical pair.
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<orbit::VisibilityWindow>>
      windows;
  for (const orbit::Contact& ct : plan) {
    const auto [lo, hi] = std::minmax(ct.a, ct.b);
    windows[{lo, hi}].push_back(ct.window);
  }

  std::map<std::pair<std::size_t, std::size_t>, LinkId> out;
  for (auto& [pair_ids, w] : windows) {
    auto geometry = std::make_shared<orbit::SatellitePair>(
        c.pair(pair_ids.first, pair_ids.second, max_range_m));
    LinkSpec spec = proto;
    spec.a = static_cast<NodeId>(pair_ids.first);
    spec.b = static_cast<NodeId>(pair_ids.second);
    spec.propagation = [geometry](Time t) {
      return geometry->propagation_delay(t);
    };
    if (spec.min_propagation.is_zero()) {
      spec.min_propagation = min_propagation_bound(*geometry, plan);
    }
    const LinkId id = net.add_link(spec);
    schedule_link_windows(net, id, w);
    out.emplace(pair_ids, id);
  }
  return out;
}

}  // namespace lamsdlc::net
