#pragma once
/// \file orbit.hpp
/// \brief Circular-orbit constellation geometry.
///
/// The paper's LAMS environment is a constellation of low-altitude satellites
/// (~1000 km) whose intersatellite ranges vary between R_min and R_max over a
/// link lifetime of minutes (Sections 1, 2.1).  This module supplies concrete
/// instances of those quantities: satellite positions on circular orbits,
/// pairwise range R_t, line-of-sight visibility (Earth occlusion + maximum
/// laser range), and contiguous visibility windows (link lifetimes).
///
/// The timeout analysis of Section 4 needs only R = (R_min + R_max)/2 and
/// alpha >= R_max - R from var(R_t); `RangeStats` computes these for any
/// window.

#include <cmath>
#include <cstddef>
#include <vector>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc::orbit {

/// Physical constants used throughout (SI units).
inline constexpr double kEarthRadiusM = 6.371e6;
inline constexpr double kEarthMuM3S2 = 3.986004418e14;  ///< GM of Earth.
inline constexpr double kLightSpeedMS = 2.99792458e8;

/// Simple 3-vector.
struct Vec3 {
  double x{0}, y{0}, z{0};

  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator*(double k, Vec3 a) noexcept {
    return {k * a.x, k * a.y, k * a.z};
  }
  [[nodiscard]] constexpr double dot(Vec3 o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(dot(*this)); }
};

/// A satellite on a circular orbit.
struct CircularOrbit {
  double altitude_m = 1.0e6;    ///< Height above Earth surface.
  double inclination_rad = 0;   ///< Orbit plane tilt from equator.
  double raan_rad = 0;          ///< Right ascension of ascending node.
  double phase_rad = 0;         ///< Position along the orbit at t = 0.

  /// Orbital radius from Earth centre.
  [[nodiscard]] double radius_m() const noexcept { return kEarthRadiusM + altitude_m; }

  /// Mean motion (rad/s) from Kepler's third law.
  [[nodiscard]] double mean_motion_rad_s() const noexcept {
    const double r = radius_m();
    return std::sqrt(kEarthMuM3S2 / (r * r * r));
  }

  /// Orbital period.
  [[nodiscard]] Time period() const noexcept {
    return Time::seconds(2.0 * M_PI / mean_motion_rad_s());
  }

  /// Earth-centred inertial position at simulation time \p t.
  [[nodiscard]] Vec3 position(Time t) const noexcept;
};

/// Geometry between two satellites.
class SatellitePair {
 public:
  SatellitePair(CircularOrbit a, CircularOrbit b, double max_range_m = 1.0e7)
      : a_{a}, b_{b}, max_range_m_{max_range_m} {}

  /// Instantaneous range in metres.
  [[nodiscard]] double range_m(Time t) const noexcept;

  /// One-way light-time at \p t.
  [[nodiscard]] Time propagation_delay(Time t) const noexcept {
    return Time::seconds(range_m(t) / kLightSpeedMS);
  }

  /// True when the pair has line of sight (not occluded by the Earth,
  /// including a grazing-altitude margin) and is within laser range.
  [[nodiscard]] bool visible(Time t, double grazing_altitude_m = 1.0e5) const noexcept;

  [[nodiscard]] const CircularOrbit& a() const noexcept { return a_; }
  [[nodiscard]] const CircularOrbit& b() const noexcept { return b_; }

 private:
  CircularOrbit a_, b_;
  double max_range_m_;
};

/// A contiguous interval during which a pair is visible: one link lifetime.
struct VisibilityWindow {
  Time start;
  Time end;
  [[nodiscard]] Time duration() const noexcept { return end - start; }
};

/// Scan [0, horizon] at the given step for visibility windows.
[[nodiscard]] std::vector<VisibilityWindow> find_windows(
    const SatellitePair& pair, Time horizon,
    Time step = Time::seconds_int(1));

/// Range statistics over a window, as needed by the Section 4 timeout model:
/// t_out = R + alpha with R the mean of R_min/R_max and alpha >= R_max - R.
struct RangeStats {
  double r_min_m = 0;
  double r_max_m = 0;

  [[nodiscard]] double r_mean_m() const noexcept { return 0.5 * (r_min_m + r_max_m); }
  /// Mean round-trip light-time 2*R/c.
  [[nodiscard]] Time round_trip() const noexcept {
    return Time::seconds(2.0 * r_mean_m() / kLightSpeedMS);
  }
  /// Minimum alpha (in time units, round-trip terms): 2*(R_max - R)/c.
  [[nodiscard]] Time min_alpha() const noexcept {
    return Time::seconds(2.0 * (r_max_m - r_mean_m()) / kLightSpeedMS);
  }
};

/// Sample ranges across \p window and return min/max.
[[nodiscard]] RangeStats range_stats(const SatellitePair& pair,
                                     const VisibilityWindow& window,
                                     Time step = Time::seconds_int(1));

}  // namespace lamsdlc::orbit
