#pragma once
/// \file constellation.hpp
/// \brief Walker-delta constellations and contact plans.
///
/// The paper's network is "multiple satellites in a low altitude orbit
/// functioning as store-and-forward DCE" (Section 2.1).  The standard
/// geometry for such systems is the Walker delta pattern t/p/f: t satellites
/// in p evenly spaced planes at a common inclination, with inter-plane
/// phasing f.  This module generates those orbits, enumerates the grid
/// neighbour topology (intra-plane ring + cross-plane same-slot links — the
/// "limited communication links per satellite due to SWAP" constraint), and
/// extracts a contact plan: for every candidate pair, the visibility windows
/// whose durations are the paper's short link lifetimes.

#include <cstddef>
#include <vector>

#include "lamsdlc/orbit/orbit.hpp"

namespace lamsdlc::orbit {

/// Walker delta pattern parameters (i:t/p/f).
struct WalkerParams {
  std::uint32_t total = 24;      ///< t: satellites overall.
  std::uint32_t planes = 4;      ///< p: orbital planes (t % p == 0).
  std::uint32_t phasing = 1;     ///< f: inter-plane phase factor (0..p-1).
  double altitude_m = 1.0e6;     ///< The paper's ~1000 km regime.
  double inclination_rad = 0.9;  ///< Common inclination.
};

/// A generated constellation with its grid neighbour topology.
class Constellation {
 public:
  explicit Constellation(WalkerParams p);

  [[nodiscard]] const WalkerParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t size() const noexcept { return sats_.size(); }
  [[nodiscard]] const CircularOrbit& satellite(std::size_t i) const {
    return sats_.at(i);
  }

  /// Satellite index for (plane, slot).
  [[nodiscard]] std::size_t index(std::uint32_t plane, std::uint32_t slot) const noexcept;

  /// The classic LEO grid topology: each satellite links to its two
  /// intra-plane neighbours (ring) and its same-slot neighbour in the next
  /// plane (4 laser terminals per satellite — the SWAP budget).  Pairs are
  /// unique (i < j).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> grid_neighbors() const;

  /// Geometry handle for one pair.
  [[nodiscard]] SatellitePair pair(std::size_t i, std::size_t j,
                                   double max_range_m = 1.0e7) const {
    return SatellitePair{sats_.at(i), sats_.at(j), max_range_m};
  }

 private:
  WalkerParams params_;
  std::vector<CircularOrbit> sats_;
};

/// One usable pass between two satellites.
struct Contact {
  std::size_t a = 0;
  std::size_t b = 0;
  VisibilityWindow window;
  RangeStats ranges;  ///< Over the window (for t_out = R + alpha sizing).
};

/// Scan the grid-neighbour pairs of \p c over [0, horizon] and return every
/// visibility window of at least \p min_duration, sorted by start time.
[[nodiscard]] std::vector<Contact> contact_plan(
    const Constellation& c, Time horizon, Time step = Time::seconds_int(10),
    double max_range_m = 1.0e7, Time min_duration = Time::seconds_int(30));

}  // namespace lamsdlc::orbit
