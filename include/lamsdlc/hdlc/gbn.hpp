#pragma once
/// \file gbn.hpp
/// \brief Go-Back-N HDLC baseline (REJ recovery).
///
/// The classic continuous-window protocol the introduction contrasts with
/// SR: the receiver accepts only in-sequence frames and discards everything
/// after a gap, answering the first out-of-sequence frame with REJ(N(R));
/// the sender then backs up and resends from N(R).  Each delivered in-order
/// frame is acknowledged with RR(N(R)).  On a LAMS link the discarded
/// in-transit frames make GBN strictly worse than SR (Section 2.3) — this
/// implementation exists to demonstrate exactly that.

#include <cstdint>
#include <deque>
#include <map>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/frame/seqspace.hpp"
#include "lamsdlc/hdlc/config.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::hdlc {

/// GBN-HDLC sending endpoint.  Sink of the reverse channel.
class GbnSender final : public sim::DlcSender, public link::FrameSink {
 public:
  GbnSender(Simulator& sim, link::SimplexChannel& data_out, HdlcConfig cfg,
            sim::DlcStats* stats = nullptr, Tracer tracer = {});
  ~GbnSender() override;

  GbnSender(const GbnSender&) = delete;
  GbnSender& operator=(const GbnSender&) = delete;

  void submit(sim::Packet p) override;
  [[nodiscard]] std::size_t sending_buffer_depth() const override;
  [[nodiscard]] bool accepting() const override { return true; }
  [[nodiscard]] bool idle() const override;

  void on_frame(frame::Frame f) override;

  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  struct Pending {
    sim::Packet packet;
    Time first_tx{};
    std::uint32_t attempts = 0;
  };

  void try_send();
  void release_below(std::uint64_t ctr);
  void go_back_to(std::uint64_t ctr);
  void arm_timeout();
  void on_timeout();
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  HdlcConfig cfg_;
  sim::DlcStats* stats_;
  Tracer tracer_;
  frame::SeqSpace seqspace_;

  std::deque<sim::Packet> queue_;
  std::map<std::uint64_t, Pending> window_;
  std::uint64_t base_ctr_{0};
  std::uint64_t next_ctr_{0};
  std::uint64_t resend_cursor_{0};  ///< Next counter to (re)transmit.
  EventId timeout_timer_{0};
  std::uint64_t timeouts_{0};
};

/// GBN-HDLC receiving endpoint.  Sink of the forward channel.
class GbnReceiver final : public link::FrameSink {
 public:
  GbnReceiver(Simulator& sim, link::SimplexChannel& control_out,
              HdlcConfig cfg, sim::PacketListener* listener,
              sim::DlcStats* stats = nullptr, Tracer tracer = {});

  GbnReceiver(const GbnReceiver&) = delete;
  GbnReceiver& operator=(const GbnReceiver&) = delete;

  void on_frame(frame::Frame f) override;

  /// Swap the upward delivery target.
  void set_listener(sim::PacketListener* l) noexcept { listener_ = l; }

  /// Frames the in-sequence constraint forced this receiver to discard.
  [[nodiscard]] std::uint64_t frames_discarded() const noexcept { return discarded_; }

 private:
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  HdlcConfig cfg_;
  sim::PacketListener* listener_;
  sim::DlcStats* stats_;
  Tracer tracer_;
  frame::SeqSpace seqspace_;

  std::uint64_t vr_{0};
  bool rej_outstanding_{false};
  std::uint64_t discarded_{0};
};

}  // namespace lamsdlc::hdlc
