#pragma once
/// \file config.hpp
/// \brief HDLC baseline parameters.

#include <cstddef>
#include <cstdint>
#include <limits>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc::hdlc {

/// Parameters for the SR-HDLC / GBN-HDLC baselines (Section 4's comparison
/// protocols).
struct HdlcConfig {
  /// Send window W.  The analysis pairs LAMS-DLC's transparent buffer with
  /// W = B_LAMS; the sequence-number constraint W <= modulus/2 applies.
  std::uint32_t window = 64;

  /// Sequence-number modulus M (classic HDLC: 8, extended: 128; the NBDT
  /// discussion motivates larger absolute numbering, which we allow).
  std::uint32_t modulus = 128;

  /// Per-frame processing time t_proc.
  Time t_proc = Time::microseconds(10);

  /// Retransmission timeout t_out = R + alpha (Section 4): must exceed the
  /// worst-case round trip in a moving constellation.
  Time timeout = Time::milliseconds(120);

  /// SR receiver resequencing-buffer capacity.  When the out-of-order hold
  /// reaches it, further out-of-order frames are discarded and the poll
  /// response becomes RNR (receiver not ready) — the limited-buffering
  /// secondary of the paper's NRM discussion.  Unlimited by default, which
  /// is what the Section 4 analysis assumes.
  std::size_t recv_capacity = std::numeric_limits<std::size_t>::max();

  /// Stutter mode (the SR+ST mixed ARQ of Miller & Lin, cited in the
  /// paper's introduction): while the sender waits for a window response it
  /// re-sends the unacknowledged frames cyclically instead of idling,
  /// re-polling at the end of each cycle.  Buys back idle time on long
  /// links at the cost of (mostly redundant) retransmissions.
  bool stutter = false;
};

}  // namespace lamsdlc::hdlc
