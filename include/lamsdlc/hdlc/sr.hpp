#pragma once
/// \file sr.hpp
/// \brief Selective-repeat HDLC baseline (checkpoint-mode window operation).
///
/// This is the comparison protocol of Section 4.  Its behaviour follows the
/// paper's model exactly:
///  - the sender transmits a window of up to W I-frames (the *transmission
///    period*), setting the P bit on the last frame of the burst;
///  - the receiver delivers strictly in sequence, holding out-of-order
///    frames (its buffer must reach the window size — the in-sequence
///    constraint at work); when the P frame arrives it answers with either
///      RR(F)            — every frame of the window arrived: the final
///                         positive acknowledgement that opens new credit, or
///      SREJ(F) + list   — selective reject of each missing frame with a
///                         cumulative N(R);
///  - each *retransmission period* resends the rejected frames (same
///    sequence numbers — HDLC may not renumber, which is what makes its
///    holding time and numbering unbounded), again with P on the last;
///  - a lost response (probability P_C) is recovered by the timeout
///    t_out = R + alpha, after which every unacknowledged frame is resent.
///
/// New I-frames are admitted only when the window closes, reproducing the
/// stop-and-resolve structure whose cost the analysis charges to SR-HDLC.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/frame/seqspace.hpp"
#include "lamsdlc/hdlc/config.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::hdlc {

/// SR-HDLC sending endpoint.  Sink of the reverse channel.
class SrSender final : public sim::DlcSender, public link::FrameSink {
 public:
  SrSender(Simulator& sim, link::SimplexChannel& data_out, HdlcConfig cfg,
           sim::DlcStats* stats = nullptr, Tracer tracer = {});
  ~SrSender() override;

  SrSender(const SrSender&) = delete;
  SrSender& operator=(const SrSender&) = delete;

  void submit(sim::Packet p) override;
  [[nodiscard]] std::size_t sending_buffer_depth() const override;
  [[nodiscard]] bool accepting() const override;
  [[nodiscard]] bool idle() const override;

  void on_frame(frame::Frame f) override;

  /// Timeout-recovery episodes (every expiry of t_out).
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  /// Windows fully acknowledged.
  [[nodiscard]] std::uint64_t windows_closed() const noexcept { return windows_closed_; }
  /// Idle-time retransmissions issued in stutter mode (SR+ST).
  [[nodiscard]] std::uint64_t stutter_retx() const noexcept { return stutter_retx_; }

 private:
  struct Pending {
    sim::Packet packet;
    Time first_tx{};
    std::uint32_t attempts = 0;
  };

  void try_send();
  void send_iframe(std::uint64_t ctr, bool poll);
  [[nodiscard]] std::uint64_t ack_counter(frame::Seq nr) const;
  void handle_rr(const frame::HdlcSFrame& s);
  void handle_srej(const frame::HdlcSFrame& s);
  void release_below(std::uint64_t ctr);
  void arm_timeout();
  void on_timeout();
  void note_buffer_change();
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  HdlcConfig cfg_;
  sim::DlcStats* stats_;
  Tracer tracer_;
  frame::SeqSpace seqspace_;

  std::deque<sim::Packet> queue_;        ///< Admitted, not yet in the window.
  std::map<std::uint64_t, Pending> window_;  ///< Sent, unacknowledged.
  std::deque<std::uint64_t> retx_queue_;     ///< Rejected, awaiting resend.
  std::uint64_t base_ctr_{0};
  std::uint64_t next_ctr_{0};
  bool awaiting_response_{false};
  bool kick_pending_{false};
  EventId timeout_timer_{0};

  std::uint64_t timeouts_{0};
  std::uint64_t windows_closed_{0};
  std::uint64_t stutter_retx_{0};
  std::uint64_t stutter_cursor_{0};  ///< Next counter to stutter-resend.
};

/// SR-HDLC receiving endpoint.  Sink of the forward channel.
class SrReceiver final : public link::FrameSink {
 public:
  SrReceiver(Simulator& sim, link::SimplexChannel& control_out, HdlcConfig cfg,
             sim::PacketListener* listener, sim::DlcStats* stats = nullptr,
             Tracer tracer = {});

  SrReceiver(const SrReceiver&) = delete;
  SrReceiver& operator=(const SrReceiver&) = delete;

  void on_frame(frame::Frame f) override;

  /// Swap the upward delivery target.
  void set_listener(sim::PacketListener* l) noexcept { listener_ = l; }

  /// Frames currently held for resequencing (the in-sequence cost).
  [[nodiscard]] std::size_t recv_buffer_depth() const noexcept { return held_.size(); }

  /// Out-of-order frames discarded because the resequencing buffer was at
  /// capacity (RNR operation).
  [[nodiscard]] std::uint64_t busy_discards() const noexcept { return busy_discards_; }

 private:
  void handle_iframe(const frame::HdlcIFrame& in, bool corrupted);
  void deliver_ready();
  void respond();
  void trace(std::string what) const;

  Simulator& sim_;
  link::SimplexChannel& out_;
  HdlcConfig cfg_;
  sim::PacketListener* listener_;
  sim::DlcStats* stats_;
  Tracer tracer_;
  frame::SeqSpace seqspace_;

  std::uint64_t vr_{0};  ///< Next in-sequence counter expected.
  std::uint64_t highest_plus1_{0};
  std::map<std::uint64_t, sim::Packet> held_;  ///< Out-of-order good frames.
  std::uint64_t busy_discards_{0};
};

}  // namespace lamsdlc::hdlc
