#pragma once
/// \file verify.hpp
/// \brief Property-based verification harness: hostile scenario generation,
///        differential protocol oracle, and failure shrinking.
///
/// One verification run draws a *hostile* configuration from a seed —
/// deliberately tiny numbering sizes (8/16/32, where every sequence-space
/// mistake aliases within a few frames), cumulation depths across 1..8,
/// checkpoint intervals spanning the regimes where the resolving-period
/// bound is rtt-dominated and where it is W_cp-dominated, fault-injector
/// episodes, congestion, outages and byte-accurate wire mode — then audits
/// the run three ways:
///
///  1. **Invariants** (`sim::InvariantChecker`): zero loss, zero duplicate
///     client delivery, the transparent-buffer population within the paper's
///     numbering-size claim (outstanding < modulus/2), holding times within
///     the resolving-period bound, and a clean terminal state.
///  2. **Differential oracle**: the same workload through SR-HDLC and
///     GBN-HDLC over the same noisy channel; every protocol must deliver
///     exactly the submitted packet multiset — a divergence means one
///     implementation (or the oracle's assumptions) is wrong.
///  3. **Closed-form model**: for clean draws (base noise only), measured
///     transmissions per delivered frame must match the Section 4 model
///     s̄ = 1/(1−P_F) within statistical tolerance.
///
/// The generator respects the protocol's *operating envelope* — the
/// numbering-size precondition of Section 3.3 (in-flight span under m/2) and
/// the bounded-jitter precondition of the release rule — because outside the
/// envelope the paper makes no promises.  Everything else is fair game.
///
/// A failing seed auto-shrinks (`shrink_failure`): the workload halves, knob
/// classes drop, fault windows scale down — each step keeping the failure —
/// until a minimal configuration remains, printable as a `lamsdlc_cli verify
/// --repro` command line.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/sim/scenario.hpp"

namespace lamsdlc::verif {

/// Identity of one verification run.  Everything is drawn deterministically
/// from `seed`; the pin fields and class switches exist so the shrinker (and
/// `--repro` command lines) can reproduce and narrow a failure.  Pinning a
/// drawn value does not disturb the other draws — the generator always
/// consumes the same random stream and overrides afterwards.
struct VerifyKnobs {
  std::uint64_t seed = 1;

  /// \name Pins (0 = draw from the hostile grid)
  /// @{
  std::uint32_t modulus = 0;   ///< Numbering size; drawn from {8, 16, 32}.
  std::uint32_t c_depth = 0;   ///< Cumulation depth; drawn from 1..8.
  std::uint64_t packets = 0;   ///< Workload size; drawn from 40..160.
  /// @}

  /// \name Scenario classes the generator may draw (shrinker switches)
  /// @{
  bool faults = true;          ///< Windowed fault-injector episodes.
  bool congestion = true;      ///< Small receive buffers + slow t_proc.
  bool outage = true;          ///< Full two-way link outages.
  bool reverse_faults = true;  ///< Episodes on the checkpoint channel.
  bool byte_level = true;      ///< May draw byte-accurate wire mode.
  bool differential = true;    ///< Run the SR/GBN differential legs.
  bool analysis_check = true;  ///< Model-vs-sim s̄ check on clean draws.
  /// @}

  /// Scales every fault episode and outage length; the shrinker bisects
  /// this toward the shortest window that still fails.
  double fault_scale = 1.0;

  /// Simulation horizon; zero derives a safe bound from the drawn scenario.
  Time horizon{};

  /// Debug hook invoked with the LAMS-leg scenario after construction and
  /// before traffic starts (subscribe an event printer, attach a capture
  /// writer).  Not part of the run's identity; never printed by `--repro`.
  std::function<void(sim::Scenario&)> tap;
};

/// Outcome of one verification run.
struct VerifyVerdict {
  bool ok = false;               ///< No invariant, oracle or model failure.
  bool completed = false;        ///< LAMS leg delivered everything.
  bool declared_failed = false;  ///< LAMS sender declared link failure.

  /// Invariant violations, differential mismatches and model divergences.
  std::vector<std::string> failures;

  /// The fully drawn scenario, printable (the reproduction transcript).
  std::string transcript;

  /// Effective knobs: the input with every drawn value pinned, so a repro
  /// stays stable even if the drawing logic changes later.
  VerifyKnobs knobs;

  sim::ScenarioReport report;  ///< LAMS leg report.

  /// `lamsdlc_cli verify` invocation reproducing exactly this run.
  [[nodiscard]] std::string repro_command() const;

  /// Verdict + failures + transcript in one printable block.
  [[nodiscard]] std::string to_string() const;
};

/// Run one seeded verification scenario; deterministic in `knobs`.
[[nodiscard]] VerifyVerdict run_verify(const VerifyKnobs& knobs);

/// Shrink a failing configuration to a minimal one that still fails:
/// halve the workload, drop scenario classes, bisect the fault windows.
/// \p budget bounds the number of candidate re-runs.  Returns the verdict
/// of the smallest failing configuration found (the input's own verdict if
/// nothing smaller fails).  Precondition: `run_verify(failing)` fails.
[[nodiscard]] VerifyVerdict shrink_failure(const VerifyKnobs& failing,
                                           int budget = 24);

}  // namespace lamsdlc::verif
