#pragma once
/// \file corrupt.hpp
/// \brief State-corruption chaos tier: self-stabilization verification.
///
/// The chaos harness (sim/chaos.hpp) attacks the *wire*; every endpoint
/// state transition stays one the protocol code chose.  This tier attacks
/// the *endpoints*: a `StateCorruptor` mutates live sender/receiver state
/// mid-run — sequence counters, in-flight slots, NAK history, checkpoint
/// cadence, arrival-count anchors — through the `corrupt_*` introspection
/// hooks, the way a stray write, a bit flip, or a partial crash-restore
/// would.
///
/// The oracle is the self-stabilization contract (Dolev et al., and the
/// self-stabilizing ARQ line of work): starting from an *arbitrary* state,
/// the system must return to invariant-clean steady-state operation within
/// a bounded recovery time, losing or duplicating at most a bounded set of
/// packets *during convergence* — or, when the corruption schedule is
/// genuinely unrecoverable, tear the session down through the bounded-retry
/// RESYNC path with a clean declared-failure verdict.  Concretely, after
/// the last injection every run must end with
///   - every non-at-risk packet delivered and the sender idle
///     (`converged`), or
///   - a declared failure whose residue accounts for every missing,
///     non-excused packet (`torn_down`),
/// audited by `sim::InvariantChecker` in converges-after mode: violations
/// before `converge_after` are lawful transients, the steady state after it
/// must be spotless.
///
/// Everything is derived from the seed; a failing run reproduces from the
/// one number in the verdict (`lamsdlc_cli verify --corrupt-state`).

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/time.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/sim/scenario.hpp"

namespace lamsdlc::sim {
class InvariantChecker;
}

namespace lamsdlc::verif {

/// Enumerable corruption classes — each maps to exactly one `corrupt_*`
/// endpoint hook.  On-disk value (CorruptionPayload::cls); append only.
enum class CorruptionClass : std::uint8_t {
  kSenderCtrWarp = 0,        ///< Warp the monotone issue counter.
  kSenderSlotDrop = 1,       ///< Destroy one in-flight slot (state loss).
  kSenderSlotArrivalWarp = 2,///< Warp one slot's expected-arrival time.
  kSenderCpTrackingWarp = 3, ///< Garble got_any_cp / last cp_seq.
  kSenderPacingStall = 4,    ///< Jam the Stop-Go gate shut.
  kReceiverHighestWarp = 5,  ///< Warp the highest accepted counter.
  kReceiverAnchorWarp = 6,   ///< Warp the arrival-count cycle anchor.
  kReceiverNakInject = 7,    ///< Plant a bogus NAK record.
  kReceiverNakClear = 8,     ///< Destroy all NAK state.
  kReceiverCpSeqWarp = 9,    ///< Warp the checkpoint sequence counter.
  kReceiverCadenceStall = 10,///< Kill the checkpoint cadence timer.
};
inline constexpr std::size_t kCorruptionClassCount = 11;

[[nodiscard]] const char* to_string(CorruptionClass c) noexcept;

/// One applied injection, kept for the reproduction transcript and the
/// excused-loss accounting.
struct InjectionRecord {
  CorruptionClass cls = CorruptionClass::kSenderCtrWarp;
  bool receiver = false;
  Time at{};
  std::int64_t a = 0;   ///< Class-specific magnitude (signed warp / index).
  std::uint64_t b = 0;  ///< Class-specific second operand.
  frame::PacketId destroyed = 0;  ///< kSenderSlotDrop: the lost packet.
};

/// Schedules seeded corruption injections against a running scenario and
/// tracks the packets each one puts at risk.
///
/// At-risk accounting (the Dolev-style "bounded loss during convergence"
/// set): when an injection fires, every in-flight sender slot is at risk —
/// a warped receiver may swallow it as a duplicate, a warped sender may
/// wrongly release it — and so is every frame sent while the *risk window*
/// stays open.  The window closes at the first sender RESYNC completion
/// after the last injection (the pipe is re-anchored; everything unresolved
/// was requeued), or `risk_horizon` after the last injection when no RESYNC
/// was needed.  Packets sent after the window closes must all deliver.
class StateCorruptor {
 public:
  struct Plan {
    std::uint64_t seed = 1;
    std::uint32_t injections = 2;
    bool allow_sender = true;
    bool allow_receiver = true;
    /// Gate for kSenderSlotDrop, the one class that destroys payload
    /// outright (its loss is excused, which weakens the delivery oracle).
    bool allow_state_loss = true;
    double scale = 1.0;       ///< Warp-magnitude multiplier (shrinking).
    Time first{};             ///< Injection window start.
    Time span{};              ///< Injection window length.
    Time risk_horizon{};      ///< Risk-window fallback length.
  };

  StateCorruptor(sim::Scenario& s, Plan plan);
  ~StateCorruptor();

  StateCorruptor(const StateCorruptor&) = delete;
  StateCorruptor& operator=(const StateCorruptor&) = delete;

  /// Forward every at-risk packet id to \p c as it is discovered (live
  /// excusal: a convergence-phase duplicate must already be excused when the
  /// checker sees it, not only at finish()).
  void set_checker(sim::InvariantChecker* c) noexcept { checker_ = c; }

  [[nodiscard]] const std::vector<InjectionRecord>& injections() const noexcept {
    return done_;
  }
  /// Packet ids whose delivery the corruption schedule excuses.
  [[nodiscard]] const std::unordered_set<frame::PacketId>& at_risk() const noexcept {
    return at_risk_;
  }
  /// Instant of the last injection actually applied (zero when none fired).
  [[nodiscard]] Time last_injection_at() const noexcept { return last_at_; }
  /// Human-readable schedule block for the verdict transcript.
  [[nodiscard]] std::string describe_plan() const;

 private:
  struct Drawn {
    CorruptionClass cls;
    Time at{};
    std::int64_t a = 0;
    std::uint64_t b = 0;
  };

  void inject(const Drawn& d);
  void on_event(const obs::Event& e);
  void note_at_risk(frame::PacketId id);

  sim::Scenario& scenario_;
  Plan plan_;
  std::vector<Drawn> drawn_;
  std::vector<InjectionRecord> done_;
  std::unordered_set<frame::PacketId> at_risk_;
  sim::InvariantChecker* checker_{nullptr};
  obs::EventBus::SubscriptionId sub_{0};
  bool risk_open_{false};
  Time last_at_{};
};

/// Knobs for one seeded corruption run.
struct CorruptKnobs {
  std::uint64_t seed = 1;
  std::uint64_t packets = 120;
  /// 0 = draw 1..4 from the seed.
  std::uint32_t injections = 0;
  bool allow_sender = true;
  bool allow_receiver = true;
  bool allow_state_loss = true;
  /// Also draw background wire noise (exercises recovery under loss).
  bool background_noise = true;
  /// Ablation: run the same corruption schedule with the self-audit /
  /// watchdog / RESYNC layer OFF.  This is how the tier proves it earns its
  /// keep — seeds that converge with the layer must hang, leak, or lose
  /// packets without it (see tests/verif/test_corrupt.cpp's pinned repro).
  bool self_heal = true;
  double scale = 1.0;
  Time horizon{};  ///< 0 = derived from the recovery budget.
  /// Observer hook, invoked on the built scenario before traffic starts.
  std::function<void(sim::Scenario&)> tap;
};

/// Outcome of one corruption run.
struct CorruptVerdict {
  bool ok = false;         ///< Steady state invariant-clean (or clean teardown).
  bool converged = false;  ///< Returned to normal delivery; sender idle.
  bool torn_down = false;  ///< Bounded-retry RESYNC exhaustion → declared failure.
  std::uint64_t resyncs = 0;      ///< Sender RESYNC episodes completed.
  std::uint64_t audit_trips = 0;  ///< Self-audit trips, both endpoints.
  std::uint64_t injections = 0;   ///< Corruptions actually applied.
  std::uint64_t excused = 0;      ///< Packets the fault plan put at risk.
  std::uint64_t recovery_episodes = 0;  ///< recovery.time_ms samples.
  double recovery_ms_max = 0.0;         ///< Slowest recovery this run.
  std::vector<std::string> violations;
  std::vector<std::string> transients;  ///< Lawful convergence-phase noise.
  std::string schedule;  ///< Seed + drawn plan, printable.
  std::string metrics_json;
  CorruptKnobs knobs;

  [[nodiscard]] std::string repro_command() const;
  [[nodiscard]] std::string to_string() const;
};

/// Run one seeded state-corruption scenario to termination and audit it.
[[nodiscard]] CorruptVerdict run_corrupt(const CorruptKnobs& knobs);

/// Greedy shrink of a failing corruption run: fewer injections, fewer
/// classes, smaller warps, less traffic — while the failure survives.
[[nodiscard]] CorruptVerdict shrink_corrupt(const CorruptKnobs& failing,
                                            int budget = 16);

/// `count` corruption runs at consecutive seeds on a work-stealing pool
/// (0 threads = hardware concurrency).  Results are seed-ordered and
/// bit-identical to running serially (see sim/sweep.hpp).
[[nodiscard]] std::vector<CorruptVerdict> run_corrupt_sweep(
    const CorruptKnobs& base, std::uint64_t first_seed, std::uint64_t count,
    unsigned threads = 0);

}  // namespace lamsdlc::verif
