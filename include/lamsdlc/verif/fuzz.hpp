#pragma once
/// \file fuzz.hpp
/// \brief Wire-level mutation fuzzing of the frame codec.
///
/// The codec is the one component that parses attacker-controlled bytes: in
/// byte-accurate wire mode every arriving buffer goes through
/// `frame::decode`, and a hostile or damaged peer can hand it anything.
/// `fuzz_codec` hammers it with mutated encodings — bit flips, truncations,
/// extensions, splices of two valid frames, zeroed and randomized spans —
/// and checks the properties an ARQ endpoint relies on.  A separate leg
/// fuzzes the datagram envelope (`frame::decode_envelope`), the layer the
/// live UDP runtime parses *before* the frame codec: sheared and padded
/// datagrams, rewritten length declarations, reserved flags, and damaged
/// magic bytes must all be refused, and anything accepted must re-encode
/// byte-identically.  Frame-codec properties:
///
///  1. decode never crashes or reads out of bounds on arbitrary input
///     (run under `LAMSDLC_SANITIZE` to make this a hard check);
///  2. whatever decode *accepts* is canonical: re-encoding the result and
///     decoding again reproduces the same bytes and the same frame
///     (no parser state that encode cannot represent);
///  3. accepted frames respect `DecodeLimits`: every sequence-carrying
///     field is below the configured modulus — the hostile-input bug class
///     PR 4 fixed (an out-of-range wire seq must be refused at the door,
///     never aliased mod m inside the endpoint);
///  4. unmutated encodings always decode back to what was encoded.
///
/// Half the mutants get their FCS recomputed after mutation, so the fuzzer
/// exercises the structural and value validation *behind* the CRC gate, not
/// just the CRC itself.  A dedicated length-inflation leg goes further: it
/// rewrites a frame's length/count field to claim bytes past the buffer end
/// and *always* repairs the FCS, so the only thing standing between the
/// mutant and an out-of-bounds parse is the decoder's length check — which
/// must refuse it with the `DecodeReject::kLengthOverrun` reason
/// specifically, proving the reject is counted by cause.
///
/// Everything derives from one seed; a failing case reports its index so
/// `--fuzz` reruns reproduce it exactly.

#include <cstdint>
#include <string>
#include <vector>

namespace lamsdlc::verif {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 10000;
  /// Modulus handed to the validating decode (property 3).  0 disables the
  /// limits leg and fuzzes only the structural/canonical properties.
  std::uint32_t seq_modulus = 32;
};

struct FuzzReport {
  std::uint64_t cases = 0;             ///< Mutants fed to decode.
  std::uint64_t decode_ok = 0;         ///< Mutants that still parsed.
  std::uint64_t decode_rejected = 0;   ///< Mutants refused (the usual fate).
  /// Mutants whose bytes parsed structurally but were refused by the
  /// modulus limits — each one is exactly the aliasing bug class blocked.
  std::uint64_t limit_rejections = 0;
  /// Datagram-envelope mutants refused by `frame::decode_envelope` — sheared
  /// or padded datagrams, rewritten length declarations, reserved flag bits,
  /// damaged magic/version.  The transport-framing analogue of
  /// `limit_rejections`: every one is a datagram the live runtime would have
  /// handed to the frame decoder without the envelope's length self-check.
  std::uint64_t envelope_rejections = 0;
  /// Length-inflation mutants refused with `DecodeReject::kLengthOverrun` —
  /// CRC-clean frames whose length/count field claims bytes past the buffer
  /// end.  Each one is an out-of-bounds read the decoder blocked at the
  /// door, and the reason code proves the reject is counted by cause.
  std::uint64_t length_rejections = 0;
  std::vector<std::string> failures;   ///< Property violations (seed + case).

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Run the mutation fuzzer; deterministic in `opts`.
[[nodiscard]] FuzzReport fuzz_codec(const FuzzOptions& opts);

}  // namespace lamsdlc::verif
