#pragma once
/// \file model.hpp
/// \brief Closed-form performance model of Section 4.
///
/// Implements every quantity the paper derives, in the paper's notation:
///
///   s̄            mean number of periods per successful I-frame delivery
///   n̄_cp         mean checkpoints needed to acknowledge an I-frame
///   D_trans      mean transmission-period length
///   D_retrn      mean retransmission-period length
///   D_low(N)     mean total time for N frames, low traffic
///   H_frame      mean sender holding time of an I-frame
///   B_LAMS       transparent sending+receiving buffer size (frames)
///   N_total(N)   I-frames sent for N new frames under sustained load
///   D_high(N)    mean total time, high traffic
///   η            throughput (frames per second) and efficiency (η · t_f)
///
/// All times are in seconds, all counts in frames.  The `*_approx` variants
/// reproduce the paper's final "≈" simplifications; the primary functions
/// keep every term.

#include <cstdint>

namespace lamsdlc::analysis {

/// Shared parameters of the Section 4 analysis.
struct Params {
  double p_f = 1e-2;       ///< P_F: I-frame error probability.
  double p_c = 1e-3;       ///< P_C: control-frame error probability.
  double t_f = 27.3e-6;    ///< I-frame transmission time (s).
  double t_c = 1e-6;       ///< Control-command transmission time (s).
  double t_proc = 10e-6;   ///< Frame/command processing time (s).
  double rtt = 20e-3;      ///< R: round-trip time (s).
  double alpha = 100e-3;   ///< t_out - R (HDLC timeout slack, s).
  double i_cp = 5e-3;      ///< Checkpoint interval W_cp = I_cp (s).
  std::uint32_t c_depth = 4;  ///< Cumulation depth.
  std::uint32_t window = 64;  ///< W: HDLC window size (frames).
};

/// \name Retransmission counts (geometric model)
/// @{

/// P_R for LAMS-DLC: NAK-only ARQ retransmits exactly when the I-frame was
/// in error, so P_R = P_F.
[[nodiscard]] double p_r_lams(const Params& p) noexcept;

/// P_R for SR-HDLC: P_F + P_C − P_F·P_C in both transmission and
/// retransmission periods.
[[nodiscard]] double p_r_hdlc(const Params& p) noexcept;

/// s̄ = 1 / (1 − P_R).
[[nodiscard]] double s_bar(double p_r) noexcept;
[[nodiscard]] double s_bar_lams(const Params& p) noexcept;
[[nodiscard]] double s_bar_hdlc(const Params& p) noexcept;

/// n̄_cp = 1 / (1 − P_C): checkpoints needed until one gets through.
[[nodiscard]] double n_cp_bar(const Params& p) noexcept;
/// @}

/// \name Period lengths
/// @{

/// D_trans^LAMS(N) = N·t_f + t_c + t_proc + R + (n̄_cp − ½)·I_cp.
[[nodiscard]] double d_trans_lams(const Params& p, double n_frames) noexcept;

/// D_retrn^LAMS = D_trans^LAMS(1).
[[nodiscard]] double d_retrn_lams(const Params& p) noexcept;

/// D_trans^HDLC(W) = W·t_f + (1−P_C)(R + 2t_proc + t_c) + P_C(R + α).
[[nodiscard]] double d_trans_hdlc(const Params& p, double n_frames) noexcept;

/// D_retrn^HDLC = t_f + R + α(1−P_F)(1−P_C)… (full expression of Section 4).
[[nodiscard]] double d_retrn_hdlc(const Params& p) noexcept;
/// @}

/// \name Low-traffic delivery times
/// @{

/// D_low^LAMS(N) = D_trans^LAMS(N) + (s̄−1)·D_retrn^LAMS.
[[nodiscard]] double d_low_lams(const Params& p, double n_frames) noexcept;

/// The paper's ≈ form: N·t_f + s̄·R + s̄·(n̄_cp − ½)·I_cp.
[[nodiscard]] double d_low_lams_approx(const Params& p, double n_frames) noexcept;

/// D_low^HDLC(W) = D_trans^HDLC(W) + (s̄−1)·D_retrn^HDLC.
[[nodiscard]] double d_low_hdlc(const Params& p, double n_frames) noexcept;

/// The paper's ≈ form.
[[nodiscard]] double d_low_hdlc_approx(const Params& p, double n_frames) noexcept;
/// @}

/// \name Holding time and transparent buffer size
/// @{

/// H_frame^LAMS = s̄ · (R + t_f + t_c + t_proc + (n̄_cp − ½)·I_cp).
[[nodiscard]] double h_frame_lams(const Params& p) noexcept;

/// B_LAMS = H_frame/t_f + t_proc/t_f (sending + receiving side), frames.
[[nodiscard]] double b_lams(const Params& p) noexcept;

/// Resolving-period bound R + ½·W_cp + C_depth·W_cp (Section 3.3): also the
/// bound on the holding time and the inconsistency gap.
[[nodiscard]] double resolving_period(const Params& p) noexcept;

/// Lower bound on the numbering size for continuous operation:
/// resolving period divided by the frame time (Section 2.3/3.3).
[[nodiscard]] double numbering_size(const Params& p) noexcept;
/// @}

/// \name Reliability bounds (Sections 3.2/3.3)
/// @{

/// Probability that all C_depth checkpoints carrying a NAK are lost —
/// the residual I-frame loss probability a *pure* cumulative-NAK scheme
/// (no enforced recovery) would have: P_C^C_depth.  The paper's footnote:
/// at BER 1e-7 this is <= 1e-10 per frame; enforced recovery removes even
/// that.
[[nodiscard]] double p_nak_blackout(const Params& p) noexcept;

/// Bound on the inconsistency gap: the normal response time plus
/// C_depth·I_cp (Section 2.3) — how long the two ends' views may disagree
/// about any frame before either a checkpoint resolves it or enforced
/// recovery begins.
[[nodiscard]] double inconsistency_gap_bound(const Params& p) noexcept;

/// Failure-detection latency bound: checkpoint silence C_depth·I_cp, plus
/// the Request-NAK round trip, plus the failure timer (expected response
/// time + C_depth·I_cp) — the worst case from link death to the sender
/// informing the network layer.
[[nodiscard]] double failure_detection_bound(const Params& p) noexcept;
/// @}

/// \name High-traffic model
/// @{

/// The paper's N_total recursion: frames are sent in subperiods of
/// h = H_frame/t_f frames; each subperiod re-sends the expected
/// retransmissions of all previous subperiods, displacing new frames.
/// Returns the expected total number of I-frame transmissions needed to
/// introduce \p n_new new frames.
[[nodiscard]] double n_total(double n_new, double h, double p_r) noexcept;

/// Closed-form check: sustained load sends each frame s̄ times on average,
/// so N_total → N / (1 − P_R).
[[nodiscard]] double n_total_geometric(double n_new, double p_r) noexcept;

/// D_high^LAMS(N) = D_low^LAMS(N_total^LAMS(N)).
[[nodiscard]] double d_high_lams(const Params& p, double n_frames) noexcept;

/// D_high^HDLC(N) = m·D_low^HDLC(N_total(W)) + D_low^HDLC(r_w) with
/// m = ⌊N/W⌋, r_w = N mod W.
[[nodiscard]] double d_high_hdlc(const Params& p, double n_frames) noexcept;

/// η = N / D_high (frames per second).
[[nodiscard]] double eta_lams(const Params& p, double n_frames) noexcept;
[[nodiscard]] double eta_hdlc(const Params& p, double n_frames) noexcept;

/// Normalized efficiency η·t_f ∈ [0, 1].
[[nodiscard]] double efficiency_lams(const Params& p, double n_frames) noexcept;
[[nodiscard]] double efficiency_hdlc(const Params& p, double n_frames) noexcept;
/// @}

}  // namespace lamsdlc::analysis
