#pragma once
/// \file fec.hpp
/// \brief Forward-error-correction codec model.
///
/// The paper assumes an FEC layer beneath the DLC (Section 2.1): Paul et
/// al.'s interleaved convolutional codec turns mispointing burst errors into
/// random errors and delivers a residual BER of ~1e-7 on the laser link.  Two
/// different FEC strengths are used (link model assumption 4): one for
/// I-frames and a more powerful one for control frames — which is why the
/// analysis can use distinct P_F and P_C and why piggybacking is forbidden.
///
/// We model a codec as a block code correcting up to `t` symbol errors per
/// `n`-symbol codeword (a hard-decision bound that covers BCH/RS and is a
/// conservative stand-in for the convolutional codec).  The model exposes:
///  - the code-rate overhead applied to frame lengths on the wire, and
///  - the input→residual error transfer (per-codeword and per-frame).
/// An `interleaved` codec additionally declares that burst channels may be
/// treated as memoryless at the same average BER (the Paul et al. property);
/// the link layer uses this to pick the effective channel model.

#include <cstddef>
#include <cstdint>

namespace lamsdlc::phy {

/// Block-code FEC parameters.
struct FecParams {
  std::size_t n = 255;   ///< Symbols per codeword.
  std::size_t k = 223;   ///< Data symbols per codeword.
  std::size_t t = 16;    ///< Correctable symbol errors per codeword.
  std::size_t symbol_bits = 8;  ///< Bits per code symbol.
  bool interleaved = true;      ///< Burst-to-random interleaving in front.
};

/// Analytic model of a block FEC codec.
class FecCodec {
 public:
  explicit FecCodec(FecParams p);

  /// Wire bits needed to carry \p payload_bits of data (rounded up to whole
  /// codewords, scaled by n/k).
  [[nodiscard]] std::size_t coded_bits(std::size_t payload_bits) const noexcept;

  /// Code rate k/n.
  [[nodiscard]] double rate() const noexcept;

  /// Probability a single codeword is uncorrectable at channel BER \p ber
  /// (more than t symbol errors among n symbols).
  [[nodiscard]] double codeword_error_prob(double ber) const noexcept;

  /// Probability a frame of \p payload_bits fails decoding at channel BER
  /// \p ber: any of its codewords uncorrectable.
  [[nodiscard]] double frame_error_prob(double ber, std::size_t payload_bits) const noexcept;

  /// Residual post-decoding BER approximation: undetected/uncorrected symbol
  /// errors spread over the codeword, expressed per data bit.
  [[nodiscard]] double residual_ber(double ber) const noexcept;

  [[nodiscard]] const FecParams& params() const noexcept { return p_; }

 private:
  /// Probability a symbol is received in error at channel BER \p ber.
  [[nodiscard]] double symbol_error_prob(double ber) const noexcept;

  FecParams p_;
};

}  // namespace lamsdlc::phy
