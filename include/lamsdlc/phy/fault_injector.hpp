#pragma once
/// \file fault_injector.hpp
/// \brief Composable per-frame fault stage for the simulated link.
///
/// The error models in `error_model.hpp` decide a single binary fate —
/// corrupted or clean — which matches the paper's link model (loss is a
/// detectable error, assumption 9).  A production-grade stack must survive
/// more hostile channels: self-stabilizing ARQ work studies omitting,
/// duplicating and non-FIFO channels, and the feedback-error literature
/// attacks the acknowledgement path independently of the data path.  The
/// `FaultInjector` adds those fates:
///
///  - **silent drop**   — the frame is never delivered (no husk, no FCS
///                        failure at the receiver; pure omission);
///  - **duplication**   — one or more extra copies arrive after the original;
///  - **reorder/jitter**— delivery is delayed by a bounded random amount, so
///                        a frame can arrive after later-sent frames;
///  - **truncation**    — header damage: the frame arrives as an unreadable
///                        husk (distinct from payload corruption only in the
///                        counters — both fail the FCS);
///  - **corruption**    — same fate the wrapped `ErrorModel` produces, so a
///                        stage can replace a plain model outright.
///
/// Stages are *class-selective* (`Affects`): a stage can attack only control
/// frames (checkpoints / NAKs — the asymmetric feedback-channel case) or only
/// I-frames, leaving the other class untouched.  Stages are *windowed*: an
/// empty window list means always active, otherwise the stage only fires for
/// frames overlapping a window.  A `link::SimplexChannel` accepts any number
/// of stages and combines their fates, so independent attacks compose.
///
/// All randomness flows through one seeded `RandomStream`, keeping every
/// schedule bit-for-bit reproducible from (seed, config).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/time.hpp"
#include "lamsdlc/phy/error_model.hpp"

namespace lamsdlc::phy {

/// The combined fate of one frame crossing a faulty channel.
struct FrameFate {
  bool corrupt = false;            ///< Delivered with the corrupted mark set.
  bool drop = false;               ///< Never delivered at all.
  bool truncate = false;           ///< Delivered as an unreadable husk.
  std::uint32_t duplicates = 0;    ///< Extra copies delivered after the original.
  Time delay{};                    ///< Extra delivery latency (reordering).

  /// Merge another stage's verdict: drop dominates, delays accumulate.
  void combine(const FrameFate& o) noexcept {
    corrupt |= o.corrupt;
    drop |= o.drop;
    truncate |= o.truncate;
    duplicates += o.duplicates;
    delay += o.delay;
  }
};

/// One composable fault stage.  Wraps an optional base `ErrorModel` (its
/// verdict becomes the `corrupt` fate) and draws the additional fates from
/// per-frame Bernoulli trials while active.
class FaultInjector {
 public:
  /// Which frame class this stage attacks.
  enum class Affects : std::uint8_t {
    kAll,          ///< Every frame on the channel.
    kDataOnly,     ///< I-frames only (forward payload path).
    kControlOnly,  ///< Control frames only (checkpoints, NAKs, S-frames).
  };

  /// Activity window on the channel timeline; `to` is exclusive.
  struct Window {
    Time from{};
    Time to{};
  };

  struct Config {
    Affects affects = Affects::kAll;
    double p_drop = 0.0;       ///< Silent omission probability.
    double p_duplicate = 0.0;  ///< Probability of at least one extra copy.
    double p_reorder = 0.0;    ///< Probability of a jitter delay.
    double p_truncate = 0.0;   ///< Header-damage probability.
    double p_corrupt = 0.0;    ///< Plain corruption probability (besides base).
    /// Jitter delays draw uniformly from (0, max_jitter].  Senders reasoning
    /// about provable non-delivery must keep their release margin above this
    /// bound (see LamsConfig::release_margin).
    Time max_jitter = Time::microseconds(40);
    /// Duplication draws 1 + geometric(0.5) extra copies, capped here.
    std::uint32_t max_duplicates = 3;
    /// Active windows; empty = always active.
    std::vector<Window> windows;
  };

  /// \p base (optional) contributes its corruption verdict whenever the
  /// stage matches the frame class, active window or not — so wrapping a
  /// plain error model in a do-nothing stage is behaviour-preserving.
  FaultInjector(Config cfg, RandomStream rng,
                std::unique_ptr<ErrorModel> base = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decide the fate of a frame occupying [\p start, \p end) on the wire.
  [[nodiscard]] FrameFate fate(bool is_control, Time start, Time end,
                               std::size_t bits);

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// \name Counters (frames this stage sentenced to each fate)
  /// @{
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }
  [[nodiscard]] std::uint64_t truncated() const noexcept { return truncated_; }
  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  /// @}

 private:
  [[nodiscard]] bool matches_class(bool is_control) const noexcept;
  [[nodiscard]] bool active(Time start, Time end) const noexcept;

  Config cfg_;
  RandomStream rng_;
  std::unique_ptr<ErrorModel> base_;
  std::uint64_t dropped_{0};
  std::uint64_t duplicated_{0};
  std::uint64_t reordered_{0};
  std::uint64_t truncated_{0};
  std::uint64_t corrupted_{0};
};

}  // namespace lamsdlc::phy
