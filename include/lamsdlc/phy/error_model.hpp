#pragma once
/// \file error_model.hpp
/// \brief Channel error processes for the simulated laser intersatellite link.
///
/// The paper characterizes the laser channel by (1) random bit errors from
/// optical noise and (2) burst errors from beam mispointing (Section 2.1).
/// We provide:
///  - `PerfectChannel`       — no errors (control case);
///  - `BernoulliBerModel`    — i.i.d. bit errors at a configured BER;
///  - `FixedFrameErrorModel` — directly parameterized frame error probability
///                             P_F / P_C, matching the analysis of Section 4;
///  - `GilbertElliottModel`  — two-state (Good/Bad) continuous-time burst
///                             channel for mispointing episodes;
///  - `ScriptedOutageModel`  — deterministic outage windows for failure
///                             injection tests.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/time.hpp"

namespace lamsdlc::phy {

/// Computes the probability that a frame of \p bits is corrupted on a
/// memoryless channel with bit error rate \p ber:  1 - (1 - ber)^bits.
[[nodiscard]] double frame_error_probability(double ber, std::size_t bits) noexcept;

/// Decides the fate of each frame crossing the channel.
///
/// `corrupts` is called once per frame in transmission order with the
/// interval the frame occupies on the medium; implementations may keep
/// internal state (burst models) keyed to those times.
class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// True if the frame occupying [\p start, \p end) with \p bits on the wire
  /// is corrupted.
  [[nodiscard]] virtual bool corrupts(Time start, Time end, std::size_t bits) = 0;
};

/// Error-free channel.
class PerfectChannel final : public ErrorModel {
 public:
  [[nodiscard]] bool corrupts(Time, Time, std::size_t) override { return false; }
};

/// Independent bit errors at a fixed BER; frame corruption is Bernoulli with
/// p = frame_error_probability(ber, bits).
class BernoulliBerModel final : public ErrorModel {
 public:
  BernoulliBerModel(double ber, RandomStream rng) : ber_{ber}, rng_{std::move(rng)} {}

  [[nodiscard]] bool corrupts(Time, Time, std::size_t bits) override {
    return rng_.bernoulli(frame_error_probability(ber_, bits));
  }

  [[nodiscard]] double ber() const noexcept { return ber_; }

 private:
  double ber_;
  RandomStream rng_;
};

/// Fixed per-frame corruption probability, independent of frame length.
/// Matches the Section 4 analysis, which treats P_F and P_C as invariants.
class FixedFrameErrorModel final : public ErrorModel {
 public:
  FixedFrameErrorModel(double p_frame, RandomStream rng)
      : p_{p_frame}, rng_{std::move(rng)} {}

  [[nodiscard]] bool corrupts(Time, Time, std::size_t) override {
    return rng_.bernoulli(p_);
  }

 private:
  double p_;
  RandomStream rng_;
};

/// Continuous-time Gilbert–Elliott channel: alternating exponentially
/// distributed Good and Bad sojourns with distinct BERs.  Mispointing bursts
/// are modelled as Bad periods whose mean length is the paper's L̄_burst.
class GilbertElliottModel final : public ErrorModel {
 public:
  struct Params {
    double good_ber = 1e-7;             ///< BER while tracking is locked.
    double bad_ber = 1e-2;              ///< BER during a mispointing burst.
    Time mean_good = Time::seconds(1);  ///< Mean sojourn in Good.
    Time mean_bad = Time::milliseconds(5);  ///< Mean burst length L̄_burst.
  };

  GilbertElliottModel(Params p, RandomStream rng);

  [[nodiscard]] bool corrupts(Time start, Time end, std::size_t bits) override;

  /// Stationary fraction of time in the Bad state.
  [[nodiscard]] double bad_fraction() const noexcept;

  [[nodiscard]] const Params& params() const noexcept { return p_; }

 private:
  void advance_to(Time t);

  Params p_;
  RandomStream rng_;
  bool in_bad_{false};
  Time state_until_{};  ///< Current sojourn ends at this instant.
};

/// Deterministic outage windows: every frame overlapping an outage is
/// corrupted; outside outages an optional base model applies.
///
/// The window list is normalized at construction — zero- and negative-length
/// windows are discarded, the rest are sorted by start and overlapping or
/// touching windows are merged — so callers may pass windows in any order
/// and degenerate inputs behave as the empty windows they are.
class ScriptedOutageModel final : public ErrorModel {
 public:
  struct Outage {
    Time from;
    Time to;  ///< exclusive
  };

  explicit ScriptedOutageModel(std::vector<Outage> outages,
                               std::unique_ptr<ErrorModel> base = nullptr);

  [[nodiscard]] bool corrupts(Time start, Time end, std::size_t bits) override;

  /// The normalized schedule (sorted, merged, no empty windows).
  [[nodiscard]] const std::vector<Outage>& outages() const noexcept {
    return outages_;
  }

 private:
  std::vector<Outage> outages_;
  std::unique_ptr<ErrorModel> base_;
};

}  // namespace lamsdlc::phy
