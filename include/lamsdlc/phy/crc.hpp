#pragma once
/// \file crc.hpp
/// \brief CRC-16/CCITT and CRC-32 (IEEE 802.3) frame check sequences.
///
/// The paper's link model (assumption 9) treats frame loss as a detectable
/// error with no undetected CRC violations.  The frame codecs append a real
/// FCS so the byte-level encode/decode path is faithful to an HDLC-style
/// implementation; the simulator additionally marks corrupted frames so that
/// assumption 9 (no undetected errors) holds by construction.

#include <cstddef>
#include <cstdint>
#include <span>

namespace lamsdlc::phy {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xor-out.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept;

/// CRC-32 (IEEE 802.3): poly 0x04C11DB7 reflected, init/xor-out 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept;

}  // namespace lamsdlc::phy
