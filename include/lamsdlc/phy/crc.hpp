#pragma once
/// \file crc.hpp
/// \brief CRC-16/CCITT and CRC-32 (IEEE 802.3) frame check sequences.
///
/// The paper's link model (assumption 9) treats frame loss as a detectable
/// error with no undetected CRC violations.  The frame codecs append a real
/// FCS so the byte-level encode/decode path is faithful to an HDLC-style
/// implementation; the simulator additionally marks corrupted frames so that
/// assumption 9 (no undetected errors) holds by construction.

#include <cstddef>
#include <cstdint>
#include <span>

namespace lamsdlc::phy {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xor-out.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept;

/// CRC-32 (IEEE 802.3): poly 0x04C11DB7 reflected, init/xor-out 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept;

/// \name Reference implementations
/// The original one-byte-per-step loops, kept as the differential-test
/// oracle: the fast paths above must agree with these on every input (see
/// tests/phy/test_crc.cpp).  Never called on the frame hot path.
/// @{
[[nodiscard]] std::uint16_t crc16_ccitt_bytewise(
    std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] std::uint32_t crc32_ieee_bytewise(
    std::span<const std::uint8_t> data) noexcept;
/// @}

/// Human-readable name of the active fast-path backend (for bench output and
/// docs), e.g. "slice-by-8" or "slice-by-8 + arm-crc32".
[[nodiscard]] const char* crc_backend() noexcept;

}  // namespace lamsdlc::phy
