#pragma once
/// \file receiver.hpp
/// \brief LAMS-DLC receiver state machine.
///
/// The receiver (Sections 3.1–3.4):
///  - forwards every good I-frame upward immediately (out-of-sequence
///    delivery is allowed, so the receiving buffer holds frames only for the
///    processing time t_proc — this is why the paper calls its size
///    "transparent");
///  - detects damaged frames by sequence gaps: retransmissions use fresh
///    numbers, so arrivals carry strictly increasing sequence counters and
///    every hole below the highest-seen number marks a frame that arrived
///    unreadable (corrupted headers are assumed unreadable — the worst
///    case);
///  - emits a Check-Point command every `checkpoint_interval` for as long as
///    the link is active, carrying the cumulative NAK list of the last
///    C_depth intervals, the highest sequence seen, and the Stop-Go bit;
///  - answers a Request-NAK immediately with an Enforced-NAK whose list
///    spans the whole resolving period (extended NAK history), acting as a
///    Resolving Command when the list is empty.

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/frame/seqspace.hpp"
#include "lamsdlc/lams/config.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::lams {

/// LAMS-DLC receiving endpoint.  Attach as the sink of the *forward* channel
/// and give it the *reverse* channel for checkpoint transmission.
class LamsReceiver final : public link::FrameSink {
 public:
  /// \p bus (optional) receives the typed event stream (obs/event.hpp); the
  /// string \p tracer keeps working as before — it is fed the same events,
  /// pretty-printed.
  LamsReceiver(Simulator& sim, link::FrameChannel& control_out,
               LamsConfig cfg, sim::PacketListener* listener,
               sim::DlcStats* stats = nullptr, Tracer tracer = {},
               obs::EventBus* bus = nullptr);

  LamsReceiver(const LamsReceiver&) = delete;
  LamsReceiver& operator=(const LamsReceiver&) = delete;
  ~LamsReceiver() override;

  /// Start the periodic checkpoint cadence ("commands are sent by the
  /// receiver so long as the link is active").  Idempotent.
  void start();

  /// Stop sending checkpoints (link torn down / receiver failure injection).
  void stop();

  /// link::FrameSink
  void on_frame(frame::Frame f) override;

  /// Swap the upward delivery target (e.g. to chain a Resequencer).
  void set_listener(sim::PacketListener* l) noexcept { listener_ = l; }

  /// \name Session support (lams/session.hpp)
  /// @{
  /// Forget all per-session state: sequence tracking, NAK lists and
  /// history.  Called by the session layer when a new epoch initializes —
  /// the sender renumbers from zero, so stale tracking must go.
  void reset_session();
  /// Epoch stamped into every outgoing checkpoint so the sender can discard
  /// acknowledgements left over from a previous session (0 = no sessions).
  void set_epoch(std::uint32_t e) noexcept { epoch_ = e; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  /// @}

  /// \name Self-stabilization (docs/PROTOCOL.md "Resynchronization")
  /// @{
  /// Run every receiver-side self-audit check once, right now, emitting a
  /// kSelfAuditFailed event per trip.  When any tripped and `resync_enabled`,
  /// raises the resync-request flag that rides the next checkpoints (wire
  /// flag bit 3) until the sender's RESYNC re-anchors this end.  Returns the
  /// number of trips.  Body of the periodic audit tick; also a test hook.
  std::size_t run_self_audit();
  /// True while this end is asking the sender for a RESYNC.
  [[nodiscard]] bool resync_requested() const noexcept { return resync_req_; }
  /// Audit trips observed so far (all checks).
  [[nodiscard]] std::uint64_t self_audit_trips() const noexcept {
    return audit_trips_;
  }
  /// RESYNC frames applied (fresh epochs adopted).
  [[nodiscard]] std::uint64_t resyncs_applied() const noexcept {
    return resyncs_applied_;
  }
  /// @}

  /// \name State-corruption hooks (verif::StateCorruptor)
  /// Deliberately mutate live sequence-tracking state the way a stray write
  /// in endpoint memory would.  Never call these outside the verification
  /// harness.
  /// @{
  /// Warp the highest accepted counter by `delta` (clamped at zero); marks
  /// the sequence space as populated.
  void corrupt_warp_highest(std::int64_t delta);
  /// Warp the arrival-count cycle anchor by `delta` (clamped at zero).
  void corrupt_warp_anchor(std::int64_t delta);
  /// Plant a bogus NAK record for `ctr` in both the interval list and the
  /// Enforced-NAK history.
  void corrupt_inject_nak(std::uint64_t ctr);
  /// Destroy all NAK state (interval lists and history).
  void corrupt_clear_nak_state();
  /// Warp the checkpoint sequence counter by `delta` (clamped at zero).
  void corrupt_warp_cp_seq(std::int64_t delta);
  /// Kill the checkpoint cadence timer while the link stays active.
  void corrupt_stall_cadence();
  /// @}

  /// Checkpoints emitted so far (both periodic and enforced).
  [[nodiscard]] std::uint64_t checkpoints_sent() const noexcept { return cp_count_; }

  /// NAKs generated so far (distinct damaged frames detected).
  [[nodiscard]] std::uint64_t naks_generated() const noexcept { return naks_generated_; }

  /// Frames currently inside the processing pipeline (receiving buffer).
  [[nodiscard]] std::size_t recv_buffer_depth() const noexcept { return processing_; }

  /// Good frames dropped because the receiving buffer was at its hard
  /// capacity (congestion discard, Section 3.4).
  [[nodiscard]] std::uint64_t congestion_discards() const noexcept {
    return congestion_discards_;
  }

  /// Arrivals with a non-increasing sequence counter that were discarded
  /// (wire-level duplicates or late reordered frames) — each one is a
  /// duplicate client delivery the protocol prevented.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept {
    return duplicates_suppressed_;
  }

  /// Every I-frame arrival event seen this session, readable or not
  /// (corrupted husks, congestion discards, stale duplicates, good frames).
  /// Anchors sequence unwrapping through husk bursts — see handle_iframe.
  [[nodiscard]] std::uint64_t iframe_arrivals() const noexcept {
    return iframe_arrivals_;
  }

  /// NAK records suppressed (at checkpoint emission) or expired (from the
  /// Enforced-NAK history) because they fell modulus/2 or more behind the
  /// highest accepted counter — the wrapped number would unwrap, at the
  /// sender, a full cycle ahead of the frame it was recorded for (see
  /// emit_checkpoint's wire-safety filter).
  [[nodiscard]] std::uint64_t naks_expired() const noexcept {
    return naks_expired_;
  }

 private:
  struct NakRecord {
    std::uint64_t ctr;
    Time detected_at;
  };

  void handle_iframe(const frame::IFrame& in, bool corrupted);
  void deliver_up(const frame::IFrame& in, std::uint64_t ctr);
  void finish_deliver_up(std::uint32_t slot);
  void handle_request_nak(const frame::RequestNakFrame& rq);
  void handle_resync(const frame::ResyncFrame& rs);
  void emit_checkpoint(bool enforced);
  void checkpoint_tick();
  void on_audit_tick();
  void prune_history();
  /// Event skeleton stamped with now/source; fill the payload and emit.
  [[nodiscard]] obs::Event make_event(obs::EventKind k) const;
  void emit_drop(obs::DropCause cause, std::uint8_t control,
                 std::uint64_t ctr);
  void note_recv_buffer();

  Simulator& sim_;
  link::FrameChannel& out_;
  LamsConfig cfg_;
  sim::PacketListener* listener_;
  sim::DlcStats* stats_;
  obs::Emitter obs_;
  frame::SeqSpace seqspace_;

  bool running_{false};
  EventId cp_timer_{0};
  std::uint32_t cp_seq_{0};
  std::uint32_t epoch_{0};

  /// \name Self-stabilization state
  /// @{
  EventId audit_timer_{0};
  bool resync_req_{false};  ///< Rides outgoing checkpoints as wire flag bit 3.
  /// Until this instant, arriving I-frames are stragglers of the epoch a
  /// just-applied RESYNC killed (fault-jitter reordering past the RESYNC on
  /// the otherwise-FIFO forward channel) — dropped without touching the
  /// fresh sequence anchor.
  Time resync_guard_until_{};
  std::uint64_t audit_trips_{0};
  std::uint64_t resyncs_applied_{0};
  /// @}

  bool any_seen_{false};
  std::uint64_t highest_ctr_{0};
  std::uint64_t iframe_arrivals_{0};
  /// Value of `iframe_arrivals_` when `highest_ctr_` was last accepted; the
  /// pair anchors every unwrap at the counter the link model predicts for
  /// the current arrival (see handle_iframe).
  std::uint64_t anchor_arrival_{0};

  /// Per-interval NAK lists; the cumulative checkpoint takes the union of
  /// the most recent C_depth of them (including the in-progress interval).
  std::deque<std::vector<std::uint64_t>> interval_naks_;
  std::vector<std::uint64_t> current_interval_;

  /// Extended history backing Enforced-NAK, pruned by time.
  std::deque<NakRecord> history_;

  std::size_t processing_{0};  ///< Frames inside the t_proc pipeline.

  /// Slot pool for packets riding the t_proc pipeline: the scheduled
  /// callback captures only {this, slot}, which fits the simulator's inline
  /// callback storage, and a recycled slot reuses its payload vector's
  /// capacity — the steady-state delivery path allocates nothing.
  struct UpSlot {
    sim::Packet packet;
    std::uint64_t ctr = 0;
  };
  std::vector<UpSlot> up_pool_;
  std::vector<std::uint32_t> up_free_;

  std::uint64_t cp_count_{0};
  std::uint64_t naks_generated_{0};
  std::uint64_t congestion_discards_{0};
  std::uint64_t duplicates_suppressed_{0};
  std::uint64_t naks_expired_{0};
};

}  // namespace lamsdlc::lams
