#pragma once
/// \file sender.hpp
/// \brief LAMS-DLC sender state machine.
///
/// The sender (Section 3.2):
///  - transmits I-frames whenever the link is available — there is no send
///    window; buffer control, not flow control, bounds the sending buffer;
///  - holds each transmitted frame until a checkpoint *covers* it:
///      release     — the checkpoint was generated after the frame reached
///                    the receiver, the receiver's highest-seen sequence is
///                    at or beyond it, and it is not NAKed (implicit
///                    positive acknowledgement);
///      retransmit  — it is NAKed, or the checkpoint proves it arrived
///                    unreadable (generated after arrival yet highest-seen
///                    still below it).  Retransmissions carry a *new*
///                    sequence number, which is what bounds the holding time
///                    and the numbering size;
///  - runs the checkpoint timer (C_depth · W_cp): on silence it enters
///    Enforced Recovery — sends Request-NAK, stops new I-frames (checkpoint
///    retransmissions stay allowed), starts the failure timer; an
///    Enforced-NAK resolves every outstanding frame and resumes normal
///    operation; failure-timer expiry declares the link failed;
///  - applies Stop-Go pacing from checkpoint flow-control bits.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/frame/seqspace.hpp"
#include "lamsdlc/lams/config.hpp"
#include "lamsdlc/lams/inflight.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/sim/dlc.hpp"

namespace lamsdlc::lams {

/// LAMS-DLC sending endpoint.  Attach as the sink of the *reverse* channel
/// (it consumes checkpoint traffic) and give it the *forward* channel for
/// I-frame and Request-NAK transmission.
class LamsSender final : public sim::DlcSender, public link::FrameSink {
 public:
  enum class Mode { kNormal, kEnforcedRecovery, kResyncing, kFailed };

  /// \p bus (optional) receives the typed event stream (obs/event.hpp); the
  /// string \p tracer keeps working as before — it is fed the same events,
  /// pretty-printed.
  LamsSender(Simulator& sim, link::FrameChannel& data_out, LamsConfig cfg,
             sim::DlcStats* stats = nullptr, Tracer tracer = {},
             obs::EventBus* bus = nullptr);

  LamsSender(const LamsSender&) = delete;
  LamsSender& operator=(const LamsSender&) = delete;
  ~LamsSender() override;

  /// \name sim::DlcSender
  /// @{
  void submit(sim::Packet p) override;
  [[nodiscard]] std::size_t sending_buffer_depth() const override;
  [[nodiscard]] bool accepting() const override;
  [[nodiscard]] bool idle() const override;
  /// @}

  /// link::FrameSink — consumes Check-Point / Enforced-NAK commands arriving
  /// on the reverse channel.
  void on_frame(frame::Frame f) override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Invoked once when the failure timer expires and the link is declared
  /// failed (the DLC "informs the network layer", Section 3.2).
  void set_failure_callback(std::function<void()> cb) { on_failed_ = std::move(cb); }

  /// Invoked whenever the sending-buffer population changes (admission,
  /// release, retransmission requeue, reset).  The session/mux layers use
  /// this to observe `accepting()` edges for event-driven backpressure —
  /// a producer paused on a full buffer resumes the moment a checkpoint
  /// releases frames, with no polling.
  void set_buffer_change_callback(std::function<void()> cb) {
    on_buffer_change_ = std::move(cb);
  }

  /// Current Stop-Go pacing factor in (0, 1]; 1 = full rate.
  [[nodiscard]] double rate_factor() const noexcept { return rate_factor_; }

  /// Packets fully resolved (released after implicit acknowledgement).
  [[nodiscard]] std::uint64_t packets_resolved() const noexcept { return resolved_; }

  /// Frames transmitted and still held awaiting checkpoint release — the
  /// paper's "transparent" sending-buffer population, which the resolving
  /// period bounds (Section 3.3).  Queued-but-unsent traffic is excluded.
  [[nodiscard]] std::size_t outstanding_frames() const noexcept {
    return outstanding_.size();
  }

  /// Request-NAKs sent (enforced recoveries initiated or retried).
  [[nodiscard]] std::uint64_t request_naks_sent() const noexcept { return request_naks_; }

  /// Drain every unresolved packet (queued, awaiting retransmission, or
  /// outstanding) out of the sending buffer, in submission-ish order.
  /// Intended for the network layer after `kFailed`: the paper's sender
  /// "informs the network layer", which reroutes the residue over another
  /// link.  Frames that actually arrived before the failure may be
  /// re-delivered via the new path — the destination's resequencer/tracker
  /// de-duplicates, giving the exactly-once semantics the TR sketches for
  /// its "more recent version" of the protocol.
  [[nodiscard]] std::vector<sim::Packet> take_unresolved();

  /// \name Session support (lams/session.hpp)
  /// @{
  /// Return to a pristine pre-session state keeping the unresolved traffic
  /// queued (oldest first): numbering restarts at zero, timers stop, and
  /// the mode returns to normal.  Called by the session layer on re-init.
  void reset_session();
  /// Only checkpoints stamped with this epoch are processed (0 = no
  /// session layer); stale acknowledgements of a previous epoch would
  /// otherwise be misread against the restarted numbering.
  void set_expected_epoch(std::uint32_t e) noexcept { expected_epoch_ = e; }
  /// Epoch the sender currently expects — a RESYNC episode advances it past
  /// the session-layer value, so a re-initializing session must allocate its
  /// next epoch above this (session.cpp).
  [[nodiscard]] std::uint32_t current_epoch() const noexcept {
    return expected_epoch_;
  }
  /// @}

  /// \name Self-stabilization (docs/PROTOCOL.md "Resynchronization")
  /// @{
  /// Run every sender-side self-audit check once, right now, emitting a
  /// kSelfAuditFailed event per trip; initiates a RESYNC when any tripped
  /// and `resync_enabled`.  Returns the number of trips.  This is the body
  /// of the periodic audit tick (`self_audit_period`) and the entry point
  /// for anomaly-triggered audits; also a test hook.
  std::size_t run_self_audit();
  /// Audit trips observed so far (all checks, all causes).
  [[nodiscard]] std::uint64_t self_audit_trips() const noexcept {
    return audit_trips_;
  }
  /// RESYNC episodes completed (handshake acknowledged, pipe re-anchored).
  [[nodiscard]] std::uint64_t resyncs_completed() const noexcept {
    return resyncs_completed_;
  }
  /// @}

  /// Packet ids of every in-flight slot (transmitted, unreleased), in
  /// counter order.  Harness introspection: these are the packets a
  /// corruption injected *now* can strand, so the chaos tier snapshots them
  /// as its at-risk set.
  [[nodiscard]] std::vector<frame::PacketId> outstanding_ids() const;

  /// \name State-corruption hooks (verif::StateCorruptor)
  /// Deliberately mutate live protocol state the way a stray write or bit
  /// flip in endpoint memory would, so the chaos tier can prove the
  /// audit/RESYNC layer converges from arbitrary state.  Deterministic:
  /// slot selection is by rank in counter order, never by hash-map iteration
  /// order.  Never call these outside the verification harness.
  /// @{
  /// Warp the monotone issue counter by `delta` (clamped at zero going
  /// down).  Forward warps fake frames that were never sent; backward warps
  /// collide the counter with live in-flight slots.
  void corrupt_warp_next_ctr(std::int64_t delta);
  /// Destroy the `nth`-by-counter in-flight slot outright (state loss, not a
  /// wire loss: no NAK will ever claim it).  Returns the destroyed packet id
  /// so the harness can excuse its delivery, or 0 when nothing is in flight.
  frame::PacketId corrupt_drop_slot(std::size_t nth);
  /// Warp the `nth`-by-counter slot's expected-arrival bookkeeping by
  /// `delta` (negative = pretend it arrived long ago).  Returns false when
  /// nothing is in flight.
  bool corrupt_warp_slot_arrival(std::size_t nth, Time delta);
  /// Garble the checkpoint-tracking pair (got_any_cp / last seen cp_seq).
  void corrupt_cp_tracking(std::uint64_t last_cp_seq, bool got_any);
  /// Jam the Stop-Go pacing gate shut until `until`.
  void corrupt_pacing_gate(Time until);
  /// @}

 private:
  void try_send();
  void send_iframe(Pending p);
  void handle_checkpoint(const frame::CheckpointFrame& cp);
  void process_naks(const frame::CheckpointFrame& cp);
  void sweep_outstanding(const frame::CheckpointFrame& cp);
  void arm_checkpoint_timer();
  void on_checkpoint_silence();
  void enter_enforced_recovery(obs::RecoveryReason reason);
  void send_request_nak();
  void on_failure_timeout();
  void declare_failed(obs::RecoveryReason reason);
  void apply_flow_control(bool stop);
  void note_buffer_change();
  /// Move every outstanding/retx frame back into the new queue as fresh
  /// submissions, oldest first (shared by reset_session and RESYNC).
  void requeue_unresolved();
  void initiate_resync(obs::RecoveryReason reason);
  void send_resync();
  void on_resync_timer();
  void complete_resync();
  void handle_resync_ack(const frame::ResyncAckFrame& ack);
  void on_audit_tick();
  void on_watchdog();
  /// Event skeleton stamped with now/source; fill the payload and emit.
  [[nodiscard]] obs::Event make_event(obs::EventKind k) const;
  void emit_frame_event(obs::EventKind k, std::uint64_t ctr,
                        const Pending& p, std::int64_t holding_ps = 0);
  void emit_mode_change(Mode from, Mode to, obs::RecoveryReason reason);
  void emit_timer(obs::EventKind k, obs::TimerId id, Time deadline = {});

  Simulator& sim_;
  link::FrameChannel& out_;
  LamsConfig cfg_;
  sim::DlcStats* stats_;
  obs::Emitter obs_;
  frame::SeqSpace seqspace_;

  Mode mode_{Mode::kNormal};
  std::deque<Pending> new_queue_;   ///< Not yet transmitted.
  std::deque<Pending> retx_queue_;  ///< Awaiting renumbered retransmission.
  /// Transmitted, unreleased frames keyed by counter — SoA layout so the
  /// per-checkpoint sweep touches only the packed (counter, arrival) arrays
  /// (lams/inflight.hpp).  Sweep results act in counter order, making the
  /// release/retransmission emission order deterministic (oldest first).
  InFlightTable outstanding_;
  std::uint64_t next_ctr_{0};       ///< Monotone sequence counter.

  bool got_any_cp_{false};
  std::uint64_t last_cp_seq_{0};
  std::uint32_t expected_epoch_{0};
  EventId checkpoint_timer_{0};
  EventId failure_timer_{0};
  EventId pace_timer_{0};
  Time next_send_allowed_{};
  double rate_factor_{1.0};
  std::uint32_t request_token_{0};
  Time request_sent_at_{};

  std::uint64_t resolved_{0};
  std::uint64_t request_naks_{0};
  std::function<void()> on_failed_;
  std::function<void()> on_buffer_change_;

  /// \name Self-stabilization state
  /// @{
  EventId audit_timer_{0};
  EventId watchdog_timer_{0};
  EventId resync_timer_{0};
  std::uint32_t resync_token_{0};    ///< Episode identity on the wire.
  std::uint32_t resync_attempt_{0};  ///< Transmissions this episode, 1-based.
  std::uint32_t pending_resync_epoch_{0};
  obs::RecoveryReason resync_reason_{obs::RecoveryReason::kSelfAuditFailure};
  std::uint64_t watchdog_last_resolved_{0};
  bool watchdog_strike_{false};  ///< One stalled tick seen; fire on the next.
  std::uint32_t implausible_streak_{0};
  std::uint64_t audit_trips_{0};
  std::uint64_t resyncs_completed_{0};
  /// @}
};

/// Lowercase mode name for logs and status output ("normal", "resyncing", ...).
[[nodiscard]] const char* to_string(LamsSender::Mode m) noexcept;

}  // namespace lamsdlc::lams
