#pragma once
/// \file inflight.hpp
/// \brief SoA table of transmitted-but-unreleased frames (the sender's
/// "transparent" in-flight population, Section 3.3).
///
/// The sender's hot loops walk this table once per checkpoint: the release
/// sweep reads every (counter, expected-arrival) pair, the NAK path looks up
/// individual counters, and frame issue probes for counter collisions.  The
/// table keeps the two swept fields in packed parallel arrays (structure of
/// arrays) so a sweep touches 16 bytes per slot instead of dragging each
/// slot's packet bookkeeping through the cache, and backs counter lookup
/// with a linear-probe open-addressing index (power-of-two capacity,
/// backward-shift deletion).  Erasure is swap-remove; the arrays and the
/// index only ever grow, so the steady-state claim/release cycle of a
/// saturated link performs no allocation.
///
/// Counters are arbitrary uint64s — the state-corruption chaos tier warps
/// them to any value — so the index hashes through a 64-bit finalizer
/// rather than masking low bits directly.
///
/// Iteration order over `ctrs()` is slot order (insertion order perturbed by
/// swap-remove), NOT counter order: callers that act on scan results sort
/// the matched counters first, which is what makes sweep emission and
/// retransmission order deterministic and counter-ordered.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lamsdlc/sim/packet.hpp"

namespace lamsdlc::lams {

/// One submitted packet riding the sending buffer (queued, awaiting
/// renumbered retransmission, or in flight awaiting release).
struct Pending {
  sim::Packet packet;
  Time first_tx{};        ///< First transmission instant (holding time base).
  std::uint32_t attempts = 0;
  std::uint64_t last_ctr = 0;  ///< Counter of the latest copy sent (for the
                               ///< kRetransmitMapped old->new pairing).
};

/// Counter-keyed in-flight table; see file comment.
class InFlightTable {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return ctrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ctrs_.empty(); }

  [[nodiscard]] bool contains(std::uint64_t ctr) const noexcept {
    return find_pos(ctr) != kNoPos;
  }

  /// Insert a slot.  Precondition: `!contains(ctr)`.
  void insert(std::uint64_t ctr, Pending pending, Time expected_arrival);

  /// Slot payload, or nullptr when the counter is not in flight.
  [[nodiscard]] Pending* find(std::uint64_t ctr) noexcept;
  [[nodiscard]] const Pending* find(std::uint64_t ctr) const noexcept;

  /// Expected-arrival bookkeeping of a slot (nullptr when absent).
  [[nodiscard]] Time* arrival(std::uint64_t ctr) noexcept;

  /// Remove the slot and return its payload.  Precondition: `contains(ctr)`.
  Pending take(std::uint64_t ctr);

  void clear();

  /// \name Hot-scan access
  /// Packed parallel arrays, index-aligned: `ctrs()[i]`'s expected arrival
  /// is `arrivals()[i]`.  Slot order (see file comment) — sort what you
  /// match before acting on it.
  /// @{
  [[nodiscard]] const std::vector<std::uint64_t>& ctrs() const noexcept {
    return ctrs_;
  }
  [[nodiscard]] const std::vector<Time>& arrivals() const noexcept {
    return arrivals_;
  }
  /// @}

  /// All live counters, ascending (drain/introspection paths).
  [[nodiscard]] std::vector<std::uint64_t> sorted_ctrs() const;

 private:
  static constexpr std::uint32_t kNoPos = ~std::uint32_t{0};

  struct IndexSlot {
    std::uint64_t ctr = 0;
    std::uint32_t pos = kNoPos;  ///< kNoPos marks an empty slot.
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept;
  /// Array position holding `ctr`, or kNoPos.
  [[nodiscard]] std::uint32_t find_pos(std::uint64_t ctr) const noexcept;
  /// Index slot holding `ctr` (precondition: present).
  [[nodiscard]] std::size_t index_slot(std::uint64_t ctr) const noexcept;
  void index_insert(std::uint64_t ctr, std::uint32_t pos);
  void index_erase(std::uint64_t ctr);
  void grow_index();

  std::vector<std::uint64_t> ctrs_;   ///< Hot: swept every checkpoint.
  std::vector<Time> arrivals_;        ///< Hot: swept every checkpoint.
  std::vector<Pending> pendings_;     ///< Cold: touched on claim/release only.
  std::vector<IndexSlot> index_;      ///< Power-of-two linear-probe index.
  std::size_t mask_ = 0;              ///< index_.size() - 1.
};

}  // namespace lamsdlc::lams
