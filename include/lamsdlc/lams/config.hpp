#pragma once
/// \file config.hpp
/// \brief LAMS-DLC protocol parameters.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc::lams {

/// Parameters shared by a LAMS-DLC sender/receiver pair.
///
/// Defaults correspond to a 300 Mbps, ~2000 km link with 1 KiB frames —
/// the small end of the paper's target environment (Section 2.1).
struct LamsConfig {
  /// Checkpoint interval W_cp (paper also writes I_cp): the receiver emits a
  /// Check-Point command every such period while the link is active.
  Time checkpoint_interval = Time::milliseconds(5);

  /// Cumulation depth C_depth: each NAK is repeated in this many consecutive
  /// checkpoints, and the sender's checkpoint timer expires after
  /// C_depth · W_cp of checkpoint silence (Section 3.2).
  std::uint32_t cumulation_depth = 4;

  /// Per-frame processing time t_proc at an endpoint.
  Time t_proc = Time::microseconds(10);

  /// Numbering size (Section 3.3).  Must exceed twice the maximum in-flight
  /// frame population, which the bounded resolving period guarantees for the
  /// default at the paper's rates.
  std::uint32_t modulus = 1u << 16;

  /// Slack added to the computed expected-arrival instant before the sender
  /// treats a frame as provably undelivered (guards the release/retransmit
  /// decision against processing-time and range-model skew).
  Time release_margin = Time::microseconds(50);

  /// Sending-buffer capacity in frames; `DlcSender::accepting()` turns false
  /// at this depth.  Unlimited by default (the paper's transparent-buffer
  /// analysis wants the unconstrained behaviour).
  std::size_t send_buffer_capacity = std::numeric_limits<std::size_t>::max();

  /// \name Flow control (Section 3.4)
  /// @{
  /// Receiver sets the Stop-Go bit when its processing backlog exceeds this
  /// many frames.
  std::size_t recv_high_watermark = 4096;
  /// Hard receiving-buffer capacity: beyond it the receiver *discards*
  /// arriving I-frames while still signalling Stop ("if necessary, the
  /// receiver discards the overflowing I-frames" — Section 3.4).  A
  /// discarded frame is indistinguishable from a damaged one, so the
  /// normal NAK machinery recovers it once the congestion clears.
  /// Unlimited by default.
  std::size_t recv_hard_capacity = std::numeric_limits<std::size_t>::max();
  /// Multiplicative rate decrease applied per Stop checkpoint.
  double stop_decrease = 0.5;
  /// Additive rate-factor increase applied per Go checkpoint.
  double go_increase = 0.125;
  /// Rate-factor floor.
  double min_rate_factor = 1.0 / 64.0;
  /// @}

  /// Fault-injection ablation: when false, the receiver delivers frames with
  /// non-increasing sequence counters (late reordered arrivals and wire-level
  /// duplicates) upward instead of discarding them.  Exists solely so the
  /// invariant checker can prove it detects duplicate client delivery; never
  /// disable outside tests.
  bool suppress_duplicates = true;

  /// \name Failure handling (Section 3.2)
  /// @{
  /// Re-send the Request-NAK when a non-enforced checkpoint arrives during
  /// enforced recovery (robustness extension; the TR leaves this open).
  bool retry_request_nak = true;
  /// Remaining-link-lifetime deadline: if a recovery could not complete
  /// before this absolute time, the sender declares the failure
  /// unrecoverable immediately ("provided that the expected response time is
  /// within the remaining link lifetime").
  std::optional<Time> link_deadline;
  /// @}

  /// \name Self-stabilization layer (all OFF by default: with the defaults
  /// the protocol behaves — draw for draw and timer for timer — exactly as
  /// it did before the layer existed)
  /// @{
  /// Cadence of the runtime self-audit in both endpoints: cheap local
  /// invariant checks (window coherence, slot/counter consistency, modulus
  /// bounds).  Zero disables the audit tick; the anomaly-signal audits
  /// (implausible ack, husk stall) key off their own knobs below.
  Time self_audit_period{};
  /// Master switch for the RESYNC/RESYNC-ACK recovery handshake.  When off,
  /// audit trips are only counted/emitted; nothing changes behaviourally.
  bool resync_enabled = false;
  /// Progress watchdog: if the sender holds unresolved traffic and a full
  /// period passes without a single new release, it initiates a RESYNC.
  /// Zero disables.  Should comfortably exceed `failure_timeout()` so the
  /// ordinary enforced-recovery machinery always gets the first try.
  Time resync_watchdog{};
  /// RESYNC transmissions per episode before the sender gives up and
  /// declares the link failed (bounded-retry teardown).
  std::uint32_t max_resync_attempts = 6;
  /// Base retry backoff for the RESYNC handshake; doubles per attempt,
  /// capped at 8x.  Zero derives `max_rtt`.
  Time resync_backoff{};
  /// Consecutive checkpoints whose highest-seen references a counter the
  /// sender never issued ("implausible ack") before the anomaly trips a
  /// self-audit.  Zero disables the streak detector.
  std::uint32_t implausible_ack_threshold = 0;
  /// @}

  /// Receiver-side NAK retention horizon for Enforced-NAK responses.  Zero
  /// means "derive from the worst-case resolving period":
  /// 2·C_depth·W_cp + 2·max_rtt + 2·W_cp.
  Time nak_history_horizon{};

  /// Upper bound on the round-trip time, used to derive the NAK retention
  /// horizon and the failure timer.
  Time max_rtt = Time::milliseconds(100);

  /// Derived: checkpoint-timer timeout C_depth · W_cp.
  [[nodiscard]] Time checkpoint_timeout() const noexcept {
    return checkpoint_interval * static_cast<std::int64_t>(cumulation_depth);
  }

  /// Derived: failure-timer duration — expected response time plus
  /// C_depth · W_cp (Section 3.2).
  [[nodiscard]] Time failure_timeout() const noexcept {
    return max_rtt + checkpoint_interval + checkpoint_timeout();
  }

  /// Derived: NAK retention horizon (see `nak_history_horizon`).
  [[nodiscard]] Time effective_nak_horizon() const noexcept {
    if (!nak_history_horizon.is_zero()) return nak_history_horizon;
    return checkpoint_timeout() * 2 + max_rtt * 2 + checkpoint_interval * 2;
  }

  /// Derived: the paper's bound on the resolving period,
  /// R + ½·W_cp + C_depth·W_cp (Section 3.3), with R = max_rtt.
  [[nodiscard]] Time resolving_period_bound() const noexcept {
    return max_rtt + checkpoint_interval / 2 + checkpoint_timeout();
  }

  /// Derived: the numbering window — how many frames the sender may hold
  /// unresolved at once.  Section 3.3 requires the numbering size to exceed
  /// twice the maximum frame population of the transparent sending buffer;
  /// read the other way round, the sender must stop issuing *new* frames
  /// once modulus/2 are unresolved, or wrapped sequence references (the
  /// checkpoint's highest-seen, the NAK list) become ambiguous on the wire.
  /// At the default modulus the window is far above any reachable
  /// population; it binds at deliberately tiny numbering sizes.
  [[nodiscard]] std::size_t numbering_window() const noexcept {
    return modulus / 2 > 1 ? modulus / 2 : 1;
  }

  /// Derived: effective RESYNC retry backoff base (see `resync_backoff`).
  [[nodiscard]] Time effective_resync_backoff() const noexcept {
    return resync_backoff.is_zero() ? max_rtt : resync_backoff;
  }

  /// Derived: worst-case duration of one full RESYNC episode — every retry
  /// at capped exponential backoff plus a final round trip for the ack.
  /// Convergence harnesses budget recovery time from this.
  [[nodiscard]] Time resync_budget() const noexcept {
    const Time base = effective_resync_backoff();
    Time total = max_rtt;
    std::int64_t mult = 1;
    for (std::uint32_t i = 0; i < max_resync_attempts; ++i) {
      total = total + base * mult;
      if (mult < 8) mult *= 2;
    }
    return total;
  }
};

}  // namespace lamsdlc::lams
