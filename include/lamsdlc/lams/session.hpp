#pragma once
/// \file session.hpp
/// \brief Link-session lifecycle: initialization, close, resynchronization.
///
/// Section 2 lists "error free procedures for link initialization, link
/// failure detection, and resynchronization" among the reliability
/// constraints, and Section 2.3 observes that the two ends' contexts must
/// be brought to a well-defined state "at link initialization, resetting,
/// check-pointing, closing".  The core protocol covers failure detection
/// and checkpointing; this layer adds the remaining lifecycle:
///
///  - `SessionSender::open()` runs an INIT / INIT-ACK handshake (epoch
///    numbers disambiguate; retries cover losses) and only then releases
///    buffered traffic into the inner `LamsSender`;
///  - `close()` drains the sending buffer, then exchanges CLOSE /
///    CLOSE-ACK so both ends end the link lifetime in a consistent state;
///  - on a declared link failure the session can *resynchronize*: a new
///    epoch re-initializes both ends (the receiver forgets its sequence
///    tracking, the sender renumbers from zero with its unresolved traffic
///    requeued), giving zero loss across the failure; frames that had
///    already arrived may be re-delivered, so exactly-once semantics rest
///    on the destination's de-duplication (the documented substitution for
///    the TR's unpublished zero-duplication successor protocol).
///
/// Epoch hygiene: checkpoints carry the epoch that produced them and the
/// inner sender discards mismatches, so acknowledgements in flight across
/// a re-initialization can never be misread against restarted numbering.

#include <cstdint>
#include <deque>
#include <functional>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"

namespace lamsdlc::lams {

/// Session parameters.
struct SessionConfig {
  LamsConfig lams;                      ///< Inner protocol parameters.
  Time init_retry = Time::milliseconds(30);  ///< INIT / CLOSE retry period.
  std::uint32_t max_handshake_retries = 10;  ///< Then the session fails.
  bool auto_resync = false;  ///< Re-open automatically on link failure.
  std::uint32_t max_resyncs = 3;
};

/// Sender-side session manager.  Owns the inner `LamsSender`; attach as the
/// sink of the *reverse* channel (it filters session responses and passes
/// checkpoints through).
class SessionSender final : public sim::DlcSender, public link::FrameSink {
 public:
  enum class State { kIdle, kInitializing, kEstablished, kDraining, kClosing,
                     kClosed, kFailed };

  /// \p bus (optional) is forwarded to the inner `LamsSender` so live runs
  /// can capture the typed event stream per session.
  SessionSender(Simulator& sim, link::FrameChannel& data_out,
                SessionConfig cfg, sim::DlcStats* stats = nullptr,
                Tracer tracer = {}, obs::EventBus* bus = nullptr);
  ~SessionSender() override;

  SessionSender(const SessionSender&) = delete;
  SessionSender& operator=(const SessionSender&) = delete;

  /// Begin the INIT handshake (idempotent while initializing).
  void open();

  /// Drain outstanding traffic, then exchange CLOSE / CLOSE-ACK.
  void close();

  /// \name sim::DlcSender — buffers until the session is established.
  /// @{
  void submit(sim::Packet p) override;
  [[nodiscard]] std::size_t sending_buffer_depth() const override;
  [[nodiscard]] bool accepting() const override;
  [[nodiscard]] bool idle() const override;
  /// @}

  /// link::FrameSink (reverse channel).
  void on_frame(frame::Frame f) override;

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t resyncs() const noexcept { return resyncs_; }
  [[nodiscard]] LamsSender& inner() noexcept { return inner_; }

  /// Fires on state transitions worth reacting to (established, closed,
  /// failed).
  using StateCallback = std::function<void(State)>;
  void set_state_callback(StateCallback cb) { on_state_ = std::move(cb); }

  /// Fires on every `accepting()` false→true edge — the buffer drained (a
  /// checkpoint released frames) or the session reached a state that admits
  /// traffic again.  Event-driven backpressure resume for producers that
  /// paused on `accepting() == false`; no polling required.  May be invoked
  /// from inside inner-protocol processing: re-entrant `submit()` from the
  /// callback is safe, but prefer deferring real work.
  using CanAcceptCallback = std::function<void()>;
  void set_can_accept_callback(CanAcceptCallback cb) {
    on_can_accept_ = std::move(cb);
  }

 private:
  void enter(State s);
  /// Re-evaluate `accepting()` and fire `on_can_accept_` on a rising edge.
  void note_accepting();
  void send_handshake(frame::SessionFrame::Kind kind);
  void on_handshake_timer();
  void on_inner_failed();
  void try_resync();
  void check_drained();
  void trace(std::string what) const;

  Simulator& sim_;
  link::FrameChannel& out_;
  SessionConfig cfg_;
  Tracer tracer_;
  LamsSender inner_;

  State state_{State::kIdle};
  bool close_requested_{false};  ///< close() arrived before establishment.
  std::uint32_t epoch_{0};
  std::uint32_t retries_{0};
  std::uint32_t resyncs_{0};
  EventId handshake_timer_{0};
  EventId drain_timer_{0};
  std::deque<sim::Packet> pending_;  ///< Buffered until established.
  StateCallback on_state_;
  CanAcceptCallback on_can_accept_;
  bool was_accepting_{true};  ///< Last observed accepting(); edge detector.
};

/// Receiver-side session manager.  Owns the inner `LamsReceiver`; attach as
/// the sink of the *forward* channel.
class SessionReceiver final : public link::FrameSink {
 public:
  /// \p bus (optional) is forwarded to the inner `LamsReceiver` so live
  /// runs can capture the typed event stream per session.
  SessionReceiver(Simulator& sim, link::FrameChannel& control_out,
                  SessionConfig cfg, sim::PacketListener* listener,
                  sim::DlcStats* stats = nullptr, Tracer tracer = {},
                  obs::EventBus* bus = nullptr);

  SessionReceiver(const SessionReceiver&) = delete;
  SessionReceiver& operator=(const SessionReceiver&) = delete;

  void on_frame(frame::Frame f) override;

  [[nodiscard]] bool in_session() const noexcept { return in_session_; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t inits_accepted() const noexcept { return inits_; }
  [[nodiscard]] LamsReceiver& inner() noexcept { return inner_; }

  /// Fires when an INIT establishes a session epoch (`in_session == true`)
  /// and when a CLOSE ends one (`false`) — the hook the live mux uses to
  /// create and retire passive-side per-session state, and how a daemon
  /// knows a stream finished cleanly.
  using LifecycleCallback = std::function<void(bool in_session,
                                               std::uint32_t epoch)>;
  void set_lifecycle_callback(LifecycleCallback cb) {
    on_lifecycle_ = std::move(cb);
  }

 private:
  void reply(frame::SessionFrame::Kind kind, std::uint32_t epoch);
  void trace(std::string what) const;

  Simulator& sim_;
  link::FrameChannel& out_;
  Tracer tracer_;
  LamsReceiver inner_;

  bool in_session_{false};
  std::uint32_t epoch_{0};
  std::uint32_t inits_{0};
  LifecycleCallback on_lifecycle_;
};

/// Lowercase state name for logs and status output ("established", ...).
[[nodiscard]] const char* to_string(SessionSender::State s) noexcept;

}  // namespace lamsdlc::lams
