#pragma once
/// \file lamsdlc.hpp
/// \brief Umbrella header: the whole public API in one include.
///
/// For applications that prefer a single include over picking modules:
///
/// \code
///   #include "lamsdlc/lamsdlc.hpp"
/// \endcode
///
/// Library structure (see README.md for the guided tour):
///  - core      — discrete-event kernel, time, randomness, stats, tracing
///  - phy       — CRC, channel error models, FEC codec model
///  - orbit     — constellation geometry, visibility windows, contact plans
///  - frame     — frame formats, byte codecs, sequence-space arithmetic
///  - link      — simulated full-duplex laser links
///  - lams      — the LAMS-DLC protocol (the paper's contribution) + sessions
///  - hdlc      — SR-HDLC (incl. SR+ST, RNR) and GBN-HDLC baselines
///  - nbdt      — the NBDT continuous/multiphase baseline
///  - obs       — typed events, metric registry, capture files (.ldlcap)
///  - analysis  — the Section 4 closed-form performance model
///  - workload  — traffic sources, delivery tracking, message resequencing
///  - sim       — the one-stop Scenario harness
///  - net       — multi-hop store-and-forward constellation networks

#include "lamsdlc/analysis/model.hpp"
#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/stats.hpp"
#include "lamsdlc/core/time.hpp"
#include "lamsdlc/core/trace.hpp"
#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/frame.hpp"
#include "lamsdlc/frame/seqspace.hpp"
#include "lamsdlc/hdlc/config.hpp"
#include "lamsdlc/hdlc/gbn.hpp"
#include "lamsdlc/hdlc/sr.hpp"
#include "lamsdlc/lams/config.hpp"
#include "lamsdlc/lams/receiver.hpp"
#include "lamsdlc/lams/sender.hpp"
#include "lamsdlc/lams/session.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/nbdt/nbdt.hpp"
#include "lamsdlc/net/contact_schedule.hpp"
#include "lamsdlc/net/network.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/obs/capture.hpp"
#include "lamsdlc/obs/collector.hpp"
#include "lamsdlc/obs/event.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/orbit/constellation.hpp"
#include "lamsdlc/orbit/orbit.hpp"
#include "lamsdlc/phy/crc.hpp"
#include "lamsdlc/phy/error_model.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/phy/fec.hpp"
#include "lamsdlc/sim/chaos.hpp"
#include "lamsdlc/sim/dlc.hpp"
#include "lamsdlc/sim/error_config.hpp"
#include "lamsdlc/sim/invariants.hpp"
#include "lamsdlc/sim/packet.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/message.hpp"
#include "lamsdlc/workload/sources.hpp"
#include "lamsdlc/workload/tracker.hpp"
