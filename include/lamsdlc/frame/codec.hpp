#pragma once
/// \file codec.hpp
/// \brief Byte-level encode/decode of frames with CRC-16 FCS.
///
/// Layout (all integers little-endian):
///   [u8 kind][kind-specific body][u16 FCS over kind+body]
///
/// Kinds:
///   1 IFrame        : u32 seq, u32 payload_bytes, payload
///   2 Checkpoint    : u32 cp_seq, i64 generated_at_ps, u32 highest_seen,
///                     u8 flags (bit0 any_seen, bit1 enforced, bit2 stop_go),
///                     u16 nak_count, u32 naks[]
///   3 RequestNak    : u32 token
///   4 HdlcIFrame    : u32 ns, u32 nr, u8 flags (bit0 poll),
///                     u32 payload_bytes, payload
///   5 HdlcSFrame    : u8 type_and_flags (low 2 bits type, bit7 P/F),
///                     u32 nr, u16 srej_count, u32 srej_list[]
///
/// `PacketId` is a simulator-side identity and is intentionally *not* on the
/// wire; `decode` yields frames with `packet_id == 0`.
///
/// If an I-frame's `payload` vector is empty but `payload_bytes` is nonzero
/// the encoder emits that many zero bytes (the simulator usually carries
/// lengths, not literal payloads).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lamsdlc/frame/frame.hpp"

namespace lamsdlc::frame {

/// Serialize \p f (never fails; output length == `encoded_size(f)`).
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& f);

/// Serialize \p f into \p out, reusing its capacity (cleared first).  The
/// steady-state byte-level wire path encodes every frame through one
/// channel-owned buffer and never reallocates once it has grown to the
/// largest frame seen.
void encode_into(const Frame& f, std::vector<std::uint8_t>& out);

/// Receiver-side validation limits applied after the structural parse.  A
/// passing FCS only proves the bytes were not damaged in transit — it does
/// not make the *values* lawful.  A real implementation knows its negotiated
/// numbering size and must reject a frame whose sequence fields fall outside
/// it: `SeqSpace` arithmetic reduces everything mod m, so an out-of-range
/// wire value would silently alias some in-range one instead of being
/// refused at the door.
struct DecodeLimits {
  /// Sequence-number modulus; every seq-carrying field (I-frame seq,
  /// checkpoint highest_seen and NAK entries, HDLC N(S)/N(R)/SREJ) must be
  /// < this.  0 disables the check (protocol modulus unknown).
  std::uint32_t seq_modulus = 0;
};

/// Why `decode` refused a buffer.  The distinction that matters for
/// hardening is `kLengthOverrun`: a length/count field whose value would
/// read past the end of the received bytes.  A passing FCS does not protect
/// against it — the FCS covers only the bytes that arrived, so a hostile
/// sender can declare any length it likes and recompute the checksum.
enum class DecodeReject : std::uint8_t {
  kNone = 0,
  kTruncated,       ///< Buffer too short for the fixed fields of its kind.
  kBadFcs,          ///< Trailing CRC-16 disagrees with the body.
  kLengthOverrun,   ///< A length/count field claims bytes past the buffer.
  kTrailingBytes,   ///< Undeclared bytes after the parsed body.
  kUnknownKind,     ///< Unknown frame kind or invalid enum subtype.
  kLimits,          ///< Parsed fine; a sequence field violates DecodeLimits.
};

/// Cumulative per-reason reject tally.  Wire consumers (the byte-accurate
/// channel, the datagram mux) keep one of these so a stream of hostile or
/// damaged input is *counted by cause*, not silently folded into a single
/// drop counter.
struct DecodeRejectCounts {
  std::uint64_t truncated = 0;
  std::uint64_t bad_fcs = 0;
  std::uint64_t length_overrun = 0;
  std::uint64_t trailing_bytes = 0;
  std::uint64_t unknown_kind = 0;
  std::uint64_t limits = 0;

  void count(DecodeReject r) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept {
    return truncated + bad_fcs + length_overrun + trailing_bytes +
           unknown_kind + limits;
  }
};

/// Parse bytes back into a frame.  Returns std::nullopt when the buffer is
/// truncated, the kind is unknown, internal lengths disagree, the FCS
/// check fails, or a sequence field violates \p limits.  When \p why is
/// non-null it receives the reject reason (kNone on success).
[[nodiscard]] std::optional<Frame> decode(std::span<const std::uint8_t> bytes,
                                          DecodeLimits limits = {},
                                          DecodeReject* why = nullptr);

}  // namespace lamsdlc::frame
