#pragma once
/// \file frame.hpp
/// \brief Frame formats for LAMS-DLC and HDLC.
///
/// LAMS-DLC (Section 3.1) defines I-frames plus three control commands:
///  - Check-Point-NAK   (periodic checkpoint; cumulative NAK list),
///  - Enforced-NAK      (checkpoint with the Enforced bit set; response to a
///                       Request-NAK, a.k.a. Resolving Command when empty),
///  - Request-NAK       (sender-issued poll when checkpoints go silent).
/// Checkpoint-class commands carry a Stop-Go bit for flow control; LAMS-DLC
/// forbids acknowledgement piggybacking (control frames travel under their
/// own, stronger FEC — link model assumption 4).
///
/// The HDLC frames cover the SR-HDLC / GBN-HDLC baselines: numbered I-frames
/// and the S-frames RR / RNR / REJ / SREJ with a P/F bit.
///
/// Design notes for the byte codecs (`codec.hpp`):
///  - frames are length-delimited rather than flag-delimited (no bit
///    stuffing); framing transparency is orthogonal to the protocol logic
///    under study and is documented as out of scope;
///  - every frame ends in a CRC-16/CCITT FCS;
///  - the simulator transports the in-memory structs and marks corruption
///    explicitly, so assumption 9 of the link model (no undetected errors)
///    holds by construction, while the codecs give the byte-faithful path
///    for the public API.

#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc::frame {

/// Sequence number.  LAMS-DLC renumbers retransmissions, so sequence numbers
/// form a cyclic space whose size (the "numbering size", Section 3.3) is
/// bounded by the resolving period; HDLC interprets these modulo its own
/// modulus.  We carry them as plain 32-bit values and let each protocol apply
/// its modulus.
using Seq = std::uint32_t;

/// Stable identity of a user packet across LAMS-DLC renumbering; never on the
/// wire, used by the simulator and the destination resequencer.
using PacketId = std::uint64_t;

/// LAMS-DLC information frame.
struct IFrame {
  Seq seq = 0;
  PacketId packet_id = 0;             ///< Simulation-side identity.
  std::uint32_t payload_bytes = 0;    ///< Logical payload length.
  std::vector<std::uint8_t> payload;  ///< Optional literal payload bytes.
};

/// LAMS-DLC checkpoint-class command: Check-Point-NAK when `enforced` is
/// false, Enforced-NAK / Resolving Command when true.
struct CheckpointFrame {
  std::uint32_t cp_seq = 0;    ///< Serial number of this checkpoint.
  Time generated_at{};         ///< Receiver clock at generation (deterministic
                               ///< link model: both ends share the timeline).
  Seq highest_seen = 0;        ///< Highest I-frame sequence received so far.
  bool any_seen = false;       ///< False until the first I-frame arrives.
  bool enforced = false;       ///< Enforced bit (Section 3.2).
  bool stop_go = false;        ///< Stop-Go bit: true = stop (Section 3.4).
  std::uint32_t epoch = 0;     ///< Session epoch (0 = no session layer).
  std::vector<Seq> naks;       ///< Cumulative NAKs over C_depth intervals.
  bool resync_req = false;     ///< Receiver self-audit tripped: asks the
                               ///< sender to initiate a RESYNC handshake.
                               ///< (Declared last: wire flag bit 3.)
};

/// Session-layer command for link initialization, resynchronization and
/// graceful close — the "error free procedures for link initialization …
/// and resynchronization" the paper lists among the reliability
/// constraints (Section 2).  INIT/INIT_ACK open (or re-open) an epoch;
/// CLOSE/CLOSE_ACK end it before the link lifetime expires.
struct SessionFrame {
  enum class Kind : std::uint8_t { kInit, kInitAck, kClose, kCloseAck };
  Kind kind = Kind::kInit;
  std::uint32_t epoch = 0;
};

/// LAMS-DLC Request-NAK: sender poll initiating Enforced Recovery.
struct RequestNakFrame {
  std::uint32_t token = 0;  ///< Matches the Enforced-NAK to its Request.
};

/// Self-stabilization RESYNC command (sender → receiver, forward channel).
/// Issued when the sender's self-audit trips, progress stalls, or the
/// receiver requests it via the checkpoint `resync_req` bit: both ends
/// abandon their (possibly corrupted) sequence-space state and re-anchor
/// under a fresh epoch, resuming from the last durably-delivered packet.
struct ResyncFrame {
  std::uint32_t token = 0;  ///< Matches the RESYNC-ACK to its RESYNC.
  std::uint32_t epoch = 0;  ///< Epoch both ends adopt (always >= 1).
};

/// RESYNC-ACK (receiver → sender, reverse channel): the receiver has reset
/// its arrival tracking and adopted `epoch`; the sender may requeue its
/// unresolved frames under the new numbering and resume.
struct ResyncAckFrame {
  std::uint32_t token = 0;
  std::uint32_t epoch = 0;
};

/// HDLC information frame (N(S), N(R), P/F).
struct HdlcIFrame {
  Seq ns = 0;
  Seq nr = 0;
  bool poll = false;
  PacketId packet_id = 0;
  std::uint32_t payload_bytes = 0;
  std::vector<std::uint8_t> payload;
};

/// HDLC supervisory frame.
struct HdlcSFrame {
  enum class Type : std::uint8_t { RR, RNR, REJ, SREJ };
  Type type = Type::RR;
  Seq nr = 0;
  bool poll_final = false;
  /// For SREJ we allow a multi-selective-reject list (as in the SREJ
  /// multi-frame option of ISO 4335 / the paper's per-window NAK reporting);
  /// empty means the single sequence in `nr` is rejected.
  std::vector<Seq> srej_list;
};

/// NBDT-style completely selective acknowledgement (the NADIR Bulk Data
/// Transfer variant reviewed in the paper's introduction): a periodic
/// status report with a cumulative base ("everything below arrived") and
/// the explicit missing numbers between base and the highest received.
/// NBDT uses absolute (non-cyclic) numbering, so these are full counters.
struct SelectiveAckFrame {
  Seq base = 0;       ///< Lowest number not yet received.
  Seq highest = 0;    ///< Highest number received (valid when any_seen).
  bool any_seen = false;
  std::vector<Seq> missing;  ///< Holes in (base, highest].
};

/// Any frame either protocol can put on a link.
struct Frame {
  std::variant<IFrame, CheckpointFrame, RequestNakFrame, HdlcIFrame,
               HdlcSFrame, SessionFrame, SelectiveAckFrame, ResyncFrame,
               ResyncAckFrame>
      body;

  /// Set by the channel when the frame is damaged in flight.  A corrupted
  /// frame is delivered to the endpoint (the FCS check fails there); whether
  /// its header fields remain readable is the receiving protocol's modelling
  /// choice.
  bool corrupted = false;

  [[nodiscard]] bool is_control() const noexcept {
    return !std::holds_alternative<IFrame>(body) &&
           !std::holds_alternative<HdlcIFrame>(body);
  }
};

/// FCS size appended to every encoded frame (CRC-16/CCITT).
inline constexpr std::size_t kFcsBytes = 2;

/// Exact encoded length in bytes of \p f (matches `encode(f).size()`).
[[nodiscard]] std::size_t encoded_size(const Frame& f) noexcept;

/// Encoded length in bits; the link multiplies transmission time from this.
[[nodiscard]] std::size_t wire_bits(const Frame& f) noexcept;

}  // namespace lamsdlc::frame
