#pragma once
/// \file seqspace.hpp
/// \brief Cyclic sequence-number arithmetic.
///
/// LAMS-DLC's numbering size is bounded by the resolving period (Section
/// 3.3): because retransmissions get fresh numbers and every frame resolves
/// within R + ½·W_cp + C_depth·W_cp, a modulus larger than twice the
/// maximum in-flight population suffices to identify every unacknowledged
/// frame uniquely.  Internally both endpoints track 64-bit monotone counters
/// and exchange `counter mod modulus` on the wire; `unwrap` recovers the
/// counter nearest a local reference, which is unambiguous while the
/// in-flight span stays below modulus/2.  HDLC uses the same helper with its
/// classic modulus (8 or 128).

#include <cstdint>

#include "lamsdlc/frame/frame.hpp"

namespace lamsdlc::frame {

/// Arithmetic over a cyclic sequence space of the given modulus.
class SeqSpace {
 public:
  explicit constexpr SeqSpace(std::uint32_t modulus) : m_{modulus} {}

  [[nodiscard]] constexpr std::uint32_t modulus() const noexcept { return m_; }

  /// On-wire representation of a monotone counter.
  [[nodiscard]] constexpr Seq wrap(std::uint64_t counter) const noexcept {
    return static_cast<Seq>(counter % m_);
  }

  /// Recover the monotone counter whose wire value is \p wire, choosing the
  /// candidate closest to \p ref.  Unambiguous while |counter - ref| < m/2.
  [[nodiscard]] std::uint64_t unwrap(Seq wire, std::uint64_t ref) const noexcept {
    const std::uint64_t base = ref - (ref % m_);
    const std::uint64_t w = wire % m_;
    // Candidates in the cycle containing ref and its two neighbours.
    std::uint64_t best = base + w;
    std::int64_t best_d = distance(best, ref);
    for (const std::int64_t shift : {-1, +1}) {
      if (shift < 0 && base < m_) continue;  // would underflow
      const std::uint64_t cand = base + static_cast<std::uint64_t>(
                                            static_cast<std::int64_t>(m_) * shift) + w;
      const std::int64_t d = distance(cand, ref);
      if (d < best_d) {
        best = cand;
        best_d = d;
      }
    }
    return best;
  }

  /// Forward distance from \p a to \p b in wire space (0..m-1).  Both
  /// operands are reduced first: an out-of-range value (hostile wire input,
  /// or `b + m_` overflowing 32 bits near UINT32_MAX) must map to the same
  /// distance as its residue, never to an arbitrary one.
  [[nodiscard]] constexpr std::uint32_t forward(Seq a, Seq b) const noexcept {
    return (b % m_ + m_ - a % m_) % m_;
  }

  /// True if wire value \p x lies in the half-open window [lo, lo+len).
  [[nodiscard]] constexpr bool in_window(Seq x, Seq lo, std::uint32_t len) const noexcept {
    return forward(lo, x) < len;
  }

  /// Next wire value.
  [[nodiscard]] constexpr Seq next(Seq s) const noexcept { return (s + 1) % m_; }

 private:
  static constexpr std::int64_t distance(std::uint64_t a, std::uint64_t b) noexcept {
    return a > b ? static_cast<std::int64_t>(a - b) : static_cast<std::int64_t>(b - a);
  }

  std::uint32_t m_;
};

}  // namespace lamsdlc::frame
