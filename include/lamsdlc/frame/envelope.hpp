#pragma once
/// \file envelope.hpp
/// \brief Datagram envelope wrapping one encoded frame for transport.
///
/// The frame codec (`codec.hpp`) is the *link-layer* wire image: exactly what
/// LAMS-DLC puts between flags on a serial line.  A datagram transport needs
/// three more things the 1991 line discipline got for free:
///
///   1. **Multiplexing** — one socket carries many DLC sessions, so every
///      datagram names its session.
///   2. **Identity** — `PacketId` is deliberately not in the link codec (the
///      simulator owns it); across a real network the receiving mux must
///      restore it, so data envelopes carry the id out-of-band of the frame.
///   3. **Framing self-check** — UDP preserves message boundaries, but a
///      truncated or padded datagram (middlebox damage, a buggy sender, or a
///      fuzzer) must be refused *before* the frame decoder sees it.  The
///      envelope therefore declares its payload length and `decode_envelope`
///      rejects any datagram whose byte count disagrees with the declaration
///      — in either direction.
///
/// Layout (little-endian, 10 or 18 byte header):
///   [u16 magic 0x4C44][u8 version][u8 flags][u32 session_id]
///   [u16 payload_len][u64 packet_id  -- only when flags bit0 set]
///   [payload_len bytes: one codec-encoded frame]
///
/// flags bit0 (`kEnvFlagData`): the payload is an I-frame and `packet_id`
/// is present.  flags bit1 (`kEnvFlagToReceiver`): the datagram travels in
/// the data direction, initiator → responder (INIT, I-frames, RESYNC); when
/// clear it is feedback, responder → initiator (checkpoints, INIT-ACK).
/// Both ends of a socket may initiate sessions, so one (peer, session_id)
/// pair can name two independent DLCs — the direction bit is what keys
/// them apart in the mux.  All other flag bits must be zero in version 1.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lamsdlc/frame/frame.hpp"

namespace lamsdlc::frame {

inline constexpr std::uint16_t kEnvelopeMagic = 0x4C44;  // "DL" on the wire
inline constexpr std::uint8_t kEnvelopeVersion = 1;
inline constexpr std::uint8_t kEnvFlagData = 0x01;
inline constexpr std::uint8_t kEnvFlagToReceiver = 0x02;

/// One datagram's worth of wire: a session-tagged, length-declared frame.
struct Envelope {
  std::uint32_t session_id = 0;
  /// True for data (I-frame) envelopes; `packet_id` travels alongside the
  /// frame because the link codec intentionally omits it.
  bool has_packet_id = false;
  /// Direction on the DLC: true = initiator → responder (data path).
  bool to_receiver = false;
  PacketId packet_id = 0;
  /// The codec-encoded frame bytes (`frame::encode` output).
  std::vector<std::uint8_t> payload;
};

/// Bytes `encode_envelope` will produce for \p e.
[[nodiscard]] std::size_t envelope_encoded_size(const Envelope& e) noexcept;

/// Serialize \p e into \p out, reusing its capacity (cleared first).
/// Payloads longer than 65535 bytes do not fit the u16 length and are a
/// programming error; the encoder clamps nothing and asserts in debug.
void encode_envelope_into(const Envelope& e, std::vector<std::uint8_t>& out);

/// Serialize \p e (convenience wrapper over `encode_envelope_into`).
[[nodiscard]] std::vector<std::uint8_t> encode_envelope(const Envelope& e);

/// Why `decode_envelope` refused a datagram.  `kLengthMismatch` is the
/// reason this layer exists: the declared `payload_len` and the bytes that
/// actually arrived disagree (truncation, padding, or a rewritten length
/// field — any of which would otherwise let a hostile declaration steer the
/// frame decoder past the real payload boundary).
enum class EnvelopeReject : std::uint8_t {
  kNone = 0,
  kRuntHeader,      ///< Shorter than the fixed header.
  kBadMagic,        ///< Wrong magic word.
  kBadVersion,      ///< Unsupported version byte.
  kReservedFlags,   ///< A reserved flag bit is set.
  kTruncatedId,     ///< Data flag set but the packet-id field is cut short.
  kLengthMismatch,  ///< Declared payload_len != bytes actually received.
  kEmptyPayload,    ///< Zero-length payload (an envelope always carries a frame).
};

/// Cumulative per-reason envelope reject tally (mirror of
/// `DecodeRejectCounts` for the datagram layer).
struct EnvelopeRejectCounts {
  std::uint64_t runt_header = 0;
  std::uint64_t bad_magic = 0;
  std::uint64_t bad_version = 0;
  std::uint64_t reserved_flags = 0;
  std::uint64_t truncated_id = 0;
  std::uint64_t length_mismatch = 0;
  std::uint64_t empty_payload = 0;

  void count(EnvelopeReject r) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept {
    return runt_header + bad_magic + bad_version + reserved_flags +
           truncated_id + length_mismatch + empty_payload;
  }
};

/// Parse one datagram.  Returns std::nullopt when the magic or version is
/// wrong, a reserved flag bit is set, the header is truncated, the payload
/// is empty, or — the hardening this type exists for — the declared
/// `payload_len` disagrees with the number of bytes actually received.
/// When \p why is non-null it receives the reject reason (kNone on success).
[[nodiscard]] std::optional<Envelope> decode_envelope(
    std::span<const std::uint8_t> bytes, EnvelopeReject* why = nullptr);

}  // namespace lamsdlc::frame
