#pragma once
/// \file stats.hpp
/// \brief Metric accumulators used by the simulation and bench harness.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Time-weighted average of a step function, e.g. buffer occupancy over time.
///
/// Call `update(now, new_value)` whenever the tracked quantity changes; the
/// previous value is credited for the elapsed interval.  `finish(now)` closes
/// the last interval before reading the average.
class TimeWeightedStat {
 public:
  explicit TimeWeightedStat(Time start = Time{}) : last_change_{start} {}

  void update(Time now, double value) noexcept {
    accumulate(now);
    value_ = value;
  }

  void finish(Time now) noexcept { accumulate(now); }

  [[nodiscard]] double average() const noexcept {
    return total_time_.ps() > 0
               ? weighted_sum_ / static_cast<double>(total_time_.ps())
               : value_;
  }
  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] double peak() const noexcept { return peak_; }

 private:
  void accumulate(Time now) noexcept {
    const Time dt = now - last_change_;
    if (dt.ps() > 0) {
      weighted_sum_ += value_ * static_cast<double>(dt.ps());
      total_time_ += dt;
    }
    last_change_ = now;
    peak_ = std::max(peak_, value_);
  }

  Time last_change_;
  Time total_time_{};
  double value_{0.0};
  double weighted_sum_{0.0};
  double peak_{0.0};
};

/// Exact sorted-sample quantiles (nearest-rank): collect raw samples, read
/// p50/p90/p99 at the end.  Shared by the obs metrics exporter and the bench
/// tables; samples are kept (8 bytes each), so use it where the sample count
/// is bounded by the run, not by wall-clock — for unbounded streams prefer
/// `Histogram`.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = samples_.size() < 2; }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Nearest-rank quantile, q in [0, 1]: the ceil(q·n)-th smallest sample
  /// (clamped so q=0 is the minimum and q=1 the maximum).  0.0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto n = static_cast<double>(samples_.size());
    auto rank = static_cast<std::int64_t>(std::ceil(q * n));
    rank = std::clamp<std::int64_t>(rank, 1, static_cast<std::int64_t>(samples_.size()));
    return samples_[static_cast<std::size_t>(rank - 1)];
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins.  Used for delay distributions in the bench harness.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_{lo}, hi_{hi}, bins_(bins, 0) {}

  void add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    auto i = static_cast<std::int64_t>(t * static_cast<double>(bins_.size()));
    i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(i)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
  }

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0) return lo_;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen > target) {
        return bin_lo(i) + 0.5 * (hi_ - lo_) / static_cast<double>(bins_.size());
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_{0};
};

}  // namespace lamsdlc
