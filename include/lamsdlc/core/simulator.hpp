#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is single-threaded and fully deterministic: events scheduled
/// for the same instant fire in scheduling order (FIFO tie-break via a
/// monotonically increasing sequence number).  This matches the paper's
/// assumption 8 ("all parameters ... are deterministic") and makes every
/// experiment bit-for-bit reproducible given a seed.
///
/// Implementation: a single inline binary heap of 24-byte trivially-copyable
/// entries over a generation-tagged slot table that owns the callbacks (a
/// small-buffer-optimized `core::InlineFunction`, so the common protocol
/// lambdas never allocate).  Keeping the callback out of the heap entry
/// keeps sift swaps to plain memcpys, and gives O(1) `cancel()` /
/// `pending()` — a cancel destroys the callback immediately (releasing its
/// captures) and leaves only a 24-byte tombstone behind, reclaimed lazily
/// when it surfaces — or eagerly by compaction once tombstones outnumber
/// live events, so a timer re-armed in a loop cannot grow the heap without
/// bound.

#include <cstdint>
#include <vector>

#include "lamsdlc/core/inline_function.hpp"
#include "lamsdlc/core/time.hpp"

namespace lamsdlc {

/// Handle identifying a scheduled event; used to cancel timers.
/// Value 0 is reserved and never issued.  Internally `(slot << 32) | gen`:
/// generations start at 1 and advance whenever an event fires or is
/// cancelled, so a stale id can never hit a recycled slot.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Usage:
/// \code
///   Simulator sim;
///   sim.schedule_in(Time::milliseconds(5), [&]{ ... });
///   sim.run();
/// \endcode
class Simulator {
 public:
  using Callback = core::InlineFunction<48>;

  /// Same-instant tie-break priority.  Events at the same instant fire in
  /// ascending priority, FIFO within a priority.  Everything defaults to the
  /// midpoint, so ordinary scheduling keeps its pure-FIFO semantics; the
  /// parallel network layer pins its transit-sweep events *below* the
  /// default (one distinct priority per channel) so same-instant
  /// sweep-vs-timer ordering is a global property of the object, not of the
  /// scheduling history — the keystone of partition-count-invariant
  /// execution (docs/PERFORMANCE.md, "why identity holds").
  using Priority = std::uint16_t;
  static constexpr Priority kDefaultPriority = 0x8000;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at zero.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule \p cb to run at absolute time \p at.
  /// \throws std::invalid_argument if \p at is in the past.
  EventId schedule_at(Time at, Callback cb) {
    return schedule_at(at, kDefaultPriority, std::move(cb));
  }

  /// Schedule with an explicit same-instant priority (see `Priority`).
  EventId schedule_at(Time at, Priority prio, Callback cb);

  /// Schedule \p cb to run \p delay after the current time.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event.  Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired or unknown id is a harmless no-op
  /// returning false (this is the convenient semantics for protocol timers).
  bool cancel(EventId id);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const noexcept {
    const std::uint32_t slot = unpack_slot(id);
    return slot < slots_.size() && slots_[slot].gen == unpack_gen(id);
  }

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run until simulated time would exceed \p horizon.  Events at exactly
  /// \p horizon still fire; the clock is left at min(horizon, last event).
  /// A wall-clock driver (rt::WallClock) uses this as its dispatch
  /// primitive: advance the kernel to "wall now", firing everything due.
  void run_until(Time horizon);

  /// Run every event *strictly earlier* than \p limit, then advance the
  /// clock to \p limit without firing anything at it.  The conservative-PDES
  /// window loop runs each partition kernel through `[now, limit)` and uses
  /// the exclusive bound to keep window-boundary events (barrier-time global
  /// operations vs. same-instant kernel events) in one canonical order at
  /// every partition count.
  void run_before(Time limit);

  /// Instant of the earliest pending event, or `Time::max()` when the queue
  /// is empty — the deadline a wall-clock driver sleeps toward.  Prunes any
  /// cancelled tombstones sitting on the heap top (hence non-const).
  [[nodiscard]] Time next_event_time() noexcept;

  /// Request that `run()` return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending (excludes cancelled).
  [[nodiscard]] std::size_t events_pending() const noexcept { return live_; }

  /// Physical heap entries, live + tombstoned (diagnostic; the compaction
  /// regression test asserts this stays proportional to `events_pending`).
  [[nodiscard]] std::size_t heap_entries() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    /// Tie-break among equal times: the 16-bit priority lives in the top
    /// bits, a monotonically increasing issue counter in the low 48, so one
    /// integer compare orders (priority, FIFO) without growing the entry.
    /// 2^48 schedules outlast any realistic run by orders of magnitude.
    std::uint64_t seq;
    std::uint32_t slot;  ///< Slot-table index backing this event's id.
    std::uint32_t gen;   ///< Generation at scheduling; stale => tombstone.
  };
  static_assert(sizeof(Entry) == 24, "heap entries must stay memcpy-cheap");

  /// One event slot: the owning storage for a pending event's callback plus
  /// the generation that stamps its id.  Slots are recycled through a free
  /// list; the generation advances on every fire/cancel so stale ids can
  /// never alias a reused slot.
  struct Slot {
    std::uint32_t gen = 1;
    Callback cb;
  };

  /// Heap comparator: `std::push_heap`'s "less" is "fires later", so the
  /// max element — the heap top — is the earliest event.
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  static constexpr EventId pack(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(slot) << 32) | gen;
  }
  static constexpr std::uint32_t unpack_slot(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr std::uint32_t unpack_gen(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }

  [[nodiscard]] bool entry_live(const Entry& e) const noexcept {
    return slots_[e.slot].gen == e.gen;
  }

  /// Advance the slot's generation (invalidating the current id) and make
  /// the slot available for reuse.  Called exactly once per fire or cancel.
  void retire_slot(std::uint32_t slot) noexcept {
    if (++slots_[slot].gen == 0) slots_[slot].gen = 1;  // skip reserved gen 0
    free_slots_.push_back(slot);
  }

  bool dispatch_next();
  void drop_stale_top();
  void maybe_compact();

  Time now_{};
  bool stopped_{false};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::size_t live_{0};  ///< Non-tombstoned entries in `heap_`.
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;                ///< Callback + generation per slot.
  std::vector<std::uint32_t> free_slots_;  ///< Retired slots ready for reuse.
};

}  // namespace lamsdlc
