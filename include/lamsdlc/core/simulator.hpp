#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is single-threaded and fully deterministic: events scheduled
/// for the same instant fire in scheduling order (FIFO tie-break via a
/// monotonically increasing sequence number).  This matches the paper's
/// assumption 8 ("all parameters ... are deterministic") and makes every
/// experiment bit-for-bit reproducible given a seed.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc {

/// Handle identifying a scheduled event; used to cancel timers.
/// Value 0 is reserved and never issued.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Usage:
/// \code
///   Simulator sim;
///   sim.schedule_in(Time::milliseconds(5), [&]{ ... });
///   sim.run();
/// \endcode
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at zero.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule \p cb to run at absolute time \p at.
  /// \throws std::invalid_argument if \p at is in the past.
  EventId schedule_at(Time at, Callback cb);

  /// Schedule \p cb to run \p delay after the current time.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, cb); }

  /// Cancel a pending event.  Returns true if the event existed and had not
  /// yet fired; cancelling an already-fired or unknown id is a harmless no-op
  /// returning false (this is the convenient semantics for protocol timers).
  bool cancel(EventId id);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run until simulated time would exceed \p horizon.  Events at exactly
  /// \p horizon still fire; the clock is left at min(horizon, last event).
  void run_until(Time horizon);

  /// Request that `run()` return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending (excludes cancelled).
  [[nodiscard]] std::size_t events_pending() const noexcept { return callbacks_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // FIFO tie-break among equal times
    EventId id;
    // Ordering for a min-heap via std::priority_queue (which is a max-heap):
    // "greater" entries sort to the bottom.
    bool operator<(const Entry& o) const noexcept {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool dispatch_next();

  Time now_{};
  bool stopped_{false};
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Entry> queue_;
  // Live callbacks keyed by event id.  Cancellation erases the entry; the
  // heap entry becomes a tombstone skipped at dispatch time.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace lamsdlc
