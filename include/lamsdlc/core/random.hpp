#pragma once
/// \file random.hpp
/// \brief Seedable random streams for stochastic channel models.
///
/// Each stochastic component (e.g. the forward error process, the reverse
/// error process, the arrival process) owns its own `RandomStream`, derived
/// deterministically from a run seed and a stream label.  Components then
/// stay statistically independent and runs remain reproducible even when the
/// set of components changes.

#include <cstdint>
#include <random>
#include <string_view>

namespace lamsdlc {

/// A named, independently seeded pseudo-random stream (xoshiro-quality via
/// std::mt19937_64).
class RandomStream {
 public:
  /// Derive a stream from \p run_seed and a stable \p label.
  RandomStream(std::uint64_t run_seed, std::string_view label)
      : engine_{mix(run_seed, label)} {}

  /// Direct-seeded stream (tests).
  explicit RandomStream(std::uint64_t seed) : engine_{seed} {}

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::generate_canonical<double, 53>(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Exponential variate with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Geometric number of failures before first success, success prob \p p.
  [[nodiscard]] std::int64_t geometric(double p) {
    return std::geometric_distribution<std::int64_t>{p}(engine_);
  }

  /// Underlying engine (for std distributions not wrapped above).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  /// Combine a run seed with a label hash (FNV-1a) and scramble
  /// (splitmix64 finalizer) so related seeds yield unrelated streams.
  static std::uint64_t mix(std::uint64_t seed, std::string_view label) {
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : label) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    std::uint64_t z = seed ^ h;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace lamsdlc
