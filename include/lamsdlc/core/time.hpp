#pragma once
/// \file time.hpp
/// \brief Simulation time type for the discrete-event kernel.
///
/// Simulated time is an integral count of picoseconds.  At the highest data
/// rate the paper considers (1 Gbps) one bit lasts 1 ns = 1000 ps, so every
/// serialization and propagation interval of interest is represented exactly;
/// an int64 count of picoseconds covers ~106 days of simulated time, far more
/// than any LAMS link lifetime (minutes).

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <ostream>

namespace lamsdlc {

/// An instant or duration on the simulation clock, stored as picoseconds.
///
/// `Time` is a regular value type: totally ordered, cheap to copy, and closed
/// under addition/subtraction and scaling.  Negative values are permitted so
/// that durations can be subtracted freely; the `Simulator` rejects scheduling
/// into the past.
class Time {
 public:
  /// Zero time; also the default.
  constexpr Time() noexcept = default;

  /// \name Named constructors
  /// @{
  [[nodiscard]] static constexpr Time picoseconds(std::int64_t v) noexcept {
    return Time{v};
  }
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t v) noexcept {
    return Time{v * 1'000};
  }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t v) noexcept {
    return Time{v * 1'000'000};
  }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t v) noexcept {
    return Time{v * 1'000'000'000};
  }
  [[nodiscard]] static constexpr Time seconds_int(std::int64_t v) noexcept {
    return Time{v * 1'000'000'000'000};
  }
  /// Construct from a floating-point second count (rounded to nearest ps).
  [[nodiscard]] static constexpr Time seconds(double v) noexcept {
    return Time{static_cast<std::int64_t>(v * 1e12 + (v >= 0 ? 0.5 : -0.5))};
  }
  /// The largest representable instant; used as an "infinite" horizon.
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }
  /// @}

  /// \name Accessors
  /// @{
  [[nodiscard]] constexpr std::int64_t ps() const noexcept { return ps_; }
  [[nodiscard]] constexpr double ns() const noexcept { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ps_) / 1e12; }
  /// @}

  [[nodiscard]] constexpr bool is_zero() const noexcept { return ps_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return ps_ < 0; }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time rhs) noexcept {
    ps_ += rhs.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) noexcept {
    ps_ -= rhs.ps_;
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) noexcept { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) noexcept { return Time{a.ps_ - b.ps_}; }
  template <typename Int>
    requires std::integral<Int>
  friend constexpr Time operator*(Time a, Int k) noexcept {
    return Time{a.ps_ * static_cast<std::int64_t>(k)};
  }
  /// Scale by a real factor (rounded to nearest ps).
  friend constexpr Time operator*(Time a, double k) noexcept {
    const double v = static_cast<double>(a.ps_) * k;
    return Time{static_cast<std::int64_t>(v + (v >= 0 ? 0.5 : -0.5))};
  }
  /// Ratio of two durations.
  friend constexpr double operator/(Time a, Time b) noexcept {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) noexcept { return Time{a.ps_ / k}; }

  friend std::ostream& operator<<(std::ostream& os, Time t);

 private:
  constexpr explicit Time(std::int64_t ps) noexcept : ps_{ps} {}
  std::int64_t ps_{0};
};

namespace literals {
[[nodiscard]] constexpr Time operator""_ps(unsigned long long v) {
  return Time::picoseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_ns(unsigned long long v) {
  return Time::nanoseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_us(unsigned long long v) {
  return Time::microseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_ms(unsigned long long v) {
  return Time::milliseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_s(unsigned long long v) {
  return Time::seconds_int(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_s(long double v) {
  return Time::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace lamsdlc
