#pragma once
/// \file trace.hpp
/// \brief Lightweight protocol event tracing.
///
/// Protocol endpoints emit `TraceEvent`s ("I-frame 17 sent", "checkpoint
/// received, NAKs={3,9}") through a `Tracer`.  Sinks can pretty-print to a
/// stream (the `protocol_trace` example) or record into a vector (tests
/// assert on exact protocol behaviour).  Tracing is off by default and costs
/// one branch per emit.

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "lamsdlc/core/time.hpp"

namespace lamsdlc {

/// One traced protocol event.
struct TraceEvent {
  Time at;             ///< Simulation time of the event.
  std::string source;  ///< Emitting component, e.g. "lams.sender".
  std::string what;    ///< Human-readable description.
};

/// Dispatches trace events to an optional sink.
class Tracer {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  /// No-op tracer.
  Tracer() = default;

  explicit Tracer(Sink sink) : sink_{std::move(sink)} {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool enabled() const noexcept { return static_cast<bool>(sink_); }

  void emit(Time at, std::string source, std::string what) const {
    if (sink_) sink_(TraceEvent{at, std::move(source), std::move(what)});
  }

  /// Sink that appends to \p out (caller keeps \p out alive).
  static Sink record_into(std::vector<TraceEvent>& out) {
    return [&out](const TraceEvent& e) { out.push_back(e); };
  }

  /// Sink that pretty-prints "[ time ] source: what" lines to \p os.
  static Sink print_to(std::ostream& os);

  /// Sink that writes one JSON object per line to \p os:
  ///   {"t_ps":123456,"src":"lams.sender","msg":"..."}
  /// Suitable for external analysis tooling; strings are JSON-escaped.
  static Sink jsonl_to(std::ostream& os);

 private:
  Sink sink_;
};

}  // namespace lamsdlc
