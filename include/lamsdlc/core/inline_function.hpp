#pragma once
/// \file inline_function.hpp
/// \brief Move-only `void()` callable with small-buffer-optimized storage.
///
/// `std::function` heap-allocates for captures beyond ~2 pointers, and its
/// copyability forces every target to be copy-constructible.  The event
/// kernel needs neither: simulator callbacks are scheduled once, moved
/// through the heap, invoked once and destroyed.  `InlineFunction` stores
/// targets up to `SboBytes` (pointer-aligned, nothrow-movable) directly in
/// the object — the common protocol lambdas (`this` plus a couple of ints,
/// or `this` + epoch + a pool index) never touch the allocator.  Fat or
/// throwing-move targets fall back to a single heap allocation, so any
/// callable still works.
///
/// The type-erasure is a three-entry ops table (invoke / relocate /
/// destroy); relocation is what the binary heap pays per sift swap, so
/// inline targets relocate with their own move constructor and heap targets
/// with a pointer copy.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lamsdlc::core {

template <std::size_t SboBytes = 48>
class InlineFunction {
  static_assert(SboBytes >= sizeof(void*), "buffer must hold a heap pointer");

 public:
  InlineFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::decay_t<F>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &inline_ops<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &heap_ops<T>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_{o.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the target lives in the inline buffer (diagnostic; lets the
  /// tests pin down which captures are allocation-free).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  /// Largest inline-stored target size, for static_asserts at call sites.
  static constexpr std::size_t capacity() noexcept { return SboBytes; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the target from `src` storage into `dst` storage and
    /// destroy the source — one heap-sift swap step.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= SboBytes && alignof(T) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<T*>(p)))(); },
      [](void* dst, void* src) noexcept {
        T* s = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*s));
        s->~T();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<T*>(p))->~T(); },
      true,
  };

  template <typename T>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<T**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) T*(*std::launder(reinterpret_cast<T**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<T**>(p)); },
      false,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(void*) std::byte buf_[SboBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lamsdlc::core
