#pragma once
/// \file transport.hpp
/// \brief Datagram transports under the live runtime: loopback, UDP, and a
///        fault-injecting wrapper.
///
/// A `Transport` moves whole datagrams (envelope-encoded frames, see
/// `frame/envelope.hpp`) between this process and named peers.  It is
/// deliberately dumber than a `link::FrameChannel`: no notion of busy, rate
/// or propagation — those belong to `rt::NetChannel`, which paces frames
/// *onto* a transport.  Three implementations:
///
///  - `LoopbackTransport` — an in-process pair joined through the event
///    loop.  Delivery is asynchronous (scheduled, never reentrant) with an
///    optional fixed one-way delay, so protocol code sees the same
///    callback discipline it would over a real socket.  Works under both
///    `SimClock` and `WallClock` — this is the transport the sim-vs-wall
///    seam tests run on.
///
///  - `UdpTransport` — one bound IPv4/UDP socket, nonblocking, drained from
///    the event loop's fd watcher.  Peers are a small registry of remote
///    addresses; inbound datagrams from unregistered sources can be
///    auto-admitted (the daemon accepting new callers) or refused.
///
///  - `ImpairedTransport` — wraps any transport and sentences each outbound
///    datagram through a `phy::FaultInjector`: drops vanish, duplicates and
///    jitter are re-scheduled through the loop, corruption and truncation
///    damage real bytes (and are then caught by the frame FCS / envelope
///    length check at the far end, exercising the same recovery machinery
///    the simulator exercises).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lamsdlc/core/random.hpp"
#include "lamsdlc/core/time.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/rt/event_loop.hpp"

namespace lamsdlc::rt {

/// Index into a transport's peer registry.  Loopback has one implicit peer
/// (id 0); UDP ids are assigned by `add_peer` / auto-admission.
using PeerId = std::uint32_t;

class Transport {
 public:
  /// Inbound datagram: who sent it and its bytes (valid only for the call).
  using RecvHandler =
      std::function<void(PeerId, std::span<const std::uint8_t>)>;

  virtual ~Transport() = default;

  /// Queue one datagram to \p peer.  Returns false when the peer is unknown
  /// or the datagram exceeds `max_datagram()`; transports never buffer
  /// across calls (UDP's sendto either takes the whole datagram or fails).
  virtual bool send(PeerId peer, std::span<const std::uint8_t> datagram) = 0;

  virtual void set_recv_handler(RecvHandler h) = 0;

  /// Largest datagram `send` accepts.
  [[nodiscard]] virtual std::size_t max_datagram() const noexcept = 0;
};

/// In-process transport pair; see file comment.
class LoopbackTransport final : public Transport {
 public:
  /// Two joined endpoints on \p loop; what one sends, the other receives
  /// (as peer 0) after \p one_way.  Destroying either endpoint silently
  /// discards datagrams still in flight toward it.
  [[nodiscard]] static std::pair<std::unique_ptr<LoopbackTransport>,
                                 std::unique_ptr<LoopbackTransport>>
  make_pair(EventLoop& loop, Time one_way = {});

  ~LoopbackTransport() override;

  bool send(PeerId peer, std::span<const std::uint8_t> datagram) override;
  void set_recv_handler(RecvHandler h) override { on_recv_ = std::move(h); }
  [[nodiscard]] std::size_t max_datagram() const noexcept override {
    return 65507;  // mirror UDP so tests exercise the same bound
  }

  /// Datagrams delivered to this endpoint (after delay, before handler).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  /// Shared liveness record: each endpoint nulls its slot on destruction so
  /// in-flight deliveries scheduled on the loop can detect a dead receiver.
  struct Hub {
    LoopbackTransport* a = nullptr;
    LoopbackTransport* b = nullptr;
  };

  LoopbackTransport(EventLoop& loop, Time one_way,
                    std::shared_ptr<Hub> hub, bool is_a)
      : loop_{loop}, one_way_{one_way}, hub_{std::move(hub)}, is_a_{is_a} {}

  EventLoop& loop_;
  Time one_way_;
  std::shared_ptr<Hub> hub_;
  bool is_a_;
  RecvHandler on_recv_;
  std::uint64_t delivered_ = 0;
};

/// One bound UDP socket driven by a `WallClock` fd watch; see file comment.
class UdpTransport final : public Transport {
 public:
  struct Config {
    std::string bind_host = "127.0.0.1";
    std::uint16_t bind_port = 0;  ///< 0 = kernel-assigned ephemeral port.
    /// Admit datagrams from unregistered sources as new peers (the server
    /// side).  When false, such datagrams are counted and dropped.
    bool accept_unknown = true;
  };

  /// Binds and registers with \p loop; throws std::system_error on failure.
  UdpTransport(EventLoop& loop, const Config& cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Register \p host:\p port and return its id (idempotent per address).
  PeerId add_peer(const std::string& host, std::uint16_t port);

  bool send(PeerId peer, std::span<const std::uint8_t> datagram) override;
  void set_recv_handler(RecvHandler h) override { on_recv_ = std::move(h); }
  [[nodiscard]] std::size_t max_datagram() const noexcept override {
    return 65507;
  }

  /// Port actually bound (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t local_port() const noexcept { return port_; }
  [[nodiscard]] std::size_t peer_count() const noexcept;
  [[nodiscard]] std::uint64_t refused_unknown() const noexcept {
    return refused_unknown_;
  }

 private:
  struct Impl;  // keeps <netinet/in.h> out of this header
  void on_readable();

  EventLoop& loop_;
  std::unique_ptr<Impl> impl_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  bool accept_unknown_;
  RecvHandler on_recv_;
  std::uint64_t refused_unknown_ = 0;
};

/// Fault-injecting wrapper over any transport; see file comment.
class ImpairedTransport final : public Transport {
 public:
  /// \p injector decides fates; \p rng supplies the byte positions/values
  /// for corruption and truncation (the injector's own stream stays
  /// internal to it).  Both must outlive this wrapper; \p loop schedules
  /// delayed and duplicated copies.
  ImpairedTransport(EventLoop& loop, Transport& under,
                    phy::FaultInjector& injector, RandomStream rng);

  bool send(PeerId peer, std::span<const std::uint8_t> datagram) override;
  void set_recv_handler(RecvHandler h) override { under_.set_recv_handler(std::move(h)); }
  [[nodiscard]] std::size_t max_datagram() const noexcept override {
    return under_.max_datagram();
  }

  /// Outbound datagrams silently omitted by the injector.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Extra copies the injector manufactured.
  [[nodiscard]] std::uint64_t duplicated() const noexcept { return duplicated_; }
  /// Datagrams whose bytes were damaged (corrupt or truncate fate).
  [[nodiscard]] std::uint64_t damaged() const noexcept { return damaged_; }

 private:
  void dispatch(PeerId peer, std::vector<std::uint8_t> bytes, Time delay);

  EventLoop& loop_;
  Transport& under_;
  phy::FaultInjector& injector_;
  RandomStream rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t damaged_ = 0;
};

}  // namespace lamsdlc::rt
