#pragma once
/// \file event_loop.hpp
/// \brief One timer kernel, two drivers: simulated time and wall time.
///
/// Everything above the link layer in this codebase is written against the
/// discrete-event `Simulator` — endpoints schedule timers, the kernel
/// dispatches them in timestamp order, and *nothing* inspects real time.
/// That discipline is what makes the live runtime cheap: `rt::EventLoop`
/// keeps the Simulator as the one and only timer kernel and merely changes
/// who decides when its clock advances.
///
///  - `rt::SimClock` — the clock advances by fiat: `run()` is exactly
///    `Simulator::run()`, time jumps event-to-event.  Every existing test
///    and experiment is already running on this driver (bit-identical; the
///    class adds no logic, only the `EventLoop` shape).
///
///  - `rt::WallClock` — the clock advances because the wall does: `run()`
///    sleeps in `ppoll(2)` until the earliest pending timer is due (or a
///    watched fd turns readable), then calls `Simulator::run_until(now)`.
///    Timers fire at most one scheduler quantum late; the protocol code
///    cannot tell it is not being simulated.
///
/// The fd-watching surface exists only for the wall driver — a simulated
/// run has no sockets.  `SimClock::watch_fd` throws, loudly, because code
/// that needs an fd under simulation is a design error, not a fallback.
///
/// Single-threaded by construction: handlers and timer callbacks run on the
/// loop thread, never concurrently.  `stop()` is safe from any callback.

#include <cstdint>
#include <functional>
#include <vector>

#include "lamsdlc/core/simulator.hpp"
#include "lamsdlc/core/time.hpp"

namespace lamsdlc::rt {

/// The driver interface: a Simulator plus a policy for advancing its clock.
class EventLoop {
 public:
  virtual ~EventLoop() = default;

  /// The timer kernel.  Schedule with `sim().schedule_in(...)` exactly as
  /// simulation code does; under `WallClock`, `sim().now()` tracks the wall.
  [[nodiscard]] virtual Simulator& sim() noexcept = 0;

  /// Current loop time (simulated or wall-anchored, per driver).
  [[nodiscard]] Time now() noexcept { return sim().now(); }

  /// Dispatch until out of work or `stop()`.  "Out of work" means an empty
  /// timer queue — and, for `WallClock`, no watched fds either.
  virtual void run() = 0;

  /// Halt `run()` after the current callback returns.
  virtual void stop() = 0;

  /// Invoke \p on_readable from `run()` whenever \p fd is readable (or in
  /// error/hup — the handler must read and discover that itself).  One
  /// handler per fd; re-watching replaces it.
  virtual void watch_fd(int fd, std::function<void()> on_readable) = 0;
  virtual void unwatch_fd(int fd) = 0;
};

/// Simulated-time driver: a thin `EventLoop` coat over the existing kernel.
class SimClock final : public EventLoop {
 public:
  SimClock() = default;
  /// Adapt an externally owned Simulator (e.g. a scenario's existing one).
  explicit SimClock(Simulator& external) noexcept : ext_{&external} {}

  [[nodiscard]] Simulator& sim() noexcept override {
    return ext_ != nullptr ? *ext_ : own_;
  }
  void run() override { sim().run(); }
  void stop() override { sim().stop(); }
  [[noreturn]] void watch_fd(int, std::function<void()>) override;
  void unwatch_fd(int) override {}

 private:
  Simulator own_;
  Simulator* ext_ = nullptr;
};

/// Wall-time driver: `ppoll(2)` until the next timer deadline or fd event,
/// then advance the kernel to the current wall instant.  Time zero is the
/// construction instant (CLOCK_MONOTONIC), so `Time` values stay small and
/// the int64-picosecond range (~106 days) is never a concern.
class WallClock final : public EventLoop {
 public:
  WallClock();

  [[nodiscard]] Simulator& sim() noexcept override { return sim_; }
  void run() override;
  void stop() override;
  void watch_fd(int fd, std::function<void()> on_readable) override;
  void unwatch_fd(int fd) override;

  /// Wall instant on the loop's timeline (monotonic, zero at construction).
  /// Unlike `now()`, this does not wait for the kernel to be advanced.
  [[nodiscard]] Time wall_now() const noexcept;

  /// Observe scheduler lateness: before each kernel advance that will fire
  /// at least one due timer, \p fn receives how far past its deadline the
  /// earliest timer is, in nanoseconds (>= 0).  A healthy loop reports a few
  /// µs (one ppoll wakeup); sustained large values mean a handler is
  /// hogging the loop thread.  One observer; pass nullptr to clear.  Kept a
  /// plain callback so the loop stays free of `obs::` — the daemon adapts
  /// it into a registry histogram.
  void set_tick_observer(std::function<void(std::int64_t lateness_ns)> fn) {
    tick_observer_ = std::move(fn);
  }

 private:
  struct Watch {
    int fd;
    std::function<void()> on_readable;
  };

  Simulator sim_;
  std::vector<Watch> watches_;
  std::function<void(std::int64_t)> tick_observer_;
  std::int64_t t0_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace lamsdlc::rt
