#pragma once
/// \file daemon.hpp
/// \brief `lamsdlcd` — LAMS-DLC sessions over real UDP, with a local
///        byte-stream bridge for clients.
///
/// One daemon owns one UDP socket (the "link"), a `SessionMux` running any
/// number of concurrent DLC sessions over it, and optionally:
///
///  - a **client bridge**: a local TCP listener where one connection = one
///    outbound stream (modem discipline: write bytes, half-close to finish,
///    read back a single `OK <n>` / `ERR <why>` status line once the DLC
///    session has closed cleanly or failed);
///  - a **delivery directory**: each inbound stream is written to
///    `stream-p<peer>-s<sid>.part`, renamed to `.bin` when its session
///    closes with every byte accounted for (`.err` otherwise) — rename-on-
///    complete so a consumer never reads a half-delivered file;
///  - an **impaired link**: outbound datagrams routed through a
///    `phy::FaultInjector` (drops, duplicates, jitter, real byte damage),
///    turning localhost into the hostile channel the protocol was built
///    for;
///  - **captures**: a per-session `obs::EventBus` feeding one `.ldlcap`
///    file per session id, readable by `lamsdlc_cli inspect` / `trace`.
///    In `self_peer` mode both endpoints of a session live in this process
///    and share the session's bus, so the capture holds the full
///    admitted → sent → delivered span tree and `trace` reconstructs
///    complete packet lifecycles over a real kernel round trip;
///  - a **status endpoint**: a local TCP introspection port answering
///    `status` (one-line JSON: daemon vitals, per-session window/buffer/
///    reject/resync state, the full registry), `metrics` (Prometheus text
///    exposition), `samples` (latest sampler tick, for `watch` rates) and
///    `text` (rendered table) — one request line per connection.  Telemetry
///    itself (per-session metrics collectors into a shared registry, plus
///    an always-on flight recorder that auto-dumps a `.ldlcap` black box
///    when an anomaly trigger fires) is on by default and independent of
///    whether the port is open.
///
/// The daemon is single-threaded on a `WallClock` event loop; every socket
/// is nonblocking and fd-driven.  `run()` blocks until `stop()`, SIGTERM
/// handling by the caller, or — when `exit_after_streams` is set — that
/// many streams (either direction) have finished.

#include <cstdint>
#include <memory>
#include <string>

#include "lamsdlc/core/time.hpp"
#include "lamsdlc/lams/session.hpp"
#include "lamsdlc/obs/metrics.hpp"
#include "lamsdlc/phy/fault_injector.hpp"
#include "lamsdlc/rt/event_loop.hpp"
#include "lamsdlc/rt/session_mux.hpp"
#include "lamsdlc/rt/transport.hpp"

namespace lamsdlc::rt {

struct DaemonConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t udp_port = 0;  ///< 0 = ephemeral (printed/queried).

  /// Remote daemon; empty host = serve-only (no outbound streams).
  std::string peer_host;
  std::uint16_t peer_port = 0;
  /// Peer with our own socket: datagrams make a real kernel round trip but
  /// both session endpoints live here (single-process live mode; gives
  /// complete per-session captures).
  bool self_peer = false;

  bool bridge = false;            ///< Open the local client bridge.
  std::uint16_t bridge_port = 0;  ///< Requested port; 0 = ephemeral.
  std::string deliver_dir;        ///< Empty = discard inbound payload bytes.

  /// First outbound session id; 0 = derive from the pid so a restarted
  /// daemon never reuses its predecessor's ids against a live peer.
  std::uint32_t session_base = 0;
  std::uint32_t exit_after_streams = 0;  ///< 0 = run until stopped.

  double data_rate_bps = 300e6;
  Time max_one_way = Time::milliseconds(5);
  std::uint32_t chunk_bytes = 1024;
  /// Per-stream sending-buffer bound, in packets (SessionMux::Config).
  /// Caps daemon memory per bridge client: a fast client writing into a
  /// slow/impaired link is paused at this depth and resumed event-driven
  /// when checkpoints release frames.
  std::size_t stream_buffer_packets = 256;
  lams::SessionConfig session;

  bool impair = false;  ///< Route outbound datagrams through the injector.
  phy::FaultInjector::Config fault;
  std::uint64_t fault_seed = 1;

  std::string capture_prefix;  ///< Empty = no captures.
  bool verbose = false;        ///< Progress lines on stderr.

  /// \name Live telemetry (docs/OBSERVABILITY.md "Live telemetry")
  /// @{

  /// Attach per-session telemetry (metrics collector into the shared
  /// registry + flight recorder).  Off is the bench A/B control: session
  /// buses stay subscriber-free and the frame path pays one dead branch.
  bool telemetry = true;
  /// Open the local TCP introspection port (`lamsdlc_cli status/watch`).
  bool status = false;
  std::uint16_t status_port = 0;  ///< Requested port; 0 = ephemeral.
  /// Registry sampling period for the `samples` endpoint verb (`watch`).
  /// Non-positive disables the sampler.
  Time status_sample_period = Time::milliseconds(500);
  /// Flight-recorder ring capacity per session, in events; 0 disables the
  /// recorder (telemetry then only feeds the registry).
  std::size_t recorder_events = 4096;
  /// Directory for anomaly auto-dumps, written as
  /// `<dir>/blackbox-s<sid>-<n>.ldlcap`.  Empty = current directory.
  std::string recorder_dir;
  /// @}
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind sockets and wire everything; throws std::system_error on failure.
  /// Separate from `run()` so callers can learn the ephemeral ports first.
  void start();

  /// Event loop; blocks (see file comment for exit conditions).
  void run();
  void stop();

  [[nodiscard]] std::uint16_t udp_port() const noexcept;
  [[nodiscard]] std::uint16_t bridge_port() const noexcept;
  /// Introspection port (0 when `DaemonConfig::status` is off).
  [[nodiscard]] std::uint16_t status_port() const noexcept;

  /// The shared metrics registry every session's collector feeds.
  [[nodiscard]] const obs::Registry& registry() const noexcept;

  /// The status document the endpoint serves, for in-process callers
  /// (tests assert on it without opening a socket).
  [[nodiscard]] std::string status_json();

  /// Streams finished, either direction (clean or not).
  [[nodiscard]] std::uint32_t streams_completed() const noexcept;
  /// Of those, ended unclean (session failure or reassembly hole).
  [[nodiscard]] std::uint32_t streams_failed() const noexcept;

  [[nodiscard]] SessionMux& mux();
  [[nodiscard]] EventLoop& loop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lamsdlc::rt
