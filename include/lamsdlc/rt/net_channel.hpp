#pragma once
/// \file net_channel.hpp
/// \brief `link::FrameChannel` backend over a datagram transport.
///
/// The LAMS endpoints pace themselves against the channel's serializer:
/// they queue one frame, wait for the idle callback, queue the next.  Over
/// a real socket there is no serializer — `sendto` returns immediately — so
/// `NetChannel` *models* one: each frame departs at once (wrapped in an
/// envelope, see frame/envelope.hpp) but the channel stays `busy()` for the
/// frame's `tx_time` at the configured data rate.  That keeps the sender's
/// offered load at the link rate the protocol was tuned for instead of
/// blasting datagrams as fast as the CPU can encode them.
///
/// Timing contract (see `link::FrameChannel`): `propagation_at` returns the
/// *configured upper bound* on one-way delay, not a measurement.  Together
/// with the mux's checkpoint age normalization this keeps the sender's
/// provable-non-delivery release rule valid without any clock agreement
/// between the two machines (docs/RUNTIME.md).

#include <cstdint>
#include <deque>
#include <functional>

#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/envelope.hpp"
#include "lamsdlc/link/link.hpp"
#include "lamsdlc/rt/event_loop.hpp"
#include "lamsdlc/rt/transport.hpp"

namespace lamsdlc::rt {

class NetChannel final : public link::FrameChannel {
 public:
  struct Config {
    double data_rate_bps = 300e6;  ///< Pacing rate (serializer model).
    /// Upper bound on one-way network delay; also the age the mux assigns
    /// to arriving checkpoints.  Must exceed the real path's worst case or
    /// the release rule's proof obligation breaks (pick generously; only
    /// release latency suffers).
    Time max_one_way = Time::milliseconds(5);
    std::uint32_t session_id = 0;
    PeerId peer = 0;
    /// Direction bit stamped on every envelope this channel emits.
    bool to_receiver = true;
  };

  NetChannel(EventLoop& loop, Transport& transport, Config cfg)
      : loop_{loop}, transport_{transport}, cfg_{cfg} {}
  ~NetChannel() override;

  /// \name link::FrameChannel
  /// @{
  void send(frame::Frame f) override;
  void set_idle_callback(std::function<void()> cb) override {
    idle_cb_ = std::move(cb);
  }
  [[nodiscard]] bool busy() const override { return busy_; }
  [[nodiscard]] bool up() const override { return true; }
  [[nodiscard]] Time tx_time(const frame::Frame& f) const override;
  [[nodiscard]] Time propagation_at(Time) const override {
    return cfg_.max_one_way;
  }
  /// @}

  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t send_failures() const noexcept {
    return send_failures_;
  }

 private:
  void transmit(frame::Frame f);
  void serializer_done();

  EventLoop& loop_;
  Transport& transport_;
  Config cfg_;
  std::function<void()> idle_cb_;
  std::deque<frame::Frame> queue_;
  std::vector<std::uint8_t> frame_buf_;  ///< Reused codec scratch.
  std::vector<std::uint8_t> env_buf_;    ///< Reused envelope scratch.
  bool busy_ = false;
  EventId serializer_timer_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace lamsdlc::rt
