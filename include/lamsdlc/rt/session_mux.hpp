#pragma once
/// \file session_mux.hpp
/// \brief Many concurrent LAMS-DLC sessions over one datagram transport.
///
/// A `SessionMux` is the live runtime's switchboard.  Each *stream* is one
/// full LAMS-DLC session — INIT/INIT-ACK establishment, checkpointed ARQ,
/// RESYNC self-stabilization, CLOSE/CLOSE-ACK teardown, all the PR-6
/// machinery unchanged — multiplexed over a shared socket by the envelope's
/// (session_id, direction) key:
///
///  - **outbound** streams: this end constructs a `SessionSender` plus a
///    data-direction `NetChannel`; application bytes are segmented into
///    `chunk_bytes` packets whose `PacketId` is `(session_id << 32) | index`
///    — globally unique (the protocol's requirement) *and* self-describing
///    (the index is the reassembly position, so out-of-order delivery at
///    the far end needs no extra sequencing header).
///
///  - **inbound** streams: the first datagram bearing an unknown
///    (peer, session_id) in the data direction materializes a
///    `SessionReceiver` (the INIT handshake then runs normally; datagrams
///    that precede a lost INIT are handled by the session layer's retry).
///    Delivered packets are re-sequenced by chunk index and handed up as a
///    contiguous byte stream; duplicates (a RESYNC re-delivery) are
///    discarded here, exactly where the paper's Section 2.3 puts the
///    responsibility.
///
/// **Checkpoint age normalization.**  A checkpoint's `generated_at` is
/// stamped by the *peer's* clock, which shares nothing with ours.  The mux
/// rewrites it on arrival to `now - max_one_way` — the oldest instant the
/// checkpoint could have been generated at, given the configured delay
/// bound.  The release rule then reasons entirely in local time and stays
/// conservative: it can only *underestimate* how much the checkpoint
/// proves, never overestimate (docs/RUNTIME.md derives this).
///
/// **Peer restart.**  A restarted initiator re-INITs at epoch 1.  If the
/// old session had closed, the stale high-epoch receiver state is torn down
/// and rebuilt fresh; if it was mid-flight, the epoch rules (PR 6) protect
/// the numbering and the restarted peer's fresh session id takes over.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "lamsdlc/frame/codec.hpp"
#include "lamsdlc/frame/envelope.hpp"
#include "lamsdlc/lams/session.hpp"
#include "lamsdlc/obs/bus.hpp"
#include "lamsdlc/rt/event_loop.hpp"
#include "lamsdlc/rt/net_channel.hpp"
#include "lamsdlc/rt/transport.hpp"
#include "lamsdlc/sim/dlc.hpp"

namespace lamsdlc::rt {

class SessionMux {
 public:
  struct Config {
    lams::SessionConfig session;
    double data_rate_bps = 300e6;
    /// Upper bound on one-way network delay (see NetChannel::Config).
    Time max_one_way = Time::milliseconds(5);
    /// Stream segmentation: bytes per packet (and per I-frame payload).
    std::uint32_t chunk_bytes = 1024;
    /// Outbound per-stream sending-buffer capacity, in packets.  Applied as
    /// the session's `send_buffer_capacity` when the caller left that at
    /// its unlimited default — a mux fed by a socket bridge must bound the
    /// buffer or a fast client writing into a slow link grows memory
    /// without limit.  0 keeps whatever the session config says.
    std::size_t stream_buffer_packets = 256;
    /// Limits for decoding inbound frames; seq_modulus defaults to the
    /// session's numbering modulus when left 0.
    frame::DecodeLimits decode_limits;
    /// Admit inbound streams (the serving side).  When false, datagrams
    /// for unknown sessions are counted in `unroutable()` and dropped.
    bool accept_inbound = true;
    /// Optional per-session event-bus factory (`sender_side` true for the
    /// outbound half).  Returned buses must outlive the mux; return null
    /// for "don't observe this one".
    std::function<obs::EventBus*(std::uint32_t session_id, bool sender_side)>
        bus_for;
  };

  SessionMux(EventLoop& loop, Transport& transport, Config cfg);
  ~SessionMux();

  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  /// \name Outbound streams
  /// @{

  /// Create a stream to \p peer and start the INIT handshake.  \p session_id
  /// must be unused among this mux's outbound streams.
  void open_stream(PeerId peer, std::uint32_t session_id);

  /// Segment \p bytes into packets and submit them.  Respect
  /// `stream_accepting` for backpressure: pause the producer while it is
  /// false and resume on the stream-resume handler (writes submitted anyway
  /// are still queued, but `stream_buffer_packets` bounds how deep the
  /// session lets the buffer grow before `stream_accepting` trips).
  bool stream_write(std::uint32_t session_id,
                    std::span<const std::uint8_t> bytes);

  /// Drain, then CLOSE/CLOSE-ACK.  State callbacks report the outcome.
  void stream_close(std::uint32_t session_id);

  /// Discard a finished (closed/failed) stream's state.
  void drop_stream(std::uint32_t session_id);

  [[nodiscard]] bool stream_accepting(std::uint32_t session_id) const;

  using StreamStateHandler =
      std::function<void(std::uint32_t session_id,
                         lams::SessionSender::State)>;
  void set_stream_state_handler(StreamStateHandler h) {
    on_stream_state_ = std::move(h);
  }

  /// Fires when a stream that stopped accepting starts accepting again
  /// (checkpoint released frames, or the handshake completed): the signal
  /// for a paused producer to resume writing.  May fire from inside
  /// datagram processing — defer any heavy reaction to the event loop.
  using StreamResumeHandler = std::function<void(std::uint32_t session_id)>;
  void set_stream_resume_handler(StreamResumeHandler h) {
    on_stream_resume_ = std::move(h);
  }

  /// Highest sending-buffer depth ever observed on the stream right after a
  /// `stream_write` (packets; 0 for unknown streams).  The backpressure
  /// regression test pins this against `stream_buffer_packets`.
  [[nodiscard]] std::size_t stream_buffer_high_water(
      std::uint32_t session_id) const;

  /// The stream's session manager (null when unknown) — state, epoch,
  /// counters for tests and status output.
  [[nodiscard]] lams::SessionSender* stream(std::uint32_t session_id);
  [[nodiscard]] const sim::DlcStats* stream_stats(
      std::uint32_t session_id) const;
  /// @}

  /// \name Inbound streams
  /// @{

  /// Contiguous re-sequenced bytes of an inbound stream.  Called as data
  /// becomes deliverable; spans are valid only for the call.
  using InboundDataHandler = std::function<void(
      PeerId, std::uint32_t session_id, std::span<const std::uint8_t>)>;
  void set_inbound_data_handler(InboundDataHandler h) {
    on_inbound_data_ = std::move(h);
  }

  /// An inbound stream ended: `clean` means CLOSE arrived with every byte
  /// accounted for (no reassembly holes).
  using InboundEndHandler =
      std::function<void(PeerId, std::uint32_t session_id, bool clean)>;
  void set_inbound_end_handler(InboundEndHandler h) {
    on_inbound_end_ = std::move(h);
  }

  [[nodiscard]] const sim::DlcStats* inbound_stats(
      PeerId peer, std::uint32_t session_id) const;
  /// @}

  /// \name Status snapshots
  ///
  /// Everything the introspection endpoint publishes about a stream, read
  /// in one pass so a reported line is internally consistent (the daemon is
  /// single-threaded; the snapshot cannot race the protocol).
  /// @{

  /// One outbound stream as seen right now.
  struct OutboundStatus {
    std::uint32_t session_id = 0;
    PeerId peer = 0;
    lams::SessionSender::State state = lams::SessionSender::State::kIdle;
    std::uint32_t epoch = 0;
    std::uint32_t resync_attempts = 0;  ///< Session-layer RESYNC entries.
    lams::LamsSender::Mode mode = lams::LamsSender::Mode::kNormal;
    std::size_t outstanding_frames = 0;  ///< Unresolved I-frames in flight.
    std::size_t buffer_depth = 0;        ///< Sending buffer, packets.
    std::size_t buffer_high_water = 0;   ///< Peak buffer depth ever seen.
    double rate_factor = 1.0;            ///< Stop-Go pacing multiplier.
    std::uint32_t next_chunk = 0;        ///< Stream bytes / chunk_bytes.
    std::uint64_t packets_submitted = 0;
    std::uint64_t packets_resolved = 0;
    std::uint64_t iframe_tx = 0;
    std::uint64_t iframe_retx = 0;
    std::uint64_t control_tx = 0;
    std::uint64_t request_naks = 0;
    std::uint64_t audit_trips = 0;
    std::uint64_t resyncs_completed = 0;
  };

  /// One inbound stream as seen right now.
  struct InboundStatus {
    PeerId peer = 0;
    std::uint32_t session_id = 0;
    bool in_session = false;
    bool ended = false;
    std::uint32_t epoch = 0;
    std::uint32_t inits_accepted = 0;
    std::size_t held_packets = 0;   ///< Parked out-of-order chunks.
    std::uint32_t next_index = 0;   ///< Chunks handed up contiguously.
    std::uint64_t packets_delivered = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t checkpoints_sent = 0;
    std::uint64_t naks_generated = 0;
    std::uint64_t iframe_corrupted_rx = 0;
    std::uint64_t control_corrupted_rx = 0;
  };

  /// Snapshot every outbound stream, sorted by session id.  Non-const only
  /// because `SessionSender::inner()` is.
  [[nodiscard]] std::vector<OutboundStatus> outbound_status();

  /// Snapshot every inbound stream, sorted by (peer, session id).
  /// Non-const for the same `inner()` reason.
  [[nodiscard]] std::vector<InboundStatus> inbound_status();
  /// @}

  /// \name Counters
  /// @{
  [[nodiscard]] std::uint64_t undecodable() const noexcept {
    return undecodable_;
  }
  [[nodiscard]] std::uint64_t unroutable() const noexcept {
    return unroutable_;
  }
  /// Per-reason breakdown of `undecodable()`: datagrams the envelope layer
  /// refused (length mismatches, bad magic, reserved flags, ...).
  [[nodiscard]] const frame::EnvelopeRejectCounts& envelope_rejects()
      const noexcept {
    return envelope_rejects_;
  }
  /// Per-reason breakdown of `undecodable()`: envelopes whose inner frame
  /// the codec refused (bad FCS, length overruns, ...).
  [[nodiscard]] const frame::DecodeRejectCounts& frame_rejects()
      const noexcept {
    return frame_rejects_;
  }
  [[nodiscard]] std::size_t outbound_count() const noexcept {
    return tx_.size();
  }
  [[nodiscard]] std::size_t inbound_count() const noexcept {
    return rx_.size();
  }
  /// @}

 private:
  struct TxSession;
  struct RxSession;

  void on_datagram(PeerId peer, std::span<const std::uint8_t> bytes);
  void route_to_receiver(PeerId peer, std::uint32_t sid, frame::Frame f,
                         frame::PacketId packet_id, bool is_data);
  void route_to_sender(std::uint32_t sid, frame::Frame f);
  void on_rx_packet(RxSession& rx, const sim::Packet& p);
  void flush_rx(RxSession& rx);
  void end_rx(RxSession& rx, bool in_session_now);

  [[nodiscard]] static std::uint64_t rx_key(PeerId peer,
                                            std::uint32_t sid) noexcept {
    return (static_cast<std::uint64_t>(peer) << 32) | sid;
  }

  EventLoop& loop_;
  Transport& transport_;
  Config cfg_;
  std::unordered_map<std::uint32_t, std::unique_ptr<TxSession>> tx_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RxSession>> rx_;
  StreamStateHandler on_stream_state_;
  StreamResumeHandler on_stream_resume_;
  InboundDataHandler on_inbound_data_;
  InboundEndHandler on_inbound_end_;
  std::uint64_t undecodable_ = 0;
  std::uint64_t unroutable_ = 0;
  frame::EnvelopeRejectCounts envelope_rejects_;
  frame::DecodeRejectCounts frame_rejects_;
};

}  // namespace lamsdlc::rt
