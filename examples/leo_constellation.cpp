/// \file leo_constellation.cpp
/// \brief Store-and-forward file transfer across a moving LEO pair.
///
/// The scenario the paper's introduction motivates: two low-altitude
/// satellites acquire each other, hold a laser link for one visibility
/// window, and must move as much segmented message traffic as possible
/// before the geometry breaks the link.  The example:
///   - computes the visibility window and range profile from orbit geometry;
///   - drives LAMS-DLC over the time-varying link with the remaining link
///     lifetime as the recovery deadline;
///   - segments "files" into frames at the source and reassembles them at
///     the destination with the workload resequencer (the responsibility
///     relaxing the in-sequence constraint moves to the endpoint);
///   - reports per-file completion and link utilisation.
///
///   $ ./leo_constellation

#include <cstdio>
#include <memory>

#include "lamsdlc/orbit/orbit.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/message.hpp"
#include "lamsdlc/workload/sources.hpp"

int main() {
  using namespace lamsdlc;
  using namespace lamsdlc::literals;

  // --- Orbit geometry: two satellites at 1000 km in crossing planes. ---
  orbit::CircularOrbit sat_a;
  sat_a.altitude_m = 1.0e6;
  orbit::CircularOrbit sat_b = sat_a;
  sat_b.phase_rad = 0.35;
  sat_b.inclination_rad = 0.30;
  auto pair = std::make_shared<orbit::SatellitePair>(sat_a, sat_b, 8.0e6);

  const auto windows =
      orbit::find_windows(*pair, Time::seconds_int(7200), Time::seconds_int(2));
  if (windows.empty()) {
    std::printf("no visibility window in the first two hours\n");
    return 1;
  }
  const auto w = windows.front();
  const auto ranges = orbit::range_stats(*pair, w, Time::seconds_int(2));
  std::printf("visibility window: %.1f min, range %.0f-%.0f km, "
              "RTT %.1f-%.1f ms\n",
              w.duration().sec() / 60.0, ranges.r_min_m / 1e3,
              ranges.r_max_m / 1e3, 2e3 * ranges.r_min_m / orbit::kLightSpeedMS,
              2e3 * ranges.r_max_m / orbit::kLightSpeedMS);

  // --- Protocol over the moving link. ---
  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = 300e6;  // the paper's lower laser rate
  cfg.frame_bytes = 2048;
  // Simulation time 0 corresponds to window start.
  cfg.propagation = [pair, start = w.start](Time t) {
    return pair->propagation_delay(start + t);
  };
  cfg.lams.checkpoint_interval = 5_ms;
  cfg.lams.cumulation_depth = 4;
  cfg.lams.max_rtt = ranges.round_trip() + ranges.min_alpha() + 5_ms;
  cfg.lams.link_deadline = w.duration();  // recoveries must fit the window
  cfg.forward_error.kind = sim::ErrorConfig::Kind::kGilbertElliott;
  cfg.forward_error.gilbert.good_ber = 1e-7;  // post-FEC residual
  cfg.forward_error.gilbert.bad_ber = 5e-3;   // mispointing episodes
  cfg.forward_error.gilbert.mean_good = 200_ms;
  cfg.forward_error.gilbert.mean_bad = 4_ms;
  cfg.reverse_error = cfg.forward_error;

  sim::Scenario s{cfg};

  // --- Segmented file workload with destination-side reassembly. ---
  workload::MessageRegistry registry;
  std::uint64_t files_done = 0;
  Time last_done{};
  workload::Resequencer reseq{
      registry,
      [&](std::uint64_t, Time at) {
        ++files_done;
        last_done = at;
      },
      &s.tracker()};
  s.set_listener(&reseq);

  workload::MessageSource files{s.simulator(), s.sender(), s.tracker(),
                                s.ids(), registry};
  constexpr std::uint32_t kSegments = 512;  // 1 MiB files in 2 KiB frames
  constexpr int kFiles = 40;
  s.simulator().schedule_at(Time{}, [&] {
    for (int i = 0; i < kFiles; ++i) files.send_message(kSegments, 2048);
  });

  const bool done = s.run_to_completion(w.duration());
  const auto r = s.report();

  std::printf("\nfiles completed:      %llu / %d (in %.2f s of a %.1f s "
              "window)\n",
              static_cast<unsigned long long>(files_done), kFiles,
              last_done.sec(), w.duration().sec());
  std::printf("frames lost/dup:      %llu / %llu\n",
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.duplicates));
  std::printf("retransmission rate:  %.2f%%\n",
              100.0 * static_cast<double>(r.iframe_retx) /
                  static_cast<double>(r.iframe_tx));
  std::printf("link efficiency:      %.3f\n", r.efficiency);
  std::printf("reassembly backlog:   %zu frames peak at destination\n",
              reseq.pending_packets());
  return done && r.lost == 0 ? 0 : 1;
}
