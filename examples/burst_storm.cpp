/// \file burst_storm.cpp
/// \brief Three protocols ride out the same mispointing storm.
///
/// Beam-mispointing bursts are the LAMS channel's signature failure mode
/// (Section 2.1).  This example runs LAMS-DLC, SR-HDLC and GBN-HDLC over an
/// identical Gilbert-Elliott storm (same seed, same burst schedule) and
/// prints a side-by-side comparison — the qualitative content of the
/// paper's Section 3.3 "Advantages" discussion.
///
///   $ ./burst_storm

#include <cstdio>

#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace {

using namespace lamsdlc;
using namespace lamsdlc::literals;

struct Outcome {
  sim::ScenarioReport report;
  std::uint64_t recovery_events = 0;
  const char* recovery_kind = "";
};

Outcome ride_the_storm(sim::Protocol proto) {
  sim::ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.data_rate_bps = 100e6;
  cfg.prop_delay = 8_ms;
  cfg.frame_bytes = 1024;
  cfg.seed = 7;  // identical storm for every protocol
  cfg.lams.checkpoint_interval = 5_ms;
  cfg.lams.cumulation_depth = 6;  // 30 ms NAK window > mean burst
  cfg.lams.max_rtt = 20_ms;
  cfg.hdlc.window = 96;
  cfg.hdlc.modulus = 256;
  cfg.hdlc.timeout = 60_ms;
  cfg.forward_error.kind = sim::ErrorConfig::Kind::kGilbertElliott;
  cfg.forward_error.gilbert.good_ber = 1e-7;
  cfg.forward_error.gilbert.bad_ber = 1e-2;
  cfg.forward_error.gilbert.mean_good = 40_ms;
  cfg.forward_error.gilbert.mean_bad = 6_ms;
  cfg.reverse_error = cfg.forward_error;

  sim::Scenario s{cfg};
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         8000, cfg.frame_bytes);
  s.run_to_completion(Time::seconds_int(600));

  Outcome o;
  o.report = s.report();
  if (auto* lams = s.lams_sender()) {
    o.recovery_events = lams->request_naks_sent();
    o.recovery_kind = "enforced recoveries";
  } else if (auto* sr = s.sr_sender()) {
    o.recovery_events = sr->timeouts();
    o.recovery_kind = "t_out expiries";
  } else if (auto* gbn = s.gbn_sender()) {
    o.recovery_events = gbn->timeouts();
    o.recovery_kind = "t_out expiries";
  }
  return o;
}

void print(const char* name, const Outcome& o) {
  const auto& r = o.report;
  std::printf("%-10s eff=%.3f  retx=%5.1f%%  lost=%llu dup=%llu  "
              "recv-buf peak=%4.0f  %llu %s\n",
              name, r.efficiency,
              100.0 * static_cast<double>(r.iframe_retx) /
                  static_cast<double>(r.iframe_tx),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.duplicates),
              r.peak_recv_buffer,
              static_cast<unsigned long long>(o.recovery_events),
              o.recovery_kind);
}

}  // namespace

int main() {
  std::printf("mispointing storm: 6 ms bursts at 1e-2 BER every ~40 ms, "
              "8000 frames of 1 KiB, RTT 16 ms\n\n");
  const auto lams = ride_the_storm(sim::Protocol::kLams);
  const auto sr = ride_the_storm(sim::Protocol::kSrHdlc);
  const auto gbn = ride_the_storm(sim::Protocol::kGbnHdlc);
  print("LAMS-DLC", lams);
  print("SR-HDLC", sr);
  print("GBN-HDLC", gbn);

  std::printf(
      "\nReading the row tells the paper's story: cumulative NAKs absorb\n"
      "whole bursts without stalling (no timeouts, receiver buffer stays\n"
      "near zero because out-of-order frames are forwarded immediately),\n"
      "while both HDLC variants burn round trips on timeout recovery and\n"
      "SR-HDLC additionally parks frames for resequencing.\n");
  return lams.report.lost == 0 ? 0 : 1;
}
