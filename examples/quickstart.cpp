/// \file quickstart.cpp
/// \brief Smallest complete use of the public API.
///
/// Builds a LAMS-DLC link (100 Mbps, 5 ms one way, 10% frame loss), pushes
/// a thousand packets through it, and prints the delivery report — showing
/// the protocol's datagram-with-zero-loss contract in a dozen lines.
///
///   $ ./quickstart

#include <cstdio>

#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

int main() {
  using namespace lamsdlc;
  using namespace lamsdlc::literals;

  // 1. Describe the link and the protocol.
  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;        // or kSrHdlc / kGbnHdlc
  cfg.data_rate_bps = 100e6;                  // laser link rate
  cfg.prop_delay = 5_ms;                      // ~1500 km one way
  cfg.frame_bytes = 1024;
  cfg.lams.checkpoint_interval = 5_ms;        // W_cp
  cfg.lams.cumulation_depth = 4;              // C_depth
  cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
  cfg.forward_error.p_frame = 0.10;           // P_F: every tenth frame dies

  // 2. Wire everything (simulator, full-duplex link, sender, receiver).
  sim::Scenario s{cfg};

  // 3. Offer traffic and run until the protocol resolves every packet.
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         /*count=*/1000, cfg.frame_bytes);
  const bool done = s.run_to_completion(/*horizon=*/Time::seconds_int(60));

  // 4. Read the report.
  const auto r = s.report();
  std::printf("completed:            %s\n", done ? "yes" : "no");
  std::printf("packets submitted:    %llu\n",
              static_cast<unsigned long long>(r.submitted));
  std::printf("delivered (unique):   %llu\n",
              static_cast<unsigned long long>(r.unique_delivered));
  std::printf("lost / duplicated:    %llu / %llu   <- the zero-loss contract\n",
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.duplicates));
  std::printf("I-frame transmissions:%llu (%.0f%% retransmissions)\n",
              static_cast<unsigned long long>(r.iframe_tx),
              100.0 * static_cast<double>(r.iframe_retx) /
                  static_cast<double>(r.iframe_tx));
  std::printf("throughput efficiency:%.3f\n", r.efficiency);
  std::printf("mean holding time:    %.2f ms (paper's H_frame)\n",
              1e3 * r.mean_holding_s);
  std::printf("mean sending buffer:  %.1f frames (paper's B_LAMS)\n",
              r.mean_send_buffer);
  return done && r.lost == 0 ? 0 : 1;
}
