/// \file flow_control.cpp
/// \brief Stop-Go flow control and buffer control, watched live.
///
/// Section 3.4 distinguishes two mechanisms that are often conflated:
///  - *flow control* protects the receiver: when its processing backlog
///    nears overflow it sets the Stop-Go bit in checkpoints and the sender
///    multiplicatively decreases its rate (additively recovering on Go);
///  - *buffer control* protects the sender: the checkpoint cadence bounds
///    the holding time, so the sending buffer has a transparent size that
///    shrinks with the checkpoint interval.
///
/// This example runs a fast sender against a receiver whose processing
/// slows down mid-run (a satellite busy with other links), and prints a
/// timeline of the rate factor, the receiver backlog, and the sending
/// buffer — Stop-Go kicking in, throttling, and releasing.
///
///   $ ./flow_control

#include <cstdio>

#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

int main() {
  using namespace lamsdlc;
  using namespace lamsdlc::literals;

  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = 100e6;
  cfg.prop_delay = 5_ms;
  cfg.frame_bytes = 1024;
  cfg.lams.checkpoint_interval = 5_ms;
  cfg.lams.cumulation_depth = 4;
  cfg.lams.max_rtt = 15_ms;
  // The paper's transparent receive size is t_proc/t_f frames (Section 4);
  // with t_proc = 2 ms against 83 us serialization the backlog runs ~24
  // frames at full rate, so a watermark of 16 forces Stop-Go to hold the
  // sender near 2/3 rate — visible as an oscillating rate factor below.
  cfg.lams.recv_high_watermark = 16;
  cfg.lams.t_proc = 2_ms;

  sim::Scenario s{cfg};

  // Saturating arrivals for the first 150 ms.
  workload::RateSource source{
      s.simulator(), s.sender(), s.tracker(), s.ids(),
      {.interarrival = 83_us, .count = 1800, .bytes = 1024, .start = Time{},
       .respect_backpressure = false}};
  source.start();

  std::printf("  t[ms]   rate-factor   recv-backlog   send-buffer   "
              "delivered\n");
  std::printf("  -----   -----------   ------------   -----------   "
              "---------\n");
  bool throttled = false;
  Time throttle_start{}, recovered_at{};
  for (int ms = 10; ms <= 400; ms += 10) {
    s.simulator().run_until(Time::milliseconds(ms));
    const double rate = s.lams_sender()->rate_factor();
    const std::size_t backlog = s.lams_receiver()->recv_buffer_depth();
    std::printf("  %5d   %11.3f   %12zu   %11zu   %9llu\n", ms, rate, backlog,
                s.sender().sending_buffer_depth(),
                static_cast<unsigned long long>(
                    s.tracker().unique_delivered()));
    if (rate < 1.0 && !throttled) {
      throttled = true;
      throttle_start = s.simulator().now();
    }
    if (throttled && rate == 1.0 && recovered_at == Time{}) {
      recovered_at = s.simulator().now();
    }
  }
  const bool done = s.run_to_completion(10_s);
  const auto r = s.report();

  std::printf("\nStop-Go engaged at ~%.0f ms and released by ~%.0f ms; "
              "every frame still arrived exactly once (%llu/%llu, %llu "
              "dups).\n",
              throttle_start.ms(), recovered_at.ms(),
              static_cast<unsigned long long>(r.unique_delivered),
              static_cast<unsigned long long>(r.submitted),
              static_cast<unsigned long long>(r.duplicates));
  std::printf("Buffer control: mean sending buffer %.0f frames against the "
              "analysis bound B_LAMS = %.0f.\n",
              r.mean_send_buffer,
              analysis::b_lams(s.analysis_params()));
  return done && r.lost == 0 ? 0 : 1;
}
