/// \file protocol_trace.cpp
/// \brief Annotated wire-level trace of one LAMS-DLC error-recovery episode.
///
/// Runs a tiny transfer with a deliberate frame kill and a checkpoint kill,
/// printing every protocol event: I-frame transmissions, the gap-triggered
/// NAK, its repetition across C_depth checkpoints, the renumbered
/// retransmission, and an enforced recovery after a checkpoint blackout.
/// Useful both as documentation of the state machines and as a debugging
/// template.
///
///   $ ./protocol_trace

#include <cstdio>
#include <iostream>

#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

int main() {
  using namespace lamsdlc;
  using namespace lamsdlc::literals;

  sim::ScenarioConfig cfg;
  cfg.protocol = sim::Protocol::kLams;
  cfg.data_rate_bps = 10e6;  // slow link: readable timings
  cfg.prop_delay = 5_ms;
  cfg.frame_bytes = 1024;
  cfg.lams.checkpoint_interval = 5_ms;
  cfg.lams.cumulation_depth = 3;
  cfg.lams.max_rtt = 15_ms;
  cfg.tracer = Tracer{Tracer::print_to(std::cout)};

  sim::Scenario s{cfg};

  std::printf("=== phase 1: five frames, the third one dies on the wire ===\n");
  // Frame 2 occupies [2*tx, 3*tx) on the 10 Mbps link (tx = 835.2 us).
  const Time tx = s.frame_tx_time();
  s.link().forward().set_data_error_model(
      std::make_unique<phy::ScriptedOutageModel>(
          std::vector<phy::ScriptedOutageModel::Outage>{
              {tx * 2 + 1_us, tx * 3 - 1_us}}));
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(), 5,
                         cfg.frame_bytes);
  s.simulator().run_until(40_ms);

  std::printf("\n=== phase 2: checkpoint blackout -> enforced recovery ===\n");
  // Kill every checkpoint for 25 ms (> C_depth * W_cp = 15 ms) while two
  // more frames go out, one of them damaged.
  s.link().reverse().set_data_error_model(
      std::make_unique<phy::ScriptedOutageModel>(
          std::vector<phy::ScriptedOutageModel::Outage>{{40_ms, 65_ms}}));
  s.link().forward().set_data_error_model(
      std::make_unique<phy::ScriptedOutageModel>(
          std::vector<phy::ScriptedOutageModel::Outage>{
              {41_ms, 41_ms + tx}}));
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(), 2,
                         cfg.frame_bytes, 40_ms + 1_us);
  s.run_to_completion(1_s);

  const auto r = s.report();
  std::printf("\n=== outcome ===\n");
  std::printf("delivered %llu/%llu, lost %llu, duplicates %llu, "
              "retransmissions %llu, enforced recoveries %llu\n",
              static_cast<unsigned long long>(r.unique_delivered),
              static_cast<unsigned long long>(r.submitted),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.duplicates),
              static_cast<unsigned long long>(r.iframe_retx),
              static_cast<unsigned long long>(
                  s.lams_sender()->request_naks_sent()));
  return r.lost == 0 ? 0 : 1;
}
