/// \file constellation_relay.cpp
/// \brief Store-and-forward messaging across a Walker constellation.
///
/// The full system of the paper's introduction: a Walker-delta LEO
/// constellation whose grid neighbours run LAMS-DLC on every laser link,
/// store-and-forward nodes relaying datagrams with no resequencing hold,
/// and the destination reassembling segmented messages exactly once.  A
/// mid-run laser failure on the primary path exercises failure detection
/// and network-layer rerouting ("the sender informs the network layer").
///
///   $ ./constellation_relay

#include <cstdio>

#include "lamsdlc/net/network.hpp"
#include "lamsdlc/orbit/constellation.hpp"

int main() {
  using namespace lamsdlc;
  using namespace lamsdlc::literals;

  // --- A 32/4/1 Walker constellation at 1000 km. ---
  orbit::WalkerParams wp;
  wp.total = 32;
  wp.planes = 4;
  wp.phasing = 1;
  wp.altitude_m = 1.0e6;
  wp.inclination_rad = 0.9;
  orbit::Constellation constellation{wp};

  Simulator sim;
  net::Network net{sim};
  for (std::size_t i = 0; i < constellation.size(); ++i) {
    net.add_node("sat" + std::to_string(i));
  }

  // One LAMS-DLC link per grid-neighbour pair, with propagation driven by
  // the live orbit geometry and error rates in the paper's envelope.
  std::size_t links = 0;
  for (const auto& [i, j] : constellation.grid_neighbors()) {
    const auto pair = std::make_shared<orbit::SatellitePair>(
        constellation.pair(i, j, 1.0e7));
    if (!pair->visible(Time{})) continue;  // not currently acquirable
    net::LinkSpec spec;
    spec.a = static_cast<net::NodeId>(i);
    spec.b = static_cast<net::NodeId>(j);
    spec.data_rate_bps = 300e6;
    spec.propagation = [pair](Time t) { return pair->propagation_delay(t); };
    spec.lams.checkpoint_interval = 5_ms;
    spec.lams.cumulation_depth = 4;
    spec.lams.max_rtt = 80_ms;
    spec.a_to_b_error.kind = sim::ErrorConfig::Kind::kBernoulliBer;
    spec.a_to_b_error.ber = 1e-7;  // post-FEC residual (Paul et al.)
    spec.b_to_a_error = spec.a_to_b_error;
    net.add_link(spec);
    ++links;
  }
  std::printf("constellation: %zu satellites, %zu active laser links\n",
              constellation.size(), links);

  // --- Traffic: bulk messages across planes. ---
  // At t = 0 the Earth occludes most cross-plane links; plane 0 reaches
  // plane 3 through a 4-link seam (the debug geometry of a real Walker
  // grid), so route from plane 0 to the far side of plane 3 — a multi-hop
  // path through ring and seam links.
  const auto src = static_cast<net::NodeId>(constellation.index(0, 0));
  const auto dst = static_cast<net::NodeId>(constellation.index(3, 4));
  std::uint64_t done = 0;
  Time last{};
  net.set_message_callback([&](net::NodeId, std::uint64_t, Time at) {
    ++done;
    last = at;
  });
  constexpr int kMessages = 25;
  for (int m = 0; m < kMessages; ++m) net.send_message(src, dst, 256, 2048);

  // --- Mid-run failure: kill whatever link src is currently using. ---
  sim.schedule_at(30_ms, [&] {
    net.compute_routes();
    // The first hop of the primary route: fail its link.
    for (net::LinkId l = 0; l < links; ++l) {
      auto& fa = net.flow(l, src);
      if (fa.from() == src && !fa.failed() &&
          fa.sender().sending_buffer_depth() > 0) {
        std::printf("[30ms] killing link sat%u<->sat%u on the primary path\n",
                    fa.from(), fa.to());
        net.set_link_up(l, false);
        return;
      }
    }
  });

  const bool ok = net.run_to_completion(Time::seconds_int(120));
  const auto r = net.report();

  std::printf("\nmessages completed:   %llu / %d (last at %.3f s)\n",
              static_cast<unsigned long long>(done), kMessages, last.sec());
  std::printf("packets sent/lost/dup:%llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.packets_sent),
              static_cast<unsigned long long>(r.packets_lost),
              static_cast<unsigned long long>(r.duplicate_deliveries));
  std::printf("relay forwards:       %llu\n",
              static_cast<unsigned long long>(r.packets_forwarded));
  std::printf("mean / max delay:     %.2f / %.2f ms\n", 1e3 * r.mean_delay_s,
              1e3 * r.max_delay_s);
  return ok && r.packets_lost == 0 ? 0 : 1;
}
