/// \file lamsdlc_cli.cpp
/// \brief Command-line scenario driver.
///
/// Runs one protocol-over-link simulation from flags and prints either a
/// human-readable report or a CSV row (for sweeps driven by shell loops):
///
///   lamsdlc_cli --protocol lams --rate 300e6 --delay-ms 10 --pf 0.1
///       --frames 10000 --csv          (a single command line)
///
/// Flags (defaults in brackets):
///   --protocol lams|sr|gbn|nbdt   [lams]
///   --rate BPS               [100e6]     link data rate
///   --delay-ms MS            [5]         one-way propagation delay
///   --frame-bytes B          [1024]
///   --frames N               [1000]      batch size
///   --pf P                   [0]         I-frame error probability
///   --pc P                   [0]         control-frame error probability
///   --ber B                  [-]         use Bernoulli BER instead of pf/pc
///   --burst-ms MS            [-]         Gilbert-Elliott mean burst length
///   --icp-ms MS              [5]         LAMS checkpoint interval
///   --cdepth K               [4]         LAMS cumulation depth
///   --window W               [64]        HDLC window
///   --timeout-ms MS          [50]        HDLC t_out
///   --seed S                 [1]
///   --byte-level             [off]       serialize through the real codec
///   --horizon-s S            [600]
///   --csv                    emit one CSV row (header with --csv-header)
///   --analysis               also print the Section 4 closed forms
///
/// Subcommand `chaos`: replay seeded randomized fault schedules under the
/// protocol invariant checker and print the verdict plus fault counters:
///
///   lamsdlc_cli chaos --seed 42              (one run, full verdict)
///   lamsdlc_cli chaos --seed 1 --seeds 500   (soak: seeds 1..500)
///
/// Chaos flags:
///   --seed S                 [1]         first (or only) schedule seed
///   --seeds N                [1]         number of consecutive seeds to run
///   --packets N              [200]       workload size per run
///   --reverse-only           fault episodes attack only the checkpoint path
///   --forward-only           fault episodes attack only the I-frame path
///   --no-outage              never schedule a full link outage
///   --no-suppress-duplicates ablation: receiver delivers stale frames (the
///                            checker must then flag duplicate delivery)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lamsdlc/analysis/model.hpp"
#include "lamsdlc/sim/chaos.hpp"
#include "lamsdlc/sim/scenario.hpp"
#include "lamsdlc/workload/sources.hpp"

namespace {

using namespace lamsdlc;

struct Options {
  sim::ScenarioConfig cfg;
  std::uint64_t frames = 1000;
  double horizon_s = 600;
  bool csv = false;
  bool csv_header = false;
  bool analysis = false;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "lamsdlc_cli: %s (see the header of tools/lamsdlc_cli.cpp)\n",
               what.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  double pf = 0, pc = 0, ber = -1, burst_ms = -1;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--protocol") {
      const std::string v = need(i);
      if (v == "lams") {
        o.cfg.protocol = sim::Protocol::kLams;
      } else if (v == "sr") {
        o.cfg.protocol = sim::Protocol::kSrHdlc;
      } else if (v == "gbn") {
        o.cfg.protocol = sim::Protocol::kGbnHdlc;
      } else if (v == "nbdt") {
        o.cfg.protocol = sim::Protocol::kNbdt;
      } else {
        usage_error("unknown protocol " + v);
      }
    } else if (a == "--rate") {
      o.cfg.data_rate_bps = std::atof(need(i));
    } else if (a == "--delay-ms") {
      o.cfg.prop_delay = Time::seconds(std::atof(need(i)) * 1e-3);
    } else if (a == "--frame-bytes") {
      o.cfg.frame_bytes = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--frames") {
      o.frames = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--pf") {
      pf = std::atof(need(i));
    } else if (a == "--pc") {
      pc = std::atof(need(i));
    } else if (a == "--ber") {
      ber = std::atof(need(i));
    } else if (a == "--burst-ms") {
      burst_ms = std::atof(need(i));
    } else if (a == "--icp-ms") {
      o.cfg.lams.checkpoint_interval = Time::seconds(std::atof(need(i)) * 1e-3);
    } else if (a == "--cdepth") {
      o.cfg.lams.cumulation_depth = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--window") {
      o.cfg.hdlc.window = static_cast<std::uint32_t>(std::atoi(need(i)));
      o.cfg.hdlc.modulus = 4 * o.cfg.hdlc.window;
    } else if (a == "--timeout-ms") {
      o.cfg.hdlc.timeout = Time::seconds(std::atof(need(i)) * 1e-3);
    } else if (a == "--seed") {
      o.cfg.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--byte-level") {
      o.cfg.byte_level_wire = true;
    } else if (a == "--horizon-s") {
      o.horizon_s = std::atof(need(i));
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--csv-header") {
      o.csv = true;
      o.csv_header = true;
    } else if (a == "--analysis") {
      o.analysis = true;
    } else {
      usage_error("unknown flag " + a);
    }
  }
  if (ber >= 0) {
    o.cfg.forward_error.kind = sim::ErrorConfig::Kind::kBernoulliBer;
    o.cfg.forward_error.ber = ber;
    o.cfg.reverse_error = o.cfg.forward_error;
  } else if (burst_ms > 0) {
    o.cfg.forward_error.kind = sim::ErrorConfig::Kind::kGilbertElliott;
    o.cfg.forward_error.gilbert.mean_bad = Time::seconds(burst_ms * 1e-3);
    o.cfg.reverse_error = o.cfg.forward_error;
  } else if (pf > 0 || pc > 0) {
    o.cfg.forward_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    o.cfg.forward_error.p_frame = pf;
    o.cfg.forward_error.p_control = pc;
    o.cfg.reverse_error.kind = sim::ErrorConfig::Kind::kFixedFrameProb;
    o.cfg.reverse_error.p_frame = pc;
    o.cfg.reverse_error.p_control = pc;
  }
  // Keep the LAMS failure budget consistent with the configured delay.
  o.cfg.lams.max_rtt = o.cfg.prop_delay * 2 + Time::milliseconds(5);
  return o;
}

const char* protocol_name(sim::Protocol p) {
  switch (p) {
    case sim::Protocol::kLams:
      return "lams";
    case sim::Protocol::kSrHdlc:
      return "sr";
    case sim::Protocol::kGbnHdlc:
      return "gbn";
    case sim::Protocol::kNbdt:
      return "nbdt";
  }
  return "?";
}

int run_chaos_command(int argc, char** argv) {
  sim::ChaosKnobs knobs;
  std::uint64_t seeds = 1;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      knobs.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--seeds") {
      seeds = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--packets") {
      knobs.packets = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--reverse-only") {
      knobs.allow_forward_faults = false;
    } else if (a == "--forward-only") {
      knobs.allow_reverse_faults = false;
    } else if (a == "--no-outage") {
      knobs.allow_link_outage = false;
    } else if (a == "--no-suppress-duplicates") {
      knobs.suppress_duplicates = false;
    } else {
      usage_error("unknown chaos flag " + a);
    }
  }

  std::uint64_t violated = 0;
  for (std::uint64_t s = knobs.seed; s < knobs.seed + seeds; ++s) {
    sim::ChaosKnobs k = knobs;
    k.seed = s;
    const sim::ChaosVerdict v = sim::run_chaos(k);
    if (!v.ok) ++violated;
    if (!v.ok || seeds == 1) {
      std::printf("%s", v.to_string().c_str());
      std::printf(
          "  counters: drop=%llu dup=%llu delay=%llu trunc=%llu corrupt=%llu "
          "reverse=%llu congestion=%llu dup_suppressed=%llu rnak=%llu "
          "cp=%llu\n",
          static_cast<unsigned long long>(v.faults_dropped),
          static_cast<unsigned long long>(v.faults_duplicated),
          static_cast<unsigned long long>(v.faults_delayed),
          static_cast<unsigned long long>(v.faults_truncated),
          static_cast<unsigned long long>(v.frames_corrupted),
          static_cast<unsigned long long>(v.reverse_faulted),
          static_cast<unsigned long long>(v.congestion_discards),
          static_cast<unsigned long long>(v.duplicates_suppressed),
          static_cast<unsigned long long>(v.request_naks),
          static_cast<unsigned long long>(v.checkpoints_sent));
    }
  }
  if (seeds > 1) {
    std::printf("chaos soak: %llu seeds, %llu violated\n",
                static_cast<unsigned long long>(seeds),
                static_cast<unsigned long long>(violated));
  }
  return violated == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "chaos") == 0) {
    return run_chaos_command(argc, argv);
  }
  Options o = parse(argc, argv);

  sim::Scenario s{o.cfg};
  workload::submit_batch(s.simulator(), s.sender(), s.tracker(), s.ids(),
                         o.frames, o.cfg.frame_bytes);
  const bool done = s.run_to_completion(Time::seconds(o.horizon_s));
  const auto r = s.report();

  if (o.csv) {
    if (o.csv_header) {
      std::printf(
          "protocol,frames,pf,pc,completed,delivered,lost,duplicates,"
          "efficiency,tx_per_frame,mean_delay_s,mean_holding_s,"
          "mean_send_buffer,peak_send_buffer,control_tx\n");
    }
    std::printf("%s,%llu,%g,%g,%d,%llu,%llu,%llu,%.6f,%.4f,%.6f,%.6f,%.1f,"
                "%.1f,%llu\n",
                protocol_name(o.cfg.protocol),
                static_cast<unsigned long long>(o.frames),
                o.cfg.forward_error.p_frame, o.cfg.forward_error.p_control,
                done ? 1 : 0,
                static_cast<unsigned long long>(r.unique_delivered),
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.duplicates), r.efficiency,
                r.tx_per_frame, r.mean_delay_s, r.mean_holding_s,
                r.mean_send_buffer, r.peak_send_buffer,
                static_cast<unsigned long long>(r.control_tx));
  } else {
    std::printf("protocol:             %s\n", protocol_name(o.cfg.protocol));
    std::printf("completed:            %s\n", done ? "yes" : "NO");
    std::printf("delivered/lost/dup:   %llu / %llu / %llu\n",
                static_cast<unsigned long long>(r.unique_delivered),
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.duplicates));
    std::printf("efficiency:           %.4f\n", r.efficiency);
    std::printf("tx per frame:         %.4f\n", r.tx_per_frame);
    std::printf("mean delay:           %.3f ms\n", 1e3 * r.mean_delay_s);
    std::printf("mean holding time:    %.3f ms\n", 1e3 * r.mean_holding_s);
    std::printf("send buffer mean/peak:%.1f / %.1f frames\n",
                r.mean_send_buffer, r.peak_send_buffer);
  }

  if (o.analysis) {
    const auto p = s.analysis_params();
    const double n = static_cast<double>(o.frames);
    std::printf("\nSection 4 closed forms at this operating point:\n");
    std::printf("  s_bar lams/hdlc:    %.4f / %.4f\n",
                analysis::s_bar_lams(p), analysis::s_bar_hdlc(p));
    std::printf("  H_frame:            %.3f ms\n",
                1e3 * analysis::h_frame_lams(p));
    std::printf("  B_LAMS:             %.1f frames\n", analysis::b_lams(p));
    std::printf("  efficiency lams:    %.4f\n", analysis::efficiency_lams(p, n));
    std::printf("  efficiency hdlc:    %.4f\n", analysis::efficiency_hdlc(p, n));
  }
  return done ? 0 : 1;
}
